// Drift detection: shadow vs served quantiles with hysteresis.
//
// Each ladder rung keeps a shadow P² sketch of the scores it actually
// served. Periodically the calibrator compares the shadow's threshold
// quantile against the served threshold, normalized by the served
// calibration's own tail width (|threshold - median| of the fitted ECDF) so
// "drift" is dimensionless and comparable across rungs whose score scales
// differ by orders of magnitude (SSIM vs MSE). A single noisy check must
// not trigger a recalibration, and a single quiet one must not cancel an
// ongoing drift episode — the DriftDetector wraps the boolean check stream
// in the same consecutive-count trigger/release hysteresis the
// NoveltyMonitor applies to novelty verdicts.
#pragma once

#include <array>
#include <cstdint>

#include "core/novelty_detector.hpp"

namespace salnov::calib {

struct DriftDetectorConfig {
  /// A rung counts as drifted in one check when its normalized drift ratio
  /// exceeds this.
  double tolerance = 0.5;
  /// Consecutive drifted checks before the detector fires (kDrifted).
  int64_t trigger_checks = 3;
  /// Consecutive clean checks before an episode releases back to kStable.
  int64_t release_checks = 5;
};

enum class DriftState {
  kStable = 0,  ///< shadow agrees with served thresholds
  kAlert,       ///< drifted checks accumulating toward the trigger
  kDrifted,     ///< episode in progress: recalibration warranted
};

const char* drift_state_name(DriftState state);

/// One rung's shadow-vs-served comparison in a single check.
struct RungDrift {
  bool eligible = false;  ///< enough shadow samples to compare at all
  int64_t shadow_samples = 0;
  double shadow_quantile = 0.0;   ///< threshold quantile of the shadow sketch
  double served_threshold = 0.0;  ///< threshold currently applied by the scorer
  double ratio = 0.0;             ///< |shadow - served| / served tail width
  bool drifted = false;
};

/// Outcome of one periodic drift check across all rungs.
struct DriftCheck {
  std::array<RungDrift, core::kDetectorVariantCount> rungs{};
  bool any_drifted = false;
  DriftState state = DriftState::kStable;  ///< hysteresis state after the check
};

class DriftDetector {
 public:
  /// Throws std::invalid_argument on non-positive tolerance or
  /// trigger/release counts below 1.
  explicit DriftDetector(DriftDetectorConfig config);

  const DriftDetectorConfig& config() const { return config_; }

  /// Folds one check outcome (any rung drifted?) into the hysteresis state
  /// machine and returns the new state. Mirrors NoveltyMonitor: kDrifted
  /// entered after `trigger_checks` consecutive drifted checks, left after
  /// `release_checks` consecutive clean ones.
  DriftState update(bool drifted);

  DriftState state() const { return state_; }

  /// Rearms after a hot-swap: the shadow now IS the served calibration, so
  /// the episode is over by construction.
  void reset();

 private:
  DriftDetectorConfig config_;
  DriftState state_ = DriftState::kStable;
  int64_t drifted_streak_ = 0;
  int64_t clean_streak_ = 0;
};

}  // namespace salnov::calib
