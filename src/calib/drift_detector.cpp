#include "calib/drift_detector.hpp"

#include <stdexcept>

namespace salnov::calib {

const char* drift_state_name(DriftState state) {
  switch (state) {
    case DriftState::kStable:
      return "stable";
    case DriftState::kAlert:
      return "alert";
    case DriftState::kDrifted:
      return "drifted";
  }
  return "unknown";
}

DriftDetector::DriftDetector(DriftDetectorConfig config) : config_(config) {
  if (!(config_.tolerance > 0.0)) {
    throw std::invalid_argument("DriftDetector: tolerance must be positive");
  }
  if (config_.trigger_checks < 1 || config_.release_checks < 1) {
    throw std::invalid_argument("DriftDetector: trigger/release checks must be >= 1");
  }
}

DriftState DriftDetector::update(bool drifted) {
  if (drifted) {
    ++drifted_streak_;
    clean_streak_ = 0;
    if (state_ == DriftState::kDrifted) return state_;
    if (drifted_streak_ >= config_.trigger_checks) {
      state_ = DriftState::kDrifted;
    } else {
      state_ = DriftState::kAlert;
    }
  } else {
    ++clean_streak_;
    drifted_streak_ = 0;
    if (state_ == DriftState::kDrifted) {
      if (clean_streak_ >= config_.release_checks) state_ = DriftState::kStable;
    } else {
      state_ = DriftState::kStable;
    }
  }
  return state_;
}

void DriftDetector::reset() {
  state_ = DriftState::kStable;
  drifted_streak_ = 0;
  clean_streak_ = 0;
}

}  // namespace salnov::calib
