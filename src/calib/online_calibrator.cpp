#include "calib/online_calibrator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace salnov::calib {

void validate(const OnlineCalibrationConfig& config) {
  if (!(config.percentile > 0.0 && config.percentile < 1.0)) {
    throw std::invalid_argument("OnlineCalibrationConfig: percentile outside (0, 1)");
  }
  if (config.warmup < 1) {
    throw std::invalid_argument("OnlineCalibrationConfig: warmup must be >= 1");
  }
  if (config.min_samples < 1) {
    throw std::invalid_argument("OnlineCalibrationConfig: min_samples must be >= 1");
  }
  if (!(config.drift_tolerance > 0.0)) {
    throw std::invalid_argument("OnlineCalibrationConfig: drift_tolerance must be positive");
  }
  if (config.check_every_frames < 1) {
    throw std::invalid_argument("OnlineCalibrationConfig: check_every_frames must be >= 1");
  }
  if (config.trigger_checks < 1 || config.release_checks < 1) {
    throw std::invalid_argument("OnlineCalibrationConfig: trigger/release checks must be >= 1");
  }
  for (int64_t frame : config.forced_swap_frames) {
    if (frame < 0) {
      throw std::invalid_argument("OnlineCalibrationConfig: negative forced swap frame");
    }
  }
}

namespace {

double shadow_threshold_quantile(const P2Sketch& sketch, core::ScoreOrientation orientation,
                                 double percentile) {
  // Same tail rule as NoveltyThreshold::calibrate: high-is-novel thresholds
  // at the upper percentile, low-is-novel at the mirrored lower one.
  return orientation == core::ScoreOrientation::kHighIsNovel
             ? sketch.upper_quantile(percentile)
             : sketch.lower_quantile(1.0 - percentile);
}

}  // namespace

const core::VariantCalibration& OnlineCalibrator::fit_calibration(
    core::DetectorVariant variant) const {
  const core::VariantCalibration* cal = detector_.variant_calibration_if(variant);
  if (cal == nullptr) {
    cal = detector_.variant_calibration_if(core::detector_variant_float_peer(variant));
  }
  if (cal == nullptr) {
    throw std::logic_error("OnlineCalibrator: variant has no fitted calibration");
  }
  return *cal;
}

OnlineCalibrator::OnlineCalibrator(const core::NoveltyDetector& detector,
                                   OnlineCalibrationConfig config)
    : detector_(detector),
      config_(std::move(config)),
      drift_(DriftDetectorConfig{config_.drift_tolerance, config_.trigger_checks,
                                 config_.release_checks}) {
  validate(config_);
  if (!detector_.has_variant_calibrations()) {
    throw std::invalid_argument("OnlineCalibrator: detector has no fitted variant calibrations");
  }
  std::sort(config_.forced_swap_frames.begin(), config_.forced_swap_frames.end());
  const std::vector<double> tracked = {1.0 - config_.percentile, 0.5, config_.percentile};
  sketches_.reserve(core::kDetectorVariantCount);
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    sketches_.emplace_back(tracked, config_.warmup);
    const auto& calibration = fit_calibration(static_cast<core::DetectorVariant>(v));
    const double median = calibration.cdf.quantile(0.5);
    const double threshold = calibration.threshold.threshold();
    scale_[static_cast<size_t>(v)] = std::max(std::abs(threshold - median), 1e-12);
  }
}

void OnlineCalibrator::observe(core::DetectorVariant variant, double score) {
  sketches_[static_cast<size_t>(variant)].add(score);
}

bool OnlineCalibrator::check_due(int64_t scored_frames) const {
  return scored_frames > 0 && scored_frames % config_.check_every_frames == 0;
}

double OnlineCalibrator::served_threshold_for(core::DetectorVariant variant,
                                              const ThresholdSet* live) const {
  if (live != nullptr) return live->thresholds[static_cast<size_t>(variant)].threshold();
  return fit_calibration(variant).threshold.threshold();
}

RungDrift OnlineCalibrator::evaluate(core::DetectorVariant variant,
                                     const ThresholdSet* live) const {
  const auto& sketch = sketches_[static_cast<size_t>(variant)];
  RungDrift rung;
  rung.shadow_samples = sketch.count();
  rung.served_threshold = served_threshold_for(variant, live);
  rung.eligible = sketch.count() >= config_.min_samples;
  if (!rung.eligible) return rung;
  const core::ScoreOrientation orientation = fit_calibration(variant).threshold.orientation();
  rung.shadow_quantile = shadow_threshold_quantile(sketch, orientation, config_.percentile);
  rung.ratio = std::abs(rung.shadow_quantile - rung.served_threshold) /
               scale_[static_cast<size_t>(variant)];
  rung.drifted = rung.ratio > config_.drift_tolerance;
  return rung;
}

DriftCheck OnlineCalibrator::check(const ThresholdSet* live) {
  DriftCheck result;
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    result.rungs[static_cast<size_t>(v)] = evaluate(static_cast<core::DetectorVariant>(v), live);
    result.any_drifted = result.any_drifted || result.rungs[static_cast<size_t>(v)].drifted;
  }
  ++checks_;
  if (result.any_drifted) ++drifted_checks_;
  result.state = drift_.update(result.any_drifted);
  return result;
}

std::shared_ptr<const ThresholdSet> OnlineCalibrator::build(const ThresholdSet* live,
                                                            int64_t epoch) const {
  auto set = std::make_shared<ThresholdSet>();
  set->epoch = epoch;
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    const auto variant = static_cast<core::DetectorVariant>(v);
    const auto& sketch = sketches_[static_cast<size_t>(v)];
    const core::ScoreOrientation orientation = fit_calibration(variant).threshold.orientation();
    if (sketch.count() >= config_.min_samples) {
      set->thresholds[static_cast<size_t>(v)] = core::NoveltyThreshold(
          shadow_threshold_quantile(sketch, orientation, config_.percentile), orientation);
      set->shadow_samples[static_cast<size_t>(v)] = sketch.count();
      set->rebuilt[static_cast<size_t>(v)] = 1;
    } else {
      // Not enough shadow evidence on this rung (it may simply never have
      // served): keep whatever is live so a swap can never degrade a rung
      // it knows nothing about.
      set->thresholds[static_cast<size_t>(v)] =
          live != nullptr ? live->thresholds[static_cast<size_t>(v)]
                          : fit_calibration(variant).threshold;
      set->shadow_samples[static_cast<size_t>(v)] = 0;
      set->rebuilt[static_cast<size_t>(v)] = 0;
    }
  }
  return set;
}

RungDrift OnlineCalibrator::gauge(core::DetectorVariant variant, const ThresholdSet* live) const {
  RungDrift rung = evaluate(variant, live);
  if (!rung.eligible) {
    // For a gauge (unlike a drift check) a below-min_samples shadow is still
    // worth showing; only a sample-less rung reads as NaN -> JSON null.
    const auto& sketch = sketches_[static_cast<size_t>(variant)];
    rung.shadow_quantile =
        sketch.count() > 0
            ? shadow_threshold_quantile(sketch, fit_calibration(variant).threshold.orientation(),
                                        config_.percentile)
            : std::numeric_limits<double>::quiet_NaN();
  }
  return rung;
}

}  // namespace salnov::calib
