// Streaming quantile sketch for online shadow calibration.
//
// The paper's thresholds come from the full training-score ECDF
// (EmpiricalCdf): exact order statistics over a batch. A serving stream
// cannot afford to keep every score, but the drift loop still needs the
// same quantiles, continuously, per ladder rung. P2Sketch is the standard
// P² algorithm (Jain & Chlamtac, CACM 1985) extended to a set of tracked
// quantiles, with two deliberate deviations that tie it to EmpiricalCdf:
//
//   * Exact warm-up. Until `warmup` samples have arrived the sketch IS an
//     exact buffer and answers upper_quantile/lower_quantile with
//     EmpiricalCdf's conservative order-statistic semantics (the same
//     rank-snapping math — warm-up answers are bit-identical to an
//     EmpiricalCdf fitted on the same samples). The P² markers are then
//     initialized from exact order statistics of the buffer instead of the
//     classic first-five-samples rule.
//   * Conservative marker snapping. After warm-up, upper_quantile(q)
//     answers with the nearest tracked marker AT OR ABOVE q and
//     lower_quantile(q) with the nearest marker at or below — the estimate
//     errs outward, like EmpiricalCdf's smallest-sample-with-cdf>=q rule,
//     never inward. Callers track the quantiles they will query (the
//     calibrator tracks {1-p, 0.5, p}); min and max are always tracked.
//
// Non-finite samples are dropped and counted, mirroring the EmpiricalCdf
// fit and the monitor's EMA containment: one NaN score must not poison a
// shadow threshold. All state is serializable and round-trips bit-exactly,
// so a sketch survives process restarts through the checked-persistence
// layer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace salnov::calib {

class P2Sketch {
 public:
  /// `tracked_quantiles` are the interior quantiles the sketch maintains
  /// markers for (each strictly inside (0,1); duplicates are merged; 0 and
  /// 1 — min and max — are always added). `warmup` is the exact-buffer
  /// size; it must cover the marker bank (throws std::invalid_argument when
  /// it does not, or on an out-of-range quantile).
  explicit P2Sketch(std::vector<double> tracked_quantiles, int64_t warmup = 64);

  /// Folds one sample in. Non-finite values are dropped and counted in
  /// nonfinite_dropped() — they never reach the quantile math.
  void add(double value);

  /// Finite samples folded in so far.
  int64_t count() const { return count_; }

  /// Non-finite samples dropped by add().
  int64_t nonfinite_dropped() const { return nonfinite_dropped_; }

  /// False while in the exact warm-up buffer, true once the P² markers have
  /// taken over.
  bool streaming() const { return streaming_; }

  int64_t warmup() const { return warmup_; }

  /// The deduplicated interior quantiles this sketch tracks.
  const std::vector<double>& tracked() const { return tracked_; }

  /// Conservative upper quantile: exact EmpiricalCdf::upper_quantile
  /// during warm-up; afterwards the height of the nearest marker at or
  /// above `q`. Throws EmptyCalibrationError before the first finite
  /// sample and std::invalid_argument for q outside [0, 1].
  double upper_quantile(double q) const;

  /// Mirror image (EmpiricalCdf::lower_quantile semantics): exact during
  /// warm-up, nearest marker at or below `q` afterwards.
  double lower_quantile(double q) const;

  double min() const;
  double max() const;

  /// Serializes the full sketch state (phase, buffer or marker bank); a
  /// loaded sketch continues the stream bit-exactly where the saved one
  /// stopped.
  void save(std::ostream& os) const;
  static P2Sketch load(std::istream& is);

  /// Checked persistence: temp file + atomic rename + CRC32 trailer.
  void save_file(const std::string& path) const;
  static P2Sketch load_file(const std::string& path);

 private:
  P2Sketch() = default;  ///< for load()

  void init_markers();
  void validate_or_throw() const;  ///< load-time invariant checks

  std::vector<double> tracked_;   ///< interior quantiles, sorted, deduped
  std::vector<double> marker_q_;  ///< full marker quantile set incl. 0, 1, midpoints
  int64_t warmup_ = 64;
  int64_t count_ = 0;
  int64_t nonfinite_dropped_ = 0;
  bool streaming_ = false;

  std::vector<double> buffer_;     ///< warm-up samples, insertion order
  std::vector<int64_t> marker_n_;  ///< marker positions (1-based ranks)
  std::vector<double> marker_h_;   ///< marker heights
};

}  // namespace salnov::calib
