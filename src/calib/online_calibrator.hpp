// Online shadow calibration: the control loop tying sketch, drift detector
// and threshold sets together.
//
// The paper fits thresholds once, offline. A deployed stream drifts — the
// exposure changes, the fog rolls in — and the fitted 99th percentile slowly
// stops meaning "1% of nominal frames flagged". The calibrator runs a
// shadow calibration per ladder rung: every finite served score is folded
// into that rung's P² sketch, and every `check_every_frames` scored frames
// the shadow's threshold quantile is compared against the served threshold
// (DriftDetector hysteresis decides when disagreement is an episode, not
// noise). When drift fires, a new ThresholdSet is built from the sketches —
// rungs without enough shadow samples carry the served threshold over — and
// handed to the supervisor for the crash-safe persist + RCU install.
//
// The calibrator itself is deliberately clock-free and allocation-light:
// all cadence is counted in scored frames, so the same stream of scores
// produces the same checks, the same drift episodes and the same swap
// frames on record and on replay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "calib/drift_detector.hpp"
#include "calib/p2_sketch.hpp"
#include "calib/threshold_set.hpp"
#include "core/novelty_detector.hpp"

namespace salnov::calib {

struct OnlineCalibrationConfig {
  bool enabled = false;   ///< master switch; everything below is inert when false
  bool auto_swap = true;  ///< hot-swap automatically when drift fires

  /// Threshold percentile for shadow thresholds; matches the paper's (and
  /// the detector's) 0.99 rule.
  double percentile = 0.99;
  /// P² exact warm-up per rung (see P2Sketch).
  int64_t warmup = 64;
  /// Shadow samples a rung needs before it participates in drift checks or
  /// gets rebuilt in a swap.
  int64_t min_samples = 256;
  /// Normalized shadow-vs-served disagreement that counts as one drifted
  /// check (see DriftDetectorConfig::tolerance).
  double drift_tolerance = 0.5;
  /// Drift-check cadence, counted in *scored* frames (held / sensor-bad /
  /// abandoned frames never advance the cadence).
  int64_t check_every_frames = 32;
  int64_t trigger_checks = 3;
  int64_t release_checks = 5;

  /// Frame indices at which a swap is forced regardless of drift state —
  /// deterministic operator-initiated recalibration (CLI --force-swap-at).
  std::vector<int64_t> forced_swap_frames;

  /// When non-empty, every swap persists the new ThresholdSet here before
  /// it is installed. Machine-local, NOT serialized into traces (replay
  /// must not write operator files), like SupervisorConfig::timing_faults.
  std::string store_path;
};

/// Throws std::invalid_argument on out-of-range knobs (used by the
/// supervisor ctor and TraceRunSpec::validate).
void validate(const OnlineCalibrationConfig& config);

class OnlineCalibrator {
 public:
  /// `detector` must outlive the calibrator and have fitted variant
  /// calibrations (their ECDFs provide the per-rung drift scale).
  OnlineCalibrator(const core::NoveltyDetector& detector, OnlineCalibrationConfig config);

  const OnlineCalibrationConfig& config() const { return config_; }

  /// Folds one served score into the rung's shadow sketch. Non-finite
  /// scores are dropped and counted inside the sketch, mirroring the ECDF
  /// fit containment.
  void observe(core::DetectorVariant variant, double score);

  /// True when `scored_frames` lands on the check cadence.
  bool check_due(int64_t scored_frames) const;

  /// Runs one drift check against the currently served set (nullptr =
  /// the detector's fitted thresholds) and advances the hysteresis.
  DriftCheck check(const ThresholdSet* live);

  /// Builds the recalibrated set at `epoch`. Rungs with at least
  /// min_samples shadow samples get the sketch's threshold quantile; the
  /// rest carry over the served threshold.
  std::shared_ptr<const ThresholdSet> build(const ThresholdSet* live, int64_t epoch) const;

  /// Snapshot of one rung's shadow-vs-served gauges without advancing any
  /// state (for HealthSnapshot).
  RungDrift gauge(core::DetectorVariant variant, const ThresholdSet* live) const;

  DriftState state() const { return drift_.state(); }

  /// Rearms the hysteresis after a swap (shadow == served by construction).
  void rearm_after_swap() { drift_.reset(); }

  const P2Sketch& sketch(core::DetectorVariant variant) const {
    return sketches_[static_cast<size_t>(variant)];
  }

  int64_t checks() const { return checks_; }
  int64_t drifted_checks() const { return drifted_checks_; }

 private:
  RungDrift evaluate(core::DetectorVariant variant, const ThresholdSet* live) const;
  double served_threshold_for(core::DetectorVariant variant, const ThresholdSet* live) const;

  /// The fitted calibration backing a rung's drift scale/orientation. For a
  /// q8 rung of a pipeline fitted without quantization this is the float
  /// peer's calibration — the same stand-in the serving path uses.
  const core::VariantCalibration& fit_calibration(core::DetectorVariant variant) const;

  const core::NoveltyDetector& detector_;
  OnlineCalibrationConfig config_;
  std::vector<P2Sketch> sketches_;  ///< one per DetectorVariant, same index
  /// Fixed per-rung drift scale: |fitted threshold - fitted median|, from
  /// the detector's training ECDF. Anchoring the scale to the fit (rather
  /// than the currently served set) keeps the drift ratio comparable across
  /// swap epochs.
  std::array<double, core::kDetectorVariantCount> scale_{};
  DriftDetector drift_;
  int64_t checks_ = 0;
  int64_t drifted_checks_ = 0;
};

}  // namespace salnov::calib
