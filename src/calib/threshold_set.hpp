// Swappable threshold sets and the RCU-style slot that serves them.
//
// A recalibration produces a complete ThresholdSet — one NoveltyThreshold
// per ladder rung, an epoch number, and provenance (which rungs were
// rebuilt from the shadow sketch vs carried over). The set is immutable
// after construction; replacing the served thresholds is a pointer
// exchange, never an in-place edit, so the scorer can read thresholds on
// every frame without ever taking a lock:
//
//   * Readers call ThresholdHotSwap::acquire(): a single
//     memory_order_acquire atomic load. Wait-free, no allocation, safe on
//     the frame-processing hot path.
//   * Writers call install(): under a writer mutex the outgoing set is
//     pushed onto a retired list (freed only when the slot dies — readers
//     may still hold the raw pointer for the duration of a frame) and the
//     new pointer is published with memory_order_release.
//
// Persistence rides the crash-safe checked-file protocol (temp file +
// atomic rename + CRC trailer) with crash points planted at each milestone,
// so a process killed mid-swap restarts with either the complete old set or
// the complete new one — a torn file is structurally impossible and the
// crash-injection tests prove it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/novelty_detector.hpp"
#include "core/threshold.hpp"

namespace salnov::calib {

struct ThresholdSet {
  /// Monotone recalibration generation; 0 is reserved for "the fitted
  /// calibration, never swapped".
  int64_t epoch = 0;
  std::array<core::NoveltyThreshold, core::kDetectorVariantCount> thresholds{};
  /// Shadow sample count behind each rung at build time (0 for carried-over
  /// rungs).
  std::array<int64_t, core::kDetectorVariantCount> shadow_samples{};
  /// 1 when the rung was rebuilt from the shadow sketch, 0 when the
  /// previously served threshold was carried over (insufficient samples).
  std::array<uint8_t, core::kDetectorVariantCount> rebuilt{};

  void save(std::ostream& os) const;
  static ThresholdSet load(std::istream& is);

  /// Checked persistence with crash points around the temp-write/rename
  /// milestones (see faults/crash_points.hpp).
  void save_file(const std::string& path) const;
  static ThresholdSet load_file(const std::string& path);
};

class ThresholdHotSwap {
 public:
  ThresholdHotSwap() = default;
  ThresholdHotSwap(const ThresholdHotSwap&) = delete;
  ThresholdHotSwap& operator=(const ThresholdHotSwap&) = delete;

  /// The currently served set, or nullptr before the first install (serve
  /// the detector's fitted calibration then). Wait-free; the pointer stays
  /// valid for the lifetime of the slot.
  const ThresholdSet* acquire() const { return live_.load(std::memory_order_acquire); }

  /// Publishes `next` as the served set. Thread-safe against concurrent
  /// install() calls and against acquire() on any number of reader threads.
  /// The outgoing set is retired, not freed — readers never race reclamation.
  void install(std::shared_ptr<const ThresholdSet> next);

  int64_t installs() const { return installs_.load(std::memory_order_acquire); }

 private:
  std::atomic<const ThresholdSet*> live_{nullptr};
  std::atomic<int64_t> installs_{0};
  std::mutex writer_mu_;  ///< serializes install(); never touched by readers
  /// Every set ever installed, kept alive until the slot is destroyed.
  /// Swaps are rare (drift episodes), so the unbounded-but-tiny list is the
  /// simplest correct reclamation scheme.
  std::vector<std::shared_ptr<const ThresholdSet>> retired_;
};

}  // namespace salnov::calib
