#include "calib/p2_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "metrics/ecdf.hpp"
#include "tensor/serialize.hpp"

namespace salnov::calib {
namespace {

constexpr char kSketchMagic[] = "salnov-p2sketch";
constexpr uint32_t kSketchVersion = 1;

/// Tolerance for matching a queried quantile against a tracked marker; the
/// same order of magnitude as EmpiricalCdf's rank snap.
constexpr double kQuantileSnap = 1e-9;

void check_q(double q, const char* who) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument(std::string(who) + ": q outside [0, 1]");
  }
}

}  // namespace

P2Sketch::P2Sketch(std::vector<double> tracked_quantiles, int64_t warmup)
    : tracked_(std::move(tracked_quantiles)), warmup_(warmup) {
  for (double q : tracked_) {
    if (!(q > 0.0 && q < 1.0)) {
      throw std::invalid_argument("P2Sketch: tracked quantile outside (0, 1)");
    }
  }
  std::sort(tracked_.begin(), tracked_.end());
  tracked_.erase(std::unique(tracked_.begin(), tracked_.end()), tracked_.end());

  // Marker bank: 0, the tracked quantiles, 1, plus the midpoint between
  // each adjacent pair. The midpoints are the classic P² trick — they keep
  // the interior markers from starving for position updates when the
  // tracked quantiles sit deep in a tail (0.99 next to 1).
  std::vector<double> base;
  base.push_back(0.0);
  base.insert(base.end(), tracked_.begin(), tracked_.end());
  base.push_back(1.0);
  for (size_t i = 0; i + 1 < base.size(); ++i) {
    marker_q_.push_back(base[i]);
    marker_q_.push_back(0.5 * (base[i] + base[i + 1]));
  }
  marker_q_.push_back(base.back());

  const auto markers = static_cast<int64_t>(marker_q_.size());
  if (warmup_ < markers) {
    throw std::invalid_argument("P2Sketch: warmup " + std::to_string(warmup_) +
                                " smaller than marker bank (" + std::to_string(markers) + ")");
  }
  buffer_.reserve(static_cast<size_t>(warmup_));
}

void P2Sketch::init_markers() {
  std::vector<double> sorted = buffer_;
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<int64_t>(sorted.size());
  const auto m = static_cast<int64_t>(marker_q_.size());

  // Exact order statistics seed the markers: position round(1 + q*(n-1)),
  // forced strictly increasing so every inter-marker cell holds at least
  // one rank (the P² position updates preserve this invariant).
  marker_n_.assign(static_cast<size_t>(m), 0);
  for (int64_t i = 0; i < m; ++i) {
    const auto ideal = static_cast<int64_t>(std::llround(1.0 + marker_q_[static_cast<size_t>(i)] *
                                                                   static_cast<double>(n - 1)));
    marker_n_[static_cast<size_t>(i)] = std::clamp<int64_t>(ideal, i + 1, n - (m - 1 - i));
  }
  for (int64_t i = 1; i < m; ++i) {
    marker_n_[static_cast<size_t>(i)] =
        std::max(marker_n_[static_cast<size_t>(i)], marker_n_[static_cast<size_t>(i - 1)] + 1);
  }
  marker_h_.assign(static_cast<size_t>(m), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    marker_h_[static_cast<size_t>(i)] = sorted[static_cast<size_t>(marker_n_[static_cast<size_t>(i)] - 1)];
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
  streaming_ = true;
}

void P2Sketch::add(double value) {
  if (!std::isfinite(value)) {
    ++nonfinite_dropped_;
    return;
  }
  if (!streaming_) {
    buffer_.push_back(value);
    ++count_;
    if (count_ == warmup_) init_markers();
    return;
  }

  const auto m = static_cast<int64_t>(marker_q_.size());
  auto& n = marker_n_;
  auto& h = marker_h_;

  // Locate the cell, stretching the extreme markers when the sample falls
  // outside the current range.
  int64_t k;
  if (value < h[0]) {
    h[0] = value;
    k = 0;
  } else if (value >= h[static_cast<size_t>(m - 1)]) {
    h[static_cast<size_t>(m - 1)] = std::max(h[static_cast<size_t>(m - 1)], value);
    k = m - 2;
  } else {
    const auto it = std::upper_bound(h.begin(), h.end(), value);
    k = std::distance(h.begin(), it) - 1;
  }
  for (int64_t i = k + 1; i < m; ++i) ++n[static_cast<size_t>(i)];
  ++count_;

  // Nudge interior markers toward their desired positions with the
  // piecewise-parabolic (P²) update, falling back to linear when the
  // parabola would break height monotonicity.
  for (int64_t i = 1; i < m - 1; ++i) {
    const auto iu = static_cast<size_t>(i);
    const double desired = 1.0 + marker_q_[iu] * static_cast<double>(count_ - 1);
    const double d = desired - static_cast<double>(n[iu]);
    const int64_t right_gap = n[iu + 1] - n[iu];
    const int64_t left_gap = n[iu - 1] - n[iu];
    if ((d >= 1.0 && right_gap > 1) || (d <= -1.0 && left_gap < -1)) {
      const auto s = static_cast<int64_t>(d >= 1.0 ? 1 : -1);
      const auto sd = static_cast<double>(s);
      const double np = static_cast<double>(n[iu + 1]);
      const double nc = static_cast<double>(n[iu]);
      const double nm = static_cast<double>(n[iu - 1]);
      const double parabolic =
          h[iu] + sd / (np - nm) *
                      ((nc - nm + sd) * (h[iu + 1] - h[iu]) / (np - nc) +
                       (np - nc - sd) * (h[iu] - h[iu - 1]) / (nc - nm));
      if (h[iu - 1] < parabolic && parabolic < h[iu + 1]) {
        h[iu] = parabolic;
      } else {
        const auto ju = static_cast<size_t>(i + s);
        h[iu] += sd * (h[ju] - h[iu]) / static_cast<double>(n[ju] - n[iu]);
      }
      n[iu] += s;
    }
  }
}

double P2Sketch::upper_quantile(double q) const {
  check_q(q, "P2Sketch::upper_quantile");
  if (count_ == 0) throw EmptyCalibrationError("P2Sketch: no finite samples observed");
  if (!streaming_) return EmpiricalCdf(buffer_).upper_quantile(q);
  // Nearest marker at or above q: the estimate snaps outward (upward), the
  // conservative direction for a high-tail threshold.
  for (size_t i = 0; i < marker_q_.size(); ++i) {
    if (marker_q_[i] >= q - kQuantileSnap) return marker_h_[i];
  }
  return marker_h_.back();
}

double P2Sketch::lower_quantile(double q) const {
  check_q(q, "P2Sketch::lower_quantile");
  if (count_ == 0) throw EmptyCalibrationError("P2Sketch: no finite samples observed");
  if (!streaming_) return EmpiricalCdf(buffer_).lower_quantile(q);
  for (size_t i = marker_q_.size(); i-- > 0;) {
    if (marker_q_[i] <= q + kQuantileSnap) return marker_h_[i];
  }
  return marker_h_.front();
}

double P2Sketch::min() const {
  if (count_ == 0) throw EmptyCalibrationError("P2Sketch: no finite samples observed");
  if (!streaming_) return *std::min_element(buffer_.begin(), buffer_.end());
  return marker_h_.front();
}

double P2Sketch::max() const {
  if (count_ == 0) throw EmptyCalibrationError("P2Sketch: no finite samples observed");
  if (!streaming_) return *std::max_element(buffer_.begin(), buffer_.end());
  return marker_h_.back();
}

void P2Sketch::save(std::ostream& os) const {
  write_header(os, kSketchMagic, kSketchVersion);
  write_u32(os, static_cast<uint32_t>(tracked_.size()));
  for (double q : tracked_) write_f64(os, q);
  write_i64(os, warmup_);
  write_i64(os, count_);
  write_i64(os, nonfinite_dropped_);
  write_u32(os, streaming_ ? 1 : 0);
  if (!streaming_) {
    write_i64(os, static_cast<int64_t>(buffer_.size()));
    for (double v : buffer_) write_f64(os, v);  // insertion order: bit-exact resume
  } else {
    write_u32(os, static_cast<uint32_t>(marker_q_.size()));
    for (size_t i = 0; i < marker_q_.size(); ++i) {
      write_f64(os, marker_q_[i]);
      write_i64(os, marker_n_[i]);
      write_f64(os, marker_h_[i]);
    }
  }
}

P2Sketch P2Sketch::load(std::istream& is) {
  read_header(is, kSketchMagic, kSketchVersion);
  const uint32_t tracked_count = read_u32(is);
  if (tracked_count > 64) {
    throw SerializationError("P2Sketch::load: implausible tracked-quantile count " +
                             std::to_string(tracked_count));
  }
  std::vector<double> tracked(tracked_count);
  for (auto& q : tracked) q = read_f64(is);
  const int64_t warmup = read_i64(is);
  if (warmup <= 0 || warmup > (int64_t{1} << 32)) {
    throw SerializationError("P2Sketch::load: implausible warmup " + std::to_string(warmup));
  }
  // The constructor re-derives and validates marker_q_; a corrupted byte in
  // the tracked quantiles surfaces as a format error, not a usage error.
  P2Sketch sketch = [&] {
    try {
      return P2Sketch(std::move(tracked), warmup);
    } catch (const std::invalid_argument& err) {
      throw SerializationError(std::string("P2Sketch::load: ") + err.what());
    }
  }();
  sketch.count_ = read_i64(is);
  sketch.nonfinite_dropped_ = read_i64(is);
  const bool streaming = read_u32(is) != 0;
  if (!streaming) {
    const int64_t buffered = read_i64(is);
    if (buffered != sketch.count_ || buffered < 0 || buffered >= warmup) {
      throw SerializationError("P2Sketch::load: buffer size " + std::to_string(buffered) +
                               " inconsistent with count/warmup");
    }
    sketch.buffer_.resize(static_cast<size_t>(buffered));
    for (auto& v : sketch.buffer_) v = read_f64(is);
  } else {
    const uint32_t markers = read_u32(is);
    if (markers != sketch.marker_q_.size()) {
      throw SerializationError("P2Sketch::load: marker count " + std::to_string(markers) +
                               " does not match tracked quantiles");
    }
    sketch.marker_n_.resize(markers);
    sketch.marker_h_.resize(markers);
    for (uint32_t i = 0; i < markers; ++i) {
      const double q = read_f64(is);
      if (q != sketch.marker_q_[i]) {
        throw SerializationError("P2Sketch::load: marker quantile mismatch");
      }
      sketch.marker_n_[i] = read_i64(is);
      sketch.marker_h_[i] = read_f64(is);
    }
    sketch.streaming_ = true;
  }
  sketch.validate_or_throw();
  return sketch;
}

void P2Sketch::validate_or_throw() const {
  if (count_ < 0 || nonfinite_dropped_ < 0) {
    throw SerializationError("P2Sketch::load: negative counter");
  }
  if (streaming_) {
    if (count_ < warmup_) {
      throw SerializationError("P2Sketch::load: streaming sketch with count below warmup");
    }
    for (size_t i = 0; i < marker_h_.size(); ++i) {
      if (!std::isfinite(marker_h_[i])) {
        throw SerializationError("P2Sketch::load: non-finite marker height");
      }
      if (i > 0 && (marker_n_[i] <= marker_n_[i - 1] || marker_h_[i] < marker_h_[i - 1])) {
        throw SerializationError("P2Sketch::load: marker bank not monotone");
      }
    }
    if (!marker_n_.empty() &&
        (marker_n_.front() != 1 || marker_n_.back() != count_)) {
      throw SerializationError("P2Sketch::load: marker positions do not span the sample count");
    }
  } else {
    for (double v : buffer_) {
      if (!std::isfinite(v)) throw SerializationError("P2Sketch::load: non-finite buffered sample");
    }
  }
}

void P2Sketch::save_file(const std::string& path) const {
  save_file_checked(path, [this](std::ostream& os) { save(os); });
}

P2Sketch P2Sketch::load_file(const std::string& path) {
  std::istringstream is(load_file_checked(path));
  return load(is);
}

}  // namespace salnov::calib
