#include "calib/threshold_set.hpp"

#include <sstream>
#include <stdexcept>

#include "faults/crash_points.hpp"
#include "tensor/serialize.hpp"

namespace salnov::calib {
namespace {

constexpr char kThresholdSetMagic[] = "salnov-thresholds";
// v1: one block per float variant (3). v2: one block per variant (5, the q8
// rungs appended). v1 files still load — the q8 slots are filled from their
// float peers, matching the serving fallback for unquantized pipelines.
constexpr uint32_t kThresholdSetVersion = 2;

}  // namespace

void ThresholdSet::save(std::ostream& os) const {
  write_header(os, kThresholdSetMagic, kThresholdSetVersion);
  write_i64(os, epoch);
  for (int i = 0; i < core::kDetectorVariantCount; ++i) {
    thresholds[static_cast<size_t>(i)].save(os);
    write_i64(os, shadow_samples[static_cast<size_t>(i)]);
    write_u32(os, rebuilt[static_cast<size_t>(i)]);
  }
}

ThresholdSet ThresholdSet::load(std::istream& is) {
  const std::string magic = read_string(is);
  if (magic != kThresholdSetMagic) {
    throw SerializationError("ThresholdSet::load: expected magic '" +
                             std::string(kThresholdSetMagic) + "', got '" + magic + "'");
  }
  const uint32_t version = read_u32(is);
  if (version != 1 && version != kThresholdSetVersion) {
    throw SerializationError("ThresholdSet::load: version " + std::to_string(version) +
                             " unsupported (want 1 or " + std::to_string(kThresholdSetVersion) +
                             ")");
  }
  const int stored =
      version == 1 ? core::kDetectorFloatVariantCount : core::kDetectorVariantCount;
  ThresholdSet set;
  set.epoch = read_i64(is);
  if (set.epoch < 0) {
    throw SerializationError("ThresholdSet::load: negative epoch " + std::to_string(set.epoch));
  }
  for (int i = 0; i < stored; ++i) {
    set.thresholds[static_cast<size_t>(i)] = core::NoveltyThreshold::load(is);
    set.shadow_samples[static_cast<size_t>(i)] = read_i64(is);
    if (set.shadow_samples[static_cast<size_t>(i)] < 0) {
      throw SerializationError("ThresholdSet::load: negative shadow sample count");
    }
    const uint32_t flag = read_u32(is);
    if (flag > 1) {
      throw SerializationError("ThresholdSet::load: rebuilt flag out of range");
    }
    set.rebuilt[static_cast<size_t>(i)] = static_cast<uint8_t>(flag);
  }
  if (version == 1) {
    // Pre-quantization sets: serve each q8 rung with its float peer's
    // threshold (same metric, unquantized distribution — the conservative
    // stand-in until a refit or recalibration provides q8-specific ones).
    for (int i = stored; i < core::kDetectorVariantCount; ++i) {
      const auto peer = static_cast<size_t>(
          core::detector_variant_float_peer(static_cast<core::DetectorVariant>(i)));
      set.thresholds[static_cast<size_t>(i)] = set.thresholds[peer];
      set.shadow_samples[static_cast<size_t>(i)] = 0;
      set.rebuilt[static_cast<size_t>(i)] = 0;
    }
  }
  return set;
}

void ThresholdSet::save_file(const std::string& path) const {
  faults::hit_crash_point(faults::CrashPoint::kSwapBeforeTempWrite);
  save_file_checked(
      path, [this](std::ostream& os) { save(os); },
      [](SaveCheckpoint checkpoint) {
        if (checkpoint == SaveCheckpoint::kTempWritten) {
          faults::hit_crash_point(faults::CrashPoint::kSwapAfterTempWrite);
        }
      });
  faults::hit_crash_point(faults::CrashPoint::kSwapAfterRename);
}

ThresholdSet ThresholdSet::load_file(const std::string& path) {
  std::istringstream is(load_file_checked(path));
  return load(is);
}

void ThresholdHotSwap::install(std::shared_ptr<const ThresholdSet> next) {
  if (!next) throw std::invalid_argument("ThresholdHotSwap::install: null set");
  std::lock_guard<std::mutex> lock(writer_mu_);
  const ThresholdSet* raw = next.get();
  retired_.push_back(std::move(next));  // keeps the pointer alive for the slot's lifetime
  live_.store(raw, std::memory_order_release);
  installs_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace salnov::calib
