// Panel packing for the register-tiled GEMM micro-kernel.
//
// The SIMD kernel computes C in MR x NR register tiles (6 rows x 16
// columns). Both operands are repacked so the kernel's inner loop reads
// contiguous memory:
//   * A [m, k] row-major  -> row panels: for each group of 6 rows,
//     k-major storage ap[kk * 6 + r], rows past m zero-padded.
//   * B [k, n] row-major  -> column panels: for each group of 16 columns,
//     k-major storage bp[kk * 16 + j], columns past n zero-padded.
// Zero padding keeps tail tiles on the exact same code path as full tiles
// (padded lanes contribute exact zeros), which is what makes the packed and
// unpacked paths bit-identical and the layout kernel-arch independent.
//
// PackedMatrix is the long-lived form used for one-time weight pre-packing
// in Dense/Conv2d inference; the *_into variants write into caller scratch
// (workspace arena) for per-call packing of activations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace salnov {

inline constexpr int64_t kGemmMR = 6;   ///< micro-kernel rows (A panel height)
inline constexpr int64_t kGemmNR = 16;  ///< micro-kernel columns (B panel width)

inline int64_t gemm_row_panels(int64_t m) { return (m + kGemmMR - 1) / kGemmMR; }
inline int64_t gemm_col_panels(int64_t n) { return (n + kGemmNR - 1) / kGemmNR; }

/// Scratch floats needed by pack_a_panels_into / pack_b_panels_into.
inline int64_t packed_a_floats(int64_t m, int64_t k) { return gemm_row_panels(m) * kGemmMR * k; }
inline int64_t packed_b_floats(int64_t k, int64_t n) { return gemm_col_panels(n) * kGemmNR * k; }

/// A pre-packed operand (panel layout above) plus the logical shape it was
/// packed from, so call sites can validate before use.
struct PackedMatrix {
  enum class Kind { kNone, kAPanels, kBPanels };

  Kind kind = Kind::kNone;
  int64_t rows = 0;  ///< logical rows of the source matrix
  int64_t cols = 0;  ///< logical cols of the source matrix
  std::vector<float> data;

  bool empty() const { return kind == Kind::kNone; }
};

/// Packs one MR-row panel: `rows` (<= kGemmMR) rows of `a` (leading
/// dimension `lda`), k-major with zero-padded rows. `out` must hold
/// kGemmMR * k floats.
void pack_a_tile(const float* a, int64_t rows, int64_t k, int64_t lda, float* out);

/// Packs all row panels of A [m, k] into `out` (packed_a_floats(m, k)).
void pack_a_panels_into(const float* a, int64_t m, int64_t k, float* out);

/// Packs all column panels of B [k, n] into `out` (packed_b_floats(k, n)).
void pack_b_panels_into(const float* b, int64_t k, int64_t n, float* out);

/// Heap-owning variants for one-time weight pre-packing.
PackedMatrix pack_a_panels(const float* a, int64_t m, int64_t k);
PackedMatrix pack_b_panels(const float* b, int64_t k, int64_t n);

}  // namespace salnov
