// AVX-512 6x16 tile micro-kernel (see gemm_avx512.hpp for the contract).
//
// Bit-identity with the AVX2 tile kernel is load-bearing: golden traces and
// calibrated thresholds were produced under GemmKernel::kSimd, and this TU
// merely accelerates that kernel. Each c[r][j] is accumulated as one
// ascending-k FMA chain in a dedicated register lane, then + bias_row,
// + bias_col, max(0) in that order — exactly the AVX2 sequence, so every
// lane performs the identical IEEE operations and rounds identically.
#include "tensor/gemm_avx512.hpp"

#include "tensor/pack.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#define SALNOV_SIMD_AVX512 1
#endif

namespace salnov::detail {

#if defined(SALNOV_SIMD_AVX512)

bool gemm_avx512_available() {
  static const bool ok = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx512f") != 0;
  }();
  return ok;
}

void micro_kernel_avx512(const float* ap, const float* bp, int64_t k, float* c, int64_t ldc,
                         int64_t rows, int64_t cols, const float* bias_row,
                         const float* bias_col, bool relu) {
  static_assert(kGemmNR == 16, "one B panel row is exactly one zmm register");
  __m512 acc[kGemmMR];
  for (int r = 0; r < kGemmMR; ++r) acc[r] = _mm512_setzero_ps();
  // k unrolled by 4 to amortize loop and address arithmetic. Each acc[r]
  // chains through the four FMAs sequentially in ascending-k order, so the
  // unroll is bit-identical to the rolled loop (no split accumulators).
  int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const float* arow = ap + kk * kGemmMR;
    const float* brow = bp + kk * kGemmNR;
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + kGemmNR);
    const __m512 b2 = _mm512_loadu_ps(brow + 2 * kGemmNR);
    const __m512 b3 = _mm512_loadu_ps(brow + 3 * kGemmNR);
    for (int r = 0; r < kGemmMR; ++r) {
      __m512 v = acc[r];
      v = _mm512_fmadd_ps(_mm512_set1_ps(arow[r]), b0, v);
      v = _mm512_fmadd_ps(_mm512_set1_ps(arow[kGemmMR + r]), b1, v);
      v = _mm512_fmadd_ps(_mm512_set1_ps(arow[2 * kGemmMR + r]), b2, v);
      v = _mm512_fmadd_ps(_mm512_set1_ps(arow[3 * kGemmMR + r]), b3, v);
      acc[r] = v;
    }
  }
  for (; kk < k; ++kk) {
    const __m512 b = _mm512_loadu_ps(bp + kk * kGemmNR);
    const float* arow = ap + kk * kGemmMR;
    for (int r = 0; r < kGemmMR; ++r) {
      acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arow[r]), b, acc[r]);
    }
  }

  // Full tiles take plain loads/stores; tail tiles go through a lane mask —
  // masked-off lanes of the bias load read as zero and are never written
  // back, mirroring the AVX2 pad-and-copy tail path.
  const bool full = cols == kGemmNR;
  const __mmask16 lane_mask =
      full ? static_cast<__mmask16>(0xffff)
           : static_cast<__mmask16>((1u << static_cast<unsigned>(cols)) - 1u);
  __m512 bc = _mm512_setzero_ps();
  if (bias_col != nullptr) {
    bc = full ? _mm512_loadu_ps(bias_col) : _mm512_maskz_loadu_ps(lane_mask, bias_col);
  }
  const __m512 zero = _mm512_setzero_ps();
  for (int64_t r = 0; r < rows; ++r) {
    __m512 v = acc[r];
    if (bias_row != nullptr) v = _mm512_add_ps(v, _mm512_set1_ps(bias_row[r]));
    if (bias_col != nullptr) v = _mm512_add_ps(v, bc);
    if (relu) v = _mm512_max_ps(v, zero);
    if (full) {
      _mm512_storeu_ps(c + r * ldc, v);
    } else {
      _mm512_mask_storeu_ps(c + r * ldc, lane_mask, v);
    }
  }
}

#else  // toolchain without AVX-512: runtime-safe stubs

bool gemm_avx512_available() { return false; }
void micro_kernel_avx512(const float*, const float*, int64_t, float*, int64_t, int64_t, int64_t,
                         const float*, const float*, bool) {}

#endif

}  // namespace salnov::detail
