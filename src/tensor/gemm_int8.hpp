// Int8 quantized GEMM substrate for the q8 degraded-mode scoring rungs.
//
// Contract: C = A (u8, [m, k]) x B (s8, [k, n]) with EXACT int32
// accumulation. Integer addition is associative, so — unlike the float
// kernels — every kernel, thread count, batch size, and blocking scheme
// produces bit-identical output. The scalar kernel is the reference; the
// SIMD kernels must (and do) match it exactly, which quant_differential_test
// enforces over randomized shapes.
//
// Preconditions the quantizers uphold:
//   * A values are "7-bit unsigned" activations in [0, 127] and B values are
//     symmetric weights in [-127, 127]. Each AVX2 maddubs lane then sums two
//     products bounded by 2 * 127 * 127 = 32258 < 2^15, so the pairwise
//     int16 path cannot saturate and stays exact.
//   * k <= kMaxQuantK, so a full-k dot product cannot overflow int32
//     (checked; throws std::invalid_argument).
//
// The fused dequant entry applies C_f = float(C_i32) * scale + bias_col[j]
// (then optional ReLU) at the store — one float multiply-add per output
// element, applied identically by every kernel.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace salnov {

enum class GemmInt8Kernel {
  kScalar,  ///< portable reference (exact int32)
  kSimd,    ///< AVX2 maddubs / AVX-512 VNNI dpbusd band kernels (exact int32)
};

/// Largest k for which a u8[0,127] x s8[-127,127] dot product fits int32.
inline constexpr int64_t kMaxQuantK =
    static_cast<int64_t>(std::numeric_limits<int32_t>::max()) / (127 * 127);

/// Active kernel. Initialized from SALNOV_GEMM_INT8 (scalar | simd | auto);
/// auto picks SIMD when the CPU supports it.
GemmInt8Kernel active_gemm_int8_kernel();

/// Throws std::invalid_argument when asked for kSimd on a CPU without it.
void set_gemm_int8_kernel(GemmInt8Kernel kernel);

bool gemm_int8_simd_available();

/// "scalar", "avx2", "avx512-vnni", or "none".
const char* gemm_int8_kernel_name(GemmInt8Kernel kernel);

/// Fused dequantization applied when storing int32 accumulators as floats.
struct QuantEpilogue {
  float scale = 1.0f;               ///< sx * sw dequant multiplier
  const float* bias_col = nullptr;  ///< [n] fp32 bias, added after scaling
  bool relu = false;
};

/// B pre-packed into the k4-interleaved layout the SIMD bands consume
/// (layout documented in gemm_int8_simd.cpp). Static weight matrices are
/// packed once (QuantizedForward caches this) so the batch-1 matvec path
/// does no per-call B packing. Results are bit-identical with or without.
struct PackedQuantMatrix {
  int64_t rows = 0;  ///< k of the [k, n] operand
  int64_t cols = 0;  ///< n
  std::vector<int8_t> data;
};

/// Packs B (s8, [k, n]) for reuse across gemm calls.
PackedQuantMatrix pack_quant_b(const int8_t* b, int64_t k, int64_t n);

/// C (i32, [m, n]) = A (u8, [m, k]) x B (s8, [k, n]). Exact. `packed_b`,
/// when non-null, must be pack_quant_b of the same B (the raw pointer is
/// still required — the scalar kernel reads it).
void gemm_u8s8(const uint8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t n, int64_t k,
               const PackedQuantMatrix* packed_b = nullptr);

/// C (f32, [m, n]) = dequant(A x B): fmaf(float(acc), scale, bias) (+ ReLU).
/// The integer accumulation is exact and the dequant store performs the same
/// (correctly rounded) float operations per element in every kernel, so the
/// float output is bit-identical across kernels and thread counts too.
void gemm_u8s8_dequant(const uint8_t* a, const int8_t* b, float* c, int64_t m, int64_t n,
                       int64_t k, const QuantEpilogue& epilogue,
                       const PackedQuantMatrix* packed_b = nullptr);

}  // namespace salnov
