#include "tensor/gemm_int8.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "parallel/parallel_for.hpp"
#include "tensor/gemm_int8_simd.hpp"
#include "tensor/workspace.hpp"

namespace salnov {
namespace {

// Same fixed row grain / parallel threshold scheme as the float dispatcher.
// Fixed grain keeps the partition a pure function of the shape; with exact
// integer accumulation any partition is bit-identical anyway, but sharing
// the float kernels' policy keeps the threading behavior predictable.
constexpr int64_t kRowGrain = 16;
constexpr int64_t kMinParallelOps = 1 << 15;

/// C rows [row_begin, row_end) = A x B, exact int32. Walks B row-wise so the
/// inner loop vectorizes over n; skipping zero activations (ReLU outputs)
/// cannot change the sum.
void scalar_rows(const uint8_t* a, const int8_t* b, int32_t* c, int64_t row_begin,
                 int64_t row_end, int64_t n, int64_t k) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    int32_t* c_row = c + i * n;
    std::memset(c_row, 0, static_cast<size_t>(n) * sizeof(int32_t));
    const uint8_t* a_row = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const int32_t a_ik = a_row[kk];
      if (a_ik == 0) continue;
      const int8_t* b_row = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_ik * static_cast<int32_t>(b_row[j]);
      }
    }
  }
}

/// float(acc) * scale [fmaf + bias] (+ ReLU) — the one dequant expression
/// every kernel applies per element. fmaf matches the SIMD stores' fmadd
/// bit-for-bit (correctly rounded), independent of compiler contraction.
void dequant_rows(const int32_t* c32, float* cf, int64_t row_begin, int64_t row_end,
                  int64_t n, const QuantEpilogue& epi) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const int32_t* src = c32 + i * n;
    float* dst = cf + i * n;
    for (int64_t j = 0; j < n; ++j) {
      float v = epi.bias_col != nullptr
                    ? std::fmaf(static_cast<float>(src[j]), epi.scale, epi.bias_col[j])
                    : static_cast<float>(src[j]) * epi.scale;
      if (epi.relu) v = v > 0.0f ? v : 0.0f;
      dst[j] = v;
    }
  }
}

void check_dims(int64_t m, int64_t n, int64_t k, const PackedQuantMatrix* packed_b) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("gemm_u8s8: negative dimension");
  }
  if (k > kMaxQuantK) {
    throw std::invalid_argument("gemm_u8s8: k too large for exact int32 accumulation");
  }
  if (packed_b != nullptr && (packed_b->rows != k || packed_b->cols != n)) {
    throw std::logic_error("gemm_u8s8: packed B does not match the [k, n] operand");
  }
}

GemmInt8Kernel resolve_kernel_from_env() {
  const char* env = std::getenv("SALNOV_GEMM_INT8");
  std::string value = env != nullptr ? env : "auto";
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  if (value == "scalar") return GemmInt8Kernel::kScalar;
  if (value != "simd" && value != "auto" && !value.empty()) {
    std::fprintf(stderr, "salnov: unknown SALNOV_GEMM_INT8 '%s'; using auto\n", value.c_str());
  }
  return detail::int8_simd_available() ? GemmInt8Kernel::kSimd : GemmInt8Kernel::kScalar;
}

std::atomic<GemmInt8Kernel>& kernel_state() {
  static std::atomic<GemmInt8Kernel> state{resolve_kernel_from_env()};
  return state;
}

/// Runs the scalar kernel into c32 (caller-provided full [m, n] buffer) and
/// optionally dequantizes into cf, fanned out over fixed row bands.
void scalar_gemm(const uint8_t* a, const int8_t* b, int32_t* c32, float* cf, int64_t m,
                 int64_t n, int64_t k, const QuantEpilogue* epi) {
  const auto band = [&](int64_t row_begin, int64_t row_end) {
    scalar_rows(a, b, c32, row_begin, row_end, n, k);
    if (cf != nullptr) dequant_rows(c32, cf, row_begin, row_end, n, *epi);
  };
  if (m > kRowGrain && m * n * k >= kMinParallelOps) {
    parallel::parallel_for(0, m, kRowGrain, band);
  } else {
    band(0, m);
  }
}

}  // namespace

GemmInt8Kernel active_gemm_int8_kernel() { return kernel_state().load(std::memory_order_relaxed); }

void set_gemm_int8_kernel(GemmInt8Kernel kernel) {
  if (kernel == GemmInt8Kernel::kSimd && !detail::int8_simd_available()) {
    throw std::invalid_argument("set_gemm_int8_kernel: SIMD kernel unavailable on this CPU");
  }
  kernel_state().store(kernel, std::memory_order_relaxed);
}

bool gemm_int8_simd_available() { return detail::int8_simd_available(); }

const char* gemm_int8_kernel_name(GemmInt8Kernel kernel) {
  return kernel == GemmInt8Kernel::kScalar ? "scalar" : detail::int8_arch_name();
}

PackedQuantMatrix pack_quant_b(const int8_t* b, int64_t k, int64_t n) {
  if (k < 0 || n < 0) throw std::invalid_argument("pack_quant_b: negative dimension");
  PackedQuantMatrix packed;
  packed.rows = k;
  packed.cols = n;
  packed.data.resize(static_cast<size_t>(((k + 3) / 4) * n * 4));
  if (k > 0 && n > 0) detail::pack_quant_b_into(b, k, n, packed.data.data());
  return packed;
}

void gemm_u8s8(const uint8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t n, int64_t k,
               const PackedQuantMatrix* packed_b) {
  check_dims(m, n, k, packed_b);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(int32_t));
    return;
  }
  if (active_gemm_int8_kernel() == GemmInt8Kernel::kSimd) {
    detail::int8_gemm(a, b, c, nullptr, m, n, k, nullptr, packed_b);
    return;
  }
  scalar_gemm(a, b, c, nullptr, m, n, k, nullptr);
}

void gemm_u8s8_dequant(const uint8_t* a, const int8_t* b, float* c, int64_t m, int64_t n,
                       int64_t k, const QuantEpilogue& epilogue,
                       const PackedQuantMatrix* packed_b) {
  check_dims(m, n, k, packed_b);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Zero accumulators: the epilogue alone defines the output.
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float v = epilogue.bias_col != nullptr ? epilogue.bias_col[j] : 0.0f;
        if (epilogue.relu) v = v > 0.0f ? v : 0.0f;
        c[i * n + j] = v;
      }
    }
    return;
  }
  if (active_gemm_int8_kernel() == GemmInt8Kernel::kSimd) {
    detail::int8_gemm(a, b, nullptr, c, m, n, k, &epilogue, packed_b);
    return;
  }
  WorkspaceScope scope;
  // i32 scratch carved from the float arena (same element size).
  int32_t* c32 = reinterpret_cast<int32_t*>(scope.floats(m * n));
  scalar_gemm(a, b, c32, c, m, n, k, &epilogue);
}

}  // namespace salnov
