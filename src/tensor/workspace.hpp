// Per-thread scratch arenas for inference and training hot loops.
//
// Conv2d's im2col buffers, the GEMM panel-packing scratch, and the saliency
// deconvolution ping-pong buffers all used to be fresh heap allocations on
// every call. The Workspace gives each thread a bump-pointer arena built
// from a small list of long-lived chunks: the first frame through a pipeline
// grows the arena to its high-water mark ("warm-up"), and every later frame
// reuses that memory with zero heap traffic. A process-wide counter of chunk
// allocations makes the steady-state zero-allocation guarantee testable:
// after warm-up, NoveltyDetector::score must not move the counter.
//
// Usage: open a WorkspaceScope, take buffers from it, let the scope restore
// the arena on destruction. Scopes nest (inner scopes allocate past outer
// allocations). Pointers stay valid for the lifetime of the scope that
// produced them — growth appends new chunks and never moves old ones.
// Buffers are 64-byte aligned and uninitialized.
//
// Thread model: Workspace::tls() returns an arena owned by the calling
// thread (pool workers each have their own), so no locking is needed and
// the deterministic-parallelism contract is unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace salnov {

class Workspace {
 public:
  /// A rewind point: the arena position when mark() was called.
  struct Marker {
    size_t chunk = 0;
    int64_t offset = 0;
  };

  Workspace() = default;
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns an uninitialized 64-byte-aligned buffer of `count` floats,
  /// valid until the arena is rewound past it. `count` must be >= 0.
  float* alloc_floats(int64_t count);

  Marker mark() const { return {cur_chunk_, cur_offset_}; }
  void release(const Marker& marker) {
    cur_chunk_ = marker.chunk;
    cur_offset_ = marker.offset;
  }

  /// Bytes currently reserved by this arena's chunks (its high-water mark).
  int64_t reserved_bytes() const;

  /// The calling thread's arena. Lives until the thread exits.
  static Workspace& tls();

  /// Process-wide number of heap chunk allocations ever made by workspaces.
  /// A stable value across frames is the zero-allocation steady state.
  static int64_t heap_allocation_count();

 private:
  struct Chunk {
    float* data = nullptr;
    int64_t capacity = 0;  ///< in floats
  };

  std::vector<Chunk> chunks_;
  size_t cur_chunk_ = 0;
  int64_t cur_offset_ = 0;
};

/// RAII arena scope: buffers taken from the scope are released (for reuse,
/// not to the heap) when the scope ends.
class WorkspaceScope {
 public:
  WorkspaceScope() : workspace_(Workspace::tls()), marker_(workspace_.mark()) {}
  ~WorkspaceScope() { workspace_.release(marker_); }
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

  float* floats(int64_t count) { return workspace_.alloc_floats(count); }

 private:
  Workspace& workspace_;
  Workspace::Marker marker_;
};

}  // namespace salnov
