// Internal interface of the int8 SIMD GEMM kernels (AVX2 maddubs, with an
// AVX-512 VNNI dpbusd band swapped in at dispatch when the CPU has it).
// Only gemm_int8.cpp calls in, after checking int8_simd_available().
#pragma once

#include <cstdint>

#include "tensor/gemm_int8.hpp"

namespace salnov::detail {

bool int8_simd_available();

/// "avx2", "avx512-vnni", or "none" — the band kernel dispatch would pick
/// right now.
const char* int8_arch_name();

/// A/B timing toggle for the VNNI band (SALNOV_GEMM_INT8_VNNI=0 reverts to
/// the AVX2 maddubs band; results are bit-identical either way).
bool int8_vnni_enabled();
void set_int8_vnni(bool enabled);

/// C = A x B with exact int32 accumulation. Exactly one of c32 / cf is
/// non-null: c32 receives raw accumulators, cf receives the dequantized
/// floats per `epi` (required non-null with cf). `packed_b`, when non-null,
/// skips the per-call B packing. Dimensions are pre-checked by the
/// dispatcher (m, n, k >= 1; k <= kMaxQuantK).
void int8_gemm(const uint8_t* a, const int8_t* b, int32_t* c32, float* cf, int64_t m,
               int64_t n, int64_t k, const QuantEpilogue* epi,
               const PackedQuantMatrix* packed_b);

/// pack_quant_b backend (shared k4-interleaved layout; safe on any CPU).
void pack_quant_b_into(const int8_t* b, int64_t k, int64_t n, int8_t* packed);

}  // namespace salnov::detail
