#include "tensor/serialize.hpp"

#include <bit>
#include <istream>
#include <limits>
#include <ostream>

namespace salnov {
namespace {

template <typename T>
void write_raw(std::ostream& os, T value) {
  // The library targets little-endian hosts (x86-64/aarch64); a static check
  // here would require C++20 <bit>, which we use.
  static_assert(std::endian::native == std::endian::little, "serialization assumes little-endian host");
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
  if (!os) throw SerializationError("serialize: write failed");
}

template <typename T>
T read_raw(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw SerializationError("serialize: unexpected end of stream");
  return value;
}

constexpr int64_t kMaxReasonableElements = int64_t{1} << 32;

}  // namespace

void write_u32(std::ostream& os, uint32_t value) { write_raw(os, value); }
void write_i64(std::ostream& os, int64_t value) { write_raw(os, value); }
void write_f32(std::ostream& os, float value) { write_raw(os, value); }
void write_f64(std::ostream& os, double value) { write_raw(os, value); }

void write_string(std::ostream& os, const std::string& value) {
  if (value.size() > std::numeric_limits<uint32_t>::max()) {
    throw SerializationError("write_string: string too long");
  }
  write_u32(os, static_cast<uint32_t>(value.size()));
  os.write(value.data(), static_cast<std::streamsize>(value.size()));
  if (!os) throw SerializationError("serialize: write failed");
}

void write_tensor(std::ostream& os, const Tensor& tensor) {
  write_u32(os, static_cast<uint32_t>(tensor.rank()));
  for (int64_t d = 0; d < tensor.rank(); ++d) write_i64(os, tensor.dim(d));
  os.write(reinterpret_cast<const char*>(tensor.data()),
           static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  if (!os) throw SerializationError("write_tensor: write failed");
}

uint32_t read_u32(std::istream& is) { return read_raw<uint32_t>(is); }
int64_t read_i64(std::istream& is) { return read_raw<int64_t>(is); }
float read_f32(std::istream& is) { return read_raw<float>(is); }
double read_f64(std::istream& is) { return read_raw<double>(is); }

std::string read_string(std::istream& is) {
  const uint32_t size = read_u32(is);
  std::string value(size, '\0');
  is.read(value.data(), static_cast<std::streamsize>(size));
  if (!is) throw SerializationError("read_string: unexpected end of stream");
  return value;
}

Tensor read_tensor(std::istream& is) {
  const uint32_t rank = read_u32(is);
  if (rank > 8) throw SerializationError("read_tensor: implausible rank " + std::to_string(rank));
  Shape shape(rank);
  for (auto& d : shape) {
    d = read_i64(is);
    if (d < 0) throw SerializationError("read_tensor: negative dimension");
  }
  const int64_t n = shape_numel(shape);
  if (n > kMaxReasonableElements) {
    throw SerializationError("read_tensor: implausible element count " + std::to_string(n));
  }
  Tensor tensor(std::move(shape));
  is.read(reinterpret_cast<char*>(tensor.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw SerializationError("read_tensor: unexpected end of stream");
  return tensor;
}

void write_header(std::ostream& os, const std::string& magic, uint32_t version) {
  write_string(os, magic);
  write_u32(os, version);
}

void read_header(std::istream& is, const std::string& magic, uint32_t version) {
  const std::string got_magic = read_string(is);
  if (got_magic != magic) {
    throw SerializationError("read_header: expected magic '" + magic + "', got '" + got_magic + "'");
  }
  const uint32_t got_version = read_u32(is);
  if (got_version != version) {
    throw SerializationError("read_header: '" + magic + "' version " + std::to_string(got_version) +
                             " unsupported (want " + std::to_string(version) + ")");
  }
}

}  // namespace salnov
