#include "tensor/serialize.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace salnov {
namespace {

template <typename T>
void write_raw(std::ostream& os, T value) {
  // The library targets little-endian hosts (x86-64/aarch64); a static check
  // here would require C++20 <bit>, which we use.
  static_assert(std::endian::native == std::endian::little, "serialization assumes little-endian host");
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
  if (!os) throw SerializationError("serialize: write failed");
}

template <typename T>
T read_raw(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw SerializationError("serialize: unexpected end of stream");
  return value;
}

constexpr int64_t kMaxReasonableElements = int64_t{1} << 32;

/// Strings in our formats are magic tags, layer types, and parameter names;
/// anything longer means the length field is garbage.
constexpr uint32_t kMaxReasonableString = 1u << 20;

/// File trailer: u64 payload size + u32 crc + 4-byte magic.
constexpr size_t kTrailerSize = 16;
constexpr char kTrailerMagic[4] = {'S', 'N', 'V', 'C'};

}  // namespace

void write_u32(std::ostream& os, uint32_t value) { write_raw(os, value); }
void write_i64(std::ostream& os, int64_t value) { write_raw(os, value); }
void write_f32(std::ostream& os, float value) { write_raw(os, value); }
void write_f64(std::ostream& os, double value) { write_raw(os, value); }

void write_string(std::ostream& os, const std::string& value) {
  if (value.size() > std::numeric_limits<uint32_t>::max()) {
    throw SerializationError("write_string: string too long");
  }
  write_u32(os, static_cast<uint32_t>(value.size()));
  os.write(value.data(), static_cast<std::streamsize>(value.size()));
  if (!os) throw SerializationError("serialize: write failed");
}

void write_tensor(std::ostream& os, const Tensor& tensor) {
  write_u32(os, static_cast<uint32_t>(tensor.rank()));
  for (int64_t d = 0; d < tensor.rank(); ++d) write_i64(os, tensor.dim(d));
  os.write(reinterpret_cast<const char*>(tensor.data()),
           static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  if (!os) throw SerializationError("write_tensor: write failed");
}

uint32_t read_u32(std::istream& is) { return read_raw<uint32_t>(is); }
int64_t read_i64(std::istream& is) { return read_raw<int64_t>(is); }
float read_f32(std::istream& is) { return read_raw<float>(is); }
double read_f64(std::istream& is) { return read_raw<double>(is); }

std::string read_string(std::istream& is) {
  const uint32_t size = read_u32(is);
  if (size > kMaxReasonableString) {
    throw SerializationError("read_string: implausible string length " + std::to_string(size));
  }
  std::string value(size, '\0');
  is.read(value.data(), static_cast<std::streamsize>(size));
  if (!is) throw SerializationError("read_string: unexpected end of stream");
  return value;
}

Tensor read_tensor(std::istream& is) {
  const uint32_t rank = read_u32(is);
  if (rank > 8) throw SerializationError("read_tensor: implausible rank " + std::to_string(rank));
  Shape shape(rank);
  // The element count is accumulated with an overflow guard *before* the
  // shape reaches any allocator: an adversarial header like [2^62, 2^62, 0]
  // must not wrap the int64 product around the plausibility check below.
  int64_t n = 1;
  for (auto& d : shape) {
    d = read_i64(is);
    if (d < 0) throw SerializationError("read_tensor: negative dimension");
    if (d > 0 && n > kMaxReasonableElements / d) {
      throw SerializationError("read_tensor: element count overflows plausibility bound");
    }
    n *= d;
  }
  if (n > kMaxReasonableElements) {
    throw SerializationError("read_tensor: implausible element count " + std::to_string(n));
  }
  Tensor tensor(std::move(shape));
  is.read(reinterpret_cast<char*>(tensor.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw SerializationError("read_tensor: unexpected end of stream");
  return tensor;
}

void write_header(std::ostream& os, const std::string& magic, uint32_t version) {
  write_string(os, magic);
  write_u32(os, version);
}

void read_header(std::istream& is, const std::string& magic, uint32_t version) {
  const std::string got_magic = read_string(is);
  if (got_magic != magic) {
    throw SerializationError("read_header: expected magic '" + magic + "', got '" + got_magic + "'");
  }
  const uint32_t got_version = read_u32(is);
  if (got_version != version) {
    throw SerializationError("read_header: '" + magic + "' version " + std::to_string(got_version) +
                             " unsupported (want " + std::to_string(version) + ")");
  }
}

uint32_t crc32(const void* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

void save_file_checked(const std::string& path,
                       const std::function<void(std::ostream&)>& write_payload) {
  save_file_checked(path, write_payload, nullptr);
}

void save_file_checked(const std::string& path,
                       const std::function<void(std::ostream&)>& write_payload,
                       const std::function<void(SaveCheckpoint)>& checkpoint) {
  std::ostringstream buffer(std::ios::binary);
  write_payload(buffer);
  const std::string payload = buffer.str();
  const uint64_t size = payload.size();
  const uint32_t crc = crc32(payload.data(), payload.size());

  // The temp file lives next to the target so the final rename stays within
  // one filesystem (rename is only atomic then); the pid suffix keeps
  // concurrent writers (e.g. two bench binaries) from clobbering each other.
  const std::string tmp = path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("save_file_checked: cannot open " + tmp);
      os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
      os.write(reinterpret_cast<const char*>(&size), sizeof(size));
      os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
      os.write(kTrailerMagic, sizeof(kTrailerMagic));
      os.flush();
      if (!os) throw std::runtime_error("save_file_checked: write failed for " + tmp);
    }
    // A throw here (crash injection) leaves the temp removed and the target
    // untouched: the complete previous file survives.
    if (checkpoint) checkpoint(SaveCheckpoint::kTempWritten);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw std::runtime_error("save_file_checked: cannot rename " + tmp + " to " + path + ": " +
                               ec.message());
    }
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
}

std::string load_file_checked(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_file_checked: cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (!is.good() && !is.eof()) {
    throw std::runtime_error("load_file_checked: read failed for " + path);
  }

  if (data.size() < kTrailerSize ||
      std::memcmp(data.data() + data.size() - sizeof(kTrailerMagic), kTrailerMagic,
                  sizeof(kTrailerMagic)) != 0) {
    throw TruncatedFileError(path +
                             ": missing integrity trailer — the file is truncated, predates the "
                             "checksummed format, or is not a salnov file; re-create it with the "
                             "step that produced it");
  }
  uint64_t recorded_size = 0;
  uint32_t recorded_crc = 0;
  const char* trailer = data.data() + data.size() - kTrailerSize;
  std::memcpy(&recorded_size, trailer, sizeof(recorded_size));
  std::memcpy(&recorded_crc, trailer + sizeof(recorded_size), sizeof(recorded_crc));
  const uint64_t payload_size = data.size() - kTrailerSize;
  if (recorded_size != payload_size) {
    throw TruncatedFileError(path + ": trailer records " + std::to_string(recorded_size) +
                             " payload bytes but the file holds " + std::to_string(payload_size) +
                             " — the file was cut short or spliced; re-create it");
  }
  const uint32_t computed_crc = crc32(data.data(), payload_size);
  if (computed_crc != recorded_crc) {
    char detail[64];
    std::snprintf(detail, sizeof detail, " (stored %08x, computed %08x)", recorded_crc,
                  computed_crc);
    throw CorruptFileError(path + ": CRC32 mismatch" + detail +
                           " — the bytes on disk are corrupt; re-create the file");
  }
  data.resize(payload_size);
  return data;
}

}  // namespace salnov
