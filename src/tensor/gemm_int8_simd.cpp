// Int8 GEMM SIMD band kernels (AVX2 maddubs / NEON widening-multiply), plus
// the packing + fan-out orchestration shared with the AVX-512 VNNI band.
//
// Packed operand layout (shared by every band kernel, zero-padded so tail
// k-groups contribute exact zeros):
//   * A: [m][groups * 4] u8 row-major, groups = ceil(k / 4); each row is the
//     original activation row followed by zero padding. The kernels read one
//     k-group as a single u32.
//   * B: byte (g * n + j) * 4 + t holds B[4g + t][j] — four consecutive k
//     values interleaved per column, so 4 * C contiguous bytes cover one
//     k-group of C consecutive columns, exactly what maddubs / dpbusd / the
//     NEON pairwise chain consume.
//
// Every kernel accumulates the same exact int32 sums (in some order —
// integer addition is associative), and the dequant store performs the same
// float(acc) * scale [fmaf + bias] (+ ReLU) per element, so all kernels are
// bit-identical to the scalar reference at any thread count or batch size.
#include "tensor/gemm_int8_simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "parallel/parallel_for.hpp"
#include "tensor/gemm_int8_vnni.hpp"
#include "tensor/workspace.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define SALNOV_INT8_AVX2 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#define SALNOV_INT8_NEON 1
#endif

namespace salnov::detail {

#if defined(SALNOV_INT8_AVX2) || defined(SALNOV_INT8_NEON)

namespace {

// Row band handed to the thread pool; a multiple of the 4-row micro step.
constexpr int64_t kInt8RowGrain = 16;
static_assert(kInt8RowGrain % 4 == 0);

constexpr int64_t kMinParallelOps = 1 << 15;

inline uint32_t load_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Exact dot product over the packed layout for one (row, column) — the
/// column-tail path of every band kernel.
inline int32_t packed_dot(const uint8_t* pa_row, const int8_t* pb, int64_t n, int64_t groups,
                          int64_t j) {
  int32_t acc = 0;
  for (int64_t g = 0; g < groups; ++g) {
    const uint8_t* aq = pa_row + g * 4;
    const int8_t* bq = pb + (g * n + j) * 4;
    acc += static_cast<int32_t>(aq[0]) * bq[0] + static_cast<int32_t>(aq[1]) * bq[1] +
           static_cast<int32_t>(aq[2]) * bq[2] + static_cast<int32_t>(aq[3]) * bq[3];
  }
  return acc;
}

/// The one scalar dequant expression (fmaf keeps the bias add fused exactly
/// like the SIMD stores' fmadd).
inline float dequant_one(int32_t acc, const QuantEpilogue& epi, int64_t j) {
  float v = epi.bias_col != nullptr
                ? std::fmaf(static_cast<float>(acc), epi.scale, epi.bias_col[j])
                : static_cast<float>(acc) * epi.scale;
  if (epi.relu) v = v > 0.0f ? v : 0.0f;
  return v;
}

inline void store_scalar(int32_t* c32, float* cf, int64_t idx, int32_t acc,
                         const QuantEpilogue* epi, int64_t j) {
  if (cf != nullptr) {
    cf[idx] = dequant_one(acc, *epi, j);
  } else {
    c32[idx] = acc;
  }
}

#if defined(SALNOV_INT8_AVX2)

/// Stores 8 int32 accumulators at c[idx..idx+8) (columns j..j+8), raw or
/// dequantized.
inline void store_vec8(int32_t* c32, float* cf, int64_t idx, __m256i acc,
                       const QuantEpilogue* epi, int64_t j) {
  if (cf == nullptr) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c32 + idx), acc);
    return;
  }
  const __m256 scale = _mm256_set1_ps(epi->scale);
  const __m256 vf = _mm256_cvtepi32_ps(acc);
  __m256 v = epi->bias_col != nullptr
                 ? _mm256_fmadd_ps(vf, scale, _mm256_loadu_ps(epi->bias_col + j))
                 : _mm256_mul_ps(vf, scale);
  if (epi->relu) v = _mm256_max_ps(v, _mm256_setzero_ps());
  _mm256_storeu_ps(cf + idx, v);
}

/// One 4k x 8-column step: acc += dot of the broadcast k-group against the
/// interleaved B bytes. maddubs pairs stay below 2^15 (7-bit activations),
/// so the int16 intermediate cannot saturate.
inline __m256i fma_u8s8(__m256i acc, __m256i av, __m256i bv, __m256i ones) {
  return _mm256_add_epi32(acc, _mm256_madd_epi16(_mm256_maddubs_epi16(av, bv), ones));
}

void int8_band_avx2(const uint8_t* pa, const int8_t* pb, int32_t* c32, float* cf,
                    int64_t row_begin, int64_t row_end, int64_t n, int64_t groups,
                    const QuantEpilogue* epi) {
  const __m256i ones = _mm256_set1_epi16(1);
  const int64_t stride = groups * 4;
  const int64_t n16 = n - (n % 16);
  const int64_t n32 = n - (n % 32);
  int64_t i = row_begin;
  // 4 rows x 16 columns: 8 register accumulators, B bytes loaded once per
  // row quad.
  for (; i + 4 <= row_end; i += 4) {
    const uint8_t* a_rows[4] = {pa + i * stride, pa + (i + 1) * stride, pa + (i + 2) * stride,
                                pa + (i + 3) * stride};
    for (int64_t j0 = 0; j0 < n16; j0 += 16) {
      __m256i acc[4][2];
      for (int r = 0; r < 4; ++r) acc[r][0] = acc[r][1] = _mm256_setzero_si256();
      for (int64_t g = 0; g < groups; ++g) {
        const int8_t* bg = pb + (g * n + j0) * 4;
        const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg));
        const __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg + 32));
        for (int r = 0; r < 4; ++r) {
          const __m256i av = _mm256_set1_epi32(static_cast<int>(load_u32(a_rows[r] + g * 4)));
          acc[r][0] = fma_u8s8(acc[r][0], av, b0, ones);
          acc[r][1] = fma_u8s8(acc[r][1], av, b1, ones);
        }
      }
      for (int r = 0; r < 4; ++r) {
        store_vec8(c32, cf, (i + r) * n + j0, acc[r][0], epi, j0);
        store_vec8(c32, cf, (i + r) * n + j0 + 8, acc[r][1], epi, j0 + 8);
      }
    }
    for (int64_t j = n16; j < n; ++j) {
      for (int r = 0; r < 4; ++r) {
        store_scalar(c32, cf, (i + r) * n + j, packed_dot(a_rows[r], pb, n, groups, j), epi, j);
      }
    }
  }
  // Remainder rows: 1 x 32 columns (4 accumulators) — also the batch-1
  // dense matvec path, where B streams through once.
  for (; i < row_end; ++i) {
    const uint8_t* a_row = pa + i * stride;
    for (int64_t j0 = 0; j0 < n32; j0 += 32) {
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (int64_t g = 0; g < groups; ++g) {
        const int8_t* bg = pb + (g * n + j0) * 4;
        const __m256i av = _mm256_set1_epi32(static_cast<int>(load_u32(a_row + g * 4)));
        acc0 = fma_u8s8(acc0, av, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg)), ones);
        acc1 = fma_u8s8(acc1, av,
                        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg + 32)), ones);
        acc2 = fma_u8s8(acc2, av,
                        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg + 64)), ones);
        acc3 = fma_u8s8(acc3, av,
                        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg + 96)), ones);
      }
      store_vec8(c32, cf, i * n + j0, acc0, epi, j0);
      store_vec8(c32, cf, i * n + j0 + 8, acc1, epi, j0 + 8);
      store_vec8(c32, cf, i * n + j0 + 16, acc2, epi, j0 + 16);
      store_vec8(c32, cf, i * n + j0 + 24, acc3, epi, j0 + 24);
    }
    for (int64_t j = n32; j < n; ++j) {
      store_scalar(c32, cf, i * n + j, packed_dot(a_row, pb, n, groups, j), epi, j);
    }
  }
}

#elif defined(SALNOV_INT8_NEON)

/// NEON band: 4 columns per step via widening multiplies. Activations are
/// 7-bit, so reinterpreting them as s8 is value-preserving and vmull_s8
/// products (<= 127 * 127) fit int16 exactly; two pairwise widening adds
/// collapse each column's k-group to its exact int32 partial sum.
void int8_band_neon(const uint8_t* pa, const int8_t* pb, int32_t* c32, float* cf,
                    int64_t row_begin, int64_t row_end, int64_t n, int64_t groups,
                    const QuantEpilogue* epi) {
  const int64_t stride = groups * 4;
  const int64_t n4 = n - (n % 4);
  for (int64_t i = row_begin; i < row_end; ++i) {
    const uint8_t* a_row = pa + i * stride;
    for (int64_t j0 = 0; j0 < n4; j0 += 4) {
      int32x4_t acc = vdupq_n_s32(0);
      for (int64_t g = 0; g < groups; ++g) {
        const int8x16_t av =
            vreinterpretq_s8_u32(vdupq_n_u32(load_u32(a_row + g * 4)));
        int8x16_t bv;
        std::memcpy(&bv, pb + (g * n + j0) * 4, sizeof(bv));
        const int16x8_t lo = vmull_s8(vget_low_s8(av), vget_low_s8(bv));
        const int16x8_t hi = vmull_s8(vget_high_s8(av), vget_high_s8(bv));
        // [j0: k0+k1, j0: k2+k3, j1: k0+k1, j1: k2+k3] then pairwise again.
        acc = vaddq_s32(acc, vpaddq_s32(vpaddlq_s16(lo), vpaddlq_s16(hi)));
      }
      if (cf == nullptr) {
        vst1q_s32(c32 + i * n + j0, acc);
      } else {
        const float32x4_t vf = vcvtq_f32_s32(acc);
        const float32x4_t scale = vdupq_n_f32(epi->scale);
        float32x4_t v;
        if (epi->bias_col != nullptr) {
          v = vfmaq_f32(vld1q_f32(epi->bias_col + j0), vf, scale);
        } else {
          v = vmulq_f32(vf, scale);
        }
        if (epi->relu) v = vmaxq_f32(v, vdupq_n_f32(0.0f));
        vst1q_f32(cf + i * n + j0, v);
      }
    }
    for (int64_t j = n4; j < n; ++j) {
      store_scalar(c32, cf, i * n + j, packed_dot(a_row, pb, n, groups, j), epi, j);
    }
  }
}

#endif  // architecture bands

using Int8BandFn = void (*)(const uint8_t*, const int8_t*, int32_t*, float*, int64_t, int64_t,
                            int64_t, int64_t, const QuantEpilogue*);

Int8BandFn band_kernel() {
#if defined(SALNOV_INT8_AVX2)
  return int8_vnni_available() && int8_vnni_enabled() ? &int8_band_vnni : &int8_band_avx2;
#else
  return &int8_band_neon;
#endif
}

}  // namespace

bool int8_simd_available() {
#if defined(SALNOV_INT8_AVX2)
  static const bool ok = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }();
  return ok;
#else
  return true;  // NEON is baseline on aarch64
#endif
}

const char* int8_arch_name() {
#if defined(SALNOV_INT8_AVX2)
  return int8_vnni_available() && int8_vnni_enabled() ? "avx512-vnni" : "avx2";
#elif defined(SALNOV_INT8_NEON)
  return "neon";
#else
  return "none";
#endif
}

void int8_gemm(const uint8_t* a, const int8_t* b, int32_t* c32, float* cf, int64_t m,
               int64_t n, int64_t k, const QuantEpilogue* epi,
               const PackedQuantMatrix* packed_b) {
  WorkspaceScope scope;
  const int64_t groups = (k + 3) / 4;
  const int64_t a_stride = groups * 4;
  // Byte buffers carved from the float arena (64-byte aligned).
  uint8_t* pa = reinterpret_cast<uint8_t*>(scope.floats((m * a_stride + 3) / 4));
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(pa + i * a_stride, a + i * k, static_cast<size_t>(k));
    std::memset(pa + i * a_stride + k, 0, static_cast<size_t>(a_stride - k));
  }
  const int8_t* pb;
  if (packed_b != nullptr) {
    pb = packed_b->data.data();
  } else {
    int8_t* scratch = reinterpret_cast<int8_t*>(scope.floats((groups * n * 4 + 3) / 4));
    pack_quant_b_into(b, k, n, scratch);
    pb = scratch;
  }

  const Int8BandFn band = band_kernel();
  if (m > kInt8RowGrain && m * n * k >= kMinParallelOps && parallel::num_threads() > 1) {
    parallel::parallel_for(0, m, kInt8RowGrain, [&](int64_t row_begin, int64_t row_end) {
      band(pa, pb, c32, cf, row_begin, row_end, n, groups, epi);
    });
  } else {
    band(pa, pb, c32, cf, 0, m, n, groups, epi);
  }
}

#else  // no SIMD support compiled in: runtime-safe stubs

bool int8_simd_available() { return false; }
const char* int8_arch_name() { return "none"; }
void int8_gemm(const uint8_t*, const int8_t*, int32_t*, float*, int64_t, int64_t, int64_t,
               const QuantEpilogue*, const PackedQuantMatrix*) {}

#endif

/// B packed as k4-interleaved column groups (layout at the top of the
/// file). Plain C++ — valid on any CPU, shared by every band kernel.
void pack_quant_b_into(const int8_t* b, int64_t k, int64_t n, int8_t* packed) {
  const int64_t groups = (k + 3) / 4;
  std::memset(packed, 0, static_cast<size_t>(groups * n * 4));
  for (int64_t kk = 0; kk < k; ++kk) {
    const int8_t* b_row = b + kk * n;
    int8_t* dst = packed + (kk / 4) * n * 4 + (kk % 4);
    for (int64_t j = 0; j < n; ++j) dst[j * 4] = b_row[j];
  }
}

namespace {

std::atomic<bool>& vnni_flag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("SALNOV_GEMM_INT8_VNNI");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

}  // namespace

bool int8_vnni_enabled() { return vnni_flag().load(std::memory_order_relaxed); }

void set_int8_vnni(bool enabled) { vnni_flag().store(enabled, std::memory_order_relaxed); }

}  // namespace salnov::detail
