#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "parallel/parallel_for.hpp"
#include "tensor/gemm_simd.hpp"

namespace salnov {
namespace {

// Cache-blocking parameters of the scalar kernel. The inner loop walks B
// row-wise so that the compiler can vectorize over `n`; blocking over k
// keeps the working set of B rows in L1/L2.
constexpr int64_t kBlockM = 32;
constexpr int64_t kBlockK = 128;

// Row-chunk size handed to the thread pool. Fixed (never derived from the
// thread count) so the chunk partition — and with it every bit of output —
// is identical at any SALNOV_THREADS setting. Each chunk owns a disjoint
// band of C's rows, so chunks never write the same cache line's worth of
// output rows.
constexpr int64_t kRowGrain = 16;

// Below this many multiply-adds the pool dispatch overhead dominates; the
// serial path walks the same per-row arithmetic, so results are unchanged.
constexpr int64_t kMinParallelFlops = 1 << 15;

/// C rows [row_begin, row_end) += A x B, cache-blocked.
void gemm_rows(const float* a, const float* b, float* c, int64_t row_begin, int64_t row_end,
               int64_t n, int64_t k) {
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kBlockM) {
    const int64_t i_end = std::min(i0 + kBlockM, row_end);
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k_end = std::min(k0 + kBlockK, k);
      for (int64_t i = i0; i < i_end; ++i) {
        float* c_row = c + i * n;
        for (int64_t kk = k0; kk < k_end; ++kk) {
          const float a_ik = a[i * k + kk];
          if (a_ik == 0.0f) continue;  // ReLU outputs make sparse rows common.
          const float* b_row = b + kk * n;
          for (int64_t j = 0; j < n; ++j) {
            c_row[j] += a_ik * b_row[j];
          }
        }
      }
    }
  }
}

/// Fused-epilogue pass over C rows [row_begin, row_end): +bias_row[i],
/// +bias_col[j], then ReLU — each term applied only when present, in the
/// exact order (and with the exact arithmetic) of the pre-fusion
/// bias-add loops in the layers.
void apply_epilogue_rows(float* c, int64_t row_begin, int64_t row_end, int64_t n,
                         const GemmEpilogue& epi) {
  if (epi.empty()) return;
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* row = c + i * n;
    if (epi.bias_row != nullptr) {
      const float br = epi.bias_row[i];
      for (int64_t j = 0; j < n; ++j) row[j] += br;
    }
    if (epi.bias_col != nullptr) {
      for (int64_t j = 0; j < n; ++j) row[j] += epi.bias_col[j];
    }
    if (epi.relu) {
      for (int64_t j = 0; j < n; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
    }
  }
}

void check_dims(int64_t m, int64_t n, int64_t k) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("gemm: negative dimension");
  }
}

/// True when the problem is worth fanning out to the pool.
bool parallel_worthwhile(int64_t m, int64_t n, int64_t k) {
  return m > kRowGrain && m * n * k >= kMinParallelFlops;
}

GemmKernel resolve_kernel_from_env() {
  const char* env = std::getenv("SALNOV_GEMM_KERNEL");
  std::string value = env != nullptr ? env : "auto";
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  if (value == "scalar") return GemmKernel::kScalar;
  if (value != "simd" && value != "auto" && !value.empty()) {
    std::fprintf(stderr, "salnov: unknown SALNOV_GEMM_KERNEL '%s'; using auto\n", value.c_str());
  }
  return detail::simd_gemm_available() ? GemmKernel::kSimd : GemmKernel::kScalar;
}

std::atomic<GemmKernel>& kernel_state() {
  static std::atomic<GemmKernel> state{resolve_kernel_from_env()};
  return state;
}

std::atomic<bool>& packing_state() {
  static std::atomic<bool> state{[] {
    const char* env = std::getenv("SALNOV_GEMM_PACK");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }()};
  return state;
}

void validate_packs(const PackedMatrix* packed_a, const PackedMatrix* packed_b, int64_t m,
                    int64_t n, int64_t k) {
  if (packed_a != nullptr &&
      (packed_a->kind != PackedMatrix::Kind::kAPanels || packed_a->rows != m ||
       packed_a->cols != k)) {
    throw std::logic_error("gemm_ex: packed A does not match the [m, k] operand");
  }
  if (packed_b != nullptr &&
      (packed_b->kind != PackedMatrix::Kind::kBPanels || packed_b->rows != k ||
       packed_b->cols != n)) {
    throw std::logic_error("gemm_ex: packed B does not match the [k, n] operand");
  }
}

}  // namespace

GemmKernel active_gemm_kernel() { return kernel_state().load(std::memory_order_relaxed); }

void set_gemm_kernel(GemmKernel kernel) {
  if (kernel == GemmKernel::kSimd && !detail::simd_gemm_available()) {
    throw std::invalid_argument("set_gemm_kernel: SIMD kernel unavailable on this CPU");
  }
  kernel_state().store(kernel, std::memory_order_relaxed);
}

bool gemm_simd_available() { return detail::simd_gemm_available(); }

const char* gemm_kernel_name(GemmKernel kernel) {
  return kernel == GemmKernel::kScalar ? "scalar" : detail::simd_arch_name();
}

bool gemm_weight_packing_enabled() { return packing_state().load(std::memory_order_relaxed); }

void set_gemm_weight_packing(bool enabled) {
  packing_state().store(enabled, std::memory_order_relaxed);
}

void gemm_ex(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const GemmEpilogue& epilogue, const PackedMatrix* packed_a,
             const PackedMatrix* packed_b) {
  check_dims(m, n, k);
  validate_packs(packed_a, packed_b, m, n, k);
  if (m == 0 || n == 0) return;  // empty output: nothing to touch (c may be null)
  if (k == 0) {
    // A [m, 0] x B [0, n] is a zero matrix; a and b may be null. The
    // epilogue still applies (C = 0 + bias, then ReLU).
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    apply_epilogue_rows(c, 0, m, n, epilogue);
    return;
  }
  if (active_gemm_kernel() == GemmKernel::kSimd) {
    detail::simd_gemm(a, b, c, m, n, k, epilogue, packed_a, packed_b);
    return;
  }
  if (!parallel_worthwhile(m, n, k)) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    gemm_rows(a, b, c, 0, m, n, k);
    apply_epilogue_rows(c, 0, m, n, epilogue);
    return;
  }
  parallel::parallel_for(0, m, kRowGrain, [&](int64_t row_begin, int64_t row_end) {
    std::memset(c + row_begin * n, 0, static_cast<size_t>((row_end - row_begin) * n) * sizeof(float));
    gemm_rows(a, b, c, row_begin, row_end, n, k);
    apply_epilogue_rows(c, row_begin, row_end, n, epilogue);
  });
}

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  gemm_ex(a, b, c, m, n, k, GemmEpilogue{});
}

void gemm_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  check_dims(m, n, k);
  if (m == 0 || n == 0 || k == 0) return;
  if (!parallel_worthwhile(m, n, k)) {
    gemm_rows(a, b, c, 0, m, n, k);
    return;
  }
  parallel::parallel_for(0, m, kRowGrain, [&](int64_t row_begin, int64_t row_end) {
    gemm_rows(a, b, c, row_begin, row_end, n, k);
  });
}

void gemm_nt_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  check_dims(m, n, k);
  if (m == 0 || n == 0 || k == 0) return;
  // C[i][j] += dot(A row i, B row j): both rows contiguous, vectorizes well.
  const auto rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* b_row = b + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
        c_row[j] += acc;
      }
    }
  };
  if (!parallel_worthwhile(m, n, k)) {
    rows(0, m);
    return;
  }
  parallel::parallel_for(0, m, kRowGrain, rows);
}

void gemm_tn_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  check_dims(m, n, k);
  if (m == 0 || n == 0 || k == 0) return;
  // C[i][j] += sum_k A[k][i] * B[k][j]. Parallel chunks own disjoint row
  // bands of C; within a band k stays the outermost loop so B rows stream
  // and every element accumulates in the same (ascending k) order as the
  // serial path.
  const auto rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* a_row = a + kk * m;
      const float* b_row = b + kk * n;
      for (int64_t i = row_begin; i < row_end; ++i) {
        const float a_ki = a_row[i];
        if (a_ki == 0.0f) continue;
        float* c_row = c + i * n;
        for (int64_t j = 0; j < n; ++j) c_row[j] += a_ki * b_row[j];
      }
    }
  };
  if (!parallel_worthwhile(m, n, k)) {
    rows(0, m);
    return;
  }
  parallel::parallel_for(0, m, kRowGrain, rows);
}

}  // namespace salnov
