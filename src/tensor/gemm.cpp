#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace salnov {
namespace {

// Cache-blocking parameters. The inner kernel walks B row-wise so that the
// compiler can vectorize over `n`; blocking over k keeps the working set of
// B rows in L1/L2.
constexpr int64_t kBlockM = 32;
constexpr int64_t kBlockK = 128;

void gemm_impl(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  for (int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const int64_t i_end = std::min(i0 + kBlockM, m);
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k_end = std::min(k0 + kBlockK, k);
      for (int64_t i = i0; i < i_end; ++i) {
        float* c_row = c + i * n;
        for (int64_t kk = k0; kk < k_end; ++kk) {
          const float a_ik = a[i * k + kk];
          if (a_ik == 0.0f) continue;  // ReLU outputs make sparse rows common.
          const float* b_row = b + kk * n;
          for (int64_t j = 0; j < n; ++j) {
            c_row[j] += a_ik * b_row[j];
          }
        }
      }
    }
  }
}

void check_dims(int64_t m, int64_t n, int64_t k) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("gemm: negative dimension");
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  check_dims(m, n, k);
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  gemm_impl(a, b, c, m, n, k);
}

void gemm_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  check_dims(m, n, k);
  gemm_impl(a, b, c, m, n, k);
}

void gemm_nt_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  check_dims(m, n, k);
  // C[i][j] += dot(A row i, B row j): both rows contiguous, vectorizes well.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      c_row[j] += acc;
    }
  }
}

void gemm_tn_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k) {
  check_dims(m, n, k);
  // C[i][j] += sum_k A[k][i] * B[k][j]: iterate k outermost so B rows stream.
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) continue;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_ki * b_row[j];
    }
  }
}

}  // namespace salnov
