// Internal interface of the SIMD GEMM kernel translation unit.
//
// gemm_simd.cpp is the only file compiled with architecture flags
// (-mavx2 -mfma on x86); everything else, including the dispatcher, stays
// portable. When the TU is built without SIMD support the functions below
// degrade to "unavailable" stubs, so linking is unconditional.
#pragma once

#include <cstdint>

#include "tensor/gemm.hpp"

namespace salnov::detail {

/// True when the running CPU can execute the compiled SIMD kernel.
bool simd_gemm_available();

/// Architecture tag of the compiled kernel: "avx2", "avx512", "neon", or
/// "none". "avx512" means the tile loop runs the bit-identical AVX-512
/// micro-kernel upgrade (gemm_avx512.hpp).
const char* simd_arch_name();

/// Whether the AVX-512 tile micro-kernel is used when hardware supports it.
/// Defaults to on; SALNOV_GEMM_AVX512=0 or the setter disables it. The two
/// tile kernels are bit-identical — the switch exists for A/B timing and
/// the identity test, not for correctness.
bool gemm_avx512_tile_enabled();
void set_gemm_avx512_tile(bool enabled);

/// C = A * B with fused epilogue; the SIMD counterpart of gemm_ex. Caller
/// guarantees m, n, k > 0 and simd_gemm_available(). Packed operands, when
/// non-null, are trusted to match a/b (validated by the dispatcher).
void simd_gemm(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
               const GemmEpilogue& epilogue, const PackedMatrix* packed_a,
               const PackedMatrix* packed_b);

}  // namespace salnov::detail
