#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "tensor/gemm.hpp"

namespace salnov {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) {
      throw std::invalid_argument("shape_numel: negative dimension in " + shape_to_string(shape));
    }
    if (__builtin_mul_overflow(n, d, &n)) {
      throw std::invalid_argument("shape_numel: element count overflows int64 in " +
                                  shape_to_string(shape));
    }
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data) : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_numel(shape_) != static_cast<int64_t>(data_.size())) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())}, std::vector<float>(values));
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

int64_t Tensor::dim(int64_t d) const {
  const int64_t r = rank();
  if (d < 0) d += r;
  if (d < 0 || d >= r) {
    throw std::out_of_range("Tensor::dim: dimension " + std::to_string(d) + " out of range for rank " +
                            std::to_string(r));
  }
  return shape_[static_cast<size_t>(d)];
}

int64_t Tensor::check_flat(int64_t flat_index) const {
#ifndef NDEBUG
  if (flat_index < 0 || flat_index >= numel()) {
    throw std::out_of_range("Tensor: flat index " + std::to_string(flat_index) + " out of range [0, " +
                            std::to_string(numel()) + ")");
  }
#endif
  return flat_index;
}

int64_t Tensor::offset(std::initializer_list<int64_t> idx) const {
  if (static_cast<int64_t>(idx.size()) != rank()) {
    throw std::invalid_argument("Tensor::at: got " + std::to_string(idx.size()) + " indices for rank " +
                                std::to_string(rank()));
  }
  int64_t off = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    if (i < 0 || i >= shape_[d]) {
      throw std::out_of_range("Tensor::at: index " + std::to_string(i) + " out of range for dim " +
                              std::to_string(d) + " of shape " + shape_to_string(shape_));
    }
    off = off * shape_[d] + i;
    ++d;
  }
  return off;
}

void Tensor::require_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string("Tensor::") + op + ": shape mismatch " +
                                shape_to_string(shape_) + " vs " + shape_to_string(other.shape_));
  }
}

Tensor Tensor::reshape(Shape new_shape) const {
  int64_t inferred_at = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (inferred_at != -1) {
        throw std::invalid_argument("Tensor::reshape: more than one -1 in " + shape_to_string(new_shape));
      }
      inferred_at = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred_at != -1) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("Tensor::reshape: cannot infer dimension for " +
                                  shape_to_string(new_shape) + " from " + std::to_string(numel()) +
                                  " elements");
    }
    new_shape[static_cast<size_t>(inferred_at)] = numel() / known;
  }
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: " + shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape) + " changes element count");
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::transposed() const {
  if (rank() != 2) {
    throw std::logic_error("Tensor::transposed: requires rank 2, got " + shape_to_string(shape_));
  }
  const int64_t rows = shape_[0];
  const int64_t cols = shape_[1];
  Tensor out({cols, rows});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out.data_[static_cast<size_t>(c * rows + r)] = data_[static_cast<size_t>(r * cols + c)];
    }
  }
  return out;
}

Tensor Tensor::slice0(int64_t index) const {
  if (rank() < 1) throw std::logic_error("Tensor::slice0: rank-0 tensor");
  if (index < 0 || index >= shape_[0]) {
    throw std::out_of_range("Tensor::slice0: index " + std::to_string(index) + " out of range for " +
                            shape_to_string(shape_));
  }
  Shape sub(shape_.begin() + 1, shape_.end());
  const int64_t stride = shape_numel(sub);
  Tensor out(sub);
  std::copy_n(data_.begin() + index * stride, stride, out.data_.begin());
  return out;
}

Tensor Tensor::narrow0(int64_t begin, int64_t end) const {
  if (rank() < 1) throw std::logic_error("Tensor::narrow0: rank-0 tensor");
  if (begin < 0 || end < begin || end > shape_[0]) {
    throw std::out_of_range("Tensor::narrow0: range [" + std::to_string(begin) + ", " +
                            std::to_string(end) + ") invalid for " + shape_to_string(shape_));
  }
  Shape sub = shape_;
  sub[0] = end - begin;
  const int64_t stride = numel() / std::max<int64_t>(shape_[0], 1);
  Tensor out(sub);
  std::copy_n(data_.begin() + begin * stride, (end - begin) * stride, out.data_.begin());
  return out;
}

void Tensor::set_slice0(int64_t index, const Tensor& src) {
  if (rank() < 1) throw std::logic_error("Tensor::set_slice0: rank-0 tensor");
  if (index < 0 || index >= shape_[0]) {
    throw std::out_of_range("Tensor::set_slice0: index " + std::to_string(index) + " out of range for " +
                            shape_to_string(shape_));
  }
  const int64_t stride = numel() / std::max<int64_t>(shape_[0], 1);
  if (src.numel() != stride) {
    throw std::invalid_argument("Tensor::set_slice0: slice has " + std::to_string(stride) +
                                " elements but source has " + std::to_string(src.numel()));
  }
  std::copy_n(src.data_.begin(), stride, data_.begin() + index * stride);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  require_same_shape(other, "operator+=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  require_same_shape(other, "operator-=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  require_same_shape(other, "operator*=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float value) {
  for (float& v : data_) v += value;
  return *this;
}

Tensor& Tensor::operator*=(float value) {
  for (float& v : data_) v *= value;
  return *this;
}

Tensor& Tensor::apply(const std::function<float(float)>& fn) {
  for (float& v : data_) v = fn(v);
  return *this;
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  Tensor out = *this;
  out.apply(fn);
  return out;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

float Tensor::sum() const {
  // Kahan summation: training statistics accumulate over many thousands of
  // elements and plain float accumulation loses precision noticeably.
  float s = 0.0f;
  float c = 0.0f;
  for (float v : data_) {
    const float y = v - c;
    const float t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

float Tensor::mean() const {
  if (data_.empty()) throw std::logic_error("Tensor::mean: empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min: empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max: empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

int64_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax: empty tensor");
  return std::distance(data_.begin(), std::max_element(data_.begin(), data_.end()));
}

float Tensor::squared_norm() const {
  float s = 0.0f;
  for (float v : data_) s += v * v;
  return s;
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  a.require_same_shape(b, "max_abs_diff");
  float m = 0.0f;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

bool Tensor::operator==(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2) {
    throw std::invalid_argument("matmul: requires rank-2 tensors, got " + shape_to_string(a.shape()) +
                                " and " + shape_to_string(b.shape()));
  }
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dimensions differ: " + shape_to_string(a.shape()) +
                                " x " + shape_to_string(b.shape()));
  }
  const int64_t n = b.dim(1);
  Tensor out({m, n});
  gemm(a.data(), b.data(), out.data(), m, n, k);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << shape_to_string(t.shape()) << " {";
  const int64_t limit = std::min<int64_t>(t.numel(), 16);
  for (int64_t i = 0; i < limit; ++i) {
    if (i != 0) os << ", ";
    os << t[i];
  }
  if (t.numel() > limit) os << ", ...";
  os << '}';
  return os;
}

}  // namespace salnov
