#include "tensor/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace salnov {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 seeding guarantees that
  // with overwhelming probability and decorrelates close seeds.
  uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::shuffle(std::vector<int64_t>& values) {
  for (size_t i = values.size(); i > 1; --i) {
    const auto j = static_cast<size_t>(uniform_int(0, static_cast<int64_t>(i) - 1));
    std::swap(values[i - 1], values[j]);
  }
}

Tensor Rng::normal_tensor(Shape shape, double stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(normal(0.0, stddev));
  return t;
}

Tensor Rng::uniform_tensor(Shape shape, double lo, double hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(uniform(lo, hi));
  return t;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace salnov
