// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, scene generation,
// noise injection, dataset shuffling) draws from an explicitly seeded Rng so
// that experiments are bit-reproducible run to run. The generator is
// xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace salnov {

class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& values);

  /// Tensor with i.i.d. N(0, stddev^2) entries.
  Tensor normal_tensor(Shape shape, double stddev = 1.0);

  /// Tensor with i.i.d. U[lo, hi) entries.
  Tensor uniform_tensor(Shape shape, double lo, double hi);

  /// Derives an independent generator (for per-worker / per-component
  /// streams) from this one's current state.
  Rng split();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace salnov
