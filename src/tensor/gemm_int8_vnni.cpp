// AVX-512 VNNI int8 band kernel: vpdpbusd accumulates each 4-byte k-group's
// u8 x s8 dot product straight into the int32 lanes — no int16 intermediate
// at all, so exactness needs no range argument. Operates on the same
// k4-interleaved packed layout as the AVX2 band (see gemm_int8_simd.cpp);
// 64 contiguous packed-B bytes cover one k-group of 16 columns.
//
// This TU is the only one compiled with AVX-512 VNNI flags; callers check
// int8_vnni_available() before dispatching in, keeping the binary
// runtime-safe on CPUs without the extension.
#include "tensor/gemm_int8_vnni.hpp"

#include <cmath>
#include <cstring>

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512VNNI__)
#include <immintrin.h>
#define SALNOV_INT8_VNNI 1
#endif

namespace salnov::detail {

#if defined(SALNOV_INT8_VNNI)

namespace {

inline uint32_t load_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline int32_t packed_dot(const uint8_t* pa_row, const int8_t* pb, int64_t n, int64_t groups,
                          int64_t j) {
  int32_t acc = 0;
  for (int64_t g = 0; g < groups; ++g) {
    const uint8_t* aq = pa_row + g * 4;
    const int8_t* bq = pb + (g * n + j) * 4;
    acc += static_cast<int32_t>(aq[0]) * bq[0] + static_cast<int32_t>(aq[1]) * bq[1] +
           static_cast<int32_t>(aq[2]) * bq[2] + static_cast<int32_t>(aq[3]) * bq[3];
  }
  return acc;
}

inline float dequant_one(int32_t acc, const QuantEpilogue& epi, int64_t j) {
  float v = epi.bias_col != nullptr
                ? std::fmaf(static_cast<float>(acc), epi.scale, epi.bias_col[j])
                : static_cast<float>(acc) * epi.scale;
  if (epi.relu) v = v > 0.0f ? v : 0.0f;
  return v;
}

/// Stores 16 int32 accumulators at c[idx..idx+16) (columns j..j+16).
inline void store_vec16(int32_t* c32, float* cf, int64_t idx, __m512i acc,
                        const QuantEpilogue* epi, int64_t j) {
  if (cf == nullptr) {
    _mm512_storeu_si512(c32 + idx, acc);
    return;
  }
  const __m512 scale = _mm512_set1_ps(epi->scale);
  const __m512 vf = _mm512_cvtepi32_ps(acc);
  __m512 v = epi->bias_col != nullptr
                 ? _mm512_fmadd_ps(vf, scale, _mm512_loadu_ps(epi->bias_col + j))
                 : _mm512_mul_ps(vf, scale);
  if (epi->relu) v = _mm512_max_ps(v, _mm512_setzero_ps());
  _mm512_storeu_ps(cf + idx, v);
}

}  // namespace

bool int8_vnni_available() {
  static const bool ok = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512vnni");
  }();
  return ok;
}

void int8_band_vnni(const uint8_t* pa, const int8_t* pb, int32_t* c32, float* cf,
                    int64_t row_begin, int64_t row_end, int64_t n, int64_t groups,
                    const QuantEpilogue* epi) {
  const int64_t stride = groups * 4;
  const int64_t n32 = n - (n % 32);
  const int64_t n16 = n - (n % 16);
  int64_t i = row_begin;
  // 4 rows x 32 columns: 8 zmm accumulators, 2 B loads per k-group.
  for (; i + 4 <= row_end; i += 4) {
    const uint8_t* a_rows[4] = {pa + i * stride, pa + (i + 1) * stride, pa + (i + 2) * stride,
                                pa + (i + 3) * stride};
    for (int64_t j0 = 0; j0 < n32; j0 += 32) {
      __m512i acc[4][2];
      for (int r = 0; r < 4; ++r) acc[r][0] = acc[r][1] = _mm512_setzero_si512();
      for (int64_t g = 0; g < groups; ++g) {
        const int8_t* bg = pb + (g * n + j0) * 4;
        const __m512i b0 = _mm512_loadu_si512(bg);
        const __m512i b1 = _mm512_loadu_si512(bg + 64);
        for (int r = 0; r < 4; ++r) {
          const __m512i av = _mm512_set1_epi32(static_cast<int>(load_u32(a_rows[r] + g * 4)));
          acc[r][0] = _mm512_dpbusd_epi32(acc[r][0], av, b0);
          acc[r][1] = _mm512_dpbusd_epi32(acc[r][1], av, b1);
        }
      }
      for (int r = 0; r < 4; ++r) {
        store_vec16(c32, cf, (i + r) * n + j0, acc[r][0], epi, j0);
        store_vec16(c32, cf, (i + r) * n + j0 + 16, acc[r][1], epi, j0 + 16);
      }
    }
    for (int64_t j = n32; j < n; ++j) {
      for (int r = 0; r < 4; ++r) {
        const int32_t acc = packed_dot(a_rows[r], pb, n, groups, j);
        if (cf != nullptr) {
          cf[(i + r) * n + j] = dequant_one(acc, *epi, j);
        } else {
          c32[(i + r) * n + j] = acc;
        }
      }
    }
  }
  // Remainder rows: 1 x 16 columns; also the batch-1 dense matvec path.
  for (; i < row_end; ++i) {
    const uint8_t* a_row = pa + i * stride;
    for (int64_t j0 = 0; j0 < n16; j0 += 16) {
      __m512i acc = _mm512_setzero_si512();
      for (int64_t g = 0; g < groups; ++g) {
        const __m512i av = _mm512_set1_epi32(static_cast<int>(load_u32(a_row + g * 4)));
        acc = _mm512_dpbusd_epi32(acc, av, _mm512_loadu_si512(pb + (g * n + j0) * 4));
      }
      store_vec16(c32, cf, i * n + j0, acc, epi, j0);
    }
    for (int64_t j = n16; j < n; ++j) {
      const int32_t acc = packed_dot(a_row, pb, n, groups, j);
      if (cf != nullptr) {
        cf[i * n + j] = dequant_one(acc, *epi, j);
      } else {
        c32[i * n + j] = acc;
      }
    }
  }
}

#else  // no VNNI support compiled in: runtime-safe stubs

bool int8_vnni_available() { return false; }
void int8_band_vnni(const uint8_t*, const int8_t*, int32_t*, float*, int64_t, int64_t, int64_t,
                    int64_t, const QuantEpilogue*) {}

#endif

}  // namespace salnov::detail
