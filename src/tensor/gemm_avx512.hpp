// Optional AVX-512 upgrade of the SIMD GEMM micro-kernel.
//
// Same 6 x 16 tile, same packed-panel layout, and — critically — the same
// per-element arithmetic as the AVX2 micro-kernel: every output element is
// a single ascending-k FMA chain, biases and ReLU are applied in the same
// order at the store. One 16-float B row is one zmm register instead of two
// ymm registers, halving the FMA and load micro-op count per k step, so the
// upgraded tile kernel is faster but BIT-IDENTICAL to the AVX2 tile kernel
// (it is an implementation detail of GemmKernel::kSimd, not a new kernel).
//
// The batch-1 matvec path is untouched: it is DRAM-bandwidth-bound, so
// wider vectors would not move it.
//
// This TU is the only one compiled with -mavx512f; callers must check
// gemm_avx512_available() (which performs the runtime CPUID check) before
// using the function pointer.
#pragma once

#include <cstdint>

namespace salnov::detail {

/// True when the binary carries the AVX-512 tile kernel and the CPU
/// supports it. Always false on non-x86 or pre-AVX-512 toolchains.
bool gemm_avx512_available();

/// Drop-in replacement for the AVX2 6x16 micro-kernel (same contract: ap is
/// a packed A panel, bp a packed B panel, c the [rows, cols] output tile
/// with leading dimension ldc). Only call when gemm_avx512_available().
void micro_kernel_avx512(const float* ap, const float* bp, int64_t k, float* c, int64_t ldc,
                         int64_t rows, int64_t cols, const float* bias_row,
                         const float* bias_col, bool relu);

}  // namespace salnov::detail
