// Binary serialization primitives for tensors and model files.
//
// Format: little-endian, length-prefixed. Every model/pipeline file in the
// library is built from these primitives plus a magic string + version
// header, so files are portable between runs and refuse to load on format
// drift.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "tensor/tensor.hpp"

namespace salnov {

/// Thrown when a stream does not contain what the reader expects.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

void write_u32(std::ostream& os, uint32_t value);
void write_i64(std::ostream& os, int64_t value);
void write_f32(std::ostream& os, float value);
void write_f64(std::ostream& os, double value);
void write_string(std::ostream& os, const std::string& value);
void write_tensor(std::ostream& os, const Tensor& tensor);

uint32_t read_u32(std::istream& is);
int64_t read_i64(std::istream& is);
float read_f32(std::istream& is);
double read_f64(std::istream& is);
std::string read_string(std::istream& is);
Tensor read_tensor(std::istream& is);

/// Writes `magic` + `version`; used at the head of every model file.
void write_header(std::ostream& os, const std::string& magic, uint32_t version);

/// Reads and validates a header written by write_header. Throws
/// SerializationError on magic or version mismatch.
void read_header(std::istream& is, const std::string& magic, uint32_t version);

}  // namespace salnov
