// Binary serialization primitives for tensors and model files.
//
// Format: little-endian, length-prefixed. Every model/pipeline file in the
// library is built from these primitives plus a magic string + version
// header, so files are portable between runs and refuse to load on format
// drift.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "tensor/tensor.hpp"

namespace salnov {

/// Thrown when a stream does not contain what the reader expects.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what) : std::runtime_error(what) {}
};

/// A file ended before its format says it should — it was cut short by a
/// crash, a partial copy, or it predates the integrity-trailer format.
class TruncatedFileError : public SerializationError {
 public:
  explicit TruncatedFileError(const std::string& what) : SerializationError(what) {}
};

/// A file's CRC32 trailer does not match its payload: the bytes on disk are
/// not the bytes that were written.
class CorruptFileError : public SerializationError {
 public:
  explicit CorruptFileError(const std::string& what) : SerializationError(what) {}
};

void write_u32(std::ostream& os, uint32_t value);
void write_i64(std::ostream& os, int64_t value);
void write_f32(std::ostream& os, float value);
void write_f64(std::ostream& os, double value);
void write_string(std::ostream& os, const std::string& value);
void write_tensor(std::ostream& os, const Tensor& tensor);

uint32_t read_u32(std::istream& is);
int64_t read_i64(std::istream& is);
float read_f32(std::istream& is);
double read_f64(std::istream& is);
std::string read_string(std::istream& is);
Tensor read_tensor(std::istream& is);

/// Writes `magic` + `version`; used at the head of every model file.
void write_header(std::ostream& os, const std::string& magic, uint32_t version);

/// Reads and validates a header written by write_header. Throws
/// SerializationError on magic or version mismatch.
void read_header(std::istream& is, const std::string& magic, uint32_t version);

// --- Crash-safe, integrity-checked file IO ---------------------------------
//
// Every model/pipeline *file* is the serialized payload followed by a
// 16-byte trailer: u64 payload size, u32 CRC32 of the payload, and the
// 4-byte trailer magic. Saving goes through a temp file in the same
// directory plus an atomic rename, so a crash mid-save leaves either the
// previous file or the complete new one at the target path — never a
// partial write.

/// CRC-32 (IEEE 802.3 / zlib polynomial) of a byte range. Chain blocks by
/// passing the previous result as `crc`.
uint32_t crc32(const void* data, size_t size, uint32_t crc = 0);

/// Serializes `write_payload`'s output, appends the integrity trailer, and
/// atomically replaces `path` (temp file + rename). On any failure the temp
/// file is removed and the previous `path` contents are left untouched.
void save_file_checked(const std::string& path,
                       const std::function<void(std::ostream&)>& write_payload);

/// Milestones inside save_file_checked, surfaced so crash-injection tests
/// can kill the writer at each point and prove the target path always holds
/// either the complete previous file or the complete new one.
enum class SaveCheckpoint {
  kTempWritten,  ///< temp file fully written and flushed; rename not yet done
};

/// As above, but invokes `checkpoint` (when non-null) at each SaveCheckpoint.
/// A checkpoint that throws models a crash at that instant: the temp file is
/// removed and the previous `path` contents are left untouched.
void save_file_checked(const std::string& path,
                       const std::function<void(std::ostream&)>& write_payload,
                       const std::function<void(SaveCheckpoint)>& checkpoint);

/// Reads `path`, verifies the integrity trailer, and returns the payload
/// bytes. Throws TruncatedFileError when the trailer is missing/short or the
/// recorded size disagrees with the file, CorruptFileError on CRC mismatch,
/// and std::runtime_error when the file cannot be opened.
std::string load_file_checked(const std::string& path);

}  // namespace salnov
