// AVX-512 VNNI band kernel for the int8 GEMM (vpdpbusd: 4-way u8 x s8 dot
// products accumulating directly into int32 lanes — exact, like every other
// int8 kernel here). Compiled in its own TU with AVX-512 flags; callers
// must check int8_vnni_available() first.
#pragma once

#include <cstdint>

#include "tensor/gemm_int8.hpp"

namespace salnov::detail {

/// True when this build carries the VNNI band and the CPU supports
/// AVX-512F/BW/VL + VNNI.
bool int8_vnni_available();

/// One row band over the shared k4-interleaved packed operands (layout
/// documented in gemm_int8_simd.cpp). Exactly one of c32 / cf is non-null.
void int8_band_vnni(const uint8_t* pa, const int8_t* pb, int32_t* c32, float* cf,
                    int64_t row_begin, int64_t row_end, int64_t n, int64_t groups,
                    const QuantEpilogue* epi);

}  // namespace salnov::detail
