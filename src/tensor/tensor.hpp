// Tensor: a minimal dense float32 N-dimensional array.
//
// This is the numeric substrate for the whole library: images, feature maps,
// network parameters, and gradients are all Tensors. The design goals are
// value semantics (copyable, movable, no shared aliasing surprises),
// row-major contiguous storage, and a small but sufficient op set for
// CNN training and saliency computation on a CPU.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace salnov {

/// Shape of a tensor: sizes of each dimension, outermost first.
using Shape = std::vector<int64_t>;

/// Returns a human-readable "[2, 3, 4]" rendering of a shape.
std::string shape_to_string(const Shape& shape);

/// Returns the number of elements implied by a shape (product of dims).
/// A rank-0 shape has one element. Throws std::invalid_argument on any
/// negative dimension.
int64_t shape_numel(const Shape& shape);

/// Dense float32 tensor with row-major contiguous storage and value
/// semantics. All binary elementwise operations require exactly matching
/// shapes (no implicit broadcasting; the few places that need broadcast-like
/// behaviour, e.g. bias addition, implement it explicitly).
class Tensor {
 public:
  /// Creates an empty rank-1 tensor with zero elements.
  Tensor() = default;

  /// Creates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Creates a tensor of the given shape with the given flat contents.
  /// Throws std::invalid_argument if sizes do not match.
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience: rank-1 tensor from a list of values.
  static Tensor from_values(std::initializer_list<float> values);

  /// Tensor of the given shape filled with `value`.
  static Tensor full(Shape shape, float value);
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }

  // --- Introspection -------------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  /// Size of dimension `dim`; negative indices count from the back.
  int64_t dim(int64_t dim) const;
  bool empty() const { return data_.empty(); }

  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }
  const std::vector<float>& vec() const { return data_; }

  // --- Element access ------------------------------------------------------

  /// Flat (row-major) element access, bounds-checked in debug builds.
  float operator[](int64_t flat_index) const { return data_[check_flat(flat_index)]; }
  float& operator[](int64_t flat_index) { return data_[check_flat(flat_index)]; }

  /// Multi-index access; index count must equal rank. Always bounds-checked.
  float at(std::initializer_list<int64_t> idx) const { return data_[offset(idx)]; }
  float& at(std::initializer_list<int64_t> idx) { return data_[offset(idx)]; }

  // --- Shape manipulation --------------------------------------------------

  /// Returns a tensor with the same data and a new shape. One dimension may
  /// be -1 and is inferred. Throws if element counts cannot match.
  Tensor reshape(Shape new_shape) const;

  /// Returns the transposed copy of a rank-2 tensor.
  Tensor transposed() const;

  /// Returns the `index`-th slice along dimension 0 (rank reduced by one).
  Tensor slice0(int64_t index) const;

  /// Returns rows [begin, end) along dimension 0 (rank preserved).
  Tensor narrow0(int64_t begin, int64_t end) const;

  /// Writes `src` into the `index`-th slice along dimension 0.
  void set_slice0(int64_t index, const Tensor& src);

  // --- Elementwise and scalar ops -----------------------------------------

  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);  ///< Hadamard product.
  Tensor& operator+=(float value);
  Tensor& operator*=(float value);

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
  friend Tensor operator*(Tensor lhs, float rhs) { return lhs *= rhs; }
  friend Tensor operator*(float lhs, Tensor rhs) { return rhs *= lhs; }

  /// Applies `fn` to every element in place and returns *this.
  Tensor& apply(const std::function<float(float)>& fn);
  /// Returns a copy with `fn` applied to every element.
  Tensor map(const std::function<float(float)>& fn) const;

  void fill(float value);

  // --- Reductions ----------------------------------------------------------

  float sum() const;
  float mean() const;
  float min() const;  ///< Throws std::logic_error on empty tensor.
  float max() const;  ///< Throws std::logic_error on empty tensor.
  int64_t argmax() const;
  /// Sum of squared elements.
  float squared_norm() const;

  /// Maximum |a - b| over elements; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

  // --- Equality ------------------------------------------------------------

  /// Exact equality of shape and every element.
  bool operator==(const Tensor& other) const;
  bool operator!=(const Tensor& other) const { return !(*this == other); }
  /// True if shapes match and all elements are within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

 private:
  int64_t check_flat(int64_t flat_index) const;
  int64_t offset(std::initializer_list<int64_t> idx) const;
  void require_same_shape(const Tensor& other, const char* op) const;

  Shape shape_{0};
  std::vector<float> data_;
};

/// Matrix product of rank-2 tensors: [m, k] x [k, n] -> [m, n].
Tensor matmul(const Tensor& a, const Tensor& b);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace salnov
