// Blocked single-precision GEMM kernels.
//
// All dense-layer and im2col-convolution math in the library funnels through
// these two routines, so they are the main performance lever on CPU.
#pragma once

#include <cstdint>

namespace salnov {

/// C = A * B where A is [m, k], B is [k, n], C is [m, n], all row-major.
/// C is fully overwritten.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

/// C += A * B (accumulating variant); same layout contract as gemm().
void gemm_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

/// C += A * B^T where A is [m, k], B is [n, k], C is [m, n]. Both operand
/// rows are contiguous, so this is the preferred form when the "transposed"
/// operand is naturally stored row-major (e.g. conv weight gradients).
void gemm_nt_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

/// C += A^T * B where A is [k, m], B is [k, n], C is [m, n].
void gemm_tn_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

}  // namespace salnov
