// Single-precision GEMM with runtime kernel dispatch.
//
// All dense-layer and im2col-convolution math in the library funnels through
// these routines, so they are the main performance lever on CPU. Two kernels
// exist:
//   * kScalar — the cache-blocked portable loop (always available, the
//     correctness reference).
//   * kSimd — a register-tiled 6x16 micro-kernel with panel packing,
//     compiled for AVX2+FMA (x86) or NEON (aarch64) and selected at startup
//     only when the CPU supports it.
// The kernel is resolved once from the SALNOV_GEMM_KERNEL environment
// variable ("scalar", "simd", or "auto"/unset = best available) and can be
// overridden programmatically for A/B testing.
//
// Determinism contract (per kernel): accumulation order is fixed by the
// blocking scheme only — for every output element the k-summation runs in
// ascending order, and the parallel row partition depends on fixed grain
// constants, never on the thread count. Results are therefore bit-identical
// at any SALNOV_THREADS setting. Different kernels may round differently
// (FMA vs separate multiply-add) and are NOT bit-identical to each other.
#pragma once

#include <cstdint>

#include "tensor/pack.hpp"

namespace salnov {

enum class GemmKernel { kScalar, kSimd };

/// The kernel every gemm call dispatches to right now.
GemmKernel active_gemm_kernel();

/// Overrides the active kernel (tests / benches). Throws
/// std::invalid_argument if kSimd is requested on hardware without SIMD
/// support.
void set_gemm_kernel(GemmKernel kernel);

/// True when the SIMD kernel can run on this CPU.
bool gemm_simd_available();

/// Human-readable name of a kernel ("scalar", "avx2", "avx512", "neon").
const char* gemm_kernel_name(GemmKernel kernel);

/// Whether Dense/Conv2d cache pre-packed weight panels for inference.
/// Defaults to on; SALNOV_GEMM_PACK=0 or the setter disables it (the packed
/// and unpacked paths are bit-identical — the switch exists for A/B tests).
bool gemm_weight_packing_enabled();
void set_gemm_weight_packing(bool enabled);

/// Optional operations fused into the GEMM output store. Applied after the
/// full k-summation of an element, in order: +bias_row[i], +bias_col[j],
/// then ReLU — exactly the arithmetic a separate post-pass would perform,
/// so fused and unfused results are bit-identical per kernel.
struct GemmEpilogue {
  const float* bias_row = nullptr;  ///< length m: added to every element of row i
  const float* bias_col = nullptr;  ///< length n: added to every element of column j
  bool relu = false;

  bool empty() const { return bias_row == nullptr && bias_col == nullptr && !relu; }
};

/// C = A * B where A is [m, k], B is [k, n], C is [m, n], all row-major.
/// C is fully overwritten.
void gemm(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

/// gemm() with a fused epilogue and optionally pre-packed operands.
/// `packed_a` / `packed_b` must have been produced by pack_a_panels /
/// pack_b_panels from the same logical matrices as `a` / `b` (which must
/// still be passed — the dispatcher falls back to them for the scalar
/// kernel and the matrix-vector fast path). Packed operands are consulted
/// only by the SIMD kernel and produce bit-identical results to the
/// unpacked call.
void gemm_ex(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
             const GemmEpilogue& epilogue, const PackedMatrix* packed_a = nullptr,
             const PackedMatrix* packed_b = nullptr);

/// C += A * B (accumulating variant); same layout contract as gemm().
void gemm_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

/// C += A * B^T where A is [m, k], B is [n, k], C is [m, n]. Both operand
/// rows are contiguous, so this is the preferred form when the "transposed"
/// operand is naturally stored row-major (e.g. conv weight gradients, or a
/// dense layer's W in dL/dx = g W^T).
void gemm_nt_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

/// C += A^T * B where A is [k, m], B is [k, n], C is [m, n]. Lets callers
/// with a row-major A feed it as the transposed operand without
/// materializing a transposed copy (e.g. dW += x^T g in Dense::backward).
void gemm_tn_accumulate(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k);

}  // namespace salnov
