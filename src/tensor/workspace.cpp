#include "tensor/workspace.hpp"

#include <atomic>
#include <new>
#include <stdexcept>

namespace salnov {
namespace {

// Alignment of every returned buffer; also the rounding unit of allocation
// sizes so consecutive buffers stay aligned.
constexpr int64_t kAlignBytes = 64;
constexpr int64_t kAlignFloats = kAlignBytes / static_cast<int64_t>(sizeof(float));

// Smallest chunk the arena will request: 256 KiB. Small allocations share
// one chunk; a request larger than this gets a chunk of exactly its size.
constexpr int64_t kMinChunkFloats = int64_t{1} << 16;

std::atomic<int64_t> g_heap_allocations{0};

int64_t round_up(int64_t count) {
  return (count + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

Workspace::~Workspace() {
  for (Chunk& chunk : chunks_) {
    ::operator delete(chunk.data, std::align_val_t{kAlignBytes});
  }
}

float* Workspace::alloc_floats(int64_t count) {
  if (count < 0) throw std::invalid_argument("Workspace: negative allocation");
  const int64_t need = round_up(count);
  // Advance through existing chunks looking for room. Skipped space in a
  // partially-filled chunk is reclaimed when the enclosing scope releases.
  while (cur_chunk_ < chunks_.size()) {
    Chunk& chunk = chunks_[cur_chunk_];
    if (chunk.capacity - cur_offset_ >= need) {
      float* ptr = chunk.data + cur_offset_;
      cur_offset_ += need;
      return ptr;
    }
    ++cur_chunk_;
    cur_offset_ = 0;
  }
  // Geometric growth: a new chunk is at least as large as everything
  // reserved so far, so total capacity at least doubles per heap trip. A
  // pipeline whose shapes grow (batch-1 warm-up followed by batch-B panels
  // in the serving cluster) reaches its new high-water mark in O(log B)
  // allocations instead of one chunk per enlarged request.
  int64_t reserved_floats = 0;
  for (const Chunk& existing : chunks_) reserved_floats += existing.capacity;
  int64_t capacity = need > kMinChunkFloats ? need : kMinChunkFloats;
  if (reserved_floats > capacity) capacity = reserved_floats;
  Chunk chunk;
  chunk.data = static_cast<float*>(::operator new(
      static_cast<size_t>(capacity) * sizeof(float), std::align_val_t{kAlignBytes}));
  chunk.capacity = capacity;
  chunks_.push_back(chunk);
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  cur_chunk_ = chunks_.size() - 1;
  cur_offset_ = need;
  return chunk.data;
}

int64_t Workspace::reserved_bytes() const {
  int64_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.capacity * static_cast<int64_t>(sizeof(float));
  return total;
}

Workspace& Workspace::tls() {
  static thread_local Workspace workspace;
  return workspace;
}

int64_t Workspace::heap_allocation_count() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

}  // namespace salnov
