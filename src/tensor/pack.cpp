#include "tensor/pack.hpp"

namespace salnov {

void pack_a_tile(const float* a, int64_t rows, int64_t k, int64_t lda, float* out) {
  for (int64_t kk = 0; kk < k; ++kk) {
    float* dst = out + kk * kGemmMR;
    for (int64_t r = 0; r < kGemmMR; ++r) {
      dst[r] = r < rows ? a[r * lda + kk] : 0.0f;
    }
  }
}

void pack_a_panels_into(const float* a, int64_t m, int64_t k, float* out) {
  const int64_t panels = gemm_row_panels(m);
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t row0 = p * kGemmMR;
    const int64_t rows = m - row0 < kGemmMR ? m - row0 : kGemmMR;
    pack_a_tile(a + row0 * k, rows, k, k, out + p * kGemmMR * k);
  }
}

void pack_b_panels_into(const float* b, int64_t k, int64_t n, float* out) {
  const int64_t panels = gemm_col_panels(n);
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t col0 = p * kGemmNR;
    const int64_t cols = n - col0 < kGemmNR ? n - col0 : kGemmNR;
    float* panel = out + p * kGemmNR * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* src = b + kk * n + col0;
      float* dst = panel + kk * kGemmNR;
      for (int64_t j = 0; j < cols; ++j) dst[j] = src[j];
      for (int64_t j = cols; j < kGemmNR; ++j) dst[j] = 0.0f;
    }
  }
}

PackedMatrix pack_a_panels(const float* a, int64_t m, int64_t k) {
  PackedMatrix packed;
  packed.kind = PackedMatrix::Kind::kAPanels;
  packed.rows = m;
  packed.cols = k;
  packed.data.resize(static_cast<size_t>(packed_a_floats(m, k)));
  pack_a_panels_into(a, m, k, packed.data.data());
  return packed;
}

PackedMatrix pack_b_panels(const float* b, int64_t k, int64_t n) {
  PackedMatrix packed;
  packed.kind = PackedMatrix::Kind::kBPanels;
  packed.rows = k;
  packed.cols = n;
  packed.data.resize(static_cast<size_t>(packed_b_floats(k, n)));
  pack_b_panels_into(b, k, n, packed.data.data());
  return packed;
}

}  // namespace salnov
