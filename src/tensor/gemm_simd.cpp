// Register-tiled SIMD GEMM micro-kernels (AVX2+FMA / NEON).
//
// This TU and gemm_avx512.cpp are the only ones compiled with architecture
// flags; the dispatcher (gemm.cpp) checks simd_gemm_available() before
// calling in, so the binary stays runtime-safe on CPUs without the compiled
// extension. On AVX-512 hardware the tile loop swaps in the bit-identical
// AVX-512 micro-kernel (gemm_avx512.hpp); the batch-1 matvec stays AVX2.
//
// Kernel scheme (identical for both architectures):
//   * C is computed in kGemmMR x kGemmNR (6 x 16) register tiles from
//     panel-packed operands (see pack.hpp). Register accumulation runs over
//     the FULL k extent, so every output element is summed in ascending-k
//     order with a single rounding chain and C is written exactly once —
//     which is also where the fused bias/ReLU epilogue is applied.
//   * m == 1 (the batch-1 dense inference matvec, the autoencoder's hot
//     shape) takes a dedicated row-streaming path: packing cannot help a
//     matvec, and the tile kernel would waste 5/6 of its lanes.
//   * Rows are fanned out over the thread pool in fixed bands of
//     kSimdRowGrain rows (a multiple of kGemmMR, so band-local tiles always
//     align with pre-packed A panels). The partition depends only on the
//     shape, making results bit-identical at any thread count.
//   * Tail tiles are zero-padded by the packing, run the full-tile code
//     path, and only the valid rows/columns are stored back; padded lanes
//     contribute exact zeros, so packed and unpacked calls are
//     bit-identical.
//
// Scratch (A tiles, on-the-fly B panels) comes from the per-thread
// workspace arena: after the first call at a given shape the kernel
// performs no heap allocations.
#include "tensor/gemm_simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "parallel/parallel_for.hpp"
#include "tensor/gemm_avx512.hpp"
#include "tensor/workspace.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define SALNOV_SIMD_AVX2 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#define SALNOV_SIMD_NEON 1
#endif

namespace salnov::detail {

#if defined(SALNOV_SIMD_AVX2) || defined(SALNOV_SIMD_NEON)

namespace {

// Row band handed to the thread pool: 4 full micro-tiles. Must be a
// multiple of kGemmMR so packed-A panel boundaries align with band starts.
constexpr int64_t kSimdRowGrain = 4 * kGemmMR;
static_assert(kSimdRowGrain % kGemmMR == 0);

// Same threshold as the scalar path: below this the pool dispatch overhead
// dominates.
constexpr int64_t kMinParallelFlops = 1 << 15;

#if defined(SALNOV_SIMD_AVX2)

/// One 6x16 tile: C[0..rows) x [0..cols) = ap . bp (+ epilogue).
void micro_kernel(const float* ap, const float* bp, int64_t k, float* c, int64_t ldc,
                  int64_t rows, int64_t cols, const float* bias_row, const float* bias_col,
                  bool relu) {
  __m256 acc[kGemmMR][2];
  for (int r = 0; r < kGemmMR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kGemmNR);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kGemmNR + 8);
    const float* arow = ap + kk * kGemmMR;
    for (int r = 0; r < kGemmMR; ++r) {
      const __m256 av = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }

  __m256 bc0 = _mm256_setzero_ps();
  __m256 bc1 = _mm256_setzero_ps();
  if (bias_col != nullptr) {
    if (cols == kGemmNR) {
      bc0 = _mm256_loadu_ps(bias_col);
      bc1 = _mm256_loadu_ps(bias_col + 8);
    } else {
      float pad[kGemmNR] = {0};
      for (int64_t j = 0; j < cols; ++j) pad[j] = bias_col[j];
      bc0 = _mm256_loadu_ps(pad);
      bc1 = _mm256_loadu_ps(pad + 8);
    }
  }
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t r = 0; r < rows; ++r) {
    __m256 lo = acc[r][0];
    __m256 hi = acc[r][1];
    if (bias_row != nullptr) {
      const __m256 br = _mm256_broadcast_ss(bias_row + r);
      lo = _mm256_add_ps(lo, br);
      hi = _mm256_add_ps(hi, br);
    }
    if (bias_col != nullptr) {
      lo = _mm256_add_ps(lo, bc0);
      hi = _mm256_add_ps(hi, bc1);
    }
    if (relu) {
      lo = _mm256_max_ps(lo, zero);
      hi = _mm256_max_ps(hi, zero);
    }
    float* crow = c + r * ldc;
    if (cols == kGemmNR) {
      _mm256_storeu_ps(crow, lo);
      _mm256_storeu_ps(crow + 8, hi);
    } else {
      float buf[kGemmNR];
      _mm256_storeu_ps(buf, lo);
      _mm256_storeu_ps(buf + 8, hi);
      for (int64_t j = 0; j < cols; ++j) crow[j] = buf[j];
    }
  }
}

/// c[j] = sum_k a[kk] b[kk, j], n-blocked with a 4-deep k unroll. Serial:
/// a single output row never crosses the parallel threshold.
void matvec(const float* a, const float* b, float* c, int64_t n, int64_t k,
            const GemmEpilogue& epi) {
  constexpr int64_t kBlock = 512;
  for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
    const int64_t j1 = std::min(n, j0 + kBlock);
    for (int64_t j = j0; j < j1; ++j) c[j] = 0.0f;
    int64_t kk = 0;
    for (; kk + 4 <= k; kk += 4) {
      const __m256 a0 = _mm256_broadcast_ss(a + kk);
      const __m256 a1 = _mm256_broadcast_ss(a + kk + 1);
      const __m256 a2 = _mm256_broadcast_ss(a + kk + 2);
      const __m256 a3 = _mm256_broadcast_ss(a + kk + 3);
      const float* b0 = b + kk * n;
      const float* b1 = b0 + n;
      const float* b2 = b1 + n;
      const float* b3 = b2 + n;
      int64_t j = j0;
      for (; j + 8 <= j1; j += 8) {
        __m256 acc = _mm256_loadu_ps(c + j);
        acc = _mm256_fmadd_ps(a0, _mm256_loadu_ps(b0 + j), acc);
        acc = _mm256_fmadd_ps(a1, _mm256_loadu_ps(b1 + j), acc);
        acc = _mm256_fmadd_ps(a2, _mm256_loadu_ps(b2 + j), acc);
        acc = _mm256_fmadd_ps(a3, _mm256_loadu_ps(b3 + j), acc);
        _mm256_storeu_ps(c + j, acc);
      }
      for (; j < j1; ++j) {
        float acc = c[j];
        acc = std::fma(a[kk], b0[j], acc);
        acc = std::fma(a[kk + 1], b1[j], acc);
        acc = std::fma(a[kk + 2], b2[j], acc);
        acc = std::fma(a[kk + 3], b3[j], acc);
        c[j] = acc;
      }
    }
    for (; kk < k; ++kk) {
      const __m256 av = _mm256_broadcast_ss(a + kk);
      const float* brow = b + kk * n;
      int64_t j = j0;
      for (; j + 8 <= j1; j += 8) {
        _mm256_storeu_ps(c + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j), _mm256_loadu_ps(c + j)));
      }
      for (; j < j1; ++j) c[j] = std::fma(a[kk], brow[j], c[j]);
    }
  }
  if (!epi.empty()) {
    for (int64_t j = 0; j < n; ++j) {
      float v = c[j];
      if (epi.bias_row != nullptr) v += epi.bias_row[0];
      if (epi.bias_col != nullptr) v += epi.bias_col[j];
      if (epi.relu) v = v > 0.0f ? v : 0.0f;
      c[j] = v;
    }
  }
}

#elif defined(SALNOV_SIMD_NEON)

void micro_kernel(const float* ap, const float* bp, int64_t k, float* c, int64_t ldc,
                  int64_t rows, int64_t cols, const float* bias_row, const float* bias_col,
                  bool relu) {
  float32x4_t acc[kGemmMR][4];
  for (int r = 0; r < kGemmMR; ++r) {
    for (int q = 0; q < 4; ++q) acc[r][q] = vdupq_n_f32(0.0f);
  }
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* bq = bp + kk * kGemmNR;
    const float32x4_t b0 = vld1q_f32(bq);
    const float32x4_t b1 = vld1q_f32(bq + 4);
    const float32x4_t b2 = vld1q_f32(bq + 8);
    const float32x4_t b3 = vld1q_f32(bq + 12);
    const float* arow = ap + kk * kGemmMR;
    for (int r = 0; r < kGemmMR; ++r) {
      const float32x4_t av = vdupq_n_f32(arow[r]);
      acc[r][0] = vfmaq_f32(acc[r][0], av, b0);
      acc[r][1] = vfmaq_f32(acc[r][1], av, b1);
      acc[r][2] = vfmaq_f32(acc[r][2], av, b2);
      acc[r][3] = vfmaq_f32(acc[r][3], av, b3);
    }
  }

  float bias_pad[kGemmNR] = {0};
  const float* bc = nullptr;
  if (bias_col != nullptr) {
    if (cols == kGemmNR) {
      bc = bias_col;
    } else {
      for (int64_t j = 0; j < cols; ++j) bias_pad[j] = bias_col[j];
      bc = bias_pad;
    }
  }
  const float32x4_t zero = vdupq_n_f32(0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    float32x4_t v[4] = {acc[r][0], acc[r][1], acc[r][2], acc[r][3]};
    if (bias_row != nullptr) {
      const float32x4_t br = vdupq_n_f32(bias_row[r]);
      for (int q = 0; q < 4; ++q) v[q] = vaddq_f32(v[q], br);
    }
    if (bc != nullptr) {
      for (int q = 0; q < 4; ++q) v[q] = vaddq_f32(v[q], vld1q_f32(bc + 4 * q));
    }
    if (relu) {
      for (int q = 0; q < 4; ++q) v[q] = vmaxq_f32(v[q], zero);
    }
    float* crow = c + r * ldc;
    if (cols == kGemmNR) {
      for (int q = 0; q < 4; ++q) vst1q_f32(crow + 4 * q, v[q]);
    } else {
      float buf[kGemmNR];
      for (int q = 0; q < 4; ++q) vst1q_f32(buf + 4 * q, v[q]);
      for (int64_t j = 0; j < cols; ++j) crow[j] = buf[j];
    }
  }
}

void matvec(const float* a, const float* b, float* c, int64_t n, int64_t k,
            const GemmEpilogue& epi) {
  constexpr int64_t kBlock = 512;
  for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
    const int64_t j1 = std::min(n, j0 + kBlock);
    for (int64_t j = j0; j < j1; ++j) c[j] = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float32x4_t av = vdupq_n_f32(a[kk]);
      const float* brow = b + kk * n;
      int64_t j = j0;
      for (; j + 4 <= j1; j += 4) {
        vst1q_f32(c + j, vfmaq_f32(vld1q_f32(c + j), av, vld1q_f32(brow + j)));
      }
      for (; j < j1; ++j) c[j] = std::fma(a[kk], brow[j], c[j]);
    }
  }
  if (!epi.empty()) {
    for (int64_t j = 0; j < n; ++j) {
      float v = c[j];
      if (epi.bias_row != nullptr) v += epi.bias_row[0];
      if (epi.bias_col != nullptr) v += epi.bias_col[j];
      if (epi.relu) v = v > 0.0f ? v : 0.0f;
      c[j] = v;
    }
  }
}

#endif  // architecture micro-kernels

// Tile-kernel dispatch, checked per gemm call: the AVX-512 variant
// (bit-identical, see gemm_avx512.hpp) when compiled in, supported by the
// CPU, and not disabled for A/B timing; else the baseline micro-kernel.
using MicroKernelFn = void (*)(const float*, const float*, int64_t, float*, int64_t, int64_t,
                               int64_t, const float*, const float*, bool);

MicroKernelFn tile_kernel() {
  return gemm_avx512_available() && gemm_avx512_tile_enabled() ? &micro_kernel_avx512
                                                               : &micro_kernel;
}

}  // namespace

bool simd_gemm_available() {
#if defined(SALNOV_SIMD_AVX2)
  static const bool ok = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }();
  return ok;
#else
  return true;  // NEON is baseline on aarch64
#endif
}

const char* simd_arch_name() {
#if defined(SALNOV_SIMD_AVX2)
  return gemm_avx512_available() && gemm_avx512_tile_enabled() ? "avx512" : "avx2";
#else
  return "neon";
#endif
}

void simd_gemm(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
               const GemmEpilogue& epi, const PackedMatrix* packed_a,
               const PackedMatrix* packed_b) {
  if (m == 1) {
    matvec(a, b, c, n, k, epi);
    return;
  }

  WorkspaceScope scope;
  const float* bp;
  if (packed_b != nullptr) {
    bp = packed_b->data.data();
  } else {
    float* scratch = scope.floats(packed_b_floats(k, n));
    pack_b_panels_into(b, k, n, scratch);
    bp = scratch;
  }
  const float* ap_all = packed_a != nullptr ? packed_a->data.data() : nullptr;
  const int64_t panels = gemm_col_panels(n);
  const MicroKernelFn micro = tile_kernel();

  const auto band = [&](int64_t row_begin, int64_t row_end) {
    // Band-local scratch: pool workers pack A tiles into their own arenas.
    WorkspaceScope band_scope;
    float* ap_buf = ap_all == nullptr ? band_scope.floats(kGemmMR * k) : nullptr;
    for (int64_t i0 = row_begin; i0 < row_end; i0 += kGemmMR) {
      const int64_t rows = std::min<int64_t>(kGemmMR, row_end - i0);
      const float* ap;
      if (ap_all != nullptr) {
        ap = ap_all + (i0 / kGemmMR) * kGemmMR * k;
      } else {
        pack_a_tile(a + i0 * k, rows, k, k, ap_buf);
        ap = ap_buf;
      }
      const float* bias_row = epi.bias_row != nullptr ? epi.bias_row + i0 : nullptr;
      for (int64_t p = 0; p < panels; ++p) {
        const int64_t j0 = p * kGemmNR;
        const int64_t cols = std::min<int64_t>(kGemmNR, n - j0);
        micro(ap, bp + p * kGemmNR * k, k, c + i0 * n + j0, n, rows, cols, bias_row,
              epi.bias_col != nullptr ? epi.bias_col + j0 : nullptr, epi.relu);
      }
    }
  };

  if (m > kSimdRowGrain && m * n * k >= kMinParallelFlops && parallel::num_threads() > 1) {
    parallel::parallel_for(0, m, kSimdRowGrain, band);
  } else {
    // Single-worker path: panel-outer / band-inner, so each packed B panel
    // streams through cache exactly once per call instead of once per row
    // band (the thin-m batched-inference shapes are otherwise bound on
    // re-reading B). The micro-kernel invocations are the banded order
    // permuted — every output element still accumulates in ascending k —
    // so results stay bit-identical to the parallel partition.
    WorkspaceScope serial_scope;
    const float* ap_panels = ap_all;
    if (ap_panels == nullptr) {
      float* scratch = serial_scope.floats(packed_a_floats(m, k));
      pack_a_panels_into(a, m, k, scratch);
      ap_panels = scratch;
    }
    for (int64_t p = 0; p < panels; ++p) {
      const int64_t j0 = p * kGemmNR;
      const int64_t cols = std::min<int64_t>(kGemmNR, n - j0);
      const float* bias_col = epi.bias_col != nullptr ? epi.bias_col + j0 : nullptr;
      for (int64_t i0 = 0; i0 < m; i0 += kGemmMR) {
        const int64_t rows = std::min<int64_t>(kGemmMR, m - i0);
        micro(ap_panels + (i0 / kGemmMR) * kGemmMR * k, bp + p * kGemmNR * k, k,
              c + i0 * n + j0, n, rows, cols,
              epi.bias_row != nullptr ? epi.bias_row + i0 : nullptr, bias_col, epi.relu);
      }
    }
  }
}

#else  // no SIMD support compiled in: runtime-safe stubs

bool simd_gemm_available() { return false; }
const char* simd_arch_name() { return "none"; }
void simd_gemm(const float*, const float*, float*, int64_t, int64_t, int64_t,
               const GemmEpilogue&, const PackedMatrix*, const PackedMatrix*) {}

#endif

namespace {

std::atomic<bool>& avx512_tile_flag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("SALNOV_GEMM_AVX512");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

}  // namespace

bool gemm_avx512_tile_enabled() { return avx512_tile_flag().load(std::memory_order_relaxed); }

void set_gemm_avx512_tile(bool enabled) {
  avx512_tile_flag().store(enabled, std::memory_order_relaxed);
}

}  // namespace salnov::detail
