#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace salnov::parallel {
namespace {

thread_local bool tls_in_parallel_region = false;

int env_thread_override() {
  static const int cached = [] {
    const char* value = std::getenv("SALNOV_THREADS");
    if (value == nullptr || *value == '\0') return 0;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || parsed < 1 || parsed > 1024) return 0;  // ignore junk
    return static_cast<int>(parsed);
  }();
  return cached;
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Global pool. Workers are detached-on-exit by design: the pool lives for
/// the whole process and is only constructed once a parallel_for actually
/// needs a second thread.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    // Intentionally leaked: workers block on the pool's condition variable
    // for the process lifetime, so destroying it during static teardown
    // while they wait would be undefined behaviour.
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  /// Executes job(chunk) for every chunk in [0, chunk_count) using up to
  /// `threads` threads including the caller. Blocks until every chunk is
  /// done; rethrows the first exception any chunk raised.
  void run(int64_t chunk_count, int threads, const ChunkFn& body, int64_t begin, int64_t end,
           int64_t grain) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // One parallel region at a time: outer regions from different user
      // threads serialize here rather than interleave chunk pools.
      owner_cv_.wait(lock, [&] { return job_ == nullptr; });
      ensure_workers(threads - 1, lock);
      job_ = &body;
      job_begin_ = begin;
      job_end_ = end;
      job_grain_ = grain;
      chunk_count_ = chunk_count;
      next_chunk_.store(0, std::memory_order_relaxed);
      workers_running_ = 0;
      error_ = nullptr;
      ++job_id_;
      work_cv_.notify_all();
    }

    work_chunks();  // the caller is a full participant

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return workers_running_ == 0 &&
             next_chunk_.load(std::memory_order_relaxed) >= chunk_count_;
    });
    job_ = nullptr;
    std::exception_ptr error = error_;
    owner_cv_.notify_one();
    lock.unlock();
    if (error) std::rethrow_exception(error);
  }

 private:
  ThreadPool() = default;

  void ensure_workers(int wanted, std::unique_lock<std::mutex>&) {
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
      workers_.back().detach();
    }
  }

  void worker_loop() {
    tls_in_parallel_region = true;  // workers never spawn nested pools
    uint64_t seen_job = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return job_ != nullptr && job_id_ != seen_job; });
        seen_job = job_id_;
        ++workers_running_;
      }
      work_chunks();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --workers_running_;
        if (workers_running_ == 0 &&
            next_chunk_.load(std::memory_order_relaxed) >= chunk_count_) {
          done_cv_.notify_one();
        }
      }
    }
  }

  /// Pulls chunk indices until the job is exhausted (or poisoned by an
  /// earlier exception). Safe to call from the owner and from workers.
  void work_chunks() {
    const ChunkFn* body = job_;
    for (;;) {
      const int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_count_) break;
      const int64_t chunk_begin = job_begin_ + chunk * job_grain_;
      const int64_t chunk_end = std::min(chunk_begin + job_grain_, job_end_);
      try {
        (*body)(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
        // Poison the counter so remaining chunks are skipped quickly.
        next_chunk_.store(chunk_count_, std::memory_order_relaxed);
        break;
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes workers for a new job
  std::condition_variable done_cv_;   ///< signals the owner that chunks drained
  std::condition_variable owner_cv_;  ///< serializes concurrent outer regions
  std::vector<std::thread> workers_;

  // Current job (guarded by mutex_ except next_chunk_).
  const ChunkFn* job_ = nullptr;
  int64_t job_begin_ = 0;
  int64_t job_end_ = 0;
  int64_t job_grain_ = 1;
  int64_t chunk_count_ = 0;
  std::atomic<int64_t> next_chunk_{0};
  uint64_t job_id_ = 0;
  int workers_running_ = 0;
  std::exception_ptr error_;
};

std::atomic<int> explicit_threads{0};

}  // namespace

void set_num_threads(int threads) {
  if (threads < 0) throw std::invalid_argument("set_num_threads: negative thread count");
  explicit_threads.store(threads, std::memory_order_relaxed);
}

int num_threads() {
  const int forced = explicit_threads.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = env_thread_override();
  if (env > 0) return env;
  return hardware_threads();
}

bool in_parallel_region() { return tls_in_parallel_region; }

void parallel_for(int64_t begin, int64_t end, int64_t grain, const ChunkFn& fn) {
  if (grain < 1) throw std::invalid_argument("parallel_for: grain must be >= 1");
  if (begin >= end) return;
  const int64_t chunk_count = (end - begin + grain - 1) / grain;
  const int threads = num_threads();

  // Serial execution still walks the identical chunk partition, so the
  // per-chunk arithmetic (and therefore every bit of output) matches the
  // threaded path exactly.
  if (threads <= 1 || chunk_count <= 1 || tls_in_parallel_region) {
    for (int64_t chunk = 0; chunk < chunk_count; ++chunk) {
      const int64_t chunk_begin = begin + chunk * grain;
      fn(chunk_begin, std::min(chunk_begin + grain, end));
    }
    return;
  }

  tls_in_parallel_region = true;
  try {
    ThreadPool::instance().run(chunk_count,
                               static_cast<int>(std::min<int64_t>(threads, chunk_count)), fn, begin,
                               end, grain);
  } catch (...) {
    tls_in_parallel_region = false;
    throw;
  }
  tls_in_parallel_region = false;
}

}  // namespace salnov::parallel
