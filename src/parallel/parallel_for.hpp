// Deterministic data-parallel execution over a lazily-constructed global
// thread pool.
//
// The paper motivates VisualBackProp as a *real-time* saliency method
// (Bojarski et al., arXiv:1704.07911), so the runtime monitor's hot loops —
// GEMM, the SSIM summed-area tables, per-frame scoring fan-out, scene
// generation — are parallelized through this one primitive.
//
// Determinism contract: parallel_for(begin, end, grain, fn) partitions
// [begin, end) into FIXED chunks of `grain` iterations (the partition
// depends only on the arguments, never on the thread count), and `fn`
// must touch only state owned by its chunk range. Under that contract the
// results are bit-identical whether the chunks run on 1 thread or N, which
// is what lets SALNOV_THREADS scale throughput without perturbing a single
// score, threshold, or trained weight.
//
// Thread-count resolution order: set_num_threads() override, then the
// SALNOV_THREADS environment variable, then std::thread::hardware_concurrency.
// Nested parallel_for calls (e.g. gemm inside a per-frame fan-out) execute
// inline on the calling worker, so arbitrary composition cannot deadlock or
// oversubscribe.
#pragma once

#include <cstdint>
#include <functional>

namespace salnov::parallel {

/// Chunk body: processes the half-open iteration range [chunk_begin,
/// chunk_end). Must only write state owned by that range.
using ChunkFn = std::function<void(int64_t chunk_begin, int64_t chunk_end)>;

/// Overrides the worker count (1 = fully serial). 0 restores automatic
/// resolution (SALNOV_THREADS env, else hardware concurrency). Thread-safe;
/// growing the pool is lazy, shrinking just idles the surplus workers.
void set_num_threads(int threads);

/// The resolved worker count parallel_for will use right now (>= 1).
int num_threads();

/// Runs fn over [begin, end) in fixed chunks of `grain` iterations. The
/// chunk partition is independent of the thread count; chunks may execute
/// in any order and on any thread. Exceptions thrown by fn are rethrown on
/// the calling thread (first one wins). `grain` must be >= 1.
void parallel_for(int64_t begin, int64_t end, int64_t grain, const ChunkFn& fn);

/// True while the calling thread is executing inside a parallel_for chunk
/// (used by nested calls to fall back to inline execution).
bool in_parallel_region();

}  // namespace salnov::parallel
