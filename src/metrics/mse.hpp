// Pixel-wise mean squared error, the similarity metric of the Richter & Roy
// baseline that the paper argues against.
#pragma once

#include "image/image.hpp"
#include "tensor/tensor.hpp"

namespace salnov {

/// MSE between two equal-shaped tensors, in the tensors' native units.
double mse(const Tensor& a, const Tensor& b);

/// MSE between two equal-sized images, in [0, 1] pixel units.
double mse(const Image& a, const Image& b);

/// MSE in 0-255 intensity units — the scale the paper quotes in Fig. 3
/// (e.g. "MSE 91.7" for the noisy image).
double mse_255(const Image& a, const Image& b);

}  // namespace salnov
