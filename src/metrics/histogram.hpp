// Fixed-bin histograms, used to regenerate the paper's Fig. 5 and Fig. 7
// score-distribution plots as printable series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace salnov {

class Histogram {
 public:
  /// Histogram over [lo, hi) with `bins` equal-width bins. Values outside the
  /// range are clamped into the first/last bin so no sample is dropped.
  Histogram(double lo, double hi, int64_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  int64_t bins() const { return static_cast<int64_t>(counts_.size()); }
  int64_t count(int64_t bin) const { return counts_.at(static_cast<size_t>(bin)); }
  int64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Center value of the given bin.
  double bin_center(int64_t bin) const;

  /// Fraction of all samples in the given bin (0 if empty histogram).
  double frequency(int64_t bin) const;

  /// Renders an ASCII bar chart, one bin per row, `width` characters at the
  /// modal bin. Used by the bench harnesses to print paper-style histograms.
  std::string ascii(int64_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Overlap coefficient of two sample sets, estimated on a shared histogram:
/// sum over bins of min(freq_a, freq_b). 0 = perfectly separated,
/// 1 = identical distributions. This is the "how separable are the two
/// classes" number we report alongside each histogram figure.
double distribution_overlap(const std::vector<double>& a, const std::vector<double>& b, int64_t bins = 50);

}  // namespace salnov
