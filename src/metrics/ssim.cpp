#include "metrics/ssim.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/summed_area.hpp"

namespace salnov {
namespace {

void validate(const Image& x, const Image& y, const SsimOptions& options) {
  if (!x.same_size(y)) {
    throw std::invalid_argument("ssim: image sizes differ (" + std::to_string(x.height()) + "x" +
                                std::to_string(x.width()) + " vs " + std::to_string(y.height()) + "x" +
                                std::to_string(y.width()) + ")");
  }
  if (options.window < 1 || options.stride < 1) {
    throw std::invalid_argument("ssim: window and stride must be >= 1");
  }
  if (x.height() < options.window || x.width() < options.window) {
    throw std::invalid_argument("ssim: image smaller than window");
  }
}

}  // namespace

WindowStats window_stats(const Image& x, const Image& y, int64_t y0, int64_t x0, int64_t window) {
  WindowStats s;
  const double n = static_cast<double>(window * window);
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_yy = 0.0, sum_xy = 0.0;
  for (int64_t dy = 0; dy < window; ++dy) {
    for (int64_t dx = 0; dx < window; ++dx) {
      const double vx = x(y0 + dy, x0 + dx);
      const double vy = y(y0 + dy, x0 + dx);
      sum_x += vx;
      sum_y += vy;
      sum_xx += vx * vx;
      sum_yy += vy * vy;
      sum_xy += vx * vy;
    }
  }
  s.mu_x = sum_x / n;
  s.mu_y = sum_y / n;
  s.var_x = sum_xx / n - s.mu_x * s.mu_x;
  s.var_y = sum_yy / n - s.mu_y * s.mu_y;
  s.cov_xy = sum_xy / n - s.mu_x * s.mu_y;
  return s;
}

double ssim_from_stats(const WindowStats& stats, const SsimOptions& options) {
  const double c1 = options.c1();
  const double c2 = options.c2();
  const double numerator = (2.0 * stats.mu_x * stats.mu_y + c1) * (2.0 * stats.cov_xy + c2);
  const double denominator =
      (stats.mu_x * stats.mu_x + stats.mu_y * stats.mu_y + c1) * (stats.var_x + stats.var_y + c2);
  return numerator / denominator;
}

namespace {

/// Shared fast path: SSIM accumulated over all windows via summed-area
/// tables, optionally filling a per-window map.
double ssim_sat(const Image& x, const Image& y, const SsimOptions& options, Image* map) {
  const int64_t h = x.height(), w = x.width();
  const int64_t win = options.window, stride = options.stride;
  const double n_win = static_cast<double>(win * win);

  const int64_t sat_size = (h + 1) * (w + 1);
  std::vector<double> sx(sat_size), sy(sat_size), sxx(sat_size), syy(sat_size), sxy(sat_size);
  {
    std::vector<double> gx(h * w), gy(h * w), gxx(h * w), gyy(h * w), gxy(h * w);
    for (int64_t i = 0; i < h * w; ++i) {
      const double xv = x.tensor()[i];
      const double yv = y.tensor()[i];
      gx[i] = xv;
      gy[i] = yv;
      gxx[i] = xv * xv;
      gyy[i] = yv * yv;
      gxy[i] = xv * yv;
    }
    build_summed_area(gx.data(), h, w, sx.data());
    build_summed_area(gy.data(), h, w, sy.data());
    build_summed_area(gxx.data(), h, w, sxx.data());
    build_summed_area(gyy.data(), h, w, syy.data());
    build_summed_area(gxy.data(), h, w, sxy.data());
  }

  const int64_t rows = (h - win) / stride + 1;
  const int64_t cols = (w - win) / stride + 1;
  double acc = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t y0 = r * stride;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t x0 = c * stride;
      WindowStats s;
      s.mu_x = summed_area_rect(sx.data(), w, y0, x0, y0 + win, x0 + win) / n_win;
      s.mu_y = summed_area_rect(sy.data(), w, y0, x0, y0 + win, x0 + win) / n_win;
      s.var_x = std::max(
          0.0, summed_area_rect(sxx.data(), w, y0, x0, y0 + win, x0 + win) / n_win - s.mu_x * s.mu_x);
      s.var_y = std::max(
          0.0, summed_area_rect(syy.data(), w, y0, x0, y0 + win, x0 + win) / n_win - s.mu_y * s.mu_y);
      s.cov_xy =
          summed_area_rect(sxy.data(), w, y0, x0, y0 + win, x0 + win) / n_win - s.mu_x * s.mu_y;
      const double value = ssim_from_stats(s, options);
      acc += value;
      if (map != nullptr) (*map)(r, c) = static_cast<float>(value);
    }
  }
  return acc / static_cast<double>(rows * cols);
}

}  // namespace

double ssim(const Image& x, const Image& y, const SsimOptions& options) {
  validate(x, y, options);
  return ssim_sat(x, y, options, nullptr);
}

double ssim_reference(const Image& x, const Image& y, const SsimOptions& options) {
  validate(x, y, options);
  double acc = 0.0;
  int64_t count = 0;
  for (int64_t y0 = 0; y0 + options.window <= x.height(); y0 += options.stride) {
    for (int64_t x0 = 0; x0 + options.window <= x.width(); x0 += options.stride) {
      acc += ssim_from_stats(window_stats(x, y, y0, x0, options.window), options);
      ++count;
    }
  }
  return acc / static_cast<double>(count);
}

Image ssim_map(const Image& x, const Image& y, const SsimOptions& options) {
  validate(x, y, options);
  const int64_t rows = (x.height() - options.window) / options.stride + 1;
  const int64_t cols = (x.width() - options.window) / options.stride + 1;
  Image map(rows, cols);
  ssim_sat(x, y, options, &map);
  return map;
}

}  // namespace salnov
