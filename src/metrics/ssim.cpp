#include "metrics/ssim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/summed_area.hpp"
#include "parallel/parallel_for.hpp"

namespace salnov {
namespace {

void validate(const Image& x, const Image& y, const SsimOptions& options) {
  if (!x.same_size(y)) {
    throw std::invalid_argument("ssim: image sizes differ (" + std::to_string(x.height()) + "x" +
                                std::to_string(x.width()) + " vs " + std::to_string(y.height()) + "x" +
                                std::to_string(y.width()) + ")");
  }
  if (options.window < 1 || options.stride < 1) {
    throw std::invalid_argument("ssim: window and stride must be >= 1");
  }
  if (x.height() < options.window || x.width() < options.window) {
    throw std::invalid_argument("ssim: image smaller than window");
  }
}

}  // namespace

WindowStats window_stats(const Image& x, const Image& y, int64_t y0, int64_t x0, int64_t window) {
  WindowStats s;
  const double n = static_cast<double>(window * window);
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_yy = 0.0, sum_xy = 0.0;
  for (int64_t dy = 0; dy < window; ++dy) {
    for (int64_t dx = 0; dx < window; ++dx) {
      const double vx = x(y0 + dy, x0 + dx);
      const double vy = y(y0 + dy, x0 + dx);
      sum_x += vx;
      sum_y += vy;
      sum_xx += vx * vx;
      sum_yy += vy * vy;
      sum_xy += vx * vy;
    }
  }
  s.mu_x = sum_x / n;
  s.mu_y = sum_y / n;
  // Clamp the catastrophic-cancellation negatives on near-constant windows,
  // exactly as the summed-area fast path does: without this, ssim() and
  // ssim_reference() disagree and SSIM can exceed 1.0. The covariance gets
  // the matching Cauchy-Schwarz bound so x == y still scores exactly 1 once
  // the (identical) rounding error in var and cov is clamped away.
  s.var_x = std::max(0.0, sum_xx / n - s.mu_x * s.mu_x);
  s.var_y = std::max(0.0, sum_yy / n - s.mu_y * s.mu_y);
  const double cov_cap = std::sqrt(s.var_x * s.var_y);
  s.cov_xy = std::clamp(sum_xy / n - s.mu_x * s.mu_y, -cov_cap, cov_cap);
  return s;
}

double ssim_from_stats(const WindowStats& stats, const SsimOptions& options) {
  const double c1 = options.c1();
  const double c2 = options.c2();
  const double numerator = (2.0 * stats.mu_x * stats.mu_y + c1) * (2.0 * stats.cov_xy + c2);
  const double denominator =
      (stats.mu_x * stats.mu_x + stats.mu_y * stats.mu_y + c1) * (stats.var_x + stats.var_y + c2);
  return numerator / denominator;
}

namespace {

/// Shared fast path: SSIM accumulated over all windows via summed-area
/// tables, optionally filling a per-window map.
double ssim_sat(const Image& x, const Image& y, const SsimOptions& options, Image* map) {
  const int64_t h = x.height(), w = x.width();
  const int64_t win = options.window, stride = options.stride;
  const double n_win = static_cast<double>(win * win);

  const int64_t sat_size = (h + 1) * (w + 1);
  std::vector<double> sx(sat_size), sy(sat_size), sxx(sat_size), syy(sat_size), sxy(sat_size);
  {
    // The five tables (x, y, x^2, y^2, xy) are independent, so each builds
    // on its own pool worker; the grid fill + prefix-sum per table is the
    // same arithmetic at any thread count.
    double* const sats[5] = {sx.data(), sy.data(), sxx.data(), syy.data(), sxy.data()};
    const float* xs = x.tensor().data();
    const float* ys = y.tensor().data();
    parallel::parallel_for(0, 5, 1, [&](int64_t table_begin, int64_t table_end) {
      std::vector<double> grid(static_cast<size_t>(h * w));
      for (int64_t t = table_begin; t < table_end; ++t) {
        for (int64_t i = 0; i < h * w; ++i) {
          const double xv = xs[i];
          const double yv = ys[i];
          switch (t) {
            case 0: grid[i] = xv; break;
            case 1: grid[i] = yv; break;
            case 2: grid[i] = xv * xv; break;
            case 3: grid[i] = yv * yv; break;
            default: grid[i] = xv * yv; break;
          }
        }
        build_summed_area(grid.data(), h, w, sats[t]);
      }
    });
  }

  const int64_t rows = (h - win) / stride + 1;
  const int64_t cols = (w - win) / stride + 1;
  double acc = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t y0 = r * stride;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t x0 = c * stride;
      WindowStats s;
      s.mu_x = summed_area_rect(sx.data(), w, y0, x0, y0 + win, x0 + win) / n_win;
      s.mu_y = summed_area_rect(sy.data(), w, y0, x0, y0 + win, x0 + win) / n_win;
      s.var_x = std::max(
          0.0, summed_area_rect(sxx.data(), w, y0, x0, y0 + win, x0 + win) / n_win - s.mu_x * s.mu_x);
      s.var_y = std::max(
          0.0, summed_area_rect(syy.data(), w, y0, x0, y0 + win, x0 + win) / n_win - s.mu_y * s.mu_y);
      const double cov_cap = std::sqrt(s.var_x * s.var_y);
      s.cov_xy = std::clamp(
          summed_area_rect(sxy.data(), w, y0, x0, y0 + win, x0 + win) / n_win - s.mu_x * s.mu_y,
          -cov_cap, cov_cap);
      const double value = ssim_from_stats(s, options);
      acc += value;
      if (map != nullptr) (*map)(r, c) = static_cast<float>(value);
    }
  }
  return acc / static_cast<double>(rows * cols);
}

}  // namespace

double ssim(const Image& x, const Image& y, const SsimOptions& options) {
  validate(x, y, options);
  return ssim_sat(x, y, options, nullptr);
}

double ssim_reference(const Image& x, const Image& y, const SsimOptions& options) {
  validate(x, y, options);
  double acc = 0.0;
  int64_t count = 0;
  for (int64_t y0 = 0; y0 + options.window <= x.height(); y0 += options.stride) {
    for (int64_t x0 = 0; x0 + options.window <= x.width(); x0 += options.stride) {
      acc += ssim_from_stats(window_stats(x, y, y0, x0, options.window), options);
      ++count;
    }
  }
  return acc / static_cast<double>(count);
}

Image ssim_map(const Image& x, const Image& y, const SsimOptions& options) {
  validate(x, y, options);
  const int64_t rows = (x.height() - options.window) / options.stride + 1;
  const int64_t cols = (x.width() - options.window) / options.stride + 1;
  Image map(rows, cols);
  ssim_sat(x, y, options, &map);
  return map;
}

}  // namespace salnov
