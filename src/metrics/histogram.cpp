#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace salnov {

Histogram::Histogram(double lo, double hi, int64_t bins) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
  if (bins < 1) throw std::invalid_argument("Histogram: requires at least one bin");
  counts_.assign(static_cast<size_t>(bins), 0);
}

void Histogram::add(double value) {
  const double scaled = (value - lo_) / (hi_ - lo_) * static_cast<double>(bins());
  auto bin = static_cast<int64_t>(std::floor(scaled));
  bin = std::clamp<int64_t>(bin, 0, bins() - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

double Histogram::bin_center(int64_t bin) const {
  if (bin < 0 || bin >= bins()) throw std::out_of_range("Histogram::bin_center");
  const double width = (hi_ - lo_) / static_cast<double>(bins());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::frequency(int64_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::ascii(int64_t width) const {
  const int64_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (int64_t b = 0; b < bins(); ++b) {
    const int64_t bar =
        peak == 0 ? 0 : (count(b) * width + peak / 2) / peak;  // rounded proportional length
    os.precision(4);
    os << std::showpos << std::fixed;
    os.width(10);
    os << bin_center(b) << std::noshowpos << " |";
    for (int64_t i = 0; i < bar; ++i) os << '#';
    os << "  " << count(b) << '\n';
  }
  return os.str();
}

double distribution_overlap(const std::vector<double>& a, const std::vector<double>& b, int64_t bins) {
  if (a.empty() || b.empty()) throw std::invalid_argument("distribution_overlap: empty sample set");
  const auto [amin, amax] = std::minmax_element(a.begin(), a.end());
  const auto [bmin, bmax] = std::minmax_element(b.begin(), b.end());
  double lo = std::min(*amin, *bmin);
  double hi = std::max(*amax, *bmax);
  if (lo == hi) return 1.0;  // all samples identical -> full overlap
  Histogram ha(lo, hi, bins);
  Histogram hb(lo, hi, bins);
  ha.add_all(a);
  hb.add_all(b);
  double overlap = 0.0;
  for (int64_t i = 0; i < bins; ++i) {
    overlap += std::min(ha.frequency(i), hb.frequency(i));
  }
  return overlap;
}

}  // namespace salnov
