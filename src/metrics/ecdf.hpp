// Empirical CDF and percentile utilities.
//
// The paper (following Richter & Roy) turns a reconstruction-loss
// distribution into a novelty threshold: "an image is classified as novel if
// its [loss] falls outside of the 99th percentile of the empirical CDF of
// the distribution of losses in the training set."
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <vector>

namespace salnov {

/// Thrown when a calibration fit receives no finite samples: the resulting
/// quantiles would be degenerate and every threshold built from them
/// meaningless. Derives from std::invalid_argument so pre-typed callers keep
/// catching it.
class EmptyCalibrationError : public std::invalid_argument {
 public:
  explicit EmptyCalibrationError(const std::string& what) : std::invalid_argument(what) {}
};

class EmpiricalCdf {
 public:
  /// Builds the ECDF of the given samples. Non-finite samples (NaN, +/-Inf)
  /// are dropped before any quantile math — NaNs violate the strict weak
  /// ordering the sort relies on, and a single corrupted score must not
  /// poison a calibrated threshold. Throws EmptyCalibrationError when no
  /// finite sample remains (including on empty input).
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x): fraction of samples <= x.
  double cdf(double x) const;

  /// Inverse CDF with linear interpolation between order statistics;
  /// `q` in [0, 1]. quantile(0) = min sample, quantile(1) = max sample.
  /// Interpolation can fall strictly between ties — for calibrated
  /// thresholds use upper_quantile/lower_quantile, which always return an
  /// actual sample.
  double quantile(double q) const;

  /// Conservative inverse CDF: the smallest SAMPLE x with cdf(x) >= q, so
  /// at most a (1-q) fraction of the samples exceed the result. Exactly
  /// idempotent against cdf() — upper_quantile(cdf(x)) == x for every
  /// sample x — including on duplicate-heavy sample sets where the
  /// interpolating quantile() lands between tied values.
  double upper_quantile(double q) const;

  /// Mirror image: the largest sample x such that at most a `q` fraction of
  /// the samples lie strictly below x. lower_quantile(q) on S equals
  /// -upper_quantile(1-q) on -S.
  double lower_quantile(double q) const;

  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }
  size_t size() const { return sorted_.size(); }

  /// Number of finite samples the CDF was fitted on (alias of size(),
  /// spelled out for calibration-audit call sites).
  size_t fitted_count() const { return sorted_.size(); }

  /// Non-finite samples dropped during the fit. A fit-time diagnostic only:
  /// save()/load() round-trips the retained samples, so a loaded CDF
  /// reports 0 here.
  size_t dropped_nonfinite() const { return dropped_nonfinite_; }

  /// The retained (finite, sorted) samples backing the CDF.
  const std::vector<double>& samples() const { return sorted_; }

  /// Serializes the sample set (f64 little-endian, length-prefixed), so a
  /// fitted CDF round-trips bit-exactly through model/pipeline files.
  void save(std::ostream& os) const;
  static EmpiricalCdf load(std::istream& is);

 private:
  std::vector<double> sorted_;
  size_t dropped_nonfinite_ = 0;
};

/// Convenience: q-th quantile of a sample set. Copies and sorts `samples`
/// (O(n log n)) on EVERY call — callers reading several percentiles of the
/// same sample set should construct one EmpiricalCdf (or use the overload
/// below) so the sort happens once.
double quantile(const std::vector<double>& samples, double q);

/// q-th quantile from an already-built ECDF: O(1), no copy, no re-sort.
double quantile(const EmpiricalCdf& cdf, double q);

/// Sample mean; throws on empty input.
double mean(const std::vector<double>& samples);

/// Sample standard deviation (unbiased); returns 0 for fewer than 2 samples.
double stddev(const std::vector<double>& samples);

}  // namespace salnov
