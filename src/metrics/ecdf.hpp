// Empirical CDF and percentile utilities.
//
// The paper (following Richter & Roy) turns a reconstruction-loss
// distribution into a novelty threshold: "an image is classified as novel if
// its [loss] falls outside of the 99th percentile of the empirical CDF of
// the distribution of losses in the training set."
#pragma once

#include <cstddef>
#include <vector>

namespace salnov {

class EmpiricalCdf {
 public:
  /// Builds the ECDF of the given samples. Throws on an empty sample set.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x): fraction of samples <= x.
  double cdf(double x) const;

  /// Inverse CDF with linear interpolation between order statistics;
  /// `q` in [0, 1]. quantile(0) = min sample, quantile(1) = max sample.
  double quantile(double q) const;

  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }
  size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

/// Convenience: q-th quantile of a sample set. Copies and sorts `samples`
/// (O(n log n)) on EVERY call — callers reading several percentiles of the
/// same sample set should construct one EmpiricalCdf (or use the overload
/// below) so the sort happens once.
double quantile(const std::vector<double>& samples, double q);

/// q-th quantile from an already-built ECDF: O(1), no copy, no re-sort.
double quantile(const EmpiricalCdf& cdf, double q);

/// Sample mean; throws on empty input.
double mean(const std::vector<double>& samples);

/// Sample standard deviation (unbiased); returns 0 for fewer than 2 samples.
double stddev(const std::vector<double>& samples);

}  // namespace salnov
