#include "metrics/roc.hpp"

#include <algorithm>
#include <stdexcept>

namespace salnov {

double auc_high_is_positive(const std::vector<double>& positives, const std::vector<double>& negatives) {
  if (positives.empty() || negatives.empty()) {
    throw std::invalid_argument("auc: both classes must be non-empty");
  }
  // Mann-Whitney U via sorted negatives: for each positive, count negatives
  // strictly below it plus half the ties. O((P+N) log N).
  std::vector<double> sorted_neg = negatives;
  std::sort(sorted_neg.begin(), sorted_neg.end());
  double u = 0.0;
  for (double p : positives) {
    const auto lo = std::lower_bound(sorted_neg.begin(), sorted_neg.end(), p);
    const auto hi = std::upper_bound(sorted_neg.begin(), sorted_neg.end(), p);
    u += static_cast<double>(std::distance(sorted_neg.begin(), lo));
    u += 0.5 * static_cast<double>(std::distance(lo, hi));
  }
  return u / (static_cast<double>(positives.size()) * static_cast<double>(negatives.size()));
}

double auc_low_is_positive(const std::vector<double>& positives, const std::vector<double>& negatives) {
  return 1.0 - auc_high_is_positive(positives, negatives);
}

namespace {

double fraction_above(const std::vector<double>& values, double threshold) {
  if (values.empty()) throw std::invalid_argument("rates_at_threshold: empty class");
  int64_t count = 0;
  for (double v : values) {
    if (v > threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double fraction_below(const std::vector<double>& values, double threshold) {
  if (values.empty()) throw std::invalid_argument("rates_at_threshold: empty class");
  int64_t count = 0;
  for (double v : values) {
    if (v < threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace

DetectionRates rates_at_threshold_high(const std::vector<double>& positives,
                                       const std::vector<double>& negatives, double threshold) {
  return DetectionRates{fraction_above(positives, threshold), fraction_above(negatives, threshold)};
}

DetectionRates rates_at_threshold_low(const std::vector<double>& positives,
                                      const std::vector<double>& negatives, double threshold) {
  return DetectionRates{fraction_below(positives, threshold), fraction_below(negatives, threshold)};
}

double average_precision_high(const std::vector<double>& positives,
                              const std::vector<double>& negatives) {
  if (positives.empty() || negatives.empty()) {
    throw std::invalid_argument("average_precision: both classes must be non-empty");
  }
  // Rank all scores descending; AP = sum over positive hits of precision at
  // that rank, divided by the number of positives. Ties are broken with
  // negatives first (the pessimistic convention).
  struct Scored {
    double score;
    bool positive;
  };
  std::vector<Scored> all;
  all.reserve(positives.size() + negatives.size());
  for (double s : positives) all.push_back({s, true});
  for (double s : negatives) all.push_back({s, false});
  std::sort(all.begin(), all.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return !a.positive && b.positive;
  });
  double ap = 0.0;
  int64_t true_positives = 0;
  for (size_t rank = 0; rank < all.size(); ++rank) {
    if (!all[rank].positive) continue;
    ++true_positives;
    ap += static_cast<double>(true_positives) / static_cast<double>(rank + 1);
  }
  return ap / static_cast<double>(positives.size());
}

double average_precision_low(const std::vector<double>& positives,
                             const std::vector<double>& negatives) {
  auto negate = [](std::vector<double> v) {
    for (double& s : v) s = -s;
    return v;
  };
  return average_precision_high(negate(positives), negate(negatives));
}

ConfidenceInterval bootstrap_auc_ci(const std::vector<double>& positives,
                                    const std::vector<double>& negatives, Rng& rng, int resamples,
                                    double confidence) {
  if (resamples < 10) throw std::invalid_argument("bootstrap_auc_ci: too few resamples");
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_auc_ci: confidence outside (0, 1)");
  }
  ConfidenceInterval ci;
  ci.point = auc_high_is_positive(positives, negatives);

  std::vector<double> estimates;
  estimates.reserve(static_cast<size_t>(resamples));
  std::vector<double> pos_sample(positives.size());
  std::vector<double> neg_sample(negatives.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : pos_sample) {
      v = positives[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(positives.size()) - 1))];
    }
    for (auto& v : neg_sample) {
      v = negatives[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(negatives.size()) - 1))];
    }
    estimates.push_back(auc_high_is_positive(pos_sample, neg_sample));
  }
  std::sort(estimates.begin(), estimates.end());
  const double tail = (1.0 - confidence) / 2.0;
  const auto index = [&](double q) {
    const auto i = static_cast<size_t>(q * static_cast<double>(estimates.size() - 1));
    return estimates[std::min(i, estimates.size() - 1)];
  };
  ci.lower = index(tail);
  ci.upper = index(1.0 - tail);
  return ci;
}

}  // namespace salnov
