#include "metrics/ms_ssim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace salnov {
namespace {

constexpr double kStandardWeights[5] = {0.0448, 0.2856, 0.3001, 0.2363, 0.1333};

/// Mean luminance and contrast/structure terms over all windows at one scale.
struct ScaleTerms {
  double luminance = 0.0;
  double contrast_structure = 0.0;
};

ScaleTerms scale_terms(const Image& x, const Image& y, const SsimOptions& options) {
  const double c1 = options.c1();
  const double c2 = options.c2();
  double l_acc = 0.0;
  double cs_acc = 0.0;
  int64_t count = 0;
  for (int64_t y0 = 0; y0 + options.window <= x.height(); y0 += options.stride) {
    for (int64_t x0 = 0; x0 + options.window <= x.width(); x0 += options.stride) {
      const WindowStats s = window_stats(x, y, y0, x0, options.window);
      l_acc += (2.0 * s.mu_x * s.mu_y + c1) / (s.mu_x * s.mu_x + s.mu_y * s.mu_y + c1);
      cs_acc += (2.0 * s.cov_xy + c2) / (s.var_x + s.var_y + c2);
      ++count;
    }
  }
  return {l_acc / static_cast<double>(count), cs_acc / static_cast<double>(count)};
}

}  // namespace

Image downsample2x(const Image& image) {
  const int64_t out_h = image.height() / 2;
  const int64_t out_w = image.width() / 2;
  if (out_h < 1 || out_w < 1) throw std::invalid_argument("downsample2x: image too small");
  Image out(out_h, out_w);
  for (int64_t y = 0; y < out_h; ++y) {
    for (int64_t x = 0; x < out_w; ++x) {
      out(y, x) = 0.25f * (image(2 * y, 2 * x) + image(2 * y, 2 * x + 1) + image(2 * y + 1, 2 * x) +
                           image(2 * y + 1, 2 * x + 1));
    }
  }
  return out;
}

int64_t ms_ssim_scale_count(int64_t height, int64_t width, const MsSsimOptions& options) {
  int64_t scales = 0;
  int64_t h = height, w = width;
  while (scales < options.max_scales && h >= options.ssim.window && w >= options.ssim.window) {
    ++scales;
    h /= 2;
    w /= 2;
  }
  return scales;
}

double ms_ssim(const Image& x, const Image& y, const MsSsimOptions& options) {
  if (!x.same_size(y)) throw std::invalid_argument("ms_ssim: image sizes differ");
  if (options.max_scales < 1 || options.max_scales > 5) {
    throw std::invalid_argument("ms_ssim: max_scales must be in [1, 5]");
  }
  const int64_t scales = ms_ssim_scale_count(x.height(), x.width(), options);
  if (scales < 1) throw std::invalid_argument("ms_ssim: image smaller than SSIM window");

  // Renormalize the standard weights over the scales actually used.
  double weight_sum = 0.0;
  for (int64_t j = 0; j < scales; ++j) weight_sum += kStandardWeights[j];

  Image cur_x = x;
  Image cur_y = y;
  double score = 1.0;
  for (int64_t j = 0; j < scales; ++j) {
    const ScaleTerms terms = scale_terms(cur_x, cur_y, options.ssim);
    const double weight = kStandardWeights[j] / weight_sum;
    const double cs = std::max(0.0, terms.contrast_structure);
    score *= std::pow(cs, weight);
    if (j == scales - 1) {
      const double luminance = std::max(0.0, terms.luminance);
      score *= std::pow(luminance, weight);
    } else {
      cur_x = downsample2x(cur_x);
      cur_y = downsample2x(cur_y);
    }
  }
  return score;
}

}  // namespace salnov
