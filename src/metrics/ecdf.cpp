#include "metrics/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace salnov {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty sample set");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("EmpiricalCdf::quantile: q outside [0, 1]");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double quantile(const std::vector<double>& samples, double q) {
  return EmpiricalCdf(samples).quantile(q);
}

double quantile(const EmpiricalCdf& cdf, double q) { return cdf.quantile(q); }

double mean(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("mean: empty sample set");
  double acc = 0.0;
  for (double v : samples) acc += v;
  return acc / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double acc = 0.0;
  for (double v : samples) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

}  // namespace salnov
