#include "metrics/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace salnov {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  const size_t original = sorted_.size();
  sorted_.erase(std::remove_if(sorted_.begin(), sorted_.end(),
                               [](double v) { return !std::isfinite(v); }),
                sorted_.end());
  dropped_nonfinite_ = original - sorted_.size();
  if (sorted_.empty()) {
    throw EmptyCalibrationError("EmpiricalCdf: no finite samples (" + std::to_string(original) +
                                " given, " + std::to_string(dropped_nonfinite_) +
                                " non-finite dropped)");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

void EmpiricalCdf::save(std::ostream& os) const {
  write_i64(os, static_cast<int64_t>(sorted_.size()));
  for (double v : sorted_) write_f64(os, v);
}

EmpiricalCdf EmpiricalCdf::load(std::istream& is) {
  const int64_t count = read_i64(is);
  if (count <= 0 || count > (int64_t{1} << 32)) {
    throw SerializationError("EmpiricalCdf::load: implausible sample count " +
                             std::to_string(count));
  }
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) samples.push_back(read_f64(is));
  return EmpiricalCdf(std::move(samples));
}

double EmpiricalCdf::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) / static_cast<double>(sorted_.size());
}

namespace {

void check_q(double q, const char* who) {
  // Negated comparison so NaN (for which every comparison is false) is
  // rejected rather than flowing into floor/ceil index math.
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument(std::string(who) + ": q outside [0, 1]");
  }
}

/// Smallest rank k in [1, n] with k/n >= q. Snaps q*n to the nearest
/// integer within float noise so ranks computed from cdf() outputs (exact
/// sample fractions k/n) round-trip instead of ceiling up one rank.
int64_t rank_at_least(double q, int64_t n) {
  const double qn = q * static_cast<double>(n);
  const double nearest = std::round(qn);
  const int64_t k = std::abs(qn - nearest) <= 1e-9 * std::max(1.0, qn)
                        ? static_cast<int64_t>(nearest)
                        : static_cast<int64_t>(std::ceil(qn));
  return std::min(std::max<int64_t>(k, 1), n);
}

}  // namespace

double EmpiricalCdf::quantile(double q) const {
  check_q(q, "EmpiricalCdf::quantile");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double EmpiricalCdf::upper_quantile(double q) const {
  check_q(q, "EmpiricalCdf::upper_quantile");
  const auto n = static_cast<int64_t>(sorted_.size());
  return sorted_[static_cast<size_t>(rank_at_least(q, n) - 1)];
}

double EmpiricalCdf::lower_quantile(double q) const {
  check_q(q, "EmpiricalCdf::lower_quantile");
  const auto n = static_cast<int64_t>(sorted_.size());
  return sorted_[static_cast<size_t>(n - rank_at_least(1.0 - q, n))];
}

double quantile(const std::vector<double>& samples, double q) {
  return EmpiricalCdf(samples).quantile(q);
}

double quantile(const EmpiricalCdf& cdf, double q) { return cdf.quantile(q); }

double mean(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("mean: empty sample set");
  double acc = 0.0;
  for (double v : samples) acc += v;
  return acc / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double acc = 0.0;
  for (double v : samples) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

}  // namespace salnov
