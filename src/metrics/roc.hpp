// ROC / AUC for novelty-detection quality.
//
// The paper reports separations qualitatively via histograms; we additionally
// quantify each figure with the area under the ROC curve of "novel vs target"
// scores, so shape claims ("SSIM separates better than MSE") become numbers.
#pragma once

#include <vector>

#include "tensor/rng.hpp"

namespace salnov {

/// AUC of the detector that flags high scores as positive. `positives` are
/// scores of the positive (novel) class, `negatives` of the target class.
/// Ties count 1/2 (equivalent to the Mann-Whitney U statistic). Result in
/// [0, 1]; 0.5 = chance, 1.0 = perfect separation.
double auc_high_is_positive(const std::vector<double>& positives, const std::vector<double>& negatives);

/// AUC of the detector that flags *low* scores as positive (for SSIM-style
/// similarity scores where novel inputs score low).
double auc_low_is_positive(const std::vector<double>& positives, const std::vector<double>& negatives);

/// One operating point of a thresholded detector.
struct DetectionRates {
  double true_positive_rate = 0.0;   ///< fraction of novel inputs flagged
  double false_positive_rate = 0.0;  ///< fraction of target inputs flagged
};

/// Rates of the detector "flag if score > threshold".
DetectionRates rates_at_threshold_high(const std::vector<double>& positives,
                                       const std::vector<double>& negatives, double threshold);

/// Rates of the detector "flag if score < threshold".
DetectionRates rates_at_threshold_low(const std::vector<double>& positives,
                                      const std::vector<double>& negatives, double threshold);

/// Average precision (area under the precision-recall curve, computed by
/// the step-wise interpolation over the ranked scores) of the detector that
/// flags high scores as positive.
double average_precision_high(const std::vector<double>& positives,
                              const std::vector<double>& negatives);

/// Average precision of the detector that flags low scores as positive.
double average_precision_low(const std::vector<double>& positives,
                             const std::vector<double>& negatives);

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;  ///< the full-sample estimate
};

/// Percentile-bootstrap confidence interval for the AUC (high-is-positive
/// orientation; flip the sample roles for the other orientation).
/// `confidence` in (0, 1), e.g. 0.95. Deterministic given `rng`.
ConfidenceInterval bootstrap_auc_ci(const std::vector<double>& positives,
                                    const std::vector<double>& negatives, Rng& rng,
                                    int resamples = 1000, double confidence = 0.95);

}  // namespace salnov
