// Summed-area tables (integral images) over double grids.
//
// Shared by the SSIM metric and the differentiable SSIM loss: window sums
// become O(1) per window, making whole-image SSIM O(pixels) regardless of
// window size.
#pragma once

#include <algorithm>
#include <cstdint>

namespace salnov {

/// Builds the (rows + 1) x (cols + 1) summed-area table of `grid` into
/// `sat`: sat[r][c] = sum of grid[0..r)[0..c). The first row and column of
/// `sat` are zero.
inline void build_summed_area(const double* grid, int64_t rows, int64_t cols, double* sat) {
  const int64_t stride = cols + 1;
  std::fill(sat, sat + stride, 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    double row_acc = 0.0;
    sat[(r + 1) * stride] = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      row_acc += grid[r * cols + c];
      sat[(r + 1) * stride + (c + 1)] = sat[r * stride + (c + 1)] + row_acc;
    }
  }
}

/// Sum of grid[r0..r1)[c0..c1) from its summed-area table (`cols` is the
/// grid's column count, not the table's).
inline double summed_area_rect(const double* sat, int64_t cols, int64_t r0, int64_t c0, int64_t r1,
                               int64_t c1) {
  const int64_t stride = cols + 1;
  return sat[r1 * stride + c1] - sat[r0 * stride + c1] - sat[r1 * stride + c0] +
         sat[r0 * stride + c0];
}

}  // namespace salnov
