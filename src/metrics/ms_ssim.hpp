// Multi-Scale SSIM (Wang, Simoncelli & Bovik, 2003).
//
// Extension beyond the paper: the paper's conclusion points toward richer
// perceptual similarity metrics; MS-SSIM is the canonical next step. It
// evaluates the contrast/structure term of SSIM at several dyadic scales
// (halving resolution each time) and the luminance term at the coarsest
// scale, combining them with the standard exponents:
//
//   MS-SSIM = l_M^{w_M} * prod_j cs_j^{w_j}
//
// with w = (0.0448, 0.2856, 0.3001, 0.2363, 0.1333). When the image is too
// small for five scales the weights of the usable scales are renormalized.
// Negative contrast/structure values are clamped to zero before the power
// (the usual convention), so the result is in [0, 1].
#pragma once

#include <cstdint>

#include "image/image.hpp"
#include "metrics/ssim.hpp"

namespace salnov {

struct MsSsimOptions {
  SsimOptions ssim;        ///< window/constants used at every scale
  int64_t max_scales = 5;  ///< cap on the dyadic pyramid depth
};

/// MS-SSIM score in [0, 1]; 1 = identical. Images must allow at least one
/// scale (size >= SSIM window). Throws std::invalid_argument otherwise.
double ms_ssim(const Image& x, const Image& y, const MsSsimOptions& options = {});

/// The number of dyadic scales ms_ssim would use for a given image size.
int64_t ms_ssim_scale_count(int64_t height, int64_t width, const MsSsimOptions& options = {});

/// 2x box downsample (average of 2x2 blocks; odd trailing row/column
/// dropped). Exposed for tests.
Image downsample2x(const Image& image);

}  // namespace salnov
