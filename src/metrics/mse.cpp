#include "metrics/mse.hpp"

#include <stdexcept>

namespace salnov {

double mse(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("mse: shape mismatch " + shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
  if (a.numel() == 0) throw std::invalid_argument("mse: empty tensors");
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.numel());
}

double mse(const Image& a, const Image& b) { return mse(a.tensor(), b.tensor()); }

double mse_255(const Image& a, const Image& b) { return mse(a, b) * 255.0 * 255.0; }

}  // namespace salnov
