#include "metrics/mse.hpp"

#include <stdexcept>

namespace salnov {

double mse(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("mse: shape mismatch " + shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
  if (a.numel() == 0) throw std::invalid_argument("mse: empty tensors");
  // Raw pointers keep the per-element bounds check out of the accumulation
  // loop. The summation itself is untouched: one double chain in ascending
  // index order, which downstream thresholds and golden traces depend on
  // bit-for-bit.
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(n);
}

double mse(const Image& a, const Image& b) { return mse(a.tensor(), b.tensor()); }

double mse_255(const Image& a, const Image& b) { return mse(a, b) * 255.0 * 255.0; }

}  // namespace salnov
