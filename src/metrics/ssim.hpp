// Structural Similarity Index (SSIM) — Wang & Bovik.
//
// The paper adopts SSIM as both the autoencoder training loss and the
// novelty score. Following the paper: 11x11 sliding windows, alpha = beta =
// gamma = 1, which reduces the luminance/contrast/structure product to
//
//   SSIM(x, y) = (2 mu_x mu_y + c1)(2 sigma_xy + c2) /
//                ((mu_x^2 + mu_y^2 + c1)(sigma_x^2 + sigma_y^2 + c2))
//
// computed per window and averaged ("mean SSIM"). Values are in [-1, 1]
// with 1 = identical. Inputs are expected in [0, 1]; the smoothing
// constants use the conventional K1 = 0.01, K2 = 0.03 with L = 1.
#pragma once

#include <cstdint>

#include "image/image.hpp"

namespace salnov {

struct SsimOptions {
  int64_t window = 11;    ///< Side length of the sliding window (paper: 11).
  int64_t stride = 1;     ///< Window stride; 1 matches standard mean-SSIM.
  double k1 = 0.01;       ///< Luminance smoothing coefficient.
  double k2 = 0.03;       ///< Contrast smoothing coefficient.
  double dynamic_range = 1.0;  ///< L; 1.0 for [0,1]-normalized images.

  double c1() const { return (k1 * dynamic_range) * (k1 * dynamic_range); }
  double c2() const { return (k2 * dynamic_range) * (k2 * dynamic_range); }
};

/// Mean SSIM over all (windowed) positions. Images must be the same size and
/// at least window x window. Throws std::invalid_argument otherwise.
/// Computed with summed-area tables: O(pixels) regardless of window size.
double ssim(const Image& x, const Image& y, const SsimOptions& options = {});

/// Naive per-window reference implementation (O(windows * window^2)); used
/// by tests to cross-validate the fast path and available for debugging.
double ssim_reference(const Image& x, const Image& y, const SsimOptions& options = {});

/// Per-window SSIM map: entry (i, j) is the SSIM of the windows whose
/// top-left corner is (i * stride, j * stride). Useful for visualizing where
/// two images diverge.
Image ssim_map(const Image& x, const Image& y, const SsimOptions& options = {});

/// Per-window statistics used by both the metric and the differentiable
/// loss (exposed for the nn::SsimLoss backward pass and for tests).
struct WindowStats {
  double mu_x = 0.0;
  double mu_y = 0.0;
  double var_x = 0.0;   ///< biased (divide-by-N) variance
  double var_y = 0.0;
  double cov_xy = 0.0;  ///< biased covariance
};

/// Computes biased first/second moments of the window with top-left (y0, x0).
WindowStats window_stats(const Image& x, const Image& y, int64_t y0, int64_t x0, int64_t window);

/// SSIM value of a single window from its statistics.
double ssim_from_stats(const WindowStats& stats, const SsimOptions& options);

}  // namespace salnov
