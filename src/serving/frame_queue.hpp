// Bounded frame queue with drop-oldest load shedding.
//
// A camera does not stop producing frames because the detector is slow; a
// serving runtime that queues without bound turns a transient stall into
// ever-growing latency on *every* subsequent frame. This queue holds at most
// `capacity` frames and, when full, sheds the OLDEST queued frame — for
// novelty monitoring the freshest view of the world is strictly more
// valuable than a stale one. Shedding is counted, never silent.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>

#include "image/image.hpp"

namespace salnov::serving {

struct QueuedFrame {
  int64_t id = 0;
  int64_t stream_id = 0;  ///< which camera produced the frame (0 = single-stream)
  Image frame;
};

class FrameQueue {
 public:
  /// Throws std::invalid_argument when capacity < 1.
  explicit FrameQueue(size_t capacity);

  struct PushResult {
    bool accepted = false;  ///< false only after close()
    size_t shed = 0;        ///< oldest frames dropped to make room (0 or 1)
  };

  /// Enqueues a frame, shedding the oldest queued frame if the queue is
  /// full. A push after close() is dropped (`accepted == false`).
  PushResult push(QueuedFrame item);

  /// Blocks until a frame is available or the queue is closed. Returns
  /// false when closed and drained.
  bool pop_wait(QueuedFrame& out);

  /// Non-blocking pop; false when empty.
  bool try_pop(QueuedFrame& out);

  /// Unblocks poppers; queued frames may still be drained.
  void close();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t high_water_mark() const;
  int64_t shed_total() const;

  /// Frames of `stream_id` dropped by the drop-oldest policy. Per-stream
  /// accounting lets a multi-camera boundary prove WHOSE frames paid for
  /// the backpressure (sum over streams == shed_total()).
  int64_t shed_for_stream(int64_t stream_id) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedFrame> items_;
  bool closed_ = false;
  size_t high_water_ = 0;
  int64_t shed_ = 0;
  std::map<int64_t, int64_t> shed_by_stream_;
};

}  // namespace salnov::serving
