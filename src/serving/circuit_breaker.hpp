// Circuit breaker guarding the saliency stage of the serving pipeline.
//
// Saliency is the most expensive and most failure-prone stage (it walks the
// steering CNN's activations); when it stalls repeatedly there is no point
// burning the frame deadline re-attempting it every frame. The breaker
// follows the classic three-state protocol, with "time" measured in frames
// so the behaviour is deterministic under a FakeClock:
//
//   kClosed   — saliency runs normally; `failure_threshold` *consecutive*
//               failures trip the breaker.
//   kOpen     — saliency is skipped outright for `open_frames` frames
//               (the supervisor serves the raw+MSE rung meanwhile).
//   kHalfOpen — one probe frame is allowed through. Success re-closes the
//               breaker (and the supervisor restores the top of the mode
//               ladder); failure re-opens it for another backoff window.
#pragma once

#include <cstdint>

namespace salnov::serving {

struct CircuitBreakerConfig {
  int failure_threshold = 3;  ///< consecutive failures that trip the breaker
  int64_t open_frames = 8;    ///< frames to hold open before the half-open probe
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// Ticks the frame counter; while open, `open_frames` ticks graduate the
  /// breaker to half-open. Call once per frame before consulting allows().
  void begin_frame();

  /// True when the protected stage may be attempted this frame (closed, or
  /// half-open probe).
  bool allows() const { return state_ != BreakerState::kOpen; }

  void record_success();
  void record_failure();

  BreakerState state() const { return state_; }
  int64_t trips() const { return trips_; }
  int64_t probe_successes() const { return probe_successes_; }
  int64_t probe_failures() const { return probe_failures_; }

 private:
  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int64_t open_frame_count_ = 0;
  int64_t trips_ = 0;
  int64_t probe_successes_ = 0;
  int64_t probe_failures_ = 0;
};

}  // namespace salnov::serving
