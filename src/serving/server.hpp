// ServingServer: bounded-queue front end over a Supervisor.
//
// The supervisor is deliberately single-threaded (its ladder and breaker
// are per-stream state machines); the server adds the asynchronous camera
// boundary: producers submit frames without blocking, a dedicated worker
// drains the bounded FrameQueue through the supervisor, and bursts beyond
// the queue capacity shed the oldest frames instead of growing latency.
// All supervisor access — worker processing, health snapshots, result
// harvesting — is serialized under one mutex, so snapshots never observe a
// half-updated frame.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serving/frame_queue.hpp"
#include "serving/supervisor.hpp"

namespace salnov::serving {

struct ServerConfig {
  size_t queue_capacity = 64;
  /// Retain per-frame ServeResults for take_results(). Disable for soak
  /// runs where only the health counters matter.
  bool keep_results = true;
};

class ServingServer {
 public:
  /// `supervisor` must outlive the server. The worker thread starts
  /// immediately.
  explicit ServingServer(Supervisor& supervisor, ServerConfig config = {});

  /// Joins the worker (drains remaining queued frames first).
  ~ServingServer();

  /// Enqueues a frame; never blocks. Returns the number of frames shed to
  /// make room (0 or 1). Submissions after stop() are dropped.
  size_t submit(Image frame);

  /// Blocks until every submitted frame has been processed.
  void drain();

  /// Drains, then stops the worker. Idempotent.
  void stop();

  /// Moves out the accumulated per-frame results (empty when
  /// config.keep_results is false).
  std::vector<ServeResult> take_results();

  /// Supervisor snapshot plus queue statistics.
  HealthSnapshot health() const;

 private:
  void worker_loop();

  Supervisor& supervisor_;
  ServerConfig config_;
  FrameQueue queue_;
  std::atomic<int64_t> next_id_{0};  ///< producers may submit concurrently

  mutable std::mutex mu_;  ///< guards supervisor_ and results_
  std::condition_variable idle_cv_;
  /// Accepted frames not yet processed (shed frames excluded). Atomic so
  /// submit() stays non-blocking while the worker holds mu_ mid-frame; the
  /// worker's decrement-to-zero happens under mu_ and notifies idle_cv_.
  std::atomic<int64_t> outstanding_{0};
  std::vector<ServeResult> results_;

  bool stopped_ = false;
  std::thread worker_;
};

}  // namespace salnov::serving
