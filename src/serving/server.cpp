#include "serving/server.hpp"

namespace salnov::serving {

ServingServer::ServingServer(Supervisor& supervisor, ServerConfig config)
    : supervisor_(supervisor),
      config_(config),
      queue_(config.queue_capacity),
      worker_([this] { worker_loop(); }) {}

ServingServer::~ServingServer() { stop(); }

size_t ServingServer::submit(Image frame) {
  QueuedFrame item;
  item.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  item.frame = std::move(frame);
  const FrameQueue::PushResult pushed = queue_.push(std::move(item));
  if (pushed.accepted) {
    // A shed frame was accepted earlier but will never be processed.
    outstanding_ += 1 - static_cast<int64_t>(pushed.shed);
  }
  return pushed.shed;
}

void ServingServer::worker_loop() {
  QueuedFrame item;
  while (queue_.pop_wait(item)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const ServeResult result = supervisor_.process(item.frame);
      if (config_.keep_results) results_.push_back(result);
      --outstanding_;
    }
    idle_cv_.notify_all();
  }
}

void ServingServer::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return outstanding_.load() == 0; });
}

void ServingServer::stop() {
  if (stopped_) return;
  drain();
  stopped_ = true;
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

std::vector<ServeResult> ServingServer::take_results() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServeResult> out;
  out.swap(results_);
  return out;
}

HealthSnapshot ServingServer::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthSnapshot snapshot = supervisor_.health();
  snapshot.queue_capacity = static_cast<int64_t>(queue_.capacity());
  snapshot.queue_high_water = static_cast<int64_t>(queue_.high_water_mark());
  snapshot.queue_shed = queue_.shed_total();
  return snapshot;
}

}  // namespace salnov::serving
