// Serving-runtime introspection: stage/mode vocabulary, latency rings, and
// the exportable health snapshot.
//
// The supervisor's whole value is that it *reacts* — so its reactions must
// be observable. Every counter here is exact (no sampling): a test that
// injects three saliency stalls can assert exactly three stage overruns, and
// an operator reading the JSON snapshot sees the same numbers the fallback
// ladder acted on.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serving/circuit_breaker.hpp"

namespace salnov::serving {

/// Pipeline stages, in execution order. Values double as TimingFault stage
/// indices and as indices into per-stage arrays.
enum class Stage : int {
  kValidate = 0,  ///< frame screening (validator + frozen-frame check)
  kSteer,         ///< steering CNN forward pass (the vehicle's primary output)
  kSaliency,      ///< VBP/gradient/LRP mask of the steering model
  kReconstruct,   ///< autoencoder forward pass
  kScore,         ///< SSIM or MSE similarity scoring
};
inline constexpr int kStageCount = 5;

const char* stage_name(Stage stage);

/// Degradation ladder, ordered from preferred to last-resort. Rung names
/// reflect the paper's proposed configuration (VBP + SSIM); a detector
/// configured differently keeps the same ladder semantics — "primary",
/// "primary preprocessing with MSE", "raw passthrough with MSE", hold.
enum class ServingMode : int {
  kVbpSsim = 0,  ///< full pipeline at the configured preprocessing + score
  kVbpMse,       ///< saliency kept, SSIM pass skipped (MSE score)
  kRawMse,       ///< saliency skipped, raw frame + MSE
  kSensorHold,   ///< ladder exhausted: hold last safe behaviour, report sensor fault
  kVbpSsimQ8,    ///< kVbpSsim with int8-quantized forwards (cheaper, bounded drift)
  kVbpMseQ8,     ///< kVbpMse with int8-quantized forwards
};
inline constexpr int kServingModeCount = 6;

const char* serving_mode_name(ServingMode mode);

/// The quantized rungs were appended to the enum (serialized ordinals are
/// load-bearing: traces and health JSON store the int values), so ladder
/// ORDER is defined by this explicit rank table, not by enum arithmetic:
///   vbp+ssim -> vbp+ssim-q8 -> vbp+mse -> vbp+mse-q8 -> raw+mse -> hold.
/// Supervisors fitted without quantized calibration skip the q8 rungs;
/// serving_ladder_next/prev take the skip flag so both ladders share one
/// definition.
inline constexpr int kServingLadderRanks = 6;

/// Position of `mode` in the degradation ladder (0 = most preferred).
int serving_mode_ladder_rank(ServingMode mode);

/// Mode at ladder position `rank` (clamped to [0, kServingLadderRanks - 1]).
ServingMode serving_ladder_mode_at(int rank);

/// True for the int8-quantized rungs.
bool serving_mode_quantized(ServingMode mode);

/// One rung down (towards kSensorHold) / up (towards kVbpSsim), skipping
/// quantized rungs when `skip_quantized`. Saturates at the ladder ends.
ServingMode serving_ladder_next(ServingMode mode, bool skip_quantized);
ServingMode serving_ladder_prev(ServingMode mode, bool skip_quantized);

/// Fixed-window ring of recent stage latencies; percentiles are computed
/// over the window by nearest-rank on a sorted copy.
class LatencyRing {
 public:
  explicit LatencyRing(size_t capacity = 256);

  void push(int64_t ns);

  /// Nearest-rank percentile over the current window, 0 when empty.
  /// `p` in [0, 1].
  int64_t percentile_ns(double p) const;

  /// Total samples ever pushed (not capped by the window).
  int64_t count() const { return total_; }

 private:
  std::vector<int64_t> samples_;
  size_t capacity_;
  size_t next_ = 0;
  bool full_ = false;
  int64_t total_ = 0;
};

struct StageHealth {
  std::string name;
  int64_t overruns = 0;   ///< times this stage blew its budget
  int64_t samples = 0;    ///< times this stage ran
  int64_t p50_ns = 0;     ///< median latency over the recent window
  int64_t p99_ns = 0;     ///< tail latency over the recent window
};

/// Exact assembler/batching/failure-domain counters, aggregated across a
/// ServingCluster's replicas. Lives here (not cluster.hpp) so the snapshot
/// can embed it without a circular include.
struct ClusterStats {
  int64_t batches = 0;          ///< batched forwards executed
  int64_t batched_frames = 0;   ///< frames that went through a batch
  int64_t max_batch_seals = 0;  ///< batches sealed by hitting max_batch
  int64_t window_seals = 0;     ///< batches sealed by the gather-window deadline
  int64_t flush_seals = 0;      ///< batches sealed by drain()/stop()
  int64_t max_gather_wait_ns = 0;  ///< worst sealed_ns - arrival_ns over all frames
  int64_t provided_steer = 0;      ///< frames served a batched steering angle
  int64_t provided_saliency = 0;   ///< frames served a batched saliency mask
  int64_t provided_recon = 0;      ///< frames served a batched reconstruction
  int64_t recon_mispredicts = 0;   ///< provided reconstructions discarded (input mismatch)
  int64_t prescreen_rejects = 0;   ///< frames excluded from batched compute by the validator

  // Replica failure domain (all zero when the watchdog is disabled).
  int64_t quarantines = 0;         ///< replicas pulled from rotation
  int64_t probe_attempts = 0;      ///< half-open canary probes run
  int64_t probe_failures = 0;      ///< probes that did not pass
  int64_t restores = 0;            ///< replicas restored to rotation
  int64_t failovers = 0;           ///< stream migrations between replicas
  int64_t redispatched_frames = 0; ///< frames re-queued on a surviving replica
  int64_t fallback_frames = 0;     ///< frames served inline by their Supervisor
  int64_t shed_frames = 0;         ///< frames shed by admission credits
  int64_t slow_batches = 0;        ///< batches charged a slow-replica penalty
  int64_t canary_checks = 0;       ///< canary evaluations (periodic + probes)
  int64_t canary_failures = 0;     ///< canary evaluations outside epsilon
};

/// Point-in-time view of the serving runtime, exportable as JSON from the
/// CLI (`salnov_cli serve`). Queue fields are zero for a bare Supervisor
/// and filled in by ServingServer.
struct HealthSnapshot {
  ServingMode mode = ServingMode::kVbpSsim;
  BreakerState breaker_state = BreakerState::kClosed;

  int64_t frames_total = 0;
  int64_t frames_scored = 0;
  int64_t frames_abandoned = 0;  ///< frame deadline blown mid-pipeline
  int64_t frames_held = 0;       ///< served in kSensorHold
  int64_t frames_sensor_bad = 0; ///< screened out (validator fault / frozen)

  int64_t deadline_overruns = 0; ///< frames where any budget was blown
  int64_t scoring_failures = 0;  ///< stage threw mid-pipeline
  int64_t nonfinite_scores = 0;  ///< NaN/Inf scores (always treated as novel)

  int64_t step_downs = 0;        ///< ladder demotions (incl. breaker trips)
  int64_t promotions = 0;        ///< ladder promotions via hysteresis
  int64_t breaker_trips = 0;
  int64_t probe_successes = 0;
  int64_t probe_failures = 0;

  // Online shadow calibration / drift (all zero, state "off", when the
  // calibration loop is disabled).
  int64_t drift_checks = 0;        ///< periodic shadow-vs-served comparisons run
  int64_t drift_detections = 0;    ///< checks where some rung exceeded tolerance
  int64_t threshold_swaps = 0;     ///< hot-swaps installed (auto, forced, external)
  int64_t swap_persist_failures = 0;  ///< swaps aborted because persistence failed
  int64_t threshold_epoch = 0;     ///< epoch of the served ThresholdSet (0 = fitted)
  std::string drift_state = "off"; ///< "off" | "stable" | "alert" | "drifted"

  int64_t queue_capacity = 0;
  int64_t queue_high_water = 0;
  int64_t queue_shed = 0;

  std::array<StageHealth, kStageCount> stages;

  /// Per-rung shadow-vs-served quantile gauges; empty when calibration is
  /// off. Quantiles are NaN (JSON null) until the rung has shadow samples.
  struct ShadowGauge {
    std::string rung;
    int64_t shadow_samples = 0;
    double shadow_quantile = 0.0;   ///< shadow sketch's threshold quantile
    double served_threshold = 0.0;  ///< threshold the scorer currently applies
    bool eligible = false;          ///< enough samples to compare/rebuild
  };
  std::vector<ShadowGauge> shadow;

  /// Cluster-level batching/failover counters; rendered as a nested
  /// "cluster" object only when has_cluster (set by aggregate_health()).
  bool has_cluster = false;
  ClusterStats cluster;

  /// Single-line JSON rendering (stable key order; counters are integers,
  /// shadow gauges are floats rendered as JSON null when non-finite).
  std::string to_json() const;
};

}  // namespace salnov::serving
