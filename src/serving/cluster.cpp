#include "serving/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "driving/steering_trainer.hpp"
#include "faults/fault_injector.hpp"
#include "nn/model_io.hpp"
#include "tensor/rng.hpp"

namespace salnov::serving {

ServingCluster::ServingCluster(const core::NoveltyDetector& detector,
                               nn::Sequential* steering_model, ClusterConfig config,
                               Clock* clock)
    : detector_(detector),
      steering_model_(steering_model),
      config_(std::move(config)),
      owned_clock_(clock == nullptr ? std::make_unique<SteadyClock>() : nullptr),
      clock_(clock == nullptr ? owned_clock_.get() : clock),
      saliency_configured_(core::uses_saliency(detector.config().preprocessing)) {
  if (config_.streams < 1) {
    throw std::invalid_argument("ServingCluster: streams must be >= 1");
  }
  if (config_.replicas < 1) {
    throw std::invalid_argument("ServingCluster: replicas must be >= 1");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("ServingCluster: max_batch must be >= 1");
  }
  if (config_.admission_credits < 0) {
    throw std::invalid_argument("ServingCluster: admission_credits must be >= 0");
  }
  if (config_.gather_window_ns < 0) config_.gather_window_ns = 0;

  supervisors_.reserve(static_cast<size_t>(config_.streams));
  for (int64_t s = 0; s < config_.streams; ++s) {
    supervisors_.push_back(
        std::make_unique<Supervisor>(detector_, steering_model_, config_.supervisor, clock_));
  }
  stream_mu_ = std::make_unique<std::mutex[]>(static_cast<size_t>(config_.streams));
  pending_per_stream_ =
      std::make_unique<std::atomic<int64_t>[]>(static_cast<size_t>(config_.streams));
  shed_per_stream_.assign(static_cast<size_t>(config_.streams), 0);

  // A replica beyond one-per-stream could never receive a frame.
  const int64_t replica_count = std::min(config_.replicas, config_.streams);
  replicas_.reserve(static_cast<size_t>(replica_count));
  for (int64_t i = 0; i < replica_count; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->index = i;
    replica->last_heartbeat_ns.store(clock_->now_ns(), std::memory_order_release);
    replicas_.push_back(std::move(replica));
  }
  routing_.resize(static_cast<size_t>(config_.streams));
  for (int64_t s = 0; s < config_.streams; ++s) {
    routing_[static_cast<size_t>(s)] = s % replica_count;
  }

  if (config_.watchdog.enabled) {
    watchdog_ = std::make_unique<ReplicaWatchdog>(replica_count, config_.watchdog);
    if (steering_model_ != nullptr) {
      // Canary probe material: a pristine serialized copy of the steering
      // weights (each evaluation rebuilds a throwaway clone from it, so
      // simulated corruption never touches the shared weights) and a fixed
      // synthetic frame with its known-good angle.
      std::ostringstream bytes;
      nn::save_model(bytes, *steering_model_);
      pristine_steering_bytes_ = bytes.str();
      const int64_t h = detector_.config().height;
      const int64_t w = detector_.config().width;
      canary_frame_ = Image(h, w);
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w; ++x) {
          canary_frame_(y, x) = static_cast<float>((y * w + x) % 17) / 16.0f;
        }
      }
      canary_known_good_ = driving::predict_steering(*steering_model_, canary_frame_);
      has_canary_ = std::isfinite(canary_known_good_);
    }
  }

  for (auto& replica : replicas_) {
    replica->worker = std::thread([this, r = replica.get()] { worker_loop(*r); });
  }
}

ServingCluster::~ServingCluster() { stop(); }

void ServingCluster::submit(int64_t stream_id, Image frame) {
  if (stream_id < 0 || stream_id >= config_.streams) {
    throw std::out_of_range("ServingCluster: bad stream id " + std::to_string(stream_id));
  }
  if (stopped_.load(std::memory_order_acquire)) return;
  const size_t s = static_cast<size_t>(stream_id);

  std::lock_guard<std::mutex> route_lock(routing_mu_);
  // Stamp under routing_mu_ so the global sequence, the timestamps, and the
  // queue push order agree even with concurrent submitters — rebalancing
  // merges queues by arrival_seq and relies on queues staying sorted.
  PendingFrame pending;
  pending.stream_id = stream_id;
  pending.arrival_seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  pending.arrival_ns = clock_->now_ns();
  pending.frame = std::move(frame);
  const int64_t now = pending.arrival_ns;

  tick_locked(now);

  if (config_.admission_credits > 0 &&
      pending_per_stream_[s].load(std::memory_order_acquire) >= config_.admission_credits) {
    // Credits exhausted: shed this stream's OLDEST queued frame so the
    // freshest data survives. When every pending frame is already inside a
    // sealed batch there is nothing left to shed but the new arrival.
    bool shed_queued = false;
    const int64_t route = routing_[s];
    if (route >= 0) {
      Replica& r = *replicas_[static_cast<size_t>(route)];
      std::lock_guard<std::mutex> lock(r.mu);
      for (auto it = r.queue.begin(); it != r.queue.end(); ++it) {
        if (it->stream_id == stream_id) {
          push_event_locked(ClusterEventKind::kShed, now, route, stream_id, it->arrival_seq);
          r.queue.erase(it);
          shed_queued = true;
          break;
        }
      }
    }
    ++shed_per_stream_[s];
    ++chaos_stats_.shed_frames;
    if (shed_queued) {
      pending_per_stream_[s].fetch_sub(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        outstanding_.fetch_sub(1, std::memory_order_acq_rel);
      }
      idle_cv_.notify_all();
      // fall through: the incoming frame is admitted in the shed one's place
    } else {
      push_event_locked(ClusterEventKind::kShed, now, -1, stream_id, pending.arrival_seq);
      return;
    }
  }

  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const int64_t route = routing_[s];
  if (route < 0) {
    // Every replica is quarantined: serve on the stream's own Supervisor.
    process_inline_locked(std::move(pending), now, /*was_pending=*/false);
    return;
  }
  pending_per_stream_[s].fetch_add(1, std::memory_order_acq_rel);
  Replica& replica = *replicas_[static_cast<size_t>(route)];
  {
    std::lock_guard<std::mutex> lock(replica.mu);
    replica.queue.push_back(std::move(pending));
  }
  replica.cv.notify_all();
}

void ServingCluster::tick() {
  if (stopped_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> route_lock(routing_mu_);
  tick_locked(clock_->now_ns());
}

void ServingCluster::pause() { paused_.store(true, std::memory_order_release); }

void ServingCluster::resume() {
  if (!paused_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& replica : replicas_) {
    // A worker that slept through the pause has a stale heartbeat; re-stamp
    // so the watchdog's silence check starts from the resume point.
    replica->last_heartbeat_ns.store(clock_->now_ns(), std::memory_order_release);
    // Notify under the replica lock: a worker that read paused_ == true but
    // has not entered wait() yet still holds mu, so it cannot miss this.
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->cv.notify_all();
  }
}

void ServingCluster::drain() {
  resume();
  {
    // Final watchdog pass before the flush: frames stranded on a replica
    // with an active outage fault must migrate (or fall back inline), not
    // be flushed through the "dead" replica — so watchdog-enabled drains
    // force-quarantine such replicas even below the miss threshold.
    std::lock_guard<std::mutex> route_lock(routing_mu_);
    const int64_t now = clock_->now_ns();
    tick_locked(now);
    if (watchdog_ && config_.replica_faults != nullptr) {
      bool changed = false;
      for (auto& replica : replicas_) {
        if (!watchdog_->healthy(replica->index)) continue;
        if (!config_.replica_faults->outage_active(replica->index, now)) continue;
        bool has_work = false;
        {
          std::lock_guard<std::mutex> lock(replica->mu);
          has_work = !replica->queue.empty();
        }
        if (has_work) {
          quarantine_locked(replica->index, now, /*detail=*/3);
          changed = true;
        }
      }
      if (changed) rebalance_locked(now);
    }
  }
  for (auto& replica : replicas_) {
    {
      std::lock_guard<std::mutex> lock(replica->mu);
      replica->flush = true;
    }
    replica->cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [&] { return outstanding_.load(std::memory_order_acquire) == 0; });
  }
  for (auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->flush = false;
  }
}

void ServingCluster::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  resume();
  for (auto& replica : replicas_) {
    {
      std::lock_guard<std::mutex> lock(replica->mu);
      replica->stopping = true;  // drains the queue, then the worker exits
    }
    replica->cv.notify_all();
  }
  for (auto& replica : replicas_) {
    if (replica->worker.joinable()) replica->worker.join();
  }
}

std::vector<ClusterResult> ServingCluster::take_results() {
  std::vector<ClusterResult> out;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    out.swap(results_);
  }
  std::sort(out.begin(), out.end(), [](const ClusterResult& a, const ClusterResult& b) {
    return a.arrival_seq < b.arrival_seq;
  });
  return out;
}

std::vector<ClusterEvent> ServingCluster::take_events() {
  std::lock_guard<std::mutex> lock(routing_mu_);
  std::vector<ClusterEvent> out;
  out.swap(events_);
  return out;
}

HealthSnapshot ServingCluster::stream_health(int64_t stream_id) const {
  if (stream_id < 0 || stream_id >= config_.streams) {
    throw std::out_of_range("ServingCluster: bad stream id " + std::to_string(stream_id));
  }
  HealthSnapshot h;
  {
    std::lock_guard<std::mutex> lock(stream_mu_[static_cast<size_t>(stream_id)]);
    h = supervisors_[static_cast<size_t>(stream_id)]->health();
  }
  {
    std::lock_guard<std::mutex> lock(routing_mu_);
    h.queue_shed = shed_per_stream_[static_cast<size_t>(stream_id)];
  }
  return h;
}

namespace {

int breaker_severity(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return 0;
    case BreakerState::kHalfOpen:
      return 1;
    case BreakerState::kOpen:
      return 2;
  }
  return 0;
}

int drift_severity(const std::string& state) {
  if (state == "drifted") return 3;
  if (state == "alert") return 2;
  if (state == "stable") return 1;
  return 0;  // "off"
}

}  // namespace

HealthSnapshot ServingCluster::aggregate_health() const {
  HealthSnapshot agg;
  for (int64_t s = 0; s < config_.streams; ++s) {
    const HealthSnapshot h = stream_health(s);
    // Ladder rank, not enum ordinal: the q8 rungs are appended to the enum
    // (serialized ordinals are load-bearing) but sit mid-ladder.
    if (serving_mode_ladder_rank(h.mode) > serving_mode_ladder_rank(agg.mode)) {
      agg.mode = h.mode;
    }
    if (breaker_severity(h.breaker_state) > breaker_severity(agg.breaker_state)) {
      agg.breaker_state = h.breaker_state;
    }
    agg.frames_total += h.frames_total;
    agg.frames_scored += h.frames_scored;
    agg.frames_abandoned += h.frames_abandoned;
    agg.frames_held += h.frames_held;
    agg.frames_sensor_bad += h.frames_sensor_bad;
    agg.deadline_overruns += h.deadline_overruns;
    agg.scoring_failures += h.scoring_failures;
    agg.nonfinite_scores += h.nonfinite_scores;
    agg.step_downs += h.step_downs;
    agg.promotions += h.promotions;
    agg.breaker_trips += h.breaker_trips;
    agg.probe_successes += h.probe_successes;
    agg.probe_failures += h.probe_failures;
    agg.drift_checks += h.drift_checks;
    agg.drift_detections += h.drift_detections;
    agg.threshold_swaps += h.threshold_swaps;
    agg.swap_persist_failures += h.swap_persist_failures;
    agg.queue_shed += h.queue_shed;
    agg.threshold_epoch = std::max(agg.threshold_epoch, h.threshold_epoch);
    if (drift_severity(h.drift_state) > drift_severity(agg.drift_state)) {
      agg.drift_state = h.drift_state;
    }
    for (int i = 0; i < kStageCount; ++i) {
      const size_t idx = static_cast<size_t>(i);
      agg.stages[idx].name = h.stages[idx].name;
      agg.stages[idx].overruns += h.stages[idx].overruns;
      agg.stages[idx].samples += h.stages[idx].samples;
      agg.stages[idx].p50_ns = std::max(agg.stages[idx].p50_ns, h.stages[idx].p50_ns);
      agg.stages[idx].p99_ns = std::max(agg.stages[idx].p99_ns, h.stages[idx].p99_ns);
    }
  }
  agg.has_cluster = true;
  agg.cluster = stats();
  return agg;
}

ClusterStats ServingCluster::stats() const {
  std::scoped_lock lock(routing_mu_, results_mu_);
  ClusterStats out = stats_;  // worker-side counters
  out.quarantines = chaos_stats_.quarantines;
  out.probe_attempts = chaos_stats_.probe_attempts;
  out.probe_failures = chaos_stats_.probe_failures;
  out.restores = chaos_stats_.restores;
  out.failovers = chaos_stats_.failovers;
  out.redispatched_frames = chaos_stats_.redispatched_frames;
  out.fallback_frames = chaos_stats_.fallback_frames;
  out.shed_frames = chaos_stats_.shed_frames;
  out.canary_checks = chaos_stats_.canary_checks;
  out.canary_failures = chaos_stats_.canary_failures;
  return out;
}

int64_t ServingCluster::shed_for_stream(int64_t stream_id) const {
  if (stream_id < 0 || stream_id >= config_.streams) {
    throw std::out_of_range("ServingCluster: bad stream id " + std::to_string(stream_id));
  }
  std::lock_guard<std::mutex> lock(routing_mu_);
  return shed_per_stream_[static_cast<size_t>(stream_id)];
}

ReplicaState ServingCluster::replica_state(int64_t replica) const {
  if (replica < 0 || replica >= static_cast<int64_t>(replicas_.size())) {
    throw std::out_of_range("ServingCluster: bad replica " + std::to_string(replica));
  }
  std::lock_guard<std::mutex> lock(routing_mu_);
  return watchdog_ ? watchdog_->state(replica) : ReplicaState::kHealthy;
}

Supervisor& ServingCluster::stream_supervisor(int64_t stream_id) {
  if (stream_id < 0 || stream_id >= config_.streams) {
    throw std::out_of_range("ServingCluster: bad stream id " + std::to_string(stream_id));
  }
  return *supervisors_[static_cast<size_t>(stream_id)];
}

// --- failure domain ---------------------------------------------------------

void ServingCluster::push_event_locked(ClusterEventKind kind, int64_t at_ns, int64_t replica,
                                       int64_t stream, int64_t detail) {
  ClusterEvent event;
  event.kind = kind;
  event.at_ns = at_ns;
  event.replica = replica;
  event.stream = stream;
  event.detail = detail;
  events_.push_back(event);
}

void ServingCluster::quarantine_locked(int64_t replica, int64_t now_ns, int64_t detail) {
  watchdog_->quarantine(replica, now_ns);
  ++chaos_stats_.quarantines;
  push_event_locked(ClusterEventKind::kQuarantine, now_ns, replica, -1, detail);
}

bool ServingCluster::canary_passes_locked(int64_t replica, int64_t now_ns) {
  if (!has_canary_) return true;
  ++chaos_stats_.canary_checks;
  // A fresh clone per evaluation: corruption is applied to the clone, never
  // to the shared weights — the serving path's bit-identity is untouchable.
  std::istringstream in(pristine_steering_bytes_);
  nn::Sequential clone = nn::load_model(in);
  if (config_.replica_faults != nullptr) {
    const faults::ReplicaFault* corrupt = config_.replica_faults->active_of_kind(
        replica, faults::ReplicaFaultKind::kWeightCorrupt, now_ns);
    if (corrupt != nullptr) {
      Rng rng(corrupt->seed);
      faults::flip_weight_bits(clone, corrupt->weight_bits, rng);
    }
  }
  const double angle = driving::predict_steering(clone, canary_frame_);
  const bool pass = std::isfinite(angle) &&
                    std::abs(angle - canary_known_good_) <= config_.watchdog.canary_epsilon;
  if (!pass) ++chaos_stats_.canary_failures;
  return pass;
}

bool ServingCluster::probe_passes_locked(int64_t replica, int64_t now_ns) {
  if (config_.replica_faults != nullptr) {
    if (config_.replica_faults->outage_active(replica, now_ns)) return false;
    if (config_.replica_faults->slow_penalty_ns(replica, now_ns) >
        config_.watchdog.batch_deadline_ns) {
      return false;
    }
  }
  return canary_passes_locked(replica, now_ns);
}

void ServingCluster::tick_locked(int64_t now_ns) {
  if (!watchdog_) return;
  const faults::ReplicaFaultSchedule* sched = config_.replica_faults;
  bool changed = false;
  for (auto& replica_ptr : replicas_) {
    Replica& r = *replica_ptr;
    const int64_t i = r.index;
    const ReplicaState state = watchdog_->state(i);
    if (state == ReplicaState::kHealthy) {
      bool quarantine = false;
      int64_t detail = 0;
      if (sched != nullptr) {
        // Missed batch deadlines: an outage window (crash/hang) or a slow
        // fault whose penalty alone exceeds the batch deadline accrues one
        // miss per deadline period. This is the deterministic stand-in for
        // wall-clock symptom observation — replays see identical misses.
        const faults::ReplicaFault* out =
            sched->active_of_kind(i, faults::ReplicaFaultKind::kCrash, now_ns);
        if (out == nullptr) {
          out = sched->active_of_kind(i, faults::ReplicaFaultKind::kHang, now_ns);
        }
        if (out == nullptr &&
            sched->slow_penalty_ns(i, now_ns) > config_.watchdog.batch_deadline_ns) {
          out = sched->active_of_kind(i, faults::ReplicaFaultKind::kSlow, now_ns);
        }
        if (out != nullptr && watchdog_->charge_outage(i, out->start_ns, now_ns)) {
          quarantine = true;
          detail = 0;
        }
      }
      if (!quarantine && !paused_.load(std::memory_order_acquire)) {
        // Heartbeat silence (live clock): only meaningful when the replica
        // has work it should be stamping progress against.
        bool has_work = false;
        {
          std::lock_guard<std::mutex> lock(r.mu);
          has_work = !r.queue.empty();
        }
        if (has_work &&
            watchdog_->charge_heartbeat_silence(
                i, r.last_heartbeat_ns.load(std::memory_order_acquire), now_ns)) {
          quarantine = true;
          detail = 2;
        }
      }
      if (!quarantine && has_canary_ && watchdog_->canary_due(i, now_ns)) {
        if (!canary_passes_locked(i, now_ns)) {
          if (watchdog_->charge_canary_failure(i)) {
            quarantine = true;
            detail = 1;
          }
        } else {
          watchdog_->note_canary_ok(i);
        }
      }
      if (quarantine) {
        quarantine_locked(i, now_ns, detail);
        changed = true;
      }
    } else if (state == ReplicaState::kQuarantined && watchdog_->probe_due(i, now_ns)) {
      // Half-open probe. Success and failure both resolve within this tick,
      // so routing only ever sees kHealthy / kQuarantined.
      watchdog_->begin_probe(i);
      ++chaos_stats_.probe_attempts;
      if (probe_passes_locked(i, now_ns)) {
        watchdog_->restore(i);
        ++chaos_stats_.restores;
        push_event_locked(ClusterEventKind::kRestore, now_ns, i, -1, 0);
        changed = true;
      } else {
        watchdog_->probe_failed(i, now_ns);
        ++chaos_stats_.probe_failures;
        push_event_locked(ClusterEventKind::kProbeFailure, now_ns, i, -1, 0);
      }
    }
  }
  if (changed) rebalance_locked(now_ns);
}

void ServingCluster::rebalance_locked(int64_t now_ns) {
  const int64_t replica_count = static_cast<int64_t>(replicas_.size());
  for (int64_t s = 0; s < config_.streams; ++s) {
    // Deterministic target: first healthy replica scanning from home, so a
    // restore migrates streams straight back and every run agrees on the
    // route without any load feedback.
    int64_t target = -1;
    for (int64_t k = 0; k < replica_count; ++k) {
      const int64_t cand = (home_replica(s) + k) % replica_count;
      if (watchdog_->healthy(cand)) {
        target = cand;
        break;
      }
    }
    const int64_t old_route = routing_[static_cast<size_t>(s)];
    if (target == old_route) continue;

    // Migrate the stream's queued frames wholesale — a stream's pending
    // frames live on exactly one replica, in arrival order, so per-stream
    // processing order survives the move.
    std::deque<PendingFrame> moving;
    if (old_route >= 0) {
      Replica& src = *replicas_[static_cast<size_t>(old_route)];
      std::lock_guard<std::mutex> lock(src.mu);
      std::deque<PendingFrame> keep;
      for (PendingFrame& pf : src.queue) {
        (pf.stream_id == s ? moving : keep).push_back(std::move(pf));
      }
      src.queue.swap(keep);
    }
    routing_[static_cast<size_t>(s)] = target;
    push_event_locked(ClusterEventKind::kFailover, now_ns, target, s,
                      static_cast<int64_t>(moving.size()));
    ++chaos_stats_.failovers;
    if (moving.empty()) continue;

    if (target < 0) {
      // Every replica is down: the whole backlog falls back inline, oldest
      // first, on the stream's own Supervisor.
      for (PendingFrame& pf : moving) {
        process_inline_locked(std::move(pf), now_ns, /*was_pending=*/true);
      }
      continue;
    }

    // Charge the re-dispatch budget. Budget-exhausted frames are always the
    // oldest prefix (a frame submitted later has survived at most as many
    // failovers), so the inline fallback preserves arrival order too.
    std::deque<PendingFrame> requeue;
    for (PendingFrame& pf : moving) {
      pf.redispatches += 1;
      if (pf.redispatches > config_.watchdog.max_redispatches) {
        process_inline_locked(std::move(pf), now_ns, /*was_pending=*/true);
      } else {
        requeue.push_back(std::move(pf));
      }
    }
    if (requeue.empty()) continue;
    chaos_stats_.redispatched_frames += static_cast<int64_t>(requeue.size());
    push_event_locked(ClusterEventKind::kRedispatch, now_ns, target, s,
                      static_cast<int64_t>(requeue.size()));
    Replica& dst = *replicas_[static_cast<size_t>(target)];
    {
      // Merge by arrival_seq: the destination queue stays globally sorted,
      // which the seal rules (head-window cuts) and future migrations rely
      // on.
      std::lock_guard<std::mutex> lock(dst.mu);
      std::deque<PendingFrame> merged;
      auto a = dst.queue.begin();
      auto b = requeue.begin();
      while (a != dst.queue.end() && b != requeue.end()) {
        merged.push_back(a->arrival_seq < b->arrival_seq ? std::move(*a++) : std::move(*b++));
      }
      while (a != dst.queue.end()) merged.push_back(std::move(*a++));
      while (b != requeue.end()) merged.push_back(std::move(*b++));
      dst.queue.swap(merged);
    }
    dst.cv.notify_all();
  }
}

void ServingCluster::process_inline_locked(PendingFrame frame, int64_t now_ns,
                                           bool was_pending) {
  const size_t s = static_cast<size_t>(frame.stream_id);
  ClusterResult cr;
  cr.stream_id = frame.stream_id;
  cr.arrival_seq = frame.arrival_seq;
  cr.arrival_ns = frame.arrival_ns;
  cr.sealed_ns = now_ns;
  cr.replica = -1;
  cr.batch_seq = -1;
  cr.batch_size = 1;
  {
    // The supervisor's own staged pipeline, no ProvidedCompute: the batch-1
    // path, bit-identical by construction.
    std::lock_guard<std::mutex> proc(stream_mu_[s]);
    cr.result = supervisors_[s]->process(frame.frame);
    cr.mode_after = supervisors_[s]->mode();
    cr.breaker_after = supervisors_[s]->breaker_state();
  }
  ++chaos_stats_.fallback_frames;
  push_event_locked(ClusterEventKind::kFallback, now_ns, -1, frame.stream_id,
                    frame.arrival_seq);
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    if (config_.keep_results) results_.push_back(std::move(cr));
  }
  if (was_pending) pending_per_stream_[s].fetch_sub(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
  idle_cv_.notify_all();
}

// --- batching ---------------------------------------------------------------

bool ServingCluster::should_seal(const Replica& r) const {
  if (r.queue.empty()) return false;
  if (config_.replica_faults != nullptr &&
      config_.replica_faults->outage_active(r.index, clock_->now_ns())) {
    // A crashed/hung replica seals nothing. stop() always overrides (the
    // run is ending; fidelity is moot), and so does a flush when no
    // watchdog exists to migrate the frames — liveness wins over fault
    // fidelity. With a watchdog, drain() quarantines + migrates first.
    if (r.stopping) {
      // fall through to the normal seal rules
    } else if (r.flush && watchdog_ == nullptr) {
      // fall through
    } else {
      return false;
    }
  }
  if (r.flush || r.stopping) return true;
  if (static_cast<int64_t>(r.queue.size()) >= config_.max_batch) return true;
  const int64_t deadline = r.queue.front().arrival_ns + config_.gather_window_ns;
  if (r.queue.back().arrival_ns > deadline) return true;  // a frame landed past the window
  return clock_->now_ns() > deadline;                     // the window expired in real time
}

std::vector<ServingCluster::PendingFrame> ServingCluster::seal_batch(Replica& r,
                                                                     SealReason& reason) {
  // The cut depends only on arrival order and timestamps: up to max_batch
  // frames whose arrival falls within the head's gather window. Whichever
  // trigger fired (max_batch, a beyond-window arrival, the clock passing the
  // deadline, or a flush), the same queue contents produce the same batch.
  std::vector<PendingFrame> batch;
  const int64_t head_deadline = r.queue.front().arrival_ns + config_.gather_window_ns;
  while (!r.queue.empty() && static_cast<int64_t>(batch.size()) < config_.max_batch &&
         r.queue.front().arrival_ns <= head_deadline) {
    batch.push_back(std::move(r.queue.front()));
    r.queue.pop_front();
  }
  // Reason classification checks the arrival-determined triggers before the
  // flush flag: a batch whose window had already expired counts as a window
  // seal even when a drain() raced in — so the seal-reason stats are as
  // deterministic as the composition under a FakeClock.
  if (static_cast<int64_t>(batch.size()) == config_.max_batch) {
    reason = SealReason::kMaxBatch;
  } else if (!r.queue.empty() && r.queue.front().arrival_ns > head_deadline) {
    reason = SealReason::kWindow;
  } else if (clock_->now_ns() > head_deadline) {
    reason = SealReason::kWindow;
  } else {
    reason = SealReason::kFlush;  // drain()/stop() sealed a still-open window
  }
  ++r.batches_sealed;
  return batch;
}

void ServingCluster::worker_loop(Replica& r) {
  for (;;) {
    std::vector<PendingFrame> batch;
    SealReason reason = SealReason::kFlush;
    int64_t sealed_ns = 0;
    int64_t batch_seq = 0;
    {
      std::unique_lock<std::mutex> lock(r.mu);
      for (;;) {
        r.last_heartbeat_ns.store(clock_->now_ns(), std::memory_order_release);
        const bool paused = paused_.load(std::memory_order_acquire);
        if (!paused && should_seal(r)) break;
        if (!paused && r.stopping && r.queue.empty()) return;
        if (!paused && !r.queue.empty()) {
          // A partial batch is pending: sleep until the head's window
          // deadline so window seals fire even with no further arrivals.
          // Under a FakeClock the deadline never approaches in real time;
          // the periodic re-check is harmless (drain()/stop() notify, and
          // the batch composition is arrival-determined either way).
          int64_t wait_ns =
              r.queue.front().arrival_ns + config_.gather_window_ns - clock_->now_ns();
          if (wait_ns < 100'000) wait_ns = 100'000;
          r.cv.wait_for(lock, std::chrono::nanoseconds(wait_ns));
        } else {
          r.cv.wait(lock);
        }
      }
      sealed_ns = clock_->now_ns();
      batch = seal_batch(r, reason);
      batch_seq = r.batches_sealed - 1;
    }
    process_batch(r, std::move(batch), reason, sealed_ns, batch_seq);
  }
}

void ServingCluster::process_batch(Replica& r, std::vector<PendingFrame> batch,
                                   SealReason reason, int64_t sealed_ns, int64_t batch_seq) {
  const size_t b = batch.size();

  // A weight-corruption window withholds ALL batched compute for the batch:
  // the supervisors recompute every stage inline from the true (pristine)
  // shared weights, so the served bits stay identical — the fault costs
  // batching efficiency, never correctness. The canary path is what makes
  // the corruption *observable*.
  const bool withhold =
      config_.replica_faults != nullptr &&
      config_.replica_faults->active_of_kind(r.index, faults::ReplicaFaultKind::kWeightCorrupt,
                                             sealed_ns) != nullptr;

  // Per-frame speculation slot: which supervisor serves the frame and which
  // batched results it will be handed.
  struct Slot {
    Supervisor* supervisor = nullptr;
    ProvidedCompute provided;
    bool valid = false;
    const Image* recon_in = nullptr;
  };
  std::vector<Slot> slots(b);

  // --- Plan: screen frames and predict each one's compute needs -----------
  // The batched preprocess/reconstruct entries throw on malformed inputs,
  // while the supervisor folds the same faults into its sensor path — so
  // frames the validator rejects are excluded from batched compute and left
  // to their supervisor (which screens them identically). The saliency
  // prediction applies the supervisor's own rule to the stream's current
  // mode/breaker; a frame whose stream changes mid-batch simply falls back
  // to in-stage compute of the same bits.
  //
  // Batched compute is partitioned by PRECISION: a mixed batch (some streams
  // on float rungs, some demoted to q8) runs one float sub-batch and one q8
  // sub-batch per stage — never a mixed forward, because the supervisor only
  // trusts provided results whose precision matches the serving rung
  // (ProvidedCompute::quantized).
  struct StageFan {
    std::vector<const Image*> in;
    std::vector<size_t> at;
  };
  std::array<StageFan, 2> steer_fan;  // [0]=float, [1]=q8
  std::array<StageFan, 2> sal_fan;
  int64_t prescreen_rejects = 0;
  const bool steer_q8_available = detector_.quant_steering() != nullptr;
  for (size_t i = 0; i < b; ++i) {
    Slot& slot = slots[i];
    slot.supervisor = supervisors_[static_cast<size_t>(batch[i].stream_id)].get();
    slot.valid = detector_.frame_validator().check(batch[i].frame) == core::FrameFault::kNone;
    if (!slot.valid) {
      ++prescreen_rejects;
      continue;
    }
    const bool q8 = serving_mode_quantized(slot.supervisor->mode());
    slot.provided.quantized = q8;
    if (withhold) continue;
    if (steering_model_ != nullptr) {
      // Mirror the supervisor's rule: a q8 rung steers quantized only when
      // the quantized steering forward exists.
      StageFan& fan = steer_fan[q8 && steer_q8_available ? 1 : 0];
      fan.in.push_back(&batch[i].frame);
      fan.at.push_back(i);
    }
    const BreakerState breaker = slot.supervisor->breaker_state();
    const bool want_saliency =
        saliency_configured_ && breaker != BreakerState::kOpen &&
        (Supervisor::mode_uses_saliency(slot.supervisor->mode()) ||
         breaker == BreakerState::kHalfOpen);
    if (want_saliency) {
      // A half-open probe serves float on success, and a probing stream's
      // mode is below the saliency rungs, so q8 is false there — the mask
      // precision always matches what the supervisor will consume.
      StageFan& fan = sal_fan[q8 ? 1 : 0];
      fan.in.push_back(&batch[i].frame);
      fan.at.push_back(i);
    }
  }

  // --- Batched compute: steer, saliency, reconstruct ----------------------
  // Any batched entry that throws simply provides nothing: each supervisor's
  // own stage recomputes (or registers the identical failure) in-line.
  for (int p = 0; p < 2; ++p) {
    const StageFan& fan = steer_fan[static_cast<size_t>(p)];
    if (fan.in.empty()) continue;
    try {
      const std::vector<double> angles =
          p == 1 ? driving::predict_steering_q8_batch(*detector_.quant_steering(), fan.in)
                 : driving::predict_steering_batch(*steering_model_, fan.in);
      for (size_t k = 0; k < fan.at.size(); ++k) {
        slots[fan.at[k]].provided.steering = angles[k];
      }
    } catch (const std::exception&) {
    }
  }
  for (int p = 0; p < 2; ++p) {
    const StageFan& fan = sal_fan[static_cast<size_t>(p)];
    if (fan.in.empty()) continue;
    try {
      std::vector<Image> masks = detector_.variant_preprocess_batch(
          p == 1 ? core::DetectorVariant::kPrimaryQ8 : core::DetectorVariant::kPrimary, fan.in);
      for (size_t k = 0; k < fan.at.size(); ++k) {
        slots[fan.at[k]].provided.saliency_mask = std::move(masks[k]);
      }
    } catch (const std::exception&) {
    }
  }
  std::array<StageFan, 2> recon_fan;
  if (!withhold) {
    for (size_t i = 0; i < b; ++i) {
      Slot& slot = slots[i];
      if (!slot.valid) continue;
      // Predicted autoencoder input: the mask when saliency is expected to
      // serve the frame, the raw frame otherwise (the supervisor's raw rungs
      // feed the frame through unchanged).
      slot.recon_in = slot.provided.saliency_mask.has_value() ? &*slot.provided.saliency_mask
                                                              : &batch[i].frame;
      StageFan& fan = recon_fan[slot.provided.quantized ? 1 : 0];
      fan.in.push_back(slot.recon_in);
      fan.at.push_back(i);
    }
  }
  for (int p = 0; p < 2; ++p) {
    const StageFan& fan = recon_fan[static_cast<size_t>(p)];
    if (fan.in.empty()) continue;
    try {
      std::vector<Image> recons =
          p == 1 ? detector_.variant_reconstruct_batch(core::DetectorVariant::kPrimaryQ8, fan.in)
                 : detector_.reconstruct_batch(fan.in);
      for (size_t k = 0; k < fan.at.size(); ++k) {
        Slot& slot = slots[fan.at[k]];
        slot.provided.recon_input = *slot.recon_in;
        slot.provided.reconstruction = std::move(recons[k]);
      }
    } catch (const std::exception&) {
    }
  }

  // --- Policy: replay each frame through its own supervisor, in order -----
  int64_t provided_steer = 0;
  int64_t provided_saliency = 0;
  int64_t provided_recon = 0;
  int64_t mispredicts = 0;
  int64_t max_wait = 0;
  std::vector<ClusterResult> out;
  out.reserve(b);
  for (size_t i = 0; i < b; ++i) {
    Slot& slot = slots[i];
    ClusterResult cr;
    cr.stream_id = batch[i].stream_id;
    cr.arrival_seq = batch[i].arrival_seq;
    cr.arrival_ns = batch[i].arrival_ns;
    cr.sealed_ns = sealed_ns;
    cr.replica = r.index;
    cr.batch_seq = batch_seq;
    cr.batch_size = static_cast<int64_t>(b);
    {
      // Per-stream (not per-replica) serialization: a stream's frames may
      // migrate between replicas, and its supervisor must never run from
      // two threads at once.
      std::lock_guard<std::mutex> proc(stream_mu_[static_cast<size_t>(batch[i].stream_id)]);
      cr.result = slot.supervisor->process(batch[i].frame, &slot.provided);
      cr.mode_after = slot.supervisor->mode();
      cr.breaker_after = slot.supervisor->breaker_state();
      if (slot.provided.reconstruction.has_value()) {
        if (slot.supervisor->last_recon_mispredicted()) {
          ++mispredicts;
        } else {
          ++provided_recon;
        }
      }
    }
    if (slot.provided.steering.has_value()) ++provided_steer;
    if (slot.provided.saliency_mask.has_value()) ++provided_saliency;
    pending_per_stream_[static_cast<size_t>(batch[i].stream_id)].fetch_sub(
        1, std::memory_order_acq_rel);
    const int64_t wait = sealed_ns - batch[i].arrival_ns;
    if (wait > max_wait) max_wait = wait;
    out.push_back(std::move(cr));
  }

  // A slow-replica fault taxes the whole batch. Under a real clock the
  // worker genuinely sleeps (later seals are late — the watchdog's symptom);
  // the trace driver disables the sleep because FakeClock::sleep_ns advances
  // the shared clock for everyone.
  int64_t slow_batches = 0;
  if (config_.replica_faults != nullptr) {
    const int64_t penalty = config_.replica_faults->slow_penalty_ns(r.index, sealed_ns);
    if (penalty > 0) {
      slow_batches = 1;
      if (config_.sleep_on_slow) clock_->sleep_ns(penalty);
    }
  }

  {
    std::lock_guard<std::mutex> lock(results_mu_);
    ++stats_.batches;
    stats_.batched_frames += static_cast<int64_t>(b);
    switch (reason) {
      case SealReason::kMaxBatch:
        ++stats_.max_batch_seals;
        break;
      case SealReason::kWindow:
        ++stats_.window_seals;
        break;
      case SealReason::kFlush:
        ++stats_.flush_seals;
        break;
    }
    if (max_wait > stats_.max_gather_wait_ns) stats_.max_gather_wait_ns = max_wait;
    stats_.provided_steer += provided_steer;
    stats_.provided_saliency += provided_saliency;
    stats_.provided_recon += provided_recon;
    stats_.recon_mispredicts += mispredicts;
    stats_.prescreen_rejects += prescreen_rejects;
    stats_.slow_batches += slow_batches;
    if (config_.keep_results) {
      for (auto& cr : out) results_.push_back(std::move(cr));
    }
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    outstanding_.fetch_sub(static_cast<int64_t>(b), std::memory_order_acq_rel);
  }
  idle_cv_.notify_all();
}

}  // namespace salnov::serving
