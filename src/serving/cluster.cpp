#include "serving/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "driving/steering_trainer.hpp"

namespace salnov::serving {

ServingCluster::ServingCluster(const core::NoveltyDetector& detector,
                               nn::Sequential* steering_model, ClusterConfig config,
                               Clock* clock)
    : detector_(detector),
      steering_model_(steering_model),
      config_(std::move(config)),
      owned_clock_(clock == nullptr ? std::make_unique<SteadyClock>() : nullptr),
      clock_(clock == nullptr ? owned_clock_.get() : clock),
      saliency_configured_(core::uses_saliency(detector.config().preprocessing)) {
  if (config_.streams < 1) {
    throw std::invalid_argument("ServingCluster: streams must be >= 1");
  }
  if (config_.replicas < 1) {
    throw std::invalid_argument("ServingCluster: replicas must be >= 1");
  }
  if (config_.max_batch < 1) {
    throw std::invalid_argument("ServingCluster: max_batch must be >= 1");
  }
  if (config_.gather_window_ns < 0) config_.gather_window_ns = 0;

  supervisors_.reserve(static_cast<size_t>(config_.streams));
  for (int64_t s = 0; s < config_.streams; ++s) {
    supervisors_.push_back(
        std::make_unique<Supervisor>(detector_, steering_model_, config_.supervisor, clock_));
  }
  // A replica beyond one-per-stream could never receive a frame.
  const int64_t replica_count = std::min(config_.replicas, config_.streams);
  replicas_.reserve(static_cast<size_t>(replica_count));
  for (int64_t i = 0; i < replica_count; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->index = i;
    replicas_.push_back(std::move(replica));
  }
  for (auto& replica : replicas_) {
    replica->worker = std::thread([this, r = replica.get()] { worker_loop(*r); });
  }
}

ServingCluster::~ServingCluster() { stop(); }

void ServingCluster::submit(int64_t stream_id, Image frame) {
  if (stream_id < 0 || stream_id >= config_.streams) {
    throw std::out_of_range("ServingCluster: bad stream id " + std::to_string(stream_id));
  }
  if (stopped_.load(std::memory_order_acquire)) return;
  PendingFrame pending;
  pending.stream_id = stream_id;
  pending.arrival_seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  pending.arrival_ns = clock_->now_ns();
  pending.frame = std::move(frame);
  Replica& replica = *replicas_[static_cast<size_t>(replica_for(stream_id))];
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(replica.mu);
    replica.queue.push_back(std::move(pending));
  }
  replica.cv.notify_all();
}

void ServingCluster::pause() { paused_.store(true, std::memory_order_release); }

void ServingCluster::resume() {
  if (!paused_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& replica : replicas_) {
    // Notify under the replica lock: a worker that read paused_ == true but
    // has not entered wait() yet still holds mu, so it cannot miss this.
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->cv.notify_all();
  }
}

void ServingCluster::drain() {
  resume();
  for (auto& replica : replicas_) {
    {
      std::lock_guard<std::mutex> lock(replica->mu);
      replica->flush = true;
    }
    replica->cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [&] { return outstanding_.load(std::memory_order_acquire) == 0; });
  }
  for (auto& replica : replicas_) {
    std::lock_guard<std::mutex> lock(replica->mu);
    replica->flush = false;
  }
}

void ServingCluster::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  resume();
  for (auto& replica : replicas_) {
    {
      std::lock_guard<std::mutex> lock(replica->mu);
      replica->stopping = true;  // drains the queue, then the worker exits
    }
    replica->cv.notify_all();
  }
  for (auto& replica : replicas_) {
    if (replica->worker.joinable()) replica->worker.join();
  }
}

std::vector<ClusterResult> ServingCluster::take_results() {
  std::vector<ClusterResult> out;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    out.swap(results_);
  }
  std::sort(out.begin(), out.end(), [](const ClusterResult& a, const ClusterResult& b) {
    return a.arrival_seq < b.arrival_seq;
  });
  return out;
}

HealthSnapshot ServingCluster::stream_health(int64_t stream_id) const {
  if (stream_id < 0 || stream_id >= config_.streams) {
    throw std::out_of_range("ServingCluster: bad stream id " + std::to_string(stream_id));
  }
  const Replica& replica = *replicas_[static_cast<size_t>(replica_for(stream_id))];
  std::lock_guard<std::mutex> lock(replica.proc_mu);
  return supervisors_[static_cast<size_t>(stream_id)]->health();
}

namespace {

int breaker_severity(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return 0;
    case BreakerState::kHalfOpen:
      return 1;
    case BreakerState::kOpen:
      return 2;
  }
  return 0;
}

int drift_severity(const std::string& state) {
  if (state == "drifted") return 3;
  if (state == "alert") return 2;
  if (state == "stable") return 1;
  return 0;  // "off"
}

}  // namespace

HealthSnapshot ServingCluster::aggregate_health() const {
  HealthSnapshot agg;
  for (int64_t s = 0; s < config_.streams; ++s) {
    const HealthSnapshot h = stream_health(s);
    if (static_cast<int>(h.mode) > static_cast<int>(agg.mode)) agg.mode = h.mode;
    if (breaker_severity(h.breaker_state) > breaker_severity(agg.breaker_state)) {
      agg.breaker_state = h.breaker_state;
    }
    agg.frames_total += h.frames_total;
    agg.frames_scored += h.frames_scored;
    agg.frames_abandoned += h.frames_abandoned;
    agg.frames_held += h.frames_held;
    agg.frames_sensor_bad += h.frames_sensor_bad;
    agg.deadline_overruns += h.deadline_overruns;
    agg.scoring_failures += h.scoring_failures;
    agg.nonfinite_scores += h.nonfinite_scores;
    agg.step_downs += h.step_downs;
    agg.promotions += h.promotions;
    agg.breaker_trips += h.breaker_trips;
    agg.probe_successes += h.probe_successes;
    agg.probe_failures += h.probe_failures;
    agg.drift_checks += h.drift_checks;
    agg.drift_detections += h.drift_detections;
    agg.threshold_swaps += h.threshold_swaps;
    agg.swap_persist_failures += h.swap_persist_failures;
    agg.threshold_epoch = std::max(agg.threshold_epoch, h.threshold_epoch);
    if (drift_severity(h.drift_state) > drift_severity(agg.drift_state)) {
      agg.drift_state = h.drift_state;
    }
    for (int i = 0; i < kStageCount; ++i) {
      const size_t idx = static_cast<size_t>(i);
      agg.stages[idx].name = h.stages[idx].name;
      agg.stages[idx].overruns += h.stages[idx].overruns;
      agg.stages[idx].samples += h.stages[idx].samples;
      agg.stages[idx].p50_ns = std::max(agg.stages[idx].p50_ns, h.stages[idx].p50_ns);
      agg.stages[idx].p99_ns = std::max(agg.stages[idx].p99_ns, h.stages[idx].p99_ns);
    }
  }
  return agg;
}

ClusterStats ServingCluster::stats() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return stats_;
}

Supervisor& ServingCluster::stream_supervisor(int64_t stream_id) {
  if (stream_id < 0 || stream_id >= config_.streams) {
    throw std::out_of_range("ServingCluster: bad stream id " + std::to_string(stream_id));
  }
  return *supervisors_[static_cast<size_t>(stream_id)];
}

bool ServingCluster::should_seal(const Replica& r) const {
  if (r.queue.empty()) return false;
  if (r.flush || r.stopping) return true;
  if (static_cast<int64_t>(r.queue.size()) >= config_.max_batch) return true;
  const int64_t deadline = r.queue.front().arrival_ns + config_.gather_window_ns;
  if (r.queue.back().arrival_ns > deadline) return true;  // a frame landed past the window
  return clock_->now_ns() > deadline;                     // the window expired in real time
}

std::vector<ServingCluster::PendingFrame> ServingCluster::seal_batch(Replica& r,
                                                                     SealReason& reason) {
  // The cut depends only on arrival order and timestamps: up to max_batch
  // frames whose arrival falls within the head's gather window. Whichever
  // trigger fired (max_batch, a beyond-window arrival, the clock passing the
  // deadline, or a flush), the same queue contents produce the same batch.
  std::vector<PendingFrame> batch;
  const int64_t head_deadline = r.queue.front().arrival_ns + config_.gather_window_ns;
  while (!r.queue.empty() && static_cast<int64_t>(batch.size()) < config_.max_batch &&
         r.queue.front().arrival_ns <= head_deadline) {
    batch.push_back(std::move(r.queue.front()));
    r.queue.pop_front();
  }
  // Reason classification checks the arrival-determined triggers before the
  // flush flag: a batch whose window had already expired counts as a window
  // seal even when a drain() raced in — so the seal-reason stats are as
  // deterministic as the composition under a FakeClock.
  if (static_cast<int64_t>(batch.size()) == config_.max_batch) {
    reason = SealReason::kMaxBatch;
  } else if (!r.queue.empty() && r.queue.front().arrival_ns > head_deadline) {
    reason = SealReason::kWindow;
  } else if (clock_->now_ns() > head_deadline) {
    reason = SealReason::kWindow;
  } else {
    reason = SealReason::kFlush;  // drain()/stop() sealed a still-open window
  }
  ++r.batches_sealed;
  return batch;
}

void ServingCluster::worker_loop(Replica& r) {
  for (;;) {
    std::vector<PendingFrame> batch;
    SealReason reason = SealReason::kFlush;
    int64_t sealed_ns = 0;
    int64_t batch_seq = 0;
    {
      std::unique_lock<std::mutex> lock(r.mu);
      for (;;) {
        const bool paused = paused_.load(std::memory_order_acquire);
        if (!paused && should_seal(r)) break;
        if (!paused && r.stopping && r.queue.empty()) return;
        if (!paused && !r.queue.empty()) {
          // A partial batch is pending: sleep until the head's window
          // deadline so window seals fire even with no further arrivals.
          // Under a FakeClock the deadline never approaches in real time;
          // the periodic re-check is harmless (drain()/stop() notify, and
          // the batch composition is arrival-determined either way).
          int64_t wait_ns =
              r.queue.front().arrival_ns + config_.gather_window_ns - clock_->now_ns();
          if (wait_ns < 100'000) wait_ns = 100'000;
          r.cv.wait_for(lock, std::chrono::nanoseconds(wait_ns));
        } else {
          r.cv.wait(lock);
        }
      }
      sealed_ns = clock_->now_ns();
      batch = seal_batch(r, reason);
      batch_seq = r.batches_sealed - 1;
    }
    process_batch(r, std::move(batch), reason, sealed_ns, batch_seq);
  }
}

void ServingCluster::process_batch(Replica& r, std::vector<PendingFrame> batch,
                                   SealReason reason, int64_t sealed_ns, int64_t batch_seq) {
  const size_t b = batch.size();

  // Per-frame speculation slot: which supervisor serves the frame and which
  // batched results it will be handed.
  struct Slot {
    Supervisor* supervisor = nullptr;
    ProvidedCompute provided;
    bool valid = false;
    const Image* recon_in = nullptr;
  };
  std::vector<Slot> slots(b);

  // --- Plan: screen frames and predict each one's compute needs -----------
  // The batched preprocess/reconstruct entries throw on malformed inputs,
  // while the supervisor folds the same faults into its sensor path — so
  // frames the validator rejects are excluded from batched compute and left
  // to their supervisor (which screens them identically). The saliency
  // prediction applies the supervisor's own rule to the stream's current
  // mode/breaker; a frame whose stream changes mid-batch simply falls back
  // to in-stage compute of the same bits.
  std::vector<const Image*> steer_in;
  std::vector<size_t> steer_at;
  std::vector<const Image*> sal_in;
  std::vector<size_t> sal_at;
  int64_t prescreen_rejects = 0;
  for (size_t i = 0; i < b; ++i) {
    Slot& slot = slots[i];
    slot.supervisor = supervisors_[static_cast<size_t>(batch[i].stream_id)].get();
    slot.valid = detector_.frame_validator().check(batch[i].frame) == core::FrameFault::kNone;
    if (!slot.valid) {
      ++prescreen_rejects;
      continue;
    }
    if (steering_model_ != nullptr) {
      steer_in.push_back(&batch[i].frame);
      steer_at.push_back(i);
    }
    const BreakerState breaker = slot.supervisor->breaker_state();
    const bool want_saliency =
        saliency_configured_ && breaker != BreakerState::kOpen &&
        (Supervisor::mode_uses_saliency(slot.supervisor->mode()) ||
         breaker == BreakerState::kHalfOpen);
    if (want_saliency) {
      sal_in.push_back(&batch[i].frame);
      sal_at.push_back(i);
    }
  }

  // --- Batched compute: steer, saliency, reconstruct ----------------------
  // Any batched entry that throws simply provides nothing: each supervisor's
  // own stage recomputes (or registers the identical failure) in-line.
  if (!steer_in.empty()) {
    try {
      const std::vector<double> angles =
          driving::predict_steering_batch(*steering_model_, steer_in);
      for (size_t k = 0; k < steer_at.size(); ++k) {
        slots[steer_at[k]].provided.steering = angles[k];
      }
    } catch (const std::exception&) {
    }
  }
  if (!sal_in.empty()) {
    try {
      std::vector<Image> masks =
          detector_.variant_preprocess_batch(core::DetectorVariant::kPrimary, sal_in);
      for (size_t k = 0; k < sal_at.size(); ++k) {
        slots[sal_at[k]].provided.saliency_mask = std::move(masks[k]);
      }
    } catch (const std::exception&) {
    }
  }
  std::vector<const Image*> recon_in;
  std::vector<size_t> recon_at;
  for (size_t i = 0; i < b; ++i) {
    Slot& slot = slots[i];
    if (!slot.valid) continue;
    // Predicted autoencoder input: the mask when saliency is expected to
    // serve the frame, the raw frame otherwise (the supervisor's raw rungs
    // feed the frame through unchanged).
    slot.recon_in = slot.provided.saliency_mask.has_value() ? &*slot.provided.saliency_mask
                                                            : &batch[i].frame;
    recon_in.push_back(slot.recon_in);
    recon_at.push_back(i);
  }
  if (!recon_in.empty()) {
    try {
      std::vector<Image> recons = detector_.reconstruct_batch(recon_in);
      for (size_t k = 0; k < recon_at.size(); ++k) {
        Slot& slot = slots[recon_at[k]];
        slot.provided.recon_input = *slot.recon_in;
        slot.provided.reconstruction = std::move(recons[k]);
      }
    } catch (const std::exception&) {
    }
  }

  // --- Policy: replay each frame through its own supervisor, in order -----
  int64_t provided_steer = 0;
  int64_t provided_saliency = 0;
  int64_t provided_recon = 0;
  int64_t mispredicts = 0;
  int64_t max_wait = 0;
  std::vector<ClusterResult> out;
  out.reserve(b);
  {
    std::lock_guard<std::mutex> proc(r.proc_mu);
    for (size_t i = 0; i < b; ++i) {
      Slot& slot = slots[i];
      ClusterResult cr;
      cr.stream_id = batch[i].stream_id;
      cr.arrival_seq = batch[i].arrival_seq;
      cr.arrival_ns = batch[i].arrival_ns;
      cr.sealed_ns = sealed_ns;
      cr.replica = r.index;
      cr.batch_seq = batch_seq;
      cr.batch_size = static_cast<int64_t>(b);
      cr.result = slot.supervisor->process(batch[i].frame, &slot.provided);
      cr.mode_after = slot.supervisor->mode();
      cr.breaker_after = slot.supervisor->breaker_state();
      if (slot.provided.steering.has_value()) ++provided_steer;
      if (slot.provided.saliency_mask.has_value()) ++provided_saliency;
      if (slot.provided.reconstruction.has_value()) {
        if (slot.supervisor->last_recon_mispredicted()) {
          ++mispredicts;
        } else {
          ++provided_recon;
        }
      }
      const int64_t wait = sealed_ns - batch[i].arrival_ns;
      if (wait > max_wait) max_wait = wait;
      out.push_back(std::move(cr));
    }
  }

  {
    std::lock_guard<std::mutex> lock(results_mu_);
    ++stats_.batches;
    stats_.batched_frames += static_cast<int64_t>(b);
    switch (reason) {
      case SealReason::kMaxBatch:
        ++stats_.max_batch_seals;
        break;
      case SealReason::kWindow:
        ++stats_.window_seals;
        break;
      case SealReason::kFlush:
        ++stats_.flush_seals;
        break;
    }
    if (max_wait > stats_.max_gather_wait_ns) stats_.max_gather_wait_ns = max_wait;
    stats_.provided_steer += provided_steer;
    stats_.provided_saliency += provided_saliency;
    stats_.provided_recon += provided_recon;
    stats_.recon_mispredicts += mispredicts;
    stats_.prescreen_rejects += prescreen_rejects;
    if (config_.keep_results) {
      for (auto& cr : out) results_.push_back(std::move(cr));
    }
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    outstanding_.fetch_sub(static_cast<int64_t>(b), std::memory_order_acq_rel);
  }
  idle_cv_.notify_all();
}

}  // namespace salnov::serving
