#include "serving/circuit_breaker.hpp"

#include <stdexcept>

namespace salnov::serving {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {
  if (config_.failure_threshold < 1) {
    throw std::invalid_argument("CircuitBreaker: failure_threshold must be >= 1");
  }
  if (config_.open_frames < 1) {
    throw std::invalid_argument("CircuitBreaker: open_frames must be >= 1");
  }
}

void CircuitBreaker::begin_frame() {
  if (state_ == BreakerState::kOpen && ++open_frame_count_ >= config_.open_frames) {
    state_ = BreakerState::kHalfOpen;
  }
}

void CircuitBreaker::record_success() {
  if (state_ == BreakerState::kHalfOpen) {
    ++probe_successes_;
    state_ = BreakerState::kClosed;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure() {
  if (state_ == BreakerState::kHalfOpen) {
    ++probe_failures_;
    state_ = BreakerState::kOpen;
    open_frame_count_ = 0;
    consecutive_failures_ = 0;
    return;
  }
  if (state_ == BreakerState::kClosed && ++consecutive_failures_ >= config_.failure_threshold) {
    ++trips_;
    state_ = BreakerState::kOpen;
    open_frame_count_ = 0;
    consecutive_failures_ = 0;
  }
}

}  // namespace salnov::serving
