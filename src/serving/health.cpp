#include "serving/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace salnov::serving {
namespace {

/// JSON has no NaN/Inf literal: render non-finite gauges as null, finite
/// ones with enough digits to round-trip a double.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kValidate:
      return "validate";
    case Stage::kSteer:
      return "steer";
    case Stage::kSaliency:
      return "saliency";
    case Stage::kReconstruct:
      return "reconstruct";
    case Stage::kScore:
      return "score";
  }
  return "unknown";
}

const char* serving_mode_name(ServingMode mode) {
  switch (mode) {
    case ServingMode::kVbpSsim:
      return "vbp+ssim";
    case ServingMode::kVbpMse:
      return "vbp+mse";
    case ServingMode::kRawMse:
      return "raw+mse";
    case ServingMode::kSensorHold:
      return "sensor-hold";
    case ServingMode::kVbpSsimQ8:
      return "vbp+ssim-q8";
    case ServingMode::kVbpMseQ8:
      return "vbp+mse-q8";
  }
  return "unknown";
}

namespace {

/// Ladder order, most preferred first. The q8 rung sits directly below its
/// float peer: cheaper compute with bounded score drift beats dropping a
/// whole pipeline stage.
constexpr ServingMode kLadder[kServingLadderRanks] = {
    ServingMode::kVbpSsim, ServingMode::kVbpSsimQ8, ServingMode::kVbpMse,
    ServingMode::kVbpMseQ8, ServingMode::kRawMse,   ServingMode::kSensorHold,
};

}  // namespace

int serving_mode_ladder_rank(ServingMode mode) {
  for (int r = 0; r < kServingLadderRanks; ++r) {
    if (kLadder[r] == mode) return r;
  }
  throw std::invalid_argument("serving_mode_ladder_rank: unknown mode");
}

ServingMode serving_ladder_mode_at(int rank) {
  if (rank < 0) rank = 0;
  if (rank >= kServingLadderRanks) rank = kServingLadderRanks - 1;
  return kLadder[rank];
}

bool serving_mode_quantized(ServingMode mode) {
  return mode == ServingMode::kVbpSsimQ8 || mode == ServingMode::kVbpMseQ8;
}

ServingMode serving_ladder_next(ServingMode mode, bool skip_quantized) {
  int rank = serving_mode_ladder_rank(mode);
  do {
    ++rank;
  } while (rank < kServingLadderRanks && skip_quantized && serving_mode_quantized(kLadder[rank]));
  return serving_ladder_mode_at(rank);
}

ServingMode serving_ladder_prev(ServingMode mode, bool skip_quantized) {
  int rank = serving_mode_ladder_rank(mode);
  do {
    --rank;
  } while (rank > 0 && skip_quantized && serving_mode_quantized(kLadder[rank]));
  return serving_ladder_mode_at(rank);
}

LatencyRing::LatencyRing(size_t capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("LatencyRing: capacity must be >= 1");
  samples_.reserve(capacity);
}

void LatencyRing::push(int64_t ns) {
  if (samples_.size() < capacity_) {
    samples_.push_back(ns);
  } else {
    samples_[next_] = ns;
    full_ = true;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

int64_t LatencyRing::percentile_ns(double p) const {
  if (samples_.empty()) return 0;
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("LatencyRing: percentile outside [0, 1]");
  std::vector<int64_t> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p of the window at or
  // below it.
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

std::string HealthSnapshot::to_json() const {
  std::ostringstream os;
  os << "{";
  os << "\"mode\":\"" << serving_mode_name(mode) << "\",";
  os << "\"breaker_state\":\"" << breaker_state_name(breaker_state) << "\",";
  os << "\"frames_total\":" << frames_total << ",";
  os << "\"frames_scored\":" << frames_scored << ",";
  os << "\"frames_abandoned\":" << frames_abandoned << ",";
  os << "\"frames_held\":" << frames_held << ",";
  os << "\"frames_sensor_bad\":" << frames_sensor_bad << ",";
  os << "\"deadline_overruns\":" << deadline_overruns << ",";
  os << "\"scoring_failures\":" << scoring_failures << ",";
  os << "\"nonfinite_scores\":" << nonfinite_scores << ",";
  os << "\"step_downs\":" << step_downs << ",";
  os << "\"promotions\":" << promotions << ",";
  os << "\"breaker_trips\":" << breaker_trips << ",";
  os << "\"probe_successes\":" << probe_successes << ",";
  os << "\"probe_failures\":" << probe_failures << ",";
  os << "\"drift_checks\":" << drift_checks << ",";
  os << "\"drift_detections\":" << drift_detections << ",";
  os << "\"threshold_swaps\":" << threshold_swaps << ",";
  os << "\"swap_persist_failures\":" << swap_persist_failures << ",";
  os << "\"threshold_epoch\":" << threshold_epoch << ",";
  os << "\"drift_state\":\"" << drift_state << "\",";
  os << "\"queue_capacity\":" << queue_capacity << ",";
  os << "\"queue_high_water\":" << queue_high_water << ",";
  os << "\"queue_shed\":" << queue_shed << ",";
  os << "\"stages\":[";
  for (size_t s = 0; s < stages.size(); ++s) {
    const StageHealth& stage = stages[s];
    if (s > 0) os << ",";
    os << "{\"name\":\"" << stage.name << "\",";
    os << "\"overruns\":" << stage.overruns << ",";
    os << "\"samples\":" << stage.samples << ",";
    os << "\"p50_ns\":" << stage.p50_ns << ",";
    os << "\"p99_ns\":" << stage.p99_ns << "}";
  }
  os << "],";
  os << "\"shadow\":[";
  for (size_t g = 0; g < shadow.size(); ++g) {
    const ShadowGauge& gauge = shadow[g];
    if (g > 0) os << ",";
    os << "{\"rung\":\"" << gauge.rung << "\",";
    os << "\"shadow_samples\":" << gauge.shadow_samples << ",";
    os << "\"shadow_quantile\":" << json_number(gauge.shadow_quantile) << ",";
    os << "\"served_threshold\":" << json_number(gauge.served_threshold) << ",";
    os << "\"eligible\":" << (gauge.eligible ? "true" : "false") << "}";
  }
  os << "]";
  if (has_cluster) {
    os << ",\"cluster\":{";
    os << "\"batches\":" << cluster.batches << ",";
    os << "\"batched_frames\":" << cluster.batched_frames << ",";
    os << "\"max_batch_seals\":" << cluster.max_batch_seals << ",";
    os << "\"window_seals\":" << cluster.window_seals << ",";
    os << "\"flush_seals\":" << cluster.flush_seals << ",";
    os << "\"max_gather_wait_ns\":" << cluster.max_gather_wait_ns << ",";
    os << "\"provided_steer\":" << cluster.provided_steer << ",";
    os << "\"provided_saliency\":" << cluster.provided_saliency << ",";
    os << "\"provided_recon\":" << cluster.provided_recon << ",";
    os << "\"recon_mispredicts\":" << cluster.recon_mispredicts << ",";
    os << "\"prescreen_rejects\":" << cluster.prescreen_rejects << ",";
    os << "\"quarantines\":" << cluster.quarantines << ",";
    os << "\"probe_attempts\":" << cluster.probe_attempts << ",";
    os << "\"probe_failures\":" << cluster.probe_failures << ",";
    os << "\"restores\":" << cluster.restores << ",";
    os << "\"failovers\":" << cluster.failovers << ",";
    os << "\"redispatched_frames\":" << cluster.redispatched_frames << ",";
    os << "\"fallback_frames\":" << cluster.fallback_frames << ",";
    os << "\"shed_frames\":" << cluster.shed_frames << ",";
    os << "\"slow_batches\":" << cluster.slow_batches << ",";
    os << "\"canary_checks\":" << cluster.canary_checks << ",";
    os << "\"canary_failures\":" << cluster.canary_failures << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace salnov::serving
