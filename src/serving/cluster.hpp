// ServingCluster: multi-stream serving with cross-frame micro-batching.
//
// One cluster owns N detector replicas (worker threads) sharing a single
// set of read-only pre-packed weights (Dense::packed_weights caches panels
// behind a double-checked atomic, so replicas share one copy). Many
// concurrent streams submit frames; each stream keeps its OWN Supervisor —
// its own mode-ladder position, circuit breaker, NoveltyMonitor, per-rung
// ECDF calibrations, deadline budgets, and HealthSnapshot. The cluster
// never mixes policy across streams.
//
// What IS shared is compute. A BatchAssembler (one per replica) gathers
// frames arriving within a bounded window across streams and runs the pure
// compute stages as batch-B forward passes — one stacked steering forward,
// one stacked VBP forward_collect, one [B, H*W] autoencoder GEMM — instead
// of B per-frame matvecs. The per-frame results are handed to each frame's
// own Supervisor through ProvidedCompute, and the supervisor replays its
// normal staged pipeline consuming them. Because every *decision* (budget,
// ladder, breaker, monitor, calibration) still runs inside the supervisor,
// and every batched kernel is bit-identical per sample to its batch-1
// counterpart (see NoveltyDetector's batched-scoring contract), scores and
// transitions are bit-identical regardless of which batch a frame landed
// in.
//
// Determinism: a frame is stamped with the clock at submit(); a batch seals
// when (a) it reaches max_batch, (b) a frame arrives outside the gather
// window of the batch head, or (c) the clock passes the head's window
// deadline. All three cuts depend only on arrival order and timestamps, so
// under a FakeClock the batch composition is a pure function of the arrival
// sequence — and since scores are batch-invariant anyway, even a different
// composition could not change them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serving/supervisor.hpp"

namespace salnov::serving {

struct ClusterConfig {
  int64_t streams = 1;   ///< independent per-stream supervisors
  int64_t replicas = 1;  ///< worker threads (clamped to `streams`)
  /// Frames arriving within this window of a batch head are gathered into
  /// the same batch (<= 0 degenerates to per-frame batches of size 1 unless
  /// frames carry identical timestamps).
  int64_t gather_window_ns = 2'000'000;
  int64_t max_batch = 16;  ///< hard cap on one batched forward
  /// Per-stream supervisor configuration (applied to every stream).
  SupervisorConfig supervisor;
  /// Retain per-frame ClusterResults for take_results(). Disable for soak
  /// runs where only health counters matter.
  bool keep_results = true;
};

/// One completed frame, tagged with its routing and batching context.
struct ClusterResult {
  int64_t stream_id = 0;
  int64_t arrival_seq = 0;  ///< global submit order (0-based)
  int64_t arrival_ns = 0;   ///< clock at submit()
  int64_t sealed_ns = 0;    ///< clock when the containing batch sealed
  int64_t replica = 0;      ///< worker that served the frame
  int64_t batch_seq = 0;    ///< per-replica batch counter
  int64_t batch_size = 0;   ///< frames in the containing batch
  ServeResult result;
  ServingMode mode_after = ServingMode::kVbpSsim;        ///< stream mode after the frame
  BreakerState breaker_after = BreakerState::kClosed;    ///< stream breaker after the frame
};

/// Exact assembler/batching counters (aggregated across replicas).
struct ClusterStats {
  int64_t batches = 0;          ///< batched forwards executed
  int64_t batched_frames = 0;   ///< frames that went through a batch (== frames submitted)
  int64_t max_batch_seals = 0;  ///< batches sealed by hitting max_batch
  int64_t window_seals = 0;     ///< batches sealed by the gather-window deadline
  int64_t flush_seals = 0;      ///< batches sealed by drain()/stop()
  int64_t max_gather_wait_ns = 0;  ///< worst sealed_ns - arrival_ns over all frames
  int64_t provided_steer = 0;      ///< frames served a batched steering angle
  int64_t provided_saliency = 0;   ///< frames served a batched saliency mask
  int64_t provided_recon = 0;      ///< frames served a batched reconstruction
  int64_t recon_mispredicts = 0;   ///< provided reconstructions discarded (input mismatch)
  int64_t prescreen_rejects = 0;   ///< frames excluded from batched compute by the validator
};

class ServingCluster {
 public:
  /// `detector` must be fitted and outlive the cluster; `steering_model`
  /// follows the same contract as Supervisor's. `clock` may be null (a
  /// SteadyClock is created) and is shared by every stream's supervisor.
  /// Worker threads start immediately.
  ServingCluster(const core::NoveltyDetector& detector, nn::Sequential* steering_model,
                 ClusterConfig config, Clock* clock = nullptr);

  /// Drains and joins the workers.
  ~ServingCluster();

  /// Enqueues one frame on `stream_id`'s replica queue; never blocks on
  /// compute. Throws std::out_of_range on a bad stream id; submissions
  /// after stop() are dropped.
  void submit(int64_t stream_id, Image frame);

  /// Holds workers before their next batch seal. Frames submitted while
  /// paused accumulate with their submit-time stamps; resume() processes
  /// them in order. Used by the trace driver to stage a deterministic
  /// arrival schedule under a FakeClock before any compute runs.
  void pause();
  void resume();

  /// Blocks until every submitted frame has been processed (seals partial
  /// batches rather than waiting out their gather windows). Implies
  /// resume().
  void drain();

  /// Drains, then stops and joins the workers. Idempotent.
  void stop();

  /// Moves out the accumulated per-frame results, sorted by arrival_seq
  /// (empty when config.keep_results is false).
  std::vector<ClusterResult> take_results();

  /// One stream's supervisor snapshot. Safe against concurrent processing.
  HealthSnapshot stream_health(int64_t stream_id) const;

  /// Cluster-wide snapshot: counters summed over streams; mode/breaker are
  /// the most-degraded across streams; per-stage percentiles are the
  /// per-stream maxima (a conservative aggregate tail).
  HealthSnapshot aggregate_health() const;

  ClusterStats stats() const;

  int64_t streams() const { return config_.streams; }
  int64_t replicas() const { return static_cast<int64_t>(replicas_.size()); }

  /// Direct access for tests (stream supervisors are only otherwise touched
  /// by their replica worker; do not call process() on these concurrently
  /// with submitted frames).
  Supervisor& stream_supervisor(int64_t stream_id);

 private:
  struct PendingFrame {
    int64_t stream_id = 0;
    int64_t arrival_seq = 0;
    int64_t arrival_ns = 0;
    Image frame;
  };

  enum class SealReason { kMaxBatch, kWindow, kFlush };

  struct Replica {
    int64_t index = 0;
    mutable std::mutex mu;  ///< guards queue / flags below
    std::condition_variable cv;
    std::deque<PendingFrame> queue;
    bool flush = false;     ///< seal partial batches immediately (drain)
    bool stopping = false;  ///< worker exits once the queue is empty
    int64_t batches_sealed = 0;
    /// Serializes this replica's supervisor access (worker processing vs
    /// health snapshots). Streams are partitioned across replicas, so one
    /// mutex per replica covers all its streams.
    mutable std::mutex proc_mu;
    std::thread worker;
  };

  int64_t replica_for(int64_t stream_id) const {
    return stream_id % static_cast<int64_t>(replicas_.size());
  }

  /// True when the head of the queue must seal now (max_batch reached, a
  /// frame beyond the head's window arrived, the clock passed the head's
  /// deadline, or a flush/stop is pending). Caller holds r.mu.
  bool should_seal(const Replica& r) const;

  /// Pops the sealed batch (up to max_batch frames within the head's
  /// window). Caller holds r.mu.
  std::vector<PendingFrame> seal_batch(Replica& r, SealReason& reason);

  void worker_loop(Replica& r);
  void process_batch(Replica& r, std::vector<PendingFrame> batch, SealReason reason,
                     int64_t sealed_ns, int64_t batch_seq);

  const core::NoveltyDetector& detector_;
  nn::Sequential* steering_model_;
  ClusterConfig config_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;
  const bool saliency_configured_;

  std::vector<std::unique_ptr<Supervisor>> supervisors_;  ///< one per stream
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::atomic<int64_t> next_seq_{0};
  std::atomic<bool> paused_{false};
  std::atomic<bool> stopped_{false};

  /// Accepted frames not yet processed; the worker's decrement-to-zero
  /// notifies idle_cv_ (same idiom as ServingServer).
  std::atomic<int64_t> outstanding_{0};
  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  mutable std::mutex results_mu_;  ///< guards results_ and stats_
  std::vector<ClusterResult> results_;
  ClusterStats stats_;
};

}  // namespace salnov::serving
