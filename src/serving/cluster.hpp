// ServingCluster: multi-stream serving with cross-frame micro-batching.
//
// One cluster owns N detector replicas (worker threads) sharing a single
// set of read-only pre-packed weights (Dense::packed_weights caches panels
// behind a double-checked atomic, so replicas share one copy). Many
// concurrent streams submit frames; each stream keeps its OWN Supervisor —
// its own mode-ladder position, circuit breaker, NoveltyMonitor, per-rung
// ECDF calibrations, deadline budgets, and HealthSnapshot. The cluster
// never mixes policy across streams.
//
// What IS shared is compute. A BatchAssembler (one per replica) gathers
// frames arriving within a bounded window across streams and runs the pure
// compute stages as batch-B forward passes — one stacked steering forward,
// one stacked VBP forward_collect, one [B, H*W] autoencoder GEMM — instead
// of B per-frame matvecs. The per-frame results are handed to each frame's
// own Supervisor through ProvidedCompute, and the supervisor replays its
// normal staged pipeline consuming them. Because every *decision* (budget,
// ladder, breaker, monitor, calibration) still runs inside the supervisor,
// and every batched kernel is bit-identical per sample to its batch-1
// counterpart (see NoveltyDetector's batched-scoring contract), scores and
// transitions are bit-identical regardless of which batch a frame landed
// in.
//
// Determinism: a frame is stamped with the clock at submit(); a batch seals
// when (a) it reaches max_batch, (b) a frame arrives outside the gather
// window of the batch head, or (c) the clock passes the head's window
// deadline. All three cuts depend only on arrival order and timestamps, so
// under a FakeClock the batch composition is a pure function of the arrival
// sequence — and since scores are batch-invariant anyway, even a different
// composition could not change them.
//
// Failure domain (optional, config.watchdog.enabled): a replica can be
// scheduled to crash, hang, run slow, or serve off corrupted weights via a
// faults::ReplicaFaultSchedule. A ReplicaWatchdog — driven from
// deterministic tick points on the submit/drain thread, never from a free-
// running thread — quarantines symptomatic replicas, migrates their queued
// streams wholesale to survivors (a stream's pending frames live on exactly
// one replica at a time, in arrival order, so per-stream processing order
// is preserved), retries with a bounded re-dispatch budget, and past the
// budget (or with every replica down) serves frames inline on the stream's
// own Supervisor — the batch-1 path, so scores stay bit-identical through
// every recovery route. Quarantined replicas are probed half-open with
// exponential backoff using a canary frame whose known-good steering angle
// is computed from a pristine copy of the weights at construction.
// Admission credits (config.admission_credits) bound each stream's pending
// frames; past the bound the stream's oldest queued frame is shed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "faults/replica_faults.hpp"
#include "serving/supervisor.hpp"
#include "serving/watchdog.hpp"

namespace salnov::serving {

struct ClusterConfig {
  int64_t streams = 1;   ///< independent per-stream supervisors
  int64_t replicas = 1;  ///< worker threads (clamped to `streams`)
  /// Frames arriving within this window of a batch head are gathered into
  /// the same batch (<= 0 degenerates to per-frame batches of size 1 unless
  /// frames carry identical timestamps).
  int64_t gather_window_ns = 2'000'000;
  int64_t max_batch = 16;  ///< hard cap on one batched forward
  /// Per-stream supervisor configuration (applied to every stream).
  SupervisorConfig supervisor;
  /// Retain per-frame ClusterResults for take_results(). Disable for soak
  /// runs where only health counters matter.
  bool keep_results = true;

  /// Replica failure detection/recovery; disabled by default (a cluster
  /// without a watchdog routes statically and never sheds).
  WatchdogConfig watchdog;
  /// Max pending (queued, unprocessed) frames per stream; past it the
  /// stream's oldest queued frame is shed. 0 disables admission control.
  int64_t admission_credits = 0;
  /// Scheduled replica faults; may be null. Must outlive the cluster.
  const faults::ReplicaFaultSchedule* replica_faults = nullptr;
  /// Whether a slow-replica fault really sleeps the worker. True for live
  /// clocks; the trace driver sets false because FakeClock::sleep_ns
  /// advances the shared clock and would perturb every stream's arrivals.
  bool sleep_on_slow = true;
};

/// One completed frame, tagged with its routing and batching context.
/// Frames served inline by their stream's Supervisor (re-dispatch budget
/// exhausted or no healthy replica) carry replica = -1, batch_seq = -1,
/// batch_size = 1.
struct ClusterResult {
  int64_t stream_id = 0;
  int64_t arrival_seq = 0;  ///< global submit order (0-based)
  int64_t arrival_ns = 0;   ///< clock at submit()
  int64_t sealed_ns = 0;    ///< clock when the containing batch sealed
  int64_t replica = 0;      ///< worker that served the frame (-1 = inline fallback)
  int64_t batch_seq = 0;    ///< per-replica batch counter
  int64_t batch_size = 0;   ///< frames in the containing batch
  ServeResult result;
  ServingMode mode_after = ServingMode::kVbpSsim;        ///< stream mode after the frame
  BreakerState breaker_after = BreakerState::kClosed;    ///< stream breaker after the frame
};

class ServingCluster {
 public:
  /// `detector` must be fitted and outlive the cluster; `steering_model`
  /// follows the same contract as Supervisor's. `clock` may be null (a
  /// SteadyClock is created) and is shared by every stream's supervisor.
  /// Worker threads start immediately.
  ServingCluster(const core::NoveltyDetector& detector, nn::Sequential* steering_model,
                 ClusterConfig config, Clock* clock = nullptr);

  /// Drains and joins the workers.
  ~ServingCluster();

  /// Enqueues one frame on `stream_id`'s routed replica queue; never blocks
  /// on batched compute (it may process the frame inline when no replica is
  /// healthy). Runs a watchdog tick first, so quarantine/probe/restore
  /// decisions happen at deterministic points in the arrival sequence.
  /// Throws std::out_of_range on a bad stream id; submissions after stop()
  /// are dropped.
  void submit(int64_t stream_id, Image frame);

  /// Runs one watchdog pass at the current clock without submitting a frame.
  /// Normally the watchdog advances on submit()/drain(); a driver whose
  /// source has gone quiet (or that is deliberately pacing itself) can call
  /// this so quarantine, probe, and restore decisions keep up with the clock
  /// while no frames arrive. No-op after stop() or with the watchdog off.
  void tick();

  /// Holds workers before their next batch seal. Frames submitted while
  /// paused accumulate with their submit-time stamps; resume() processes
  /// them in order. Used by the trace driver to stage a deterministic
  /// arrival schedule under a FakeClock before any compute runs.
  void pause();
  void resume();

  /// Blocks until every submitted frame has been processed (seals partial
  /// batches rather than waiting out their gather windows). Runs a final
  /// watchdog tick first so frames stranded on a faulted replica migrate
  /// instead of being flushed through it. Implies resume().
  void drain();

  /// Drains, then stops and joins the workers. Idempotent.
  void stop();

  /// Moves out the accumulated per-frame results, sorted by arrival_seq
  /// (empty when config.keep_results is false).
  std::vector<ClusterResult> take_results();

  /// Moves out the failure-domain event log (quarantines, probes, restores,
  /// failovers, fallbacks, sheds) in decision order.
  std::vector<ClusterEvent> take_events();

  /// One stream's supervisor snapshot. Safe against concurrent processing.
  HealthSnapshot stream_health(int64_t stream_id) const;

  /// Cluster-wide snapshot: counters summed over streams; mode/breaker are
  /// the most-degraded across streams; per-stage percentiles are the
  /// per-stream maxima (a conservative aggregate tail). Embeds stats() as
  /// the snapshot's cluster section.
  HealthSnapshot aggregate_health() const;

  ClusterStats stats() const;

  /// Frames shed from `stream_id` by admission control.
  int64_t shed_for_stream(int64_t stream_id) const;

  /// Watchdog view of one replica (kHealthy when the watchdog is off).
  ReplicaState replica_state(int64_t replica) const;

  int64_t streams() const { return config_.streams; }
  int64_t replicas() const { return static_cast<int64_t>(replicas_.size()); }

  /// Direct access for tests (stream supervisors are only otherwise touched
  /// by their replica worker; do not call process() on these concurrently
  /// with submitted frames).
  Supervisor& stream_supervisor(int64_t stream_id);

 private:
  struct PendingFrame {
    int64_t stream_id = 0;
    int64_t arrival_seq = 0;
    int64_t arrival_ns = 0;
    int64_t redispatches = 0;  ///< failovers survived; bounded by the watchdog budget
    Image frame;
  };

  enum class SealReason { kMaxBatch, kWindow, kFlush };

  struct Replica {
    int64_t index = 0;
    mutable std::mutex mu;  ///< guards queue / flags below
    std::condition_variable cv;
    std::deque<PendingFrame> queue;
    bool flush = false;     ///< seal partial batches immediately (drain)
    bool stopping = false;  ///< worker exits once the queue is empty
    int64_t batches_sealed = 0;
    /// Stamped by the worker each loop turn; silence past the watchdog's
    /// heartbeat timeout (live clock only) is an outage symptom.
    std::atomic<int64_t> last_heartbeat_ns{0};
    std::thread worker;
  };

  int64_t home_replica(int64_t stream_id) const {
    return stream_id % static_cast<int64_t>(replicas_.size());
  }

  /// True when the head of the queue must seal now (max_batch reached, a
  /// frame beyond the head's window arrived, the clock passed the head's
  /// deadline, or a flush/stop is pending). An active crash/hang fault
  /// suppresses sealing — unless a flush/stop is pending AND the watchdog
  /// is off (liveness wins when nothing can migrate the frames). Caller
  /// holds r.mu.
  bool should_seal(const Replica& r) const;

  /// Pops the sealed batch (up to max_batch frames within the head's
  /// window). Caller holds r.mu.
  std::vector<PendingFrame> seal_batch(Replica& r, SealReason& reason);

  void worker_loop(Replica& r);
  void process_batch(Replica& r, std::vector<PendingFrame> batch, SealReason reason,
                     int64_t sealed_ns, int64_t batch_seq);

  // --- failure domain (all require routing_mu_ unless noted) --------------

  /// Watchdog pass: charge symptoms, quarantine, probe, restore, rebalance.
  /// No-op when the watchdog is off.
  void tick_locked(int64_t now_ns);

  /// Recomputes every stream's route (first healthy replica scanning from
  /// home; -1 when none) and migrates queued frames of re-routed streams
  /// wholesale, charging the re-dispatch budget. Frames past the budget —
  /// and every frame when no replica is healthy — are served inline.
  void rebalance_locked(int64_t now_ns);

  void quarantine_locked(int64_t replica, int64_t now_ns, int64_t detail);

  /// Serves one frame on its stream's Supervisor (batch-1 path, identical
  /// bits). `was_pending` says whether the frame was counted in the
  /// pending/outstanding accounting (queued frames yes, direct submissions
  /// are counted by the caller).
  void process_inline_locked(PendingFrame frame, int64_t now_ns, bool was_pending);

  /// One canary evaluation of `replica`: rebuild a clone from the pristine
  /// weight bytes, apply any active weight-corruption fault, compare the
  /// canary frame's steering angle against the known-good value. True when
  /// the replica would serve good bits. Schedule-only verdict (true) when
  /// no steering model is configured.
  bool canary_passes_locked(int64_t replica, int64_t now_ns);

  /// Half-open probe verdict: no outage/degrading-slow fault active and the
  /// canary passes.
  bool probe_passes_locked(int64_t replica, int64_t now_ns);

  void push_event_locked(ClusterEventKind kind, int64_t at_ns, int64_t replica,
                         int64_t stream, int64_t detail);

  const core::NoveltyDetector& detector_;
  nn::Sequential* steering_model_;
  ClusterConfig config_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;
  const bool saliency_configured_;

  std::vector<std::unique_ptr<Supervisor>> supervisors_;  ///< one per stream
  std::vector<std::unique_ptr<Replica>> replicas_;

  /// Serializes one stream's supervisor access (worker processing, inline
  /// fallback, health snapshots). Lock order: routing_mu_ -> stream_mu_ ->
  /// results_mu_; workers take only the latter two.
  std::unique_ptr<std::mutex[]> stream_mu_;

  /// Failure-domain state: watchdog, per-stream routes, shed accounting,
  /// event log, chaos counters. All mutated at tick points on the
  /// submit/drain thread under routing_mu_.
  mutable std::mutex routing_mu_;
  std::unique_ptr<ReplicaWatchdog> watchdog_;  ///< null when disabled
  std::vector<int64_t> routing_;               ///< stream -> replica (-1 = inline)
  std::vector<int64_t> shed_per_stream_;
  std::vector<ClusterEvent> events_;
  ClusterStats chaos_stats_;  ///< only the failure-domain counters are used

  /// Queued-unprocessed frames per stream (admission credits). Atomic so
  /// workers can decrement without routing_mu_.
  std::unique_ptr<std::atomic<int64_t>[]> pending_per_stream_;

  /// Canary probe state: pristine steering weights serialized at
  /// construction, a fixed synthetic frame, and its known-good angle.
  bool has_canary_ = false;
  std::string pristine_steering_bytes_;
  Image canary_frame_;
  double canary_known_good_ = 0.0;

  std::atomic<int64_t> next_seq_{0};
  std::atomic<bool> paused_{false};
  std::atomic<bool> stopped_{false};

  /// Accepted frames not yet processed; the worker's decrement-to-zero
  /// notifies idle_cv_ (same idiom as ServingServer).
  std::atomic<int64_t> outstanding_{0};
  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  mutable std::mutex results_mu_;  ///< guards results_ and stats_
  std::vector<ClusterResult> results_;
  ClusterStats stats_;
};

}  // namespace salnov::serving
