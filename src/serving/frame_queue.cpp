#include "serving/frame_queue.hpp"

#include <stdexcept>

namespace salnov::serving {

FrameQueue::FrameQueue(size_t capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("FrameQueue: capacity must be >= 1");
}

FrameQueue::PushResult FrameQueue::push(QueuedFrame item) {
  PushResult result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return result;
    if (items_.size() >= capacity_) {
      ++shed_by_stream_[items_.front().stream_id];
      items_.pop_front();
      result.shed = 1;
      ++shed_;
    }
    items_.push_back(std::move(item));
    result.accepted = true;
    if (items_.size() > high_water_) high_water_ = items_.size();
  }
  cv_.notify_one();
  return result;
}

bool FrameQueue::pop_wait(QueuedFrame& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

bool FrameQueue::try_pop(QueuedFrame& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void FrameQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t FrameQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

size_t FrameQueue::high_water_mark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

int64_t FrameQueue::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

int64_t FrameQueue::shed_for_stream(int64_t stream_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = shed_by_stream_.find(stream_id);
  return it == shed_by_stream_.end() ? 0 : it->second;
}

}  // namespace salnov::serving
