#include "serving/supervisor.hpp"

#include <cmath>
#include <stdexcept>

#include "driving/steering_trainer.hpp"

namespace salnov::serving {

core::DetectorVariant Supervisor::variant_for(ServingMode mode) {
  switch (mode) {
    case ServingMode::kVbpSsim:
      return core::DetectorVariant::kPrimary;
    case ServingMode::kVbpMse:
      return core::DetectorVariant::kPreprocessedMse;
    case ServingMode::kVbpSsimQ8:
      return core::DetectorVariant::kPrimaryQ8;
    case ServingMode::kVbpMseQ8:
      return core::DetectorVariant::kPreprocessedMseQ8;
    case ServingMode::kRawMse:
    case ServingMode::kSensorHold:
      return core::DetectorVariant::kRawMse;
  }
  throw std::logic_error("variant_for: unknown serving mode");
}

Supervisor::Supervisor(const core::NoveltyDetector& detector, nn::Sequential* steering_model,
                       SupervisorConfig config, Clock* clock)
    : detector_(detector),
      steering_model_(steering_model),
      config_(std::move(config)),
      owned_clock_(clock == nullptr ? std::make_unique<SteadyClock>() : nullptr),
      clock_(clock == nullptr ? owned_clock_.get() : clock),
      monitor_(detector, config_.monitor),
      breaker_(config_.breaker),
      saliency_configured_(core::uses_saliency(detector.config().preprocessing)),
      // Silent degrade, not an error: a pipeline fitted without quantization
      // (or loaded from a pre-quant file) simply serves the float ladder.
      quant_rungs_active_(config_.enable_quant_rungs && detector.has_quant_calibrations() &&
                          detector.has_quant_path()) {
  if (!detector.has_variant_calibrations()) {
    throw std::logic_error("Supervisor: detector lacks variant calibrations (refit or reload)");
  }
  if (saliency_configured_ && steering_model_ == nullptr) {
    throw std::invalid_argument("Supervisor: saliency pipeline requires its steering model");
  }
  if (config_.demote_after_bad_frames < 1 || config_.promote_after_healthy_frames < 1) {
    throw std::invalid_argument("Supervisor: ladder hysteresis counts must be >= 1");
  }
  for (auto& ring : rings_) ring = LatencyRing(config_.latency_window);
  if (config_.calibration.enabled) {
    calibrator_.emplace(detector_, config_.calibration);  // validates the config
  }
}

void Supervisor::install_thresholds(std::shared_ptr<const calib::ThresholdSet> set) {
  live_thresholds_.install(std::move(set));
  threshold_swaps_.fetch_add(1, std::memory_order_acq_rel);
}

const core::NoveltyThreshold& Supervisor::threshold_for(core::DetectorVariant variant,
                                                        const calib::ThresholdSet* live) const {
  if (live != nullptr) return live->thresholds[static_cast<size_t>(variant)];
  return detector_.variant_calibration(variant).threshold;
}

void Supervisor::perform_swap(ServeResult& result, const calib::ThresholdSet* live, bool forced) {
  const int64_t epoch = (live != nullptr ? live->epoch : 0) + 1;
  const std::shared_ptr<const calib::ThresholdSet> next = calibrator_->build(live, epoch);
  ThresholdSwapEvent event;
  event.frame_index = result.frame_index;
  event.epoch = epoch;
  event.forced = forced;
  const std::string& store = calibrator_->config().store_path;
  if (!store.empty()) {
    try {
      next->save_file(store);  // crash-safe: temp + atomic rename + CRC trailer
      event.persisted = true;
    } catch (const std::exception&) {
      // Persistence failed (disk fault or injected crash). Policy: do not
      // install a set that could not be made durable — disk holds either the
      // complete old file or the complete new one, and the live pointer
      // keeps serving the old set. The drift episode stays armed, so the
      // swap is retried at the next check.
      ++swap_persist_failures_;
      return;
    }
  }
  live_thresholds_.install(next);
  threshold_swaps_.fetch_add(1, std::memory_order_acq_rel);
  calibrator_->rearm_after_swap();
  swap_events_.push_back(event);
  result.threshold_swapped = true;
  result.threshold_epoch = epoch;
}

void Supervisor::run_calibration(ServeResult& result, const calib::ThresholdSet* live,
                                 core::DetectorVariant variant) {
  if (!calibrator_.has_value()) return;
  bool drift_fired = false;
  if (result.scored) {
    calibrator_->observe(variant, result.score);
    if (calibrator_->check_due(frames_scored_)) {
      ++drift_checks_;
      const calib::DriftCheck check = calibrator_->check(live);
      if (check.any_drifted) ++drift_detections_;
      drift_fired = check.state == calib::DriftState::kDrifted;
    }
  }
  // Forced swaps: entries for frames that never reached this point (sensor
  // screening, abandonment) are skipped, not deferred — the schedule stays
  // a function of frame indices alone.
  const auto& forced_frames = calibrator_->config().forced_swap_frames;
  while (next_forced_ < forced_frames.size() &&
         forced_frames[next_forced_] < result.frame_index) {
    ++next_forced_;
  }
  const bool forced_now =
      next_forced_ < forced_frames.size() && forced_frames[next_forced_] == result.frame_index;
  if (forced_now) ++next_forced_;
  if (forced_now || (drift_fired && calibrator_->config().auto_swap)) {
    perform_swap(result, live, forced_now);
  }
}

Supervisor::StageOutcome Supervisor::run_stage(Stage stage, int64_t frame_index,
                                               ServeResult& result,
                                               const std::function<void()>& body) {
  const size_t s = static_cast<size_t>(stage);
  const int64_t start = clock_->now_ns();
  if (config_.timing_faults != nullptr) {
    clock_->sleep_ns(config_.timing_faults->stall_ns(static_cast<int>(stage), frame_index));
  }
  StageOutcome outcome;
  try {
    body();
  } catch (const std::exception&) {
    outcome.threw = true;
  }
  const int64_t elapsed = clock_->now_ns() - start;
  result.stage_ns[s] = elapsed;
  rings_[s].push(elapsed);
  const int64_t budget = config_.stage_budget_ns[s];
  if (budget > 0 && elapsed > budget) {
    outcome.overrun = true;
    ++stage_overruns_[s];
  }
  return outcome;
}

bool Supervisor::frame_deadline_blown(int64_t frame_start_ns) const {
  return config_.frame_budget_ns > 0 &&
         clock_->now_ns() - frame_start_ns > config_.frame_budget_ns;
}

void Supervisor::attach_monitor_state(ServeResult& result) {
  const core::MonitorState state = monitor_.state();
  result.monitor_state = state;
  result.fallback_path = state == core::MonitorState::kFallback ? core::FallbackPath::kNovelty
                         : state == core::MonitorState::kSensorFault
                             ? core::FallbackPath::kSensorFault
                             : core::FallbackPath::kNone;
}

void Supervisor::finish_abandoned(ServeResult& result) {
  ++frames_abandoned_;
  result.abandoned = true;
  result.scored = false;
  result.deadline_overrun = true;
  // The monitor does not hear about abandoned frames: there is neither a
  // score nor sensor evidence, only a scheduling failure — which the ladder
  // handles.
  attach_monitor_state(result);
}

void Supervisor::set_mode(ServingMode mode) {
  mode_ = mode;
  bad_streak_ = 0;
  healthy_streak_ = 0;
}

void Supervisor::update_ladder(bool frame_bad) {
  // Pipelines without the q8 rungs walk the ladder exactly as before the
  // rungs existed: next/prev skip over them.
  if (frame_bad) {
    healthy_streak_ = 0;
    if (++bad_streak_ >= config_.demote_after_bad_frames &&
        mode_ != ServingMode::kSensorHold) {
      mode_ = serving_ladder_next(mode_, /*skip_quantized=*/!quant_rungs_active_);
      ++step_downs_;
      bad_streak_ = 0;
    }
    return;
  }
  bad_streak_ = 0;
  if (++healthy_streak_ >= config_.promote_after_healthy_frames &&
      mode_ != ServingMode::kVbpSsim) {
    const ServingMode target =
        serving_ladder_prev(mode_, /*skip_quantized=*/!quant_rungs_active_);
    // Promotion back into a saliency rung is gated on the breaker: while it
    // is open or probing, the stage the rung depends on is not trusted yet.
    if (!mode_uses_saliency(target) || !saliency_configured_ ||
        breaker_.state() == BreakerState::kClosed) {
      mode_ = target;
      ++promotions_;
      healthy_streak_ = 0;
    }
  }
}

ServeResult Supervisor::process(const Image& frame, const ProvidedCompute* provided) {
  const int64_t index = frames_total_++;
  const int64_t frame_start = clock_->now_ns();
  ServeResult result;
  result.frame_index = index;
  result.mode = mode_;
  bool frame_bad = false;
  last_recon_mispredicted_ = false;

  // One wait-free acquire pins the threshold set for the whole frame: a
  // concurrent install takes effect at the next frame boundary, never
  // mid-frame (retired sets stay alive, so the pointer cannot dangle).
  const calib::ThresholdSet* live = live_thresholds_.acquire();
  result.threshold_epoch = live != nullptr ? live->epoch : 0;

  // --- Stage 0: validate -------------------------------------------------
  core::FrameFault fault = core::FrameFault::kNone;
  bool frozen = false;
  const StageOutcome validate = run_stage(Stage::kValidate, index, result, [&] {
    fault = detector_.frame_validator().check(frame);
    if (fault == core::FrameFault::kNone) {
      frozen = config_.monitor.detect_frozen_frames && last_valid_frame_.has_value() &&
               last_valid_frame_->tensor() == frame.tensor();
      last_valid_frame_ = frame;
    } else {
      last_valid_frame_.reset();
    }
  });
  if (validate.overrun) frame_bad = true;
  if (frame_deadline_blown(frame_start)) {
    finish_abandoned(result);
    ++deadline_overruns_;
    update_ladder(true);
    return result;
  }
  if (fault != core::FrameFault::kNone || frozen) {
    // Sensor-bad frames are the monitor's jurisdiction and are neutral to
    // the ladder: a dead camera says nothing about pipeline timing health.
    ++frames_sensor_bad_;
    const core::MonitorUpdate update = monitor_.update_sensor_bad(fault, frozen);
    result.sensor_bad = true;
    result.monitor_state = update.state;
    result.fallback_path = update.fallback_path;
    if (frame_bad) ++deadline_overruns_;
    result.deadline_overrun = frame_bad;
    return result;
  }

  breaker_.begin_frame();
  ServingMode mode_used = mode_;

  // Provided compute is only trusted at the precision this frame serves at:
  // float and q8 forwards are different bits by design, so a precision
  // mismatch (mid-batch mode change across a q8 boundary) recomputes
  // directly. `mode_used` cannot cross a precision boundary after this point
  // — within-frame fallbacks land on float kRawMse, which steer/saliency
  // below never consult q8 state for.
  const bool quant_frame = serving_mode_quantized(mode_used);
  const bool provided_ok = provided != nullptr && provided->quantized == quant_frame;

  // --- Stage 1: steer ----------------------------------------------------
  // The steering prediction is the vehicle's primary output and runs in
  // every mode that reaches this point. On a q8 rung it comes from the
  // quantized steering forward — the same network the q8 saliency mask is
  // backpropped through.
  const bool steer_q8 = quant_frame && detector_.quant_steering() != nullptr;
  if (steering_model_ != nullptr) {
    const StageOutcome steer = run_stage(Stage::kSteer, index, result, [&] {
      // A provided angle is the batched forward's row for this frame —
      // bit-identical to the direct call (per-row GEMM identity; exact for
      // q8 too, since integer accumulation is associative).
      result.steering = provided_ok && provided->steering.has_value()
                            ? *provided->steering
                        : steer_q8
                            ? driving::predict_steering_q8(*detector_.quant_steering(), frame)
                            : driving::predict_steering(*steering_model_, frame);
    });
    if (!steer.ok()) frame_bad = true;
    if (steer.threw) ++scoring_failures_;
    if (frame_deadline_blown(frame_start)) {
      finish_abandoned(result);
      ++deadline_overruns_;
      update_ladder(true);
      return result;
    }
  }

  // --- Stage 2: saliency (behind the circuit breaker) --------------------
  Image preprocessed = frame;
  const bool probe = breaker_.state() == BreakerState::kHalfOpen;
  const bool attempt_saliency =
      saliency_configured_ && breaker_.allows() &&
      (mode_uses_saliency(mode_used) || probe);
  bool tripped_this_frame = false;
  if (attempt_saliency) {
    // A half-open probe restores the float top rung on success, so the mask
    // it computes must be the float mask; only a q8 rung that will itself
    // consume the mask computes it quantized.
    const bool mask_q8 = quant_frame && mode_uses_saliency(mode_used);
    Image mask;
    const StageOutcome saliency = run_stage(Stage::kSaliency, index, result, [&] {
      // A provided mask skips only the compute: the frame already passed the
      // same validator in the kValidate stage, so the direct call could not
      // have rejected it either.
      mask = provided_ok && provided->saliency_mask.has_value()
                 ? *provided->saliency_mask
                 : detector_.variant_preprocess(mask_q8 ? core::DetectorVariant::kPrimaryQ8
                                                        : core::DetectorVariant::kPrimary,
                                                frame);
    });
    if (saliency.ok()) {
      breaker_.record_success();
      preprocessed = std::move(mask);
      if (probe) {
        // Probe success: the stage works again — restore the top of the
        // ladder immediately rather than climbing one rung at a time.
        set_mode(ServingMode::kVbpSsim);
        mode_used = ServingMode::kVbpSsim;
        ++promotions_;
      }
    } else {
      if (saliency.threw) ++scoring_failures_;
      frame_bad = true;
      const int64_t trips_before = breaker_.trips();
      breaker_.record_failure();
      if (breaker_.trips() > trips_before) {
        tripped_this_frame = true;
        if (serving_mode_ladder_rank(mode_) <
            serving_mode_ladder_rank(ServingMode::kRawMse)) {
          set_mode(ServingMode::kRawMse);
          ++step_downs_;
        }
      }
      // Within-frame fallback: the frame still gets a calibrated answer on
      // the raw+MSE rung.
      if (mode_used != ServingMode::kSensorHold) mode_used = ServingMode::kRawMse;
    }
    if (frame_deadline_blown(frame_start)) {
      finish_abandoned(result);
      ++deadline_overruns_;
      if (!tripped_this_frame) update_ladder(true);
      result.mode = mode_used;
      return result;
    }
  } else if (mode_uses_saliency(mode_used)) {
    // Saliency rung but the breaker is open (can only happen transiently):
    // serve raw for this frame.
    mode_used = ServingMode::kRawMse;
  }

  // --- Stage 3: reconstruct ----------------------------------------------
  const core::DetectorVariant variant = variant_for(mode_used);
  Image reconstruction;
  const StageOutcome reconstruct = run_stage(Stage::kReconstruct, index, result, [&] {
    // The provided reconstruction is only trusted when it was computed from
    // exactly the image this frame actually feeds the autoencoder (value
    // equality, the frozen-frame idiom): a batching front end speculates on
    // the preprocessed input before policy runs, and a mid-batch mode or
    // breaker change can invalidate that guess. A miss recomputes the same
    // bits, just unbatched.
    if (provided_ok && provided->reconstruction.has_value() &&
        serving_mode_quantized(mode_used) == quant_frame &&
        provided->recon_input.tensor() == preprocessed.tensor()) {
      reconstruction = *provided->reconstruction;
    } else {
      if (provided != nullptr && provided->reconstruction.has_value()) {
        last_recon_mispredicted_ = true;
      }
      reconstruction = detector_.variant_reconstruct(variant, preprocessed);
    }
  });
  bool pipeline_broken = reconstruct.threw;
  if (!reconstruct.ok()) frame_bad = true;
  if (reconstruct.threw) ++scoring_failures_;
  if (frame_deadline_blown(frame_start)) {
    finish_abandoned(result);
    ++deadline_overruns_;
    if (!tripped_this_frame) update_ladder(true);
    result.mode = mode_used;
    return result;
  }

  // --- Stage 4: score ----------------------------------------------------
  double score = std::numeric_limits<double>::quiet_NaN();
  bool novel = false;
  if (!pipeline_broken) {
    const StageOutcome scoring = run_stage(Stage::kScore, index, result, [&] {
      score = detector_.variant_score_pair(variant, preprocessed, reconstruction);
      novel = threshold_for(variant, live).is_novel(score);
    });
    if (!scoring.ok()) frame_bad = true;
    if (scoring.threw) {
      ++scoring_failures_;
      pipeline_broken = true;
    }
    if (frame_deadline_blown(frame_start)) {
      finish_abandoned(result);
      ++deadline_overruns_;
      if (!tripped_this_frame) update_ladder(true);
      result.mode = mode_used;
      return result;
    }
  }
  if (!pipeline_broken && !std::isfinite(score)) {
    // Non-finite containment: the threshold already classifies NaN/Inf as
    // novel; it is also evidence the current rung is misbehaving.
    ++nonfinite_scores_;
    frame_bad = true;
  }

  // --- Outcome ------------------------------------------------------------
  result.mode = mode_used;
  for (int s = 0; s < kStageCount; ++s) {
    const int64_t budget = config_.stage_budget_ns[static_cast<size_t>(s)];
    if (budget > 0 && result.stage_ns[static_cast<size_t>(s)] > budget) {
      result.deadline_overrun = true;
    }
  }
  if (result.deadline_overrun) ++deadline_overruns_;

  if (pipeline_broken) {
    // No trustworthy score: report the frame unscored; the monitor is not
    // updated (a compute fault is not sensor evidence).
    result.scored = false;
    attach_monitor_state(result);
  } else if (mode_used == ServingMode::kSensorHold) {
    // Ladder exhausted: the pipeline ran as a recovery probe, but its
    // answer is not trusted. The monitor hears "sensor bad" so the
    // fallback controller engages through the sensor path.
    ++frames_held_;
    result.score = score;
    result.scored = false;
    const core::MonitorUpdate update = monitor_.update_sensor_bad(core::FrameFault::kNone, false);
    result.monitor_state = update.state;
    result.fallback_path = update.fallback_path;
  } else {
    ++frames_scored_;
    result.score = score;
    result.novel = novel;
    result.scored = true;
    const core::MonitorUpdate update = monitor_.update_scored(score, novel);
    result.monitor_state = update.state;
    result.fallback_path = update.fallback_path;
  }

  if (!tripped_this_frame) update_ladder(frame_bad);
  run_calibration(result, live, variant);
  return result;
}

HealthSnapshot Supervisor::health() const {
  HealthSnapshot snapshot;
  snapshot.mode = mode_;
  snapshot.breaker_state = breaker_.state();
  snapshot.frames_total = frames_total_;
  snapshot.frames_scored = frames_scored_;
  snapshot.frames_abandoned = frames_abandoned_;
  snapshot.frames_held = frames_held_;
  snapshot.frames_sensor_bad = frames_sensor_bad_;
  snapshot.deadline_overruns = deadline_overruns_;
  snapshot.scoring_failures = scoring_failures_;
  snapshot.nonfinite_scores = nonfinite_scores_;
  snapshot.step_downs = step_downs_;
  snapshot.promotions = promotions_;
  snapshot.breaker_trips = breaker_.trips();
  snapshot.probe_successes = breaker_.probe_successes();
  snapshot.probe_failures = breaker_.probe_failures();
  const calib::ThresholdSet* live = live_thresholds_.acquire();
  snapshot.drift_checks = drift_checks_;
  snapshot.drift_detections = drift_detections_;
  snapshot.threshold_swaps = threshold_swaps_.load(std::memory_order_acquire);
  snapshot.swap_persist_failures = swap_persist_failures_;
  snapshot.threshold_epoch = live != nullptr ? live->epoch : 0;
  if (calibrator_.has_value()) {
    snapshot.drift_state = calib::drift_state_name(calibrator_->state());
    snapshot.shadow.reserve(core::kDetectorVariantCount);
    for (int v = 0; v < core::kDetectorVariantCount; ++v) {
      const auto variant = static_cast<core::DetectorVariant>(v);
      const calib::RungDrift rung = calibrator_->gauge(variant, live);
      HealthSnapshot::ShadowGauge gauge;
      gauge.rung = core::detector_variant_name(variant);
      gauge.shadow_samples = rung.shadow_samples;
      gauge.shadow_quantile = rung.shadow_quantile;
      gauge.served_threshold = rung.served_threshold;
      gauge.eligible = rung.eligible;
      snapshot.shadow.push_back(std::move(gauge));
    }
  }
  for (int s = 0; s < kStageCount; ++s) {
    const size_t i = static_cast<size_t>(s);
    snapshot.stages[i].name = stage_name(static_cast<Stage>(s));
    snapshot.stages[i].overruns = stage_overruns_[i];
    snapshot.stages[i].samples = rings_[i].count();
    snapshot.stages[i].p50_ns = rings_[i].percentile_ns(0.50);
    snapshot.stages[i].p99_ns = rings_[i].percentile_ns(0.99);
  }
  return snapshot;
}

}  // namespace salnov::serving
