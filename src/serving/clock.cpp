#include "serving/clock.hpp"

#include <chrono>
#include <thread>

namespace salnov::serving {

int64_t SteadyClock::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyClock::sleep_ns(int64_t ns) {
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace salnov::serving
