// Supervisor: deadline-aware staged executor with a degraded-mode ladder.
//
// The detector's offline API assumes every stage always finishes; a vehicle
// cannot. The supervisor runs the pipeline stage by stage under per-stage
// wall-clock budgets read from a monotonic Clock, and reacts to misbehaviour
// instead of propagating it:
//
//   * A stage that blows its budget (or throws) marks the frame "bad"; the
//     frame still completes on a cheaper path when possible (a failed
//     saliency stage falls back to raw+MSE scoring *within the same frame*).
//   * A frame whose total deadline is blown mid-pipeline is abandoned —
//     remaining stages are skipped and no score is reported.
//   * `demote_after_bad_frames` consecutive bad frames step the mode ladder
//     down one rung: VBP+SSIM -> VBP+MSE -> raw+MSE -> sensor hold. Each
//     rung scores against its own fitted ECDF threshold (see
//     NoveltyDetector::variant_calibration), so a degraded mode still makes
//     calibrated novelty decisions. `promote_after_healthy_frames`
//     consecutive healthy frames step back up (into saliency rungs only
//     while the breaker is closed).
//   * The saliency stage sits behind a CircuitBreaker: consecutive failures
//     trip it (forcing the raw+MSE rung), and a successful half-open probe
//     restores VBP+SSIM directly.
//
// All timing flows through the Clock interface, and injected stalls come
// from a deterministic TimingFaultInjector — under a FakeClock the entire
// overrun/fallback/breaker trace is reproducible bit-for-bit.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "calib/online_calibrator.hpp"
#include "calib/threshold_set.hpp"
#include "core/monitor.hpp"
#include "core/novelty_detector.hpp"
#include "faults/timing_faults.hpp"
#include "serving/circuit_breaker.hpp"
#include "serving/clock.hpp"
#include "serving/health.hpp"

namespace salnov::serving {

struct SupervisorConfig {
  /// Per-stage wall-clock budgets; <= 0 disables the check for that stage.
  /// Defaults are generous for the 60x160 pipeline on a laptop core.
  std::array<int64_t, kStageCount> stage_budget_ns = {
      5'000'000,   // validate
      20'000'000,  // steer
      50'000'000,  // saliency
      20'000'000,  // reconstruct
      20'000'000,  // score
  };
  /// Whole-frame deadline; blowing it mid-pipeline abandons the frame.
  /// <= 0 disables abandonment.
  int64_t frame_budget_ns = 200'000'000;

  CircuitBreakerConfig breaker;

  /// Ladder hysteresis: demotion is immediate by default (a blown deadline
  /// is already a late answer), promotion deliberately slow.
  int demote_after_bad_frames = 1;
  int promote_after_healthy_frames = 16;

  core::MonitorConfig monitor;

  /// Enables the int8-quantized ladder rungs (vbp+ssim-q8 / vbp+mse-q8)
  /// between each float rung and its cheaper successor. Requires a detector
  /// fitted with quantization (has_quant_calibrations + has_quant_path);
  /// otherwise the flag is ignored and the ladder skips the q8 rungs —
  /// identical to the pre-quantization ladder.
  bool enable_quant_rungs = false;

  /// Online shadow calibration + drift-triggered threshold hot-swap;
  /// disabled by default (frozen paper thresholds).
  calib::OnlineCalibrationConfig calibration;

  /// Optional deterministic stall schedule (not owned; may be null).
  const faults::TimingFaultInjector* timing_faults = nullptr;

  /// Latency-ring window per stage.
  size_t latency_window = 256;
};

/// Per-frame outcome.
struct ServeResult {
  int64_t frame_index = 0;
  ServingMode mode = ServingMode::kVbpSsim;  ///< rung that actually served the frame
  bool scored = false;      ///< a calibrated novelty decision was made
  bool abandoned = false;   ///< frame deadline blown mid-pipeline
  bool deadline_overrun = false;  ///< any stage or frame budget blown
  bool sensor_bad = false;  ///< screened out before scoring
  bool novel = false;
  double score = std::numeric_limits<double>::quiet_NaN();
  double steering = std::numeric_limits<double>::quiet_NaN();
  core::MonitorState monitor_state = core::MonitorState::kNominal;
  core::FallbackPath fallback_path = core::FallbackPath::kNone;
  std::array<int64_t, kStageCount> stage_ns{};  ///< 0 for stages not run
  bool threshold_swapped = false;  ///< a hot-swap completed during this frame
  int64_t threshold_epoch = 0;     ///< ThresholdSet epoch after the frame (0 = fitted)
};

/// Precomputed stage results injected by a batching front end (the
/// ServingCluster aggregates frames across streams into batch-B forward
/// passes and hands each frame's share back through this struct). Each
/// field replaces exactly one *pure compute* call inside process(); every
/// policy decision — validation, budgets, ladder, breaker, monitor,
/// calibration — still runs in the supervisor itself, so the decision
/// stream is bit-identical to the unbatched path by construction. A field
/// left empty (or a reconstruction whose recon_input no longer matches the
/// frame's actual preprocessed image, e.g. after a mid-batch mode change)
/// falls back to the direct call, which computes the same bits.
struct ProvidedCompute {
  std::optional<double> steering;       ///< predict_steering(model, frame)
  std::optional<Image> saliency_mask;   ///< variant_preprocess(kPrimary, frame)
  std::optional<Image> reconstruction;  ///< reconstruct(recon_input)
  Image recon_input;  ///< the preprocessed image `reconstruction` was computed from
  /// Precision the batched forwards ran at. A frame served on a rung of the
  /// other precision ignores ALL provided fields (quantized and float
  /// results are different bits by design), falling back to direct calls.
  bool quantized = false;
};

/// One completed in-process threshold hot-swap (drift-triggered or forced).
struct ThresholdSwapEvent {
  int64_t frame_index = 0;
  int64_t epoch = 0;
  bool forced = false;     ///< operator-forced vs drift-triggered
  bool persisted = false;  ///< store_path configured and the durable write succeeded
};

class Supervisor {
 public:
  /// `detector` must be fitted (all variant calibrations present) and
  /// outlive the supervisor. `steering_model` may be null only when the
  /// detector's preprocessing does not use saliency; it is also used for
  /// the steer stage. `clock` may be null (a SteadyClock is created).
  Supervisor(const core::NoveltyDetector& detector, nn::Sequential* steering_model,
             SupervisorConfig config = {}, Clock* clock = nullptr);

  /// Runs one frame through the staged pipeline. Never throws on malformed
  /// frames or stage failures — misbehaviour is folded into the result and
  /// the health counters.
  ServeResult process(const Image& frame) { return process(frame, nullptr); }

  /// As process(frame), consuming batched precompute where valid (see
  /// ProvidedCompute). `provided` may be null and is not retained.
  ServeResult process(const Image& frame, const ProvidedCompute* provided);

  /// True when the last process() call discarded a provided reconstruction
  /// because its recon_input did not match the frame's actual preprocessed
  /// image (a batching front end's speculation missed). Diagnostic for the
  /// cluster's stats; reset at every process() entry.
  bool last_recon_mispredicted() const { return last_recon_mispredicted_; }

  ServingMode mode() const { return mode_; }
  BreakerState breaker_state() const { return breaker_.state(); }
  const core::NoveltyMonitor& monitor() const { return monitor_; }
  int64_t frames_total() const { return frames_total_; }

  /// Publishes an externally built ThresholdSet (e.g. one recovered from the
  /// calibration store at startup) as the served set. Thread-safe and
  /// wait-free for the scoring path: process() never blocks on an install.
  void install_thresholds(std::shared_ptr<const calib::ThresholdSet> set);

  /// The ThresholdSet the scorer currently applies, or nullptr while the
  /// detector's fitted calibration is served.
  const calib::ThresholdSet* served_thresholds() const { return live_thresholds_.acquire(); }

  /// In-process swaps, in frame order. NOT thread-safe against a concurrent
  /// process(); read it after the run (the CLI prints these as swap log
  /// lines).
  const std::vector<ThresholdSwapEvent>& swap_events() const { return swap_events_; }

  HealthSnapshot health() const;

  /// True for ladder rungs whose scoring path consumes the saliency mask.
  /// Public so batching front ends can predict a frame's compute needs with
  /// the same rule the supervisor applies.
  static bool mode_uses_saliency(ServingMode mode) {
    return mode == ServingMode::kVbpSsim || mode == ServingMode::kVbpMse ||
           mode == ServingMode::kVbpSsimQ8 || mode == ServingMode::kVbpMseQ8;
  }

  /// True when the q8 rungs participate in this supervisor's ladder (the
  /// config flag was set AND the detector supports it).
  bool quant_rungs_active() const { return quant_rungs_active_; }

  /// The detector variant a rung scores with (q8 rungs map to q8 variants).
  /// Public for batching front ends and trace tooling.
  static core::DetectorVariant variant_for(ServingMode mode);

 private:
  struct StageOutcome {
    bool threw = false;
    bool overrun = false;
    bool ok() const { return !threw && !overrun; }
  };

  StageOutcome run_stage(Stage stage, int64_t frame_index, ServeResult& result,
                         const std::function<void()>& body);
  bool frame_deadline_blown(int64_t frame_start_ns) const;
  void finish_abandoned(ServeResult& result);
  void attach_monitor_state(ServeResult& result);
  void update_ladder(bool frame_bad);
  void set_mode(ServingMode mode);
  const core::NoveltyThreshold& threshold_for(core::DetectorVariant variant,
                                              const calib::ThresholdSet* live) const;
  void run_calibration(ServeResult& result, const calib::ThresholdSet* live,
                       core::DetectorVariant variant);
  void perform_swap(ServeResult& result, const calib::ThresholdSet* live, bool forced);

  const core::NoveltyDetector& detector_;
  nn::Sequential* steering_model_;
  SupervisorConfig config_;
  std::unique_ptr<Clock> owned_clock_;
  Clock* clock_;

  core::NoveltyMonitor monitor_;
  CircuitBreaker breaker_;
  const bool saliency_configured_;
  const bool quant_rungs_active_;

  ServingMode mode_ = ServingMode::kVbpSsim;
  bool last_recon_mispredicted_ = false;
  int bad_streak_ = 0;
  int healthy_streak_ = 0;
  std::optional<Image> last_valid_frame_;  ///< frozen-frame detection

  // Exact counters backing HealthSnapshot.
  int64_t frames_total_ = 0;
  int64_t frames_scored_ = 0;
  int64_t frames_abandoned_ = 0;
  int64_t frames_held_ = 0;
  int64_t frames_sensor_bad_ = 0;
  int64_t deadline_overruns_ = 0;
  int64_t scoring_failures_ = 0;
  int64_t nonfinite_scores_ = 0;
  int64_t step_downs_ = 0;
  int64_t promotions_ = 0;
  std::array<int64_t, kStageCount> stage_overruns_{};
  std::array<LatencyRing, kStageCount> rings_;

  // Online calibration. The hot-swap slot and the swap counter are the only
  // state shared with other threads (install_thresholds); everything else
  // is touched exclusively by the processing thread.
  std::optional<calib::OnlineCalibrator> calibrator_;
  calib::ThresholdHotSwap live_thresholds_;
  std::atomic<int64_t> threshold_swaps_{0};
  int64_t drift_checks_ = 0;
  int64_t drift_detections_ = 0;
  int64_t swap_persist_failures_ = 0;
  size_t next_forced_ = 0;  ///< cursor into calibration.forced_swap_frames
  std::vector<ThresholdSwapEvent> swap_events_;
};

}  // namespace salnov::serving
