// Per-replica watchdog: the cluster's circuit breaker over whole replicas.
//
// The saliency CircuitBreaker guards one *stage* of one supervisor; the
// ReplicaWatchdog guards one *replica* of the cluster. It tracks, per
// replica, a kHealthy → kQuarantined → kHalfOpen state machine driven by
// symptoms the cluster reports: missed batch deadlines (a batch sat queued
// past batch_deadline_ns), heartbeat silence (the worker thread stopped
// stamping last-seen times), and canary failures (the replica's weights no
// longer produce a known-good score on a fixed probe frame). Quarantined
// replicas are retried via a half-open probe with exponential backoff; a
// probe success restores the replica and the cluster rebalances streams
// back home.
//
// The watchdog itself is passive and single-threaded: the cluster calls it
// from deterministic tick points (submit/drain) under its routing lock, so
// given the same fault schedule and arrival timestamps the quarantine /
// probe / restore event sequence is identical across runs — the property
// the v4 trace format records and replays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace salnov::serving {

/// Knobs for replica failure detection and recovery. Disabled by default:
/// a cluster built without a watchdog behaves exactly like PR 7's.
struct WatchdogConfig {
  bool enabled = false;
  /// A queued batch older than this counts as a missed deadline.
  int64_t batch_deadline_ns = 10'000'000;
  /// Worker silence (no heartbeat stamp) past this is an outage symptom.
  int64_t heartbeat_timeout_ns = 50'000'000;
  /// Missed deadlines before the replica is quarantined.
  int missed_deadlines_to_quarantine = 2;
  /// Period between canary probes of healthy replicas (0 = never).
  int64_t canary_period_ns = 0;
  /// Canary failures before a healthy replica is quarantined.
  int canary_failures_to_quarantine = 1;
  /// Initial half-open probe backoff; doubles per failed probe.
  int64_t probe_backoff_ns = 8'000'000;
  int64_t max_probe_backoff_ns = 64'000'000;
  /// Frame re-dispatch budget; past it the frame falls back to its
  /// stream's private Supervisor ladder (batch-1, identical bits).
  int64_t max_redispatches = 3;
  /// |canary steering − known-good| beyond this fails the probe.
  double canary_epsilon = 1e-3;
};

enum class ReplicaState : int { kHealthy = 0, kQuarantined = 1, kHalfOpen = 2 };

const char* replica_state_name(ReplicaState state);

/// What happened to the cluster's failure domain, in decision order.
/// Recorded into v4 traces and diffed by the replay harness.
enum class ClusterEventKind : int {
  kQuarantine = 0,    ///< replica pulled from rotation
  kProbeFailure = 1,  ///< half-open probe did not pass; backoff doubled
  kRestore = 2,       ///< half-open probe passed; replica healthy again
  kFailover = 3,      ///< a stream's pending frames migrated between replicas
  kRedispatch = 4,    ///< queued frames re-dispatched (charged against budget)
  kFallback = 5,      ///< frame(s) processed inline on the stream's Supervisor
  kShed = 6,          ///< admission credits exhausted; a frame was shed
};

const char* cluster_event_kind_name(ClusterEventKind kind);

struct ClusterEvent {
  ClusterEventKind kind = ClusterEventKind::kQuarantine;
  int64_t at_ns = 0;
  int64_t replica = -1;  ///< -1 when not replica-scoped (e.g. kShed)
  int64_t stream = -1;   ///< -1 when not stream-scoped (e.g. kQuarantine)
  int64_t detail = 0;    ///< kind-specific: frames moved, misses charged, ...
};

/// Per-replica failure-detection state machine. Not thread-safe; the
/// cluster serializes all calls under its routing lock.
class ReplicaWatchdog {
 public:
  ReplicaWatchdog(int64_t replicas, const WatchdogConfig& config);

  ReplicaState state(int64_t replica) const { return replicas_[replica].state; }
  bool healthy(int64_t replica) const {
    return replicas_[replica].state == ReplicaState::kHealthy;
  }
  int64_t healthy_count() const;

  /// Charges missed-deadline symptoms for an outage window that began at
  /// `window_start_ns`. Misses are derived from elapsed time (one per
  /// batch_deadline_ns) and charged incrementally, so repeated ticks over
  /// the same window never double-count. Returns true when the replica
  /// has accumulated enough misses to quarantine.
  bool charge_outage(int64_t replica, int64_t window_start_ns, int64_t now_ns);

  /// Charges heartbeat silence since `last_heartbeat_ns`. Returns true
  /// when the silence exceeds heartbeat_timeout_ns (quarantine the replica).
  bool charge_heartbeat_silence(int64_t replica, int64_t last_heartbeat_ns,
                                int64_t now_ns);

  /// True when a periodic canary check is due for a healthy replica; stamps
  /// the check time so the next check waits a full period.
  bool canary_due(int64_t replica, int64_t now_ns);

  /// Returns true when accumulated canary failures reach the threshold.
  bool charge_canary_failure(int64_t replica);
  void note_canary_ok(int64_t replica);

  void quarantine(int64_t replica, int64_t now_ns);

  /// True when a quarantined replica's probe backoff has elapsed.
  bool probe_due(int64_t replica, int64_t now_ns) const;
  void begin_probe(int64_t replica);
  void probe_failed(int64_t replica, int64_t now_ns);
  void restore(int64_t replica);

  int64_t probe_attempts() const { return probe_attempts_; }

 private:
  struct PerReplica {
    ReplicaState state = ReplicaState::kHealthy;
    // Outage accounting: misses already charged for the current window.
    int64_t outage_window_start_ns = -1;
    int64_t outage_misses_charged = 0;
    int missed_deadlines = 0;
    int canary_failures = 0;
    int64_t last_canary_check_ns = 0;
    // Quarantine/probe bookkeeping.
    int64_t next_probe_ns = 0;
    int64_t probe_backoff_ns = 0;
  };

  WatchdogConfig config_;
  std::vector<PerReplica> replicas_;
  int64_t probe_attempts_ = 0;
};

}  // namespace salnov::serving
