// Clock abstraction for the serving runtime.
//
// Every deadline decision in the supervisor goes through this interface so
// tests can drive the watchdog with a FakeClock: injected stalls become
// instantaneous jumps of fake time, and "stage blew its budget" is a
// deterministic fact of the schedule rather than a property of how loaded
// the CI machine happens to be. Production uses SteadyClock, a thin wrapper
// over std::chrono::steady_clock (monotonic — wall-clock adjustments must
// never un-blow a deadline).
#pragma once

#include <atomic>
#include <cstdint>

namespace salnov::serving {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual int64_t now_ns() = 0;

  /// Blocks (or pretends to) for `ns`. The serving executor uses this for
  /// injected stalls and breaker backoff, never for pacing real work.
  virtual void sleep_ns(int64_t ns) = 0;
};

/// Real monotonic time via std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  int64_t now_ns() override;
  void sleep_ns(int64_t ns) override;
};

/// Deterministic test clock: time only moves when something sleeps or the
/// test advances it. Atomic so the ServingServer's worker thread and a test
/// thread can share it under TSan without a data race.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_ns = 0) : now_ns_(start_ns) {}

  int64_t now_ns() override { return now_ns_.load(std::memory_order_relaxed); }
  void sleep_ns(int64_t ns) override { advance_ns(ns); }

  void advance_ns(int64_t ns) {
    if (ns > 0) now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_ns_;
};

}  // namespace salnov::serving
