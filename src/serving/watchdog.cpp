#include "serving/watchdog.hpp"

#include <algorithm>
#include <stdexcept>

namespace salnov::serving {

const char* replica_state_name(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy: return "healthy";
    case ReplicaState::kQuarantined: return "quarantined";
    case ReplicaState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

const char* cluster_event_kind_name(ClusterEventKind kind) {
  switch (kind) {
    case ClusterEventKind::kQuarantine: return "quarantine";
    case ClusterEventKind::kProbeFailure: return "probe_failure";
    case ClusterEventKind::kRestore: return "restore";
    case ClusterEventKind::kFailover: return "failover";
    case ClusterEventKind::kRedispatch: return "redispatch";
    case ClusterEventKind::kFallback: return "fallback";
    case ClusterEventKind::kShed: return "shed";
  }
  return "unknown";
}

ReplicaWatchdog::ReplicaWatchdog(int64_t replicas, const WatchdogConfig& config)
    : config_(config) {
  if (replicas <= 0) {
    throw std::invalid_argument("ReplicaWatchdog: replicas must be >= 1");
  }
  if (config.batch_deadline_ns <= 0 || config.heartbeat_timeout_ns <= 0 ||
      config.probe_backoff_ns <= 0 || config.max_probe_backoff_ns <= 0) {
    throw std::invalid_argument("ReplicaWatchdog: timeouts must be positive");
  }
  if (config.missed_deadlines_to_quarantine < 1 ||
      config.canary_failures_to_quarantine < 1) {
    throw std::invalid_argument("ReplicaWatchdog: thresholds must be >= 1");
  }
  if (config.canary_period_ns < 0 || config.max_redispatches < 0) {
    throw std::invalid_argument("ReplicaWatchdog: negative knob");
  }
  replicas_.resize(static_cast<size_t>(replicas));
}

int64_t ReplicaWatchdog::healthy_count() const {
  int64_t count = 0;
  for (const PerReplica& r : replicas_) {
    count += (r.state == ReplicaState::kHealthy) ? 1 : 0;
  }
  return count;
}

bool ReplicaWatchdog::charge_outage(int64_t replica, int64_t window_start_ns,
                                    int64_t now_ns) {
  PerReplica& r = replicas_[static_cast<size_t>(replica)];
  if (r.state != ReplicaState::kHealthy) return false;
  if (r.outage_window_start_ns != window_start_ns) {
    // A new outage window (different oldest-frame timestamp): start fresh
    // accounting but keep misses already accumulated from earlier windows.
    r.outage_window_start_ns = window_start_ns;
    r.outage_misses_charged = 0;
  }
  const int64_t misses_now = (now_ns - window_start_ns) / config_.batch_deadline_ns;
  if (misses_now > r.outage_misses_charged) {
    r.missed_deadlines += static_cast<int>(misses_now - r.outage_misses_charged);
    r.outage_misses_charged = misses_now;
  }
  return r.missed_deadlines >= config_.missed_deadlines_to_quarantine;
}

bool ReplicaWatchdog::charge_heartbeat_silence(int64_t replica,
                                               int64_t last_heartbeat_ns,
                                               int64_t now_ns) {
  const PerReplica& r = replicas_[static_cast<size_t>(replica)];
  if (r.state != ReplicaState::kHealthy) return false;
  return now_ns - last_heartbeat_ns > config_.heartbeat_timeout_ns;
}

bool ReplicaWatchdog::canary_due(int64_t replica, int64_t now_ns) {
  if (config_.canary_period_ns <= 0) return false;
  PerReplica& r = replicas_[static_cast<size_t>(replica)];
  if (r.state != ReplicaState::kHealthy) return false;
  if (now_ns < r.last_canary_check_ns + config_.canary_period_ns) return false;
  r.last_canary_check_ns = now_ns;
  return true;
}

bool ReplicaWatchdog::charge_canary_failure(int64_t replica) {
  PerReplica& r = replicas_[static_cast<size_t>(replica)];
  r.canary_failures += 1;
  return r.canary_failures >= config_.canary_failures_to_quarantine;
}

void ReplicaWatchdog::note_canary_ok(int64_t replica) {
  replicas_[static_cast<size_t>(replica)].canary_failures = 0;
}

void ReplicaWatchdog::quarantine(int64_t replica, int64_t now_ns) {
  PerReplica& r = replicas_[static_cast<size_t>(replica)];
  r.state = ReplicaState::kQuarantined;
  r.missed_deadlines = 0;
  r.canary_failures = 0;
  r.outage_window_start_ns = -1;
  r.outage_misses_charged = 0;
  r.probe_backoff_ns = config_.probe_backoff_ns;
  r.next_probe_ns = now_ns + r.probe_backoff_ns;
}

bool ReplicaWatchdog::probe_due(int64_t replica, int64_t now_ns) const {
  const PerReplica& r = replicas_[static_cast<size_t>(replica)];
  return r.state == ReplicaState::kQuarantined && now_ns >= r.next_probe_ns;
}

void ReplicaWatchdog::begin_probe(int64_t replica) {
  replicas_[static_cast<size_t>(replica)].state = ReplicaState::kHalfOpen;
  probe_attempts_ += 1;
}

void ReplicaWatchdog::probe_failed(int64_t replica, int64_t now_ns) {
  PerReplica& r = replicas_[static_cast<size_t>(replica)];
  r.state = ReplicaState::kQuarantined;
  r.probe_backoff_ns = std::min(r.probe_backoff_ns * 2, config_.max_probe_backoff_ns);
  r.next_probe_ns = now_ns + r.probe_backoff_ns;
}

void ReplicaWatchdog::restore(int64_t replica) {
  PerReplica& r = replicas_[static_cast<size_t>(replica)];
  r.state = ReplicaState::kHealthy;
  r.missed_deadlines = 0;
  r.canary_failures = 0;
  r.outage_window_start_ns = -1;
  r.outage_misses_charged = 0;
  r.last_canary_check_ns = 0;
}

}  // namespace salnov::serving
