// Outdoor driving-scene generator — the DSU (Udacity dataset) substitute.
//
// Renders varied outdoor road views: sky with clouds, textured terrain,
// asphalt with white edge lines and a dashed center marking, plus
// task-irrelevant clutter (trees, road signs) whose position and look vary
// per scene. The paper's argument hinges on the training images containing
// "many irrelevant features (e.g., the shape of clouds or the color of shop
// signs)" — this generator produces exactly those nuisance features.
#pragma once

#include "roadsim/generator.hpp"

namespace salnov::roadsim {

struct OutdoorConfig {
  int64_t height = 120;
  int64_t width = 320;
  double max_curvature = 1.0;
  double max_offset = 0.5;
  int64_t max_trees = 7;
  int64_t max_signs = 3;
};

class OutdoorSceneGenerator : public SceneGenerator {
 public:
  explicit OutdoorSceneGenerator(OutdoorConfig config = {});

  SceneParams sample_params(Rng& rng) const override;
  Sample render_scene(const SceneParams& params) const override;
  std::string name() const override { return "outdoor-sim"; }
  int64_t render_height() const override { return config_.height; }
  int64_t render_width() const override { return config_.width; }

  /// Renders a specific parameter set (used by tests and by experiments
  /// that perturb a fixed scene).
  Sample render(const SceneParams& params, uint64_t clutter_seed) const;

  const OutdoorConfig& config() const { return config_; }

 private:
  OutdoorConfig config_;
};

}  // namespace salnov::roadsim
