#include "roadsim/scene.hpp"

#include <algorithm>

namespace salnov::roadsim {

double steering_for_scene(const SceneParams& params) {
  // Steer into the curve, and steer back toward the lane center when the
  // camera is displaced (negative feedback on offset).
  const double raw = kSteerCurvatureGain * params.curvature - kSteerOffsetGain * params.camera_offset;
  return std::clamp(raw, -1.0, 1.0);
}

}  // namespace salnov::roadsim
