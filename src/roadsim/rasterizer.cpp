#include "roadsim/rasterizer.hpp"

#include <algorithm>
#include <cmath>

namespace salnov::roadsim {

RoadGeometry::RoadGeometry(const SceneParams& params, int64_t height, int64_t width)
    : height_(height), width_(width) {
  horizon_row_ = static_cast<int64_t>(params.horizon_frac * static_cast<double>(height));
  horizon_row_ = std::clamp<int64_t>(horizon_row_, 1, height - 2);
  // Camera offset shifts the whole road laterally; curvature displaces the
  // road toward the horizon (quadratic in 1 - depth, i.e. zero at the car).
  offset_px_ = -params.camera_offset * 0.5 * params.road_half_width * static_cast<double>(width);
  curve_px_ = params.curvature * 0.45 * static_cast<double>(width);
  bottom_half_width_px_ = params.road_half_width * static_cast<double>(width);
}

double RoadGeometry::depth(int64_t row) const {
  if (row <= horizon_row_) return 0.0;
  return static_cast<double>(row - horizon_row_) / static_cast<double>(height_ - 1 - horizon_row_);
}

double RoadGeometry::center_x(int64_t row) const {
  const double t = depth(row);
  const double far = 1.0 - t;  // 1 at horizon, 0 at the car
  return static_cast<double>(width_) / 2.0 + offset_px_ * t + curve_px_ * far * far;
}

double RoadGeometry::half_width(int64_t row) const {
  // A small floor keeps the road visible (a vanishing-point wedge) near the
  // horizon so distant geometry still contributes features.
  const double t = depth(row);
  return std::max(1.5, bottom_half_width_px_ * t);
}

bool RoadGeometry::on_road(int64_t row, int64_t col) const {
  if (row <= horizon_row_) return false;
  return std::abs(static_cast<double>(col) - center_x(row)) <= half_width(row);
}

bool RoadGeometry::on_edge(int64_t row, int64_t col, double edge_frac) const {
  if (row <= horizon_row_) return false;
  const double distance = std::abs(static_cast<double>(col) - center_x(row));
  const double hw = half_width(row);
  const double band = std::max(1.0, edge_frac * hw);
  return distance <= hw + band * 0.5 && distance >= hw - band;
}

bool RoadGeometry::on_center_marking(int64_t row, int64_t col, double dash_period) const {
  if (row <= horizon_row_) return false;
  const double distance = std::abs(static_cast<double>(col) - center_x(row));
  const double hw = half_width(row);
  const double marking_half_width = std::max(0.6, 0.045 * hw);
  if (distance > marking_half_width) return false;
  // Dashes: on for the first 60% of each period of road rows.
  const double phase = std::fmod(static_cast<double>(row - horizon_row_), dash_period) / dash_period;
  return phase < 0.6;
}

double ValueNoise::lattice(int64_t y, int64_t x) const {
  // splitmix64-style integer hash of (seed, y, x).
  uint64_t h = seed_;
  h ^= static_cast<uint64_t>(y) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<uint64_t>(x) * 0x94d049bb133111ebULL;
  h = (h ^ (h >> 27)) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double ValueNoise::at(double y, double x, double scale) const {
  const double fy = y / scale;
  const double fx = x / scale;
  const auto y0 = static_cast<int64_t>(std::floor(fy));
  const auto x0 = static_cast<int64_t>(std::floor(fx));
  const double ty = fy - static_cast<double>(y0);
  const double tx = fx - static_cast<double>(x0);
  // Smoothstep weights avoid visible lattice seams.
  const double wy = ty * ty * (3.0 - 2.0 * ty);
  const double wx = tx * tx * (3.0 - 2.0 * tx);
  const double v00 = lattice(y0, x0);
  const double v01 = lattice(y0, x0 + 1);
  const double v10 = lattice(y0 + 1, x0);
  const double v11 = lattice(y0 + 1, x0 + 1);
  const double top = v00 + (v01 - v00) * wx;
  const double bottom = v10 + (v11 - v10) * wx;
  return top + (bottom - top) * wy;
}

double ValueNoise::fractal(double y, double x, double scale) const {
  return 0.65 * at(y, x, scale) + 0.35 * at(y + 101.0, x + 57.0, scale / 3.0);
}

void fill_rgb(RgbImage& image, float r, float g, float b) {
  for (int64_t y = 0; y < image.height(); ++y) {
    for (int64_t x = 0; x < image.width(); ++x) image.set(y, x, r, g, b);
  }
}

void draw_rect(RgbImage& image, int64_t y0, int64_t x0, int64_t h, int64_t w, float r, float g,
               float b) {
  const int64_t y1 = std::min(y0 + h, image.height());
  const int64_t x1 = std::min(x0 + w, image.width());
  for (int64_t y = std::max<int64_t>(y0, 0); y < y1; ++y) {
    for (int64_t x = std::max<int64_t>(x0, 0); x < x1; ++x) image.set(y, x, r, g, b);
  }
}

void draw_vertical_gradient(RgbImage& image, int64_t y0, int64_t y1, float r0, float g0, float b0,
                            float r1, float g1, float b1) {
  y0 = std::max<int64_t>(y0, 0);
  y1 = std::min(y1, image.height());
  const double span = std::max<int64_t>(y1 - y0 - 1, 1);
  for (int64_t y = y0; y < y1; ++y) {
    const double t = static_cast<double>(y - y0) / span;
    const float r = static_cast<float>(r0 + (r1 - r0) * t);
    const float g = static_cast<float>(g0 + (g1 - g0) * t);
    const float b = static_cast<float>(b0 + (b1 - b0) * t);
    for (int64_t x = 0; x < image.width(); ++x) image.set(y, x, r, g, b);
  }
}

}  // namespace salnov::roadsim
