// Dataset container: generated scenes prepared for the pipeline.
//
// Applies the paper's preprocessing at generation time: grayscale
// conversion, bilinear downscale to the pipeline resolution (paper: 60x160),
// and [0, 1] normalization. Keeps the ground-truth steering label and the
// scene parameters (the latter lets experiments recover per-image relevance
// masks).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "image/image.hpp"
#include "roadsim/generator.hpp"

namespace salnov::roadsim {

class DrivingDataset {
 public:
  DrivingDataset() = default;

  /// Generates `count` scenes at the generator's render resolution and
  /// downsamples to (height, width).
  static DrivingDataset generate(const SceneGenerator& generator, int64_t count, int64_t height,
                                 int64_t width, Rng& rng);

  int64_t size() const { return static_cast<int64_t>(images_.size()); }
  int64_t height() const { return height_; }
  int64_t width() const { return width_; }

  const Image& image(int64_t index) const { return images_.at(static_cast<size_t>(index)); }
  double steering(int64_t index) const { return steering_.at(static_cast<size_t>(index)); }
  const SceneParams& params(int64_t index) const { return params_.at(static_cast<size_t>(index)); }
  const std::vector<Image>& images() const { return images_; }

  void add(Image image, double steering_angle, const SceneParams& params);

  /// Deterministic shuffled split: first `train_fraction` to train, rest to
  /// test (paper: 80/20).
  std::pair<DrivingDataset, DrivingDataset> split(double train_fraction, Rng& rng) const;

  /// Subset of `count` samples drawn without replacement.
  DrivingDataset sample(int64_t count, Rng& rng) const;

  /// Returns this dataset plus a horizontally mirrored copy of every sample
  /// (the classic steering-training augmentation: the mirrored view's
  /// ground-truth steering is the negated original, which here follows from
  /// negating the scene's curvature and camera offset).
  DrivingDataset with_mirrored() const;

  /// All images stacked as [N, 1, H, W] (CNN input).
  Tensor images_nchw() const;

  /// All images stacked as [N, H*W] (autoencoder input).
  Tensor images_flat() const;

  /// Steering labels as [N, 1].
  Tensor steering_tensor() const;

 private:
  DrivingDataset(int64_t height, int64_t width) : height_(height), width_(width) {}

  int64_t height_ = 0;
  int64_t width_ = 0;
  std::vector<Image> images_;
  std::vector<double> steering_;
  std::vector<SceneParams> params_;
};

}  // namespace salnov::roadsim
