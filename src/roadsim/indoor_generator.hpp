// Indoor racing-environment generator — the DSI (in-house dataset)
// substitute.
//
// Renders a model-car view of an indoor track: a matte floor with a darker
// track surface bounded by bright tape edges, walls with a baseboard line
// above the horizon, and occasional furniture boxes. Compared to the
// outdoor generator the scenes are more structured and uniform (as the
// paper says of its in-house environment), with different brightness and
// texture statistics — which is exactly what makes it a useful novel class.
#pragma once

#include "roadsim/generator.hpp"

namespace salnov::roadsim {

struct IndoorConfig {
  int64_t height = 120;
  int64_t width = 320;
  // A model car on a tight indoor circuit sees far more varied view
  // geometry than a road car: hairpin curvature and large lateral drift
  // relative to the narrow taped track.
  double max_curvature = 1.4;
  double max_offset = 1.1;
  int64_t max_furniture = 3;
};

class IndoorSceneGenerator : public SceneGenerator {
 public:
  explicit IndoorSceneGenerator(IndoorConfig config = {});

  SceneParams sample_params(Rng& rng) const override;
  Sample render_scene(const SceneParams& params) const override;
  std::string name() const override { return "indoor-sim"; }
  int64_t render_height() const override { return config_.height; }
  int64_t render_width() const override { return config_.width; }

  Sample render(const SceneParams& params, uint64_t clutter_seed) const;

  const IndoorConfig& config() const { return config_; }

 private:
  IndoorConfig config_;
};

}  // namespace salnov::roadsim
