// Shared rendering machinery for the scene generators.
//
// RoadGeometry turns SceneParams into per-row road center / width curves
// (a cheap perspective model: width shrinks linearly toward the horizon,
// lateral curve displacement grows quadratically). ValueNoise is a smooth,
// seedable 2-D noise field used for terrain, clouds, and floor texture.
// The free draw_* helpers paint into an RgbImage.
#pragma once

#include <cstdint>

#include "image/image.hpp"
#include "roadsim/scene.hpp"

namespace salnov::roadsim {

/// Per-row road geometry for an image of a given size.
class RoadGeometry {
 public:
  RoadGeometry(const SceneParams& params, int64_t height, int64_t width);

  int64_t horizon_row() const { return horizon_row_; }

  /// Perspective depth parameter for a row: 0 at the horizon, 1 at the
  /// bottom row. Rows above the horizon return 0.
  double depth(int64_t row) const;

  /// X coordinate (pixels, fractional) of the road center at a row.
  double center_x(int64_t row) const;

  /// Road half-width in pixels at a row.
  double half_width(int64_t row) const;

  /// True if pixel (row, col) lies on the road surface.
  bool on_road(int64_t row, int64_t col) const;

  /// True if pixel (row, col) lies on a road edge band (within
  /// `edge_frac` * half_width of either edge). These are the task-relevant
  /// pixels a steering model should attend to.
  bool on_edge(int64_t row, int64_t col, double edge_frac = 0.12) const;

  /// True if pixel lies on the dashed center lane marking.
  bool on_center_marking(int64_t row, int64_t col, double dash_period = 18.0) const;

 private:
  int64_t height_;
  int64_t width_;
  int64_t horizon_row_;
  double offset_px_;
  double curve_px_;
  double bottom_half_width_px_;
};

/// Smooth value noise: bilinear interpolation of a hashed integer lattice.
/// Deterministic in (seed, x, y); output in [0, 1].
class ValueNoise {
 public:
  explicit ValueNoise(uint64_t seed) : seed_(seed) {}

  /// Noise at continuous coordinates with a given feature scale (larger
  /// scale = smoother).
  double at(double y, double x, double scale) const;

  /// Two-octave fractal variant (scale and scale/3).
  double fractal(double y, double x, double scale) const;

 private:
  double lattice(int64_t y, int64_t x) const;
  uint64_t seed_;
};

/// Fills the whole image with one color.
void fill_rgb(RgbImage& image, float r, float g, float b);

/// Paints an axis-aligned rectangle, clipped to the image.
void draw_rect(RgbImage& image, int64_t y0, int64_t x0, int64_t h, int64_t w, float r, float g, float b);

/// Vertical gradient between two colors over rows [y0, y1).
void draw_vertical_gradient(RgbImage& image, int64_t y0, int64_t y1, float r0, float g0, float b0,
                            float r1, float g1, float b1);

}  // namespace salnov::roadsim
