// Scene description for the procedural driving-scene generators.
//
// A SceneParams value fully determines one rendered road view plus its
// ground-truth steering label. The two dataset generators (outdoor =
// DSU-sim, indoor = DSI-sim) sample SceneParams from different
// distributions and render with different styles, but share this geometry:
// a road surface below a horizon line, curving with `curvature`, seen from
// a camera displaced `camera_offset` from the lane center.
#pragma once

#include <cstdint>

namespace salnov::roadsim {

struct SceneParams {
  /// Signed road curvature in [-1, 1]; positive bends the road to the right.
  double curvature = 0.0;

  /// Camera's lateral displacement from lane center in [-1, 1]
  /// (fraction of the half lane width).
  double camera_offset = 0.0;

  /// Horizon height as a fraction of image height in (0, 1); rows above it
  /// are background (sky / wall), rows below are ground.
  double horizon_frac = 0.35;

  /// Road half-width at the bottom row as a fraction of image width.
  double road_half_width = 0.42;

  /// Global illumination multiplier (sun / room lighting variation).
  double brightness = 1.0;

  /// Amplitude of surface texture noise in [0, 1) pixel units.
  double texture_noise = 0.05;

  /// Seed for per-scene detail (clutter placement, texture phase).
  uint64_t detail_seed = 0;
};

/// Ground-truth steering angle in [-1, 1] for a scene: a proportional
/// controller on curvature plus a centering correction on camera offset —
/// the same functional form a lane-keeping model must learn, which is what
/// ties VBP saliency to road geometry.
double steering_for_scene(const SceneParams& params);

/// Gains of the steering model, exposed for tests.
inline constexpr double kSteerCurvatureGain = 0.85;
inline constexpr double kSteerOffsetGain = 0.35;

}  // namespace salnov::roadsim
