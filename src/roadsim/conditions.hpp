// Environmental-condition transforms: fog, dusk, and rain applied to
// rendered scenes.
//
// Extension beyond the paper's evaluation, driven by its motivation: a
// deployed detector must flag *unfamiliar driving conditions*, not just a
// different venue. These transforms produce graded domain shift of the
// training environment — fog thickens with scene depth, dusk darkens
// globally while keeping road contrast, rain adds streak occlusions — so an
// experiment can sweep severity and watch the novelty score respond
// (bench_domain_shift).
//
// They operate on the grayscale pipeline image plus the scene parameters
// (needed for depth-dependent effects).
#pragma once

#include "image/image.hpp"
#include "roadsim/scene.hpp"
#include "tensor/rng.hpp"

namespace salnov::roadsim {

/// Depth-dependent fog: each ground pixel is blended toward the fog color
/// with weight 1 - exp(-density * distance), where distance grows toward
/// the horizon; sky/wall rows get the fog color at full horizon distance.
/// `density` in [0, ~3]; 0 = no change.
Image apply_fog(const Image& frame, const SceneParams& params, double density,
                float fog_color = 0.75f);

/// Dusk/night: global illumination drop by `severity` in [0, 1] plus mild
/// gamma lift of the remaining bright features (headlight-lit markings stay
/// relatively bright, matching how lane markings behave at night).
Image apply_dusk(const Image& frame, double severity);

/// Rain: `streak_count` semi-transparent diagonal streaks plus a slight
/// global contrast loss. Deterministic in `rng`.
Image apply_rain(const Image& frame, int64_t streak_count, Rng& rng);

}  // namespace salnov::roadsim
