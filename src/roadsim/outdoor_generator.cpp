#include "roadsim/outdoor_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "roadsim/rasterizer.hpp"

namespace salnov::roadsim {

OutdoorSceneGenerator::OutdoorSceneGenerator(OutdoorConfig config) : config_(config) {
  if (config_.height < 16 || config_.width < 16) {
    throw std::invalid_argument("OutdoorSceneGenerator: render size too small");
  }
}

SceneParams OutdoorSceneGenerator::sample_params(Rng& rng) const {
  SceneParams params;
  params.curvature = rng.uniform(-config_.max_curvature, config_.max_curvature);
  params.camera_offset = rng.uniform(-config_.max_offset, config_.max_offset);
  params.horizon_frac = rng.uniform(0.30, 0.45);
  params.road_half_width = rng.uniform(0.36, 0.48);
  params.brightness = rng.uniform(0.75, 1.20);
  params.texture_noise = rng.uniform(0.03, 0.09);
  params.detail_seed = rng.next_u64();
  return params;
}

Sample OutdoorSceneGenerator::render_scene(const SceneParams& params) const {
  return render(params, params.detail_seed);
}

Sample OutdoorSceneGenerator::render(const SceneParams& params, uint64_t clutter_seed) const {
  const int64_t h = config_.height;
  const int64_t w = config_.width;
  RgbImage img(h, w);
  const RoadGeometry geo(params, h, w);
  const ValueNoise noise(clutter_seed);
  Rng clutter_rng(clutter_seed);

  const int64_t horizon = geo.horizon_row();
  const auto bright = [&](double v) { return static_cast<float>(std::clamp(v * params.brightness, 0.0, 1.0)); };

  // Sky: blue gradient with cloud blobs from thresholded smooth noise.
  draw_vertical_gradient(img, 0, horizon, bright(0.42), bright(0.58), bright(0.88), bright(0.70),
                         bright(0.80), bright(0.95));
  for (int64_t y = 0; y < horizon; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const double cloud = noise.fractal(y * 2.2, x, 26.0);
      if (cloud > 0.62) {
        const float c = bright(0.8 + 0.2 * (cloud - 0.62) / 0.38);
        img.set(y, x, c, c, c);
      }
    }
  }

  // Ground: green-brown fractal terrain; road surface overrides it.
  for (int64_t y = horizon; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const double n = noise.fractal(y, x, 9.0);
      const double tex = (n - 0.5) * 2.0 * params.texture_noise * 3.0;
      img.set(y, x, bright(0.30 + tex), bright(0.46 + tex), bright(0.22 + tex));
    }
  }

  // Road surface with asphalt texture, edge lines, and dashed center line.
  for (int64_t y = horizon + 1; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      if (!geo.on_road(y, x) && !geo.on_edge(y, x)) continue;
      const double n = noise.at(y * 1.7, x * 1.7, 4.0);
      const double tex = (n - 0.5) * 2.0 * params.texture_noise;
      if (geo.on_edge(y, x)) {
        const float c = bright(0.92 + tex);
        img.set(y, x, c, c, c);
      } else if (geo.on_center_marking(y, x)) {
        img.set(y, x, bright(0.95 + tex), bright(0.88 + tex), bright(0.45 + tex));
      } else {
        const float c = bright(0.32 + tex);
        img.set(y, x, c, c, c);
      }
    }
  }

  // Clutter: trees (dark canopy over trunk) and bright signs on the terrain,
  // scaled with depth, kept off the road surface.
  const int64_t tree_count = clutter_rng.uniform_int(2, config_.max_trees);
  for (int64_t i = 0; i < tree_count; ++i) {
    const int64_t base_row = clutter_rng.uniform_int(horizon + 2, h - 1);
    const double t = geo.depth(base_row);
    const int64_t size = std::max<int64_t>(2, static_cast<int64_t>(t * 0.16 * static_cast<double>(h) * 2.0));
    const bool left = clutter_rng.bernoulli(0.5);
    const double road_x = geo.center_x(base_row);
    const double hw = geo.half_width(base_row);
    const double margin = clutter_rng.uniform(1.2, 2.6);
    const int64_t cx = static_cast<int64_t>(left ? road_x - hw * margin - size : road_x + hw * margin);
    const float shade = static_cast<float>(clutter_rng.uniform(0.08, 0.22));
    draw_rect(img, base_row - size * 2, cx, size * 2, std::max<int64_t>(size / 4, 1), bright(0.25),
              bright(0.16), bright(0.08));  // trunk
    draw_rect(img, base_row - size * 3, cx - size / 2, size * 2, size, bright(shade),
              bright(shade + 0.18), bright(shade));  // canopy
  }
  const int64_t sign_count = clutter_rng.uniform_int(0, config_.max_signs);
  for (int64_t i = 0; i < sign_count; ++i) {
    const int64_t base_row = clutter_rng.uniform_int(horizon + 4, h - 1);
    const double t = geo.depth(base_row);
    const int64_t size = std::max<int64_t>(2, static_cast<int64_t>(t * 0.10 * static_cast<double>(h) * 2.0));
    const bool left = clutter_rng.bernoulli(0.5);
    const double road_x = geo.center_x(base_row);
    const double hw = geo.half_width(base_row);
    const int64_t cx = static_cast<int64_t>(left ? road_x - hw * 1.35 - size : road_x + hw * 1.35);
    // Random saturated sign color (the paper's "color of shop signs").
    const float r = static_cast<float>(clutter_rng.uniform(0.4, 1.0));
    const float g = static_cast<float>(clutter_rng.uniform(0.1, 0.9));
    const float b = static_cast<float>(clutter_rng.uniform(0.1, 0.9));
    draw_rect(img, base_row - size * 2, cx, size, size, bright(r), bright(g), bright(b));
    draw_rect(img, base_row - size, cx + size / 2, size, std::max<int64_t>(size / 5, 1), bright(0.4),
              bright(0.4), bright(0.4));  // post
  }

  img.clamp01();
  Sample sample;
  sample.rgb = std::move(img);
  sample.params = params;
  sample.steering = steering_for_scene(params);
  return sample;
}

}  // namespace salnov::roadsim
