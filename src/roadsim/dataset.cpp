#include "roadsim/dataset.hpp"

#include <numeric>
#include <stdexcept>

#include "image/transforms.hpp"
#include "parallel/parallel_for.hpp"

namespace salnov::roadsim {

DrivingDataset DrivingDataset::generate(const SceneGenerator& generator, int64_t count, int64_t height,
                                        int64_t width, Rng& rng) {
  if (count < 0) throw std::invalid_argument("DrivingDataset::generate: negative count");

  // Parameter sampling walks `rng` sequentially (the exact draws the old
  // serial loop made); rendering + grayscale + resize is a pure function of
  // the params, so scenes rasterize on the worker pool. The dataset is
  // bit-identical at any thread count — and to the fully serial path.
  std::vector<SceneParams> params(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) params[static_cast<size_t>(i)] = generator.sample_params(rng);

  std::vector<Image> grays(static_cast<size_t>(count));
  std::vector<double> steering(static_cast<size_t>(count));
  parallel::parallel_for(0, count, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Sample sample = generator.render_scene(params[static_cast<size_t>(i)]);
      Image gray = sample.rgb.to_grayscale();
      if (gray.height() != height || gray.width() != width) {
        gray = resize_bilinear(gray, height, width);
      }
      gray.clamp01();
      grays[static_cast<size_t>(i)] = std::move(gray);
      steering[static_cast<size_t>(i)] = sample.steering;
    }
  });

  DrivingDataset dataset(height, width);
  dataset.images_.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const auto idx = static_cast<size_t>(i);
    dataset.add(std::move(grays[idx]), steering[idx], params[idx]);
  }
  return dataset;
}

void DrivingDataset::add(Image image, double steering_angle, const SceneParams& params) {
  if (images_.empty() && height_ == 0 && width_ == 0) {
    height_ = image.height();
    width_ = image.width();
  }
  if (image.height() != height_ || image.width() != width_) {
    throw std::invalid_argument("DrivingDataset::add: image size mismatch");
  }
  images_.push_back(std::move(image));
  steering_.push_back(steering_angle);
  params_.push_back(params);
}

std::pair<DrivingDataset, DrivingDataset> DrivingDataset::split(double train_fraction, Rng& rng) const {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("DrivingDataset::split: fraction outside [0, 1]");
  }
  std::vector<int64_t> order(static_cast<size_t>(size()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto train_count = static_cast<int64_t>(train_fraction * static_cast<double>(size()));
  DrivingDataset train(height_, width_);
  DrivingDataset test(height_, width_);
  for (int64_t i = 0; i < size(); ++i) {
    const auto idx = static_cast<size_t>(order[static_cast<size_t>(i)]);
    DrivingDataset& target = i < train_count ? train : test;
    target.add(images_[idx], steering_[idx], params_[idx]);
  }
  return {std::move(train), std::move(test)};
}

DrivingDataset DrivingDataset::sample(int64_t count, Rng& rng) const {
  if (count > size()) throw std::invalid_argument("DrivingDataset::sample: count exceeds dataset size");
  std::vector<int64_t> order(static_cast<size_t>(size()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  DrivingDataset subset(height_, width_);
  for (int64_t i = 0; i < count; ++i) {
    const auto idx = static_cast<size_t>(order[static_cast<size_t>(i)]);
    subset.add(images_[idx], steering_[idx], params_[idx]);
  }
  return subset;
}

DrivingDataset DrivingDataset::with_mirrored() const {
  DrivingDataset augmented(height_, width_);
  for (int64_t i = 0; i < size(); ++i) {
    const auto idx = static_cast<size_t>(i);
    augmented.add(images_[idx], steering_[idx], params_[idx]);
  }
  for (int64_t i = 0; i < size(); ++i) {
    const auto idx = static_cast<size_t>(i);
    SceneParams mirrored = params_[idx];
    mirrored.curvature = -mirrored.curvature;
    mirrored.camera_offset = -mirrored.camera_offset;
    augmented.add(flip_horizontal(images_[idx]), steering_for_scene(mirrored), mirrored);
  }
  return augmented;
}

Tensor DrivingDataset::images_nchw() const {
  Tensor out({size(), 1, height_, width_});
  for (int64_t i = 0; i < size(); ++i) {
    out.set_slice0(i, images_[static_cast<size_t>(i)].tensor().reshape({1, height_, width_}));
  }
  return out;
}

Tensor DrivingDataset::images_flat() const {
  Tensor out({size(), height_ * width_});
  for (int64_t i = 0; i < size(); ++i) {
    out.set_slice0(i, images_[static_cast<size_t>(i)].flattened());
  }
  return out;
}

Tensor DrivingDataset::steering_tensor() const {
  Tensor out({size(), 1});
  for (int64_t i = 0; i < size(); ++i) out[i] = static_cast<float>(steering_[static_cast<size_t>(i)]);
  return out;
}

}  // namespace salnov::roadsim
