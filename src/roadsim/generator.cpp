#include "roadsim/generator.hpp"

#include "roadsim/rasterizer.hpp"

namespace salnov::roadsim {

Image SceneGenerator::relevance_mask(const SceneParams& params, int64_t height, int64_t width) const {
  const RoadGeometry geo(params, height, width);
  Image mask(height, width);
  for (int64_t y = geo.horizon_row() + 1; y < height; ++y) {
    for (int64_t x = 0; x < width; ++x) {
      if (geo.on_edge(y, x) || geo.on_center_marking(y, x)) mask(y, x) = 1.0f;
    }
  }
  return mask;
}

}  // namespace salnov::roadsim
