#include "roadsim/indoor_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "roadsim/rasterizer.hpp"

namespace salnov::roadsim {

IndoorSceneGenerator::IndoorSceneGenerator(IndoorConfig config) : config_(config) {
  if (config_.height < 16 || config_.width < 16) {
    throw std::invalid_argument("IndoorSceneGenerator: render size too small");
  }
}

SceneParams IndoorSceneGenerator::sample_params(Rng& rng) const {
  SceneParams params;
  params.curvature = rng.uniform(-config_.max_curvature, config_.max_curvature);
  params.camera_offset = rng.uniform(-config_.max_offset, config_.max_offset);
  // The model car sits low in a confined room, so the horizon (wall/floor
  // boundary) is high in the frame and the taped track is much narrower
  // than an outdoor road lane.
  params.horizon_frac = rng.uniform(0.50, 0.62);
  params.road_half_width = rng.uniform(0.14, 0.22);
  params.brightness = rng.uniform(0.90, 1.10);  // stable indoor lighting
  // Indoor surfaces at model-car eye level are visually busy: tiled floor,
  // carpet speckle, reflections. High-frequency texture is what makes the
  // outdoor-trained network's VBP masks come out garbled on this data.
  params.texture_noise = rng.uniform(0.06, 0.14);
  params.detail_seed = rng.next_u64();
  return params;
}

Sample IndoorSceneGenerator::render_scene(const SceneParams& params) const {
  return render(params, params.detail_seed);
}

Sample IndoorSceneGenerator::render(const SceneParams& params, uint64_t clutter_seed) const {
  const int64_t h = config_.height;
  const int64_t w = config_.width;
  RgbImage img(h, w);
  const RoadGeometry geo(params, h, w);
  const ValueNoise noise(clutter_seed);
  Rng clutter_rng(clutter_seed);

  const int64_t horizon = geo.horizon_row();
  const auto bright = [&](double v) { return static_cast<float>(std::clamp(v * params.brightness, 0.0, 1.0)); };

  // Wall: warm gray with visible fine structure (wallpaper pattern,
  // shelving shadows) and a dark baseboard band just above the horizon.
  // At model-car eye level the wall fills half the frame, and its busy
  // texture is part of what distinguishes this environment.
  draw_vertical_gradient(img, 0, horizon, bright(0.78), bright(0.76), bright(0.72), bright(0.66),
                         bright(0.64), bright(0.60));
  for (int64_t y = 0; y < horizon; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const double n = noise.at(y * 2.5, x * 2.5, 4.0);
      const double stripe = std::fmod(static_cast<double>(x), 17.0) < 1.5 ? -0.10 : 0.0;
      const double tex = (n - 0.5) * 2.0 * params.texture_noise + stripe;
      const auto shade = [tex](float v) {
        return static_cast<float>(std::clamp(static_cast<double>(v) + tex, 0.0, 1.0));
      };
      img.set(y, x, shade(img(y, x, 0)), shade(img(y, x, 1)), shade(img(y, x, 2)));
    }
  }
  const int64_t baseboard = std::max<int64_t>(1, h / 40);
  draw_rect(img, horizon - baseboard, 0, baseboard, w, bright(0.30), bright(0.28), bright(0.26));

  // Posters on the wall (sparse, muted rectangles).
  const int64_t poster_count = clutter_rng.uniform_int(0, 2);
  for (int64_t i = 0; i < poster_count; ++i) {
    const int64_t pw = clutter_rng.uniform_int(w / 16, w / 8);
    const int64_t ph = clutter_rng.uniform_int(h / 12, h / 7);
    const int64_t px = clutter_rng.uniform_int(0, w - pw - 1);
    const int64_t py = clutter_rng.uniform_int(0, std::max<int64_t>(horizon - ph - baseboard - 1, 1));
    const float shade = static_cast<float>(clutter_rng.uniform(0.35, 0.6));
    draw_rect(img, py, px, ph, pw, bright(shade), bright(shade * 0.9), bright(shade * 1.1));
  }

  // Floor: tiled surface — fine speckle plus a perspective tile grid whose
  // dark grout lines produce high-frequency structure everywhere.
  const double tile = std::max(6.0, static_cast<double>(w) / 14.0);
  for (int64_t y = horizon; y < h; ++y) {
    const double t = geo.depth(y);
    const double row_scale = 0.35 + 0.65 * t;  // tiles shrink toward the wall
    for (int64_t x = 0; x < w; ++x) {
      const double n = noise.at(y * 3.0, x * 3.0, 3.5);
      const double tex = (n - 0.5) * 2.0 * params.texture_noise;
      float c = bright(0.55 + tex);
      const double gy = std::fmod(static_cast<double>(y - horizon) / row_scale, tile);
      const double gx = std::fmod(static_cast<double>(x) / row_scale, tile);
      if (gy < 1.2 || gx < 1.2) c = bright(0.38 + tex);  // grout line
      img.set(y, x, c, c * 0.98f, c * 0.95f);
    }
  }

  // Track: a slightly lighter mat bounded by *dark* tape edges — the
  // opposite edge polarity of the outdoor road (bright lines on dark
  // asphalt) and no center marking. The paper's premise is that the novel
  // environment's features differ from what the steering CNN learned, so
  // its VBP masks come out garbled; inverting the edge polarity is the
  // synthetic equivalent of that distribution shift.
  for (int64_t y = horizon + 1; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      if (geo.on_edge(y, x, 0.10)) {
        const float c = bright(0.10);
        img.set(y, x, c, c, c);
      } else if (geo.on_road(y, x)) {
        const double n = noise.at(y * 2.0, x * 2.0, 8.0);
        const float c = bright(0.68 + (n - 0.5) * 2.0 * params.texture_noise);
        img.set(y, x, c, c, c * 1.05f);
      }
    }
  }

  // Furniture: dark boxes against the wall, resting on the floor just
  // below the horizon.
  const int64_t furniture_count = clutter_rng.uniform_int(0, config_.max_furniture);
  for (int64_t i = 0; i < furniture_count; ++i) {
    const int64_t fw = clutter_rng.uniform_int(w / 14, w / 7);
    const int64_t fh = clutter_rng.uniform_int(h / 10, h / 5);
    const bool left = clutter_rng.bernoulli(0.5);
    const double road_x = geo.center_x(h - 1);
    const int64_t fx = left ? clutter_rng.uniform_int(0, std::max<int64_t>(static_cast<int64_t>(road_x) - fw - w / 4, 1))
                            : clutter_rng.uniform_int(std::min<int64_t>(static_cast<int64_t>(road_x) + w / 4, w - fw - 1), w - fw - 1);
    const float shade = static_cast<float>(clutter_rng.uniform(0.12, 0.3));
    draw_rect(img, horizon - fh, fx, fh + h / 20, fw, bright(shade), bright(shade * 0.95),
              bright(shade * 0.9));
  }

  img.clamp01();
  Sample sample;
  sample.rgb = std::move(img);
  sample.params = params;
  sample.steering = steering_for_scene(params);
  return sample;
}

}  // namespace salnov::roadsim
