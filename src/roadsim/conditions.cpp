#include "roadsim/conditions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "roadsim/rasterizer.hpp"

namespace salnov::roadsim {

Image apply_fog(const Image& frame, const SceneParams& params, double density, float fog_color) {
  if (density < 0.0) throw std::invalid_argument("apply_fog: negative density");
  const RoadGeometry geo(params, frame.height(), frame.width());
  Image out(frame.height(), frame.width());
  for (int64_t y = 0; y < frame.height(); ++y) {
    // Distance proxy: 0 at the camera (bottom row), 1 at/above the horizon.
    const double depth = geo.depth(y);
    const double distance = y <= geo.horizon_row() ? 1.0 : 1.0 - depth;
    const double fog = 1.0 - std::exp(-density * distance);
    for (int64_t x = 0; x < frame.width(); ++x) {
      out(y, x) = static_cast<float>((1.0 - fog) * frame(y, x) + fog * fog_color);
    }
  }
  return out;
}

Image apply_dusk(const Image& frame, double severity) {
  if (severity < 0.0 || severity > 1.0) {
    throw std::invalid_argument("apply_dusk: severity outside [0, 1]");
  }
  const double keep = 1.0 - 0.8 * severity;
  // Gamma < 1 lifts the relative brightness of already-bright features
  // (markings under headlights) while the overall level falls.
  const double gamma = 1.0 - 0.35 * severity;
  Image out = frame;
  out.tensor().apply([keep, gamma](float v) {
    return static_cast<float>(keep * std::pow(std::clamp<double>(v, 0.0, 1.0), gamma));
  });
  return out;
}

Image apply_rain(const Image& frame, int64_t streak_count, Rng& rng) {
  if (streak_count < 0) throw std::invalid_argument("apply_rain: negative streak count");
  // Slight global contrast loss from the wet lens.
  Image out = frame;
  const float mean = frame.mean();
  out.tensor().apply([mean](float v) { return mean + 0.85f * (v - mean); });

  for (int64_t s = 0; s < streak_count; ++s) {
    const double x0 = rng.uniform(0.0, static_cast<double>(frame.width()));
    const double y0 = rng.uniform(-0.2 * static_cast<double>(frame.height()),
                                  static_cast<double>(frame.height()));
    const int64_t length = rng.uniform_int(frame.height() / 6, frame.height() / 2);
    const double slope = rng.uniform(0.15, 0.4);  // mostly vertical streaks
    const float streak_bright = static_cast<float>(rng.uniform(0.75, 0.95));
    const float alpha = static_cast<float>(rng.uniform(0.35, 0.7));
    for (int64_t t = 0; t < length; ++t) {
      const auto y = static_cast<int64_t>(y0 + static_cast<double>(t));
      const auto x = static_cast<int64_t>(x0 + slope * static_cast<double>(t));
      if (y < 0 || y >= frame.height() || x < 0 || x >= frame.width()) continue;
      out(y, x) = (1.0f - alpha) * out(y, x) + alpha * streak_bright;
    }
  }
  out.clamp01();
  return out;
}

}  // namespace salnov::roadsim
