// Scene generator interface.
//
// A SceneGenerator is the library's stand-in for a driving dataset: it
// samples scene parameters from a dataset-specific distribution and renders
// them. OutdoorSceneGenerator plays the role of the Udacity dataset (DSU):
// varied, cluttered, outdoor. IndoorSceneGenerator plays the role of the
// paper's in-house indoor racing environment (DSI): structured, uniform.
#pragma once

#include <string>

#include "image/image.hpp"
#include "roadsim/scene.hpp"
#include "tensor/rng.hpp"

namespace salnov::roadsim {

/// One generated example: rendered view, ground-truth steering, and the
/// parameters that produced it.
struct Sample {
  RgbImage rgb;
  double steering = 0.0;
  SceneParams params;
};

class SceneGenerator {
 public:
  virtual ~SceneGenerator() = default;

  /// Renders one scene drawn from this dataset's parameter distribution.
  /// Equivalent to render_scene(sample_params(rng)).
  virtual Sample generate(Rng& rng) const { return render_scene(sample_params(rng)); }

  /// Draws one scene's parameters — the exact RNG consumption generate()
  /// makes — without rendering. Splitting the cheap, stream-ordered draws
  /// from the expensive, purely-functional rendering lets DrivingDataset
  /// sample sequentially and rasterize on the worker pool while producing
  /// bit-identical datasets at any thread count.
  virtual SceneParams sample_params(Rng& rng) const = 0;

  /// Renders previously drawn parameters. Pure function of `params`
  /// (clutter placement derives from params.detail_seed), safe to call
  /// concurrently.
  virtual Sample render_scene(const SceneParams& params) const = 0;

  /// Dataset name ("outdoor-sim" / "indoor-sim") used in reports.
  virtual std::string name() const = 0;

  /// Rendered image height/width.
  virtual int64_t render_height() const = 0;
  virtual int64_t render_width() const = 0;

  /// Binary mask (1 = task-relevant pixel) of the road-edge and lane-marking
  /// bands for a scene, at a given output resolution. Used to score how well
  /// a saliency mask concentrates on features a human driver attends to
  /// (Fig. 2 / Fig. 4 statistics).
  Image relevance_mask(const SceneParams& params, int64_t height, int64_t width) const;
};

}  // namespace salnov::roadsim
