// Sequential container: a chain of layers trained end-to-end.
//
// Also the introspection point for saliency: forward_collect() returns every
// intermediate activation, which VisualBackProp and LRP consume.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace salnov::nn {

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; returns *this for fluent building.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: emplaces a layer of type L.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  size_t size() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }
  Layer& layer(size_t index) { return *layers_.at(index); }
  const Layer& layer(size_t index) const { return *layers_.at(index); }

  /// Runs the full chain. kTrain mode arms every layer's backward cache.
  Tensor forward(const Tensor& input, Mode mode = Mode::kInfer);

  /// Runs the chain and returns all intermediate outputs:
  /// result[0] is layer 0's output, ..., result[size()-1] the final output.
  /// Always runs in inference mode (no caches disturbed).
  std::vector<Tensor> forward_collect(const Tensor& input) const;

  /// Backpropagates through the whole chain (after forward(..., kTrain))
  /// and returns dL/dinput.
  Tensor backward(const Tensor& grad_output);

  /// All trainable parameters, in layer order.
  std::vector<Parameter*> parameters();

  void zero_grad();

  /// Output shape of the full chain for a given input shape.
  Shape output_shape(Shape input) const;

  int64_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace salnov::nn
