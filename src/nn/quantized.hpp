// Int8-quantized inference view over a float Sequential model.
//
// QuantizedForward wraps a (const) Sequential and re-runs its Dense and
// Conv2d layers through the exact-int32 u8s8 GEMM: activations are
// quantized symmetrically to u8 in [0, 127] with a per-layer scale fitted
// by calibrate(), weights to s8 in [-127, 127] with a scale derived from
// max |w|, and the int32 accumulators are dequantized (fmaf) back to fp32
// at the store. Every other layer (ReLU, Sigmoid, Tanh, Flatten, ...)
// runs its float forward on the dequantized activations, so the quantized
// chain is a drop-in replacement for Sequential::forward /
// forward_collect with bounded score drift.
//
// Determinism contract (what the q8 ladder rungs and trace replay rely
// on): the quantize -> exact integer GEMM -> dequant chain performs the
// same correctly-rounded float operations per element regardless of
// kernel, thread count, or batch size, so quantized outputs are
// BIT-IDENTICAL everywhere the float path only promises tolerance-level
// agreement. quant_differential_test enforces this.
//
// Weight mutation (optimizer step, fault injection) is tracked through
// Parameter::version, mirroring the float layers' lazy weight packing:
// the first forward after a bump re-quantizes and re-packs that layer
// under a mutex. Concurrent inference forwards are safe; concurrent
// training and quantized inference on the same model are unsupported
// (same rule as the float path).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/gemm_int8.hpp"

namespace salnov::nn {

/// Per-layer activation scales for a model's quantizable (Dense / Conv2d)
/// layers, in model order. act_scales[i] = sx maps layer i's input to
/// x_q = clamp(round(x / sx), 0, 127). Fitted once by
/// QuantizedForward::calibrate over representative inputs and persisted
/// alongside the ECDF thresholds (PipelineIo v3).
struct QuantScales {
  std::vector<float> act_scales;

  bool empty() const { return act_scales.empty(); }
};

class QuantizedForward {
 public:
  /// Binds to `model` (which must outlive this object). `scales` must hold
  /// exactly count_quantizable(model) entries; throws std::invalid_argument
  /// otherwise. Weights are quantized lazily on first forward.
  QuantizedForward(const Sequential& model, QuantScales scales);

  QuantizedForward(const QuantizedForward&) = delete;
  QuantizedForward& operator=(const QuantizedForward&) = delete;

  /// Quantized counterpart of Sequential::forward(input, kInfer).
  Tensor forward(const Tensor& input) const;

  /// Quantized counterpart of Sequential::forward_collect: one output per
  /// layer, result[size()-1] is the final output. VisualBackProp consumes
  /// this for the q8 saliency path.
  std::vector<Tensor> forward_collect(const Tensor& input) const;

  const Sequential& model() const { return model_; }
  const QuantScales& scales() const { return scales_; }

  /// Number of quantizable (Dense / Conv2d) layers in `model`.
  static int64_t count_quantizable(const Sequential& model);

  /// Fits per-layer activation scales by running the float chain over
  /// `inputs` and recording the max |x| reaching each quantizable layer.
  /// Layers that only ever see zeros get scale 1. Throws on empty input
  /// list.
  static QuantScales calibrate(const Sequential& model, const std::vector<const Tensor*>& inputs);

 private:
  /// One quantizable layer's derived state: s8 weights in GEMM layout
  /// ([in, out] for Dense; [patch, out_c] for Conv2d), the pre-packed SIMD
  /// operand, and the fused dequant scale sx * sw.
  struct QuantLayer {
    const Layer* layer = nullptr;
    bool is_conv = false;
    float act_scale = 1.0f;      ///< sx
    float inv_act_scale = 1.0f;  ///< 1 / sx (quantize multiplier)
    float weight_scale = 1.0f;   ///< sw = max |w| / 127
    float dequant_scale = 1.0f;  ///< sx * sw
    const float* bias = nullptr;
    std::vector<int8_t> weight_q;
    PackedQuantMatrix packed;
    uint64_t weight_version = 0;  ///< Parameter::version the above derive from
  };

  /// Re-quantizes any layer whose weight version moved. Fast path is a
  /// single relaxed atomic load (versions only grow, so a sum stamp cannot
  /// alias).
  void ensure_fresh() const;
  static void requantize(QuantLayer& ql);

  Tensor forward_quant_dense(const QuantLayer& ql, const Tensor& input) const;
  Tensor forward_quant_conv(const QuantLayer& ql, const Tensor& input) const;

  const Sequential& model_;
  QuantScales scales_;
  std::vector<int> layer_slot_;  ///< model layer index -> quant slot, or -1

  mutable std::mutex requant_mutex_;
  mutable std::atomic<uint64_t> version_stamp_{0};  ///< sum of (version + 1); 0 = never built
  mutable std::vector<QuantLayer> layers_;
};

}  // namespace salnov::nn
