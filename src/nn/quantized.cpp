#include "nn/quantized.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "tensor/workspace.hpp"

namespace salnov::nn {
namespace {

/// x -> clamp(round(x / sx), 0, 127). Computed as a multiply by 1/sx so the
/// quantizer is one rounded float op per element, the same everywhere.
/// Negative inputs clamp to 0, so q(0) == 0 and conv zero padding stays
/// exact in the integer domain.
inline uint8_t quantize_u8(float v, float inv_sx) {
  const long q = std::lrintf(v * inv_sx);
  return static_cast<uint8_t>(q < 0 ? 0 : (q > 127 ? 127 : q));
}

/// w -> clamp(round(w / sw), -127, 127), symmetric (no zero point).
inline int8_t quantize_s8(float v, float sw) {
  const long q = std::lrintf(v / sw);
  return static_cast<int8_t>(q < -127 ? -127 : (q > 127 ? 127 : q));
}

inline float max_abs(const float* data, int64_t count) {
  float m = 0.0f;
  for (int64_t i = 0; i < count; ++i) {
    const float a = std::fabs(data[i]);
    if (a > m) m = a;
  }
  return m;
}

bool is_quantizable(const Layer& layer) {
  return dynamic_cast<const Dense*>(&layer) != nullptr ||
         dynamic_cast<const Conv2d*>(&layer) != nullptr;
}

const Parameter& quant_weight(const Layer& layer, bool is_conv) {
  return is_conv ? static_cast<const Conv2d&>(layer).weight()
                 : static_cast<const Dense&>(layer).weight();
}

/// Quantized, transposed im2col: fills `cols` ([out_h * out_w, patch] u8)
/// with one sample's unrolled patches — the GEMM A operand, positions as
/// rows. Padding reads quantize to exactly 0 (see quantize_u8).
void im2col_quant(const float* x, const Conv2dConfig& cfg, int64_t in_h, int64_t in_w,
                  int64_t out_h, int64_t out_w, float inv_sx, uint8_t* cols) {
  const int64_t patch = cfg.in_channels * cfg.kernel_h * cfg.kernel_w;
  int64_t col = 0;
  for (int64_t c = 0; c < cfg.in_channels; ++c) {
    const float* x_plane = x + c * in_h * in_w;
    for (int64_t kh = 0; kh < cfg.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < cfg.kernel_w; ++kw, ++col) {
        for (int64_t oy = 0; oy < out_h; ++oy) {
          const int64_t iy = oy * cfg.stride - cfg.padding + kh;
          uint8_t* cols_row = cols + oy * out_w * patch + col;
          if (iy < 0 || iy >= in_h) {
            for (int64_t ox = 0; ox < out_w; ++ox) cols_row[ox * patch] = 0;
            continue;
          }
          const float* x_row = x_plane + iy * in_w;
          for (int64_t ox = 0; ox < out_w; ++ox) {
            const int64_t ix = ox * cfg.stride - cfg.padding + kw;
            cols_row[ox * patch] =
                (ix >= 0 && ix < in_w) ? quantize_u8(x_row[ix], inv_sx) : uint8_t{0};
          }
        }
      }
    }
  }
}

}  // namespace

QuantizedForward::QuantizedForward(const Sequential& model, QuantScales scales)
    : model_(model), scales_(std::move(scales)) {
  layer_slot_.assign(model.size(), -1);
  for (size_t i = 0; i < model.size(); ++i) {
    const Layer& layer = model.layer(i);
    const auto* conv = dynamic_cast<const Conv2d*>(&layer);
    if (conv == nullptr && dynamic_cast<const Dense*>(&layer) == nullptr) continue;
    layer_slot_[i] = static_cast<int>(layers_.size());
    QuantLayer ql;
    ql.layer = &layer;
    ql.is_conv = conv != nullptr;
    ql.bias = conv != nullptr ? conv->bias().value.data()
                              : static_cast<const Dense&>(layer).bias().value.data();
    layers_.push_back(std::move(ql));
  }
  if (scales_.act_scales.size() != layers_.size()) {
    throw std::invalid_argument("QuantizedForward: scale count does not match quantizable layers");
  }
  for (size_t s = 0; s < layers_.size(); ++s) {
    const float sx = scales_.act_scales[s];
    if (!std::isfinite(sx) || sx <= 0.0f) {
      throw std::invalid_argument("QuantizedForward: activation scales must be positive finite");
    }
    layers_[s].act_scale = sx;
    layers_[s].inv_act_scale = 1.0f / sx;
  }
}

int64_t QuantizedForward::count_quantizable(const Sequential& model) {
  int64_t count = 0;
  for (size_t i = 0; i < model.size(); ++i) {
    if (is_quantizable(model.layer(i))) ++count;
  }
  return count;
}

QuantScales QuantizedForward::calibrate(const Sequential& model,
                                        const std::vector<const Tensor*>& inputs) {
  if (inputs.empty()) {
    throw std::invalid_argument("QuantizedForward::calibrate: no calibration inputs");
  }
  std::vector<float> act_max(static_cast<size_t>(count_quantizable(model)), 0.0f);
  for (const Tensor* input : inputs) {
    Tensor cur = *input;
    size_t slot = 0;
    for (size_t i = 0; i < model.size(); ++i) {
      // forward_collect semantics: unfused per-layer inference forwards,
      // which are bit-identical to the fused chain.
      Layer& layer = const_cast<Layer&>(model.layer(i));
      if (is_quantizable(layer)) {
        const float m = max_abs(cur.data(), cur.numel());
        if (m > act_max[slot]) act_max[slot] = m;
        ++slot;
      }
      cur = layer.forward(cur, Mode::kInfer);
    }
  }
  QuantScales scales;
  scales.act_scales.reserve(act_max.size());
  for (const float m : act_max) {
    scales.act_scales.push_back(m > 0.0f ? m / 127.0f : 1.0f);
  }
  return scales;
}

void QuantizedForward::ensure_fresh() const {
  if (layers_.empty()) return;
  uint64_t sum = 0;
  for (const QuantLayer& ql : layers_) {
    sum += quant_weight(*ql.layer, ql.is_conv).version + 1;
  }
  // Versions only grow, so the sum is strictly monotone in any mutation and
  // cannot alias a stale state.
  if (version_stamp_.load(std::memory_order_acquire) == sum) return;
  std::lock_guard<std::mutex> lock(requant_mutex_);
  uint64_t locked_sum = 0;
  for (QuantLayer& ql : layers_) {
    const uint64_t v = quant_weight(*ql.layer, ql.is_conv).version + 1;
    locked_sum += v;
    if (ql.weight_version != v) requantize(ql);
  }
  version_stamp_.store(locked_sum, std::memory_order_release);
}

void QuantizedForward::requantize(QuantLayer& ql) {
  const Parameter& wp = ql.is_conv ? static_cast<const Conv2d*>(ql.layer)->weight()
                                   : static_cast<const Dense*>(ql.layer)->weight();
  const Tensor& w = wp.value;
  const float wmax = max_abs(w.data(), w.numel());
  ql.weight_scale = wmax > 0.0f ? wmax / 127.0f : 1.0f;
  ql.dequant_scale = ql.act_scale * ql.weight_scale;
  int64_t k = 0;
  int64_t n = 0;
  if (ql.is_conv) {
    // Weight [out_c, in_c, kh, kw] -> GEMM B [patch, out_c] (transposed so
    // the positions-by-patch im2col multiplies straight through).
    const int64_t out_c = w.dim(0);
    const int64_t patch = w.numel() / out_c;
    k = patch;
    n = out_c;
    ql.weight_q.resize(static_cast<size_t>(k * n));
    const float* wd = w.data();
    for (int64_t oc = 0; oc < out_c; ++oc) {
      for (int64_t p = 0; p < patch; ++p) {
        ql.weight_q[static_cast<size_t>(p * n + oc)] =
            quantize_s8(wd[oc * patch + p], ql.weight_scale);
      }
    }
  } else {
    // Dense weight is already the [in, out] GEMM B operand.
    k = w.dim(0);
    n = w.dim(1);
    ql.weight_q.resize(static_cast<size_t>(k * n));
    const float* wd = w.data();
    for (int64_t i = 0; i < k * n; ++i) ql.weight_q[static_cast<size_t>(i)] =
        quantize_s8(wd[i], ql.weight_scale);
  }
  ql.packed = pack_quant_b(ql.weight_q.data(), k, n);
  ql.weight_version = wp.version + 1;
}

Tensor QuantizedForward::forward_quant_dense(const QuantLayer& ql, const Tensor& input) const {
  const auto& dense = static_cast<const Dense&>(*ql.layer);
  const int64_t k = dense.in_features();
  const int64_t n = dense.out_features();
  if (input.rank() != 2 || input.dim(1) != k) {
    throw std::invalid_argument("QuantizedForward: dense input must be [batch, in_features]");
  }
  const int64_t batch = input.dim(0);
  WorkspaceScope scope;
  auto* a_q = reinterpret_cast<uint8_t*>(scope.floats((batch * k + 3) / 4));
  const float* x = input.data();
  for (int64_t i = 0; i < batch * k; ++i) a_q[i] = quantize_u8(x[i], ql.inv_act_scale);
  Tensor out({batch, n});
  const QuantEpilogue epi{ql.dequant_scale, ql.bias, false};
  gemm_u8s8_dequant(a_q, ql.weight_q.data(), out.data(), batch, n, k, epi, &ql.packed);
  return out;
}

Tensor QuantizedForward::forward_quant_conv(const QuantLayer& ql, const Tensor& input) const {
  const auto& conv = static_cast<const Conv2d&>(*ql.layer);
  const Conv2dConfig& cfg = conv.config();
  if (input.rank() != 4 || input.dim(1) != cfg.in_channels) {
    throw std::invalid_argument("QuantizedForward: conv input must be [batch, in_c, h, w]");
  }
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = conv.out_size(in_h, cfg.kernel_h);
  const int64_t out_w = conv.out_size(in_w, cfg.kernel_w);
  const int64_t positions = out_h * out_w;
  const int64_t patch = cfg.in_channels * cfg.kernel_h * cfg.kernel_w;
  const int64_t out_c = cfg.out_channels;
  Tensor out({batch, out_c, out_h, out_w});
  const QuantEpilogue epi{ql.dequant_scale, ql.bias, false};
  for (int64_t b = 0; b < batch; ++b) {
    WorkspaceScope scope;
    auto* cols = reinterpret_cast<uint8_t*>(scope.floats((positions * patch + 3) / 4));
    im2col_quant(input.data() + b * cfg.in_channels * in_h * in_w, cfg, in_h, in_w, out_h, out_w,
                 ql.inv_act_scale, cols);
    // GEMM result is [positions, out_c]; the output tensor wants
    // [out_c, positions] per sample, so dequantize into scratch and
    // transpose at the copy.
    float* tmp = scope.floats(positions * out_c);
    gemm_u8s8_dequant(cols, ql.weight_q.data(), tmp, positions, out_c, patch, epi, &ql.packed);
    float* dst = out.data() + b * out_c * positions;
    for (int64_t p = 0; p < positions; ++p) {
      const float* src = tmp + p * out_c;
      for (int64_t oc = 0; oc < out_c; ++oc) dst[oc * positions + p] = src[oc];
    }
  }
  return out;
}

Tensor QuantizedForward::forward(const Tensor& input) const {
  ensure_fresh();
  Tensor cur = input;
  for (size_t i = 0; i < model_.size(); ++i) {
    const int slot = layer_slot_[i];
    if (slot >= 0) {
      const QuantLayer& ql = layers_[static_cast<size_t>(slot)];
      cur = ql.is_conv ? forward_quant_conv(ql, cur) : forward_quant_dense(ql, cur);
    } else {
      cur = const_cast<Layer&>(model_.layer(i)).forward(cur, Mode::kInfer);
    }
  }
  return cur;
}

std::vector<Tensor> QuantizedForward::forward_collect(const Tensor& input) const {
  ensure_fresh();
  std::vector<Tensor> outputs;
  outputs.reserve(model_.size());
  Tensor cur = input;
  for (size_t i = 0; i < model_.size(); ++i) {
    const int slot = layer_slot_[i];
    if (slot >= 0) {
      const QuantLayer& ql = layers_[static_cast<size_t>(slot)];
      cur = ql.is_conv ? forward_quant_conv(ql, cur) : forward_quant_dense(ql, cur);
    } else {
      cur = const_cast<Layer&>(model_.layer(i)).forward(cur, Mode::kInfer);
    }
    outputs.push_back(cur);
  }
  return outputs;
}

}  // namespace salnov::nn
