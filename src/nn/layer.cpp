#include "nn/layer.hpp"

#include <stdexcept>

namespace salnov::nn {

void Layer::require_forward_cache(bool have_cache, const char* layer) {
  if (!have_cache) {
    throw std::logic_error(std::string(layer) + "::backward called without a preceding training-mode forward");
  }
}

int64_t parameter_count(const std::vector<Parameter*>& params) {
  int64_t n = 0;
  for (const Parameter* p : params) n += p->value.numel();
  return n;
}

}  // namespace salnov::nn
