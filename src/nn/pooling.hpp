// Max pooling over spatial windows.
//
// Not used by the canonical PilotNet (which downsamples via strided
// convolutions), but provided for alternative steering architectures and
// exercised by the LRP winner-take-all relevance rule.
#pragma once

#include "nn/layer.hpp"

namespace salnov::nn {

class MaxPool2d : public Layer {
 public:
  /// Square pooling window `kernel`, stride defaulting to the kernel size.
  explicit MaxPool2d(int64_t kernel, int64_t stride = 0);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "maxpool2d"; }
  Shape output_shape(const Shape& input) const override;
  void save_config(std::ostream& os) const override;

  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }

  /// Flat input indices of each output's winning element from the last
  /// training-mode forward (exposed for the LRP winner-take-all rule).
  const std::vector<int64_t>& last_argmax() const { return argmax_; }

 private:
  int64_t kernel_;
  int64_t stride_;
  Shape cached_input_shape_;
  std::vector<int64_t> argmax_;
  bool have_cache_ = false;
};

}  // namespace salnov::nn
