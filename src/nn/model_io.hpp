// Model serialization: saves/loads a Sequential (architecture + weights).
//
// Binary format: header("salnov-model", v1), layer count, then per layer its
// type tag, hyperparameter block, and parameter tensors in parameters()
// order. Loading reconstructs the exact architecture, so a trained steering
// network or autoencoder round-trips through a single file.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace salnov::nn {

void save_model(std::ostream& os, Sequential& model);

/// Crash-safe save: payload + CRC32 trailer, temp file + atomic rename (a
/// kill mid-save never leaves a partial file at `path`).
void save_model_file(const std::string& path, Sequential& model);

/// Throws SerializationError on malformed input or unknown layer types.
Sequential load_model(std::istream& is);

/// Verifies the CRC32 trailer before parsing; throws TruncatedFileError /
/// CorruptFileError (both SerializationError) on damaged files.
Sequential load_model_file(const std::string& path);

}  // namespace salnov::nn
