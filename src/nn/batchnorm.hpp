// Batch normalization (Ioffe & Szegedy).
//
// Normalizes over every axis except the feature/channel axis (axis 1):
// per-feature for [batch, features] inputs, per-channel for
// [batch, channels, h, w]. Training mode uses batch statistics and updates
// exponential running estimates; inference mode uses the running estimates.
// Not part of the paper's models (2016-era PilotNet predates widespread BN
// in this domain) but completes the substrate for architecture ablations.
#pragma once

#include "nn/layer.hpp"

namespace salnov::nn {

class BatchNorm : public Layer {
 public:
  /// `features` is the size of axis 1. `momentum` is the running-average
  /// update rate (running = (1 - momentum) * running + momentum * batch).
  explicit BatchNorm(int64_t features, double momentum = 0.1, double epsilon = 1e-5);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::string type_name() const override { return "batchnorm"; }
  Shape output_shape(const Shape& input) const override;
  void save_config(std::ostream& os) const override;

  int64_t features() const { return gamma_.value.numel(); }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

  /// Overwrites the running statistics (used by model loading).
  void set_running_stats(Tensor mean, Tensor var);

 private:
  /// Decomposes an input shape into (groups-per-feature, inner stride).
  void dims(const Shape& shape, int64_t& batch, int64_t& inner) const;

  double momentum_;
  double epsilon_;
  Parameter gamma_;  ///< scale, [features]
  Parameter beta_;   ///< shift, [features]
  Tensor running_mean_;
  Tensor running_var_;

  // Training cache.
  Tensor cached_input_;
  Tensor batch_mean_;
  Tensor batch_var_;
  bool have_cache_ = false;
};

}  // namespace salnov::nn
