#include "nn/batchnorm.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace salnov::nn {

BatchNorm::BatchNorm(int64_t features, double momentum, double epsilon)
    : momentum_(momentum), epsilon_(epsilon) {
  if (features <= 0) throw std::invalid_argument("BatchNorm: features must be positive");
  if (momentum < 0.0 || momentum > 1.0) throw std::invalid_argument("BatchNorm: momentum outside [0, 1]");
  if (epsilon <= 0.0) throw std::invalid_argument("BatchNorm: epsilon must be positive");
  gamma_ = Parameter("gamma", Tensor::ones({features}));
  beta_ = Parameter("beta", Tensor::zeros({features}));
  running_mean_ = Tensor::zeros({features});
  running_var_ = Tensor::ones({features});
}

Shape BatchNorm::output_shape(const Shape& input) const {
  if (input.size() < 2 || input[1] != features()) {
    throw std::invalid_argument("BatchNorm: expected axis-1 size " + std::to_string(features()) +
                                ", got " + shape_to_string(input));
  }
  return input;
}

void BatchNorm::dims(const Shape& shape, int64_t& batch, int64_t& inner) const {
  batch = shape[0];
  inner = 1;
  for (size_t i = 2; i < shape.size(); ++i) inner *= shape[i];
}

Tensor BatchNorm::forward(const Tensor& input, Mode mode) {
  output_shape(input.shape());  // validates
  int64_t batch = 0, inner = 0;
  dims(input.shape(), batch, inner);
  const int64_t c = features();
  const int64_t group = batch * inner;  // elements normalized per feature
  if (group < 1) throw std::invalid_argument("BatchNorm: empty batch");

  Tensor mean({c}), var({c});
  if (mode == Mode::kTrain) {
    for (int64_t f = 0; f < c; ++f) {
      double sum = 0.0, sum_sq = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* base = input.data() + (n * c + f) * inner;
        for (int64_t i = 0; i < inner; ++i) {
          sum += base[i];
          sum_sq += static_cast<double>(base[i]) * base[i];
        }
      }
      const double mu = sum / static_cast<double>(group);
      mean[f] = static_cast<float>(mu);
      var[f] = static_cast<float>(std::max(0.0, sum_sq / static_cast<double>(group) - mu * mu));
      running_mean_[f] = static_cast<float>((1.0 - momentum_) * running_mean_[f] + momentum_ * mean[f]);
      running_var_[f] = static_cast<float>((1.0 - momentum_) * running_var_[f] + momentum_ * var[f]);
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor output(input.shape());
  for (int64_t f = 0; f < c; ++f) {
    const float inv_std = static_cast<float>(1.0 / std::sqrt(static_cast<double>(var[f]) + epsilon_));
    const float g = gamma_.value[f];
    const float b = beta_.value[f];
    const float m = mean[f];
    for (int64_t n = 0; n < batch; ++n) {
      const float* in = input.data() + (n * c + f) * inner;
      float* out = output.data() + (n * c + f) * inner;
      for (int64_t i = 0; i < inner; ++i) out[i] = g * (in[i] - m) * inv_std + b;
    }
  }

  if (mode == Mode::kTrain) {
    cached_input_ = input;
    batch_mean_ = std::move(mean);
    batch_var_ = std::move(var);
    have_cache_ = true;
  }
  return output;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "BatchNorm");
  if (grad_output.shape() != cached_input_.shape()) {
    throw std::invalid_argument("BatchNorm::backward: grad shape mismatch");
  }
  int64_t batch = 0, inner = 0;
  dims(cached_input_.shape(), batch, inner);
  const int64_t c = features();
  const double m = static_cast<double>(batch * inner);

  Tensor grad_input(cached_input_.shape());
  for (int64_t f = 0; f < c; ++f) {
    const double mu = batch_mean_[f];
    const double inv_std = 1.0 / std::sqrt(static_cast<double>(batch_var_[f]) + epsilon_);
    const double g = gamma_.value[f];

    // First pass: accumulate the reductions.
    double sum_g = 0.0;          // sum of incoming grads
    double sum_g_xhat = 0.0;     // sum of grad * xhat
    for (int64_t n = 0; n < batch; ++n) {
      const float* x = cached_input_.data() + (n * c + f) * inner;
      const float* go = grad_output.data() + (n * c + f) * inner;
      for (int64_t i = 0; i < inner; ++i) {
        const double xhat = (x[i] - mu) * inv_std;
        sum_g += go[i];
        sum_g_xhat += go[i] * xhat;
      }
    }
    gamma_.grad[f] += static_cast<float>(sum_g_xhat);
    beta_.grad[f] += static_cast<float>(sum_g);

    // Second pass: dL/dx = (gamma * inv_std / m) * (m*g_i - sum_g - xhat_i * sum_g_xhat).
    const double scale = g * inv_std / m;
    for (int64_t n = 0; n < batch; ++n) {
      const float* x = cached_input_.data() + (n * c + f) * inner;
      const float* go = grad_output.data() + (n * c + f) * inner;
      float* gi = grad_input.data() + (n * c + f) * inner;
      for (int64_t i = 0; i < inner; ++i) {
        const double xhat = (x[i] - mu) * inv_std;
        gi[i] = static_cast<float>(scale * (m * go[i] - sum_g - xhat * sum_g_xhat));
      }
    }
  }
  return grad_input;
}

void BatchNorm::set_running_stats(Tensor mean, Tensor var) {
  if (mean.shape() != Shape{features()} || var.shape() != Shape{features()}) {
    throw std::invalid_argument("BatchNorm::set_running_stats: shape mismatch");
  }
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
}

void BatchNorm::save_config(std::ostream& os) const {
  write_i64(os, features());
  write_f64(os, momentum_);
  write_f64(os, epsilon_);
  // Running statistics are architecture state, not trainable parameters, so
  // they ride along with the config block.
  write_tensor(os, running_mean_);
  write_tensor(os, running_var_);
}

}  // namespace salnov::nn
