// Training losses.
//
// A Loss maps (prediction, target) to a scalar and provides the gradient of
// that scalar w.r.t. the prediction. MseLoss is the Richter & Roy baseline
// loss; SsimLoss (see ssim_loss.hpp) is the paper's proposed loss.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace salnov::nn {

class Loss {
 public:
  virtual ~Loss() = default;

  /// Scalar loss value. Shapes of `prediction` and `target` must match.
  virtual double value(const Tensor& prediction, const Tensor& target) const = 0;

  /// dLoss/dprediction, same shape as `prediction`.
  virtual Tensor gradient(const Tensor& prediction, const Tensor& target) const = 0;

  virtual std::string name() const = 0;

 protected:
  static void require_same_shape(const Tensor& prediction, const Tensor& target, const char* loss);
};

/// Mean squared error averaged over every element.
class MseLoss : public Loss {
 public:
  double value(const Tensor& prediction, const Tensor& target) const override;
  Tensor gradient(const Tensor& prediction, const Tensor& target) const override;
  std::string name() const override { return "mse"; }
};

/// Mean absolute error averaged over every element. The subgradient at zero
/// is taken as 0.
class L1Loss : public Loss {
 public:
  double value(const Tensor& prediction, const Tensor& target) const override;
  Tensor gradient(const Tensor& prediction, const Tensor& target) const override;
  std::string name() const override { return "l1"; }
};

/// Binary cross-entropy on probabilities in (0, 1), averaged over elements.
/// Inputs are clamped away from {0, 1} by `epsilon` for numerical safety.
class BceLoss : public Loss {
 public:
  explicit BceLoss(double epsilon = 1e-7) : epsilon_(epsilon) {}
  double value(const Tensor& prediction, const Tensor& target) const override;
  Tensor gradient(const Tensor& prediction, const Tensor& target) const override;
  std::string name() const override { return "bce"; }

 private:
  double epsilon_;
};

}  // namespace salnov::nn
