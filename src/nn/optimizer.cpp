#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace salnov::nn {

void Optimizer::zero_grad(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->zero_grad();
}

Sgd::Sgd(double learning_rate) : lr_(learning_rate) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Sgd: learning rate must be positive");
}

void Sgd::step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    float* value = p->value.data();
    const float* grad = p->grad.data();
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      value[i] -= static_cast<float>(lr_) * grad[i];
    }
    p->bump_version();
  }
}

Momentum::Momentum(double learning_rate, double momentum) : lr_(learning_rate), momentum_(momentum) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Momentum: learning rate must be positive");
  if (momentum < 0.0 || momentum >= 1.0) throw std::invalid_argument("Momentum: momentum outside [0, 1)");
}

void Momentum::step(const std::vector<Parameter*>& params) {
  if (velocity_.empty()) {
    for (const Parameter* p : params) velocity_.emplace_back(p->value.shape());
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("Momentum: parameter list changed between steps");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    Tensor& vel = velocity_[i];
    float* value = p->value.data();
    const float* grad = p->grad.data();
    float* v = vel.data();
    for (int64_t j = 0; j < p->value.numel(); ++j) {
      v[j] = static_cast<float>(momentum_) * v[j] - static_cast<float>(lr_) * grad[j];
      value[j] += v[j];
    }
    p->bump_version();
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Adam: learning rate must be positive");
  if (beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 || beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
}

void Adam::step(const std::vector<Parameter*>& params) {
  if (m_.empty()) {
    for (const Parameter* p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
  }
  if (m_.size() != params.size()) {
    throw std::logic_error("Adam: parameter list changed between steps");
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    float* value = p->value.data();
    const float* grad = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0; j < p->value.numel(); ++j) {
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * grad[j]);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * grad[j] * grad[j]);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      value[j] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + epsilon_));
    }
    p->bump_version();
  }
}

}  // namespace salnov::nn
