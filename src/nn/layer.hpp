// Layer abstraction for the neural-network substrate.
//
// The library uses explicit layer-graph backpropagation (each layer caches
// what its backward pass needs) rather than a taped autograd: the paper's
// models are simple feed-forward chains, and the explicit scheme is smaller,
// deterministic, and easy to introspect — which VisualBackProp requires
// (it consumes per-layer feature maps).
//
// Conventions:
//   * Dense layers take [batch, features] tensors.
//   * Conv/pool layers take [batch, channels, height, width] tensors.
//   * forward(x, Mode::kTrain) caches activations for backward();
//     forward(x, Mode::kInfer) must not mutate training caches.
//   * backward(grad_out) ACCUMULATES into parameter .grad tensors and
//     returns the gradient w.r.t. the layer input.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace salnov::nn {

/// A trainable tensor together with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Mutation counter for `value`. Every in-place update (optimizer step,
  /// fault injection) must call bump_version() so derived caches — e.g. the
  /// pre-packed inference weight panels in Dense/Conv2d — know to rebuild.
  uint64_t version = 0;

  Parameter() = default;
  Parameter(std::string parameter_name, Tensor initial)
      : name(std::move(parameter_name)), value(std::move(initial)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
  void bump_version() { ++version; }
};

enum class Mode { kTrain, kInfer };

class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. In kTrain mode the layer caches whatever its
  /// backward pass needs; a later backward() call refers to the most recent
  /// kTrain forward.
  virtual Tensor forward(const Tensor& input, Mode mode) = 0;

  /// Backpropagates: accumulates parameter gradients and returns dL/dinput.
  /// Requires a preceding forward(..., kTrain); throws std::logic_error
  /// otherwise.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// valid for the lifetime of the layer.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Stable type tag used by serialization ("dense", "conv2d", ...).
  virtual std::string type_name() const = 0;

  /// Output shape for a given input shape (including batch dimension).
  /// Throws std::invalid_argument if the input shape is unsupported.
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Writes layer hyperparameters (not weights) to a stream; the matching
  /// factory in model_io reads them back.
  virtual void save_config(std::ostream& os) const = 0;

 protected:
  /// Helper for backward() preconditions.
  static void require_forward_cache(bool have_cache, const char* layer);
};

/// Total number of scalar parameters across a parameter list.
int64_t parameter_count(const std::vector<Parameter*>& params);

}  // namespace salnov::nn
