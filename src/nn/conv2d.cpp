#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/serialize.hpp"
#include "tensor/workspace.hpp"

namespace salnov::nn {

Conv2d::Conv2d(const Conv2dConfig& config, Rng& rng) : config_(config) {
  validate_config();
  const int64_t fan_in = config_.in_channels * config_.kernel_h * config_.kernel_w;
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in));
  weight_ = Parameter("weight",
                      rng.uniform_tensor({config_.out_channels, config_.in_channels, config_.kernel_h,
                                          config_.kernel_w},
                                         -bound, bound));
  bias_ = Parameter("bias", Tensor::zeros({config_.out_channels}));
}

Conv2d::Conv2d(const Conv2dConfig& config, Tensor weight, Tensor bias) : config_(config) {
  validate_config();
  const Shape expected{config_.out_channels, config_.in_channels, config_.kernel_h, config_.kernel_w};
  if (weight.shape() != expected) {
    throw std::invalid_argument("Conv2d: weight shape " + shape_to_string(weight.shape()) +
                                " does not match config " + shape_to_string(expected));
  }
  if (bias.shape() != Shape{config_.out_channels}) {
    throw std::invalid_argument("Conv2d: bias shape mismatch");
  }
  weight_ = Parameter("weight", std::move(weight));
  bias_ = Parameter("bias", std::move(bias));
}

void Conv2d::validate_config() const {
  if (config_.in_channels <= 0 || config_.out_channels <= 0 || config_.kernel_h <= 0 ||
      config_.kernel_w <= 0 || config_.stride <= 0 || config_.padding < 0) {
    throw std::invalid_argument("Conv2d: invalid configuration");
  }
}

int64_t Conv2d::out_size(int64_t in_size, int64_t kernel) const {
  return (in_size + 2 * config_.padding - kernel) / config_.stride + 1;
}

Shape Conv2d::output_shape(const Shape& input) const {
  if (input.size() != 4 || input[1] != config_.in_channels) {
    throw std::invalid_argument("Conv2d: expected input [batch, " +
                                std::to_string(config_.in_channels) + ", h, w], got " +
                                shape_to_string(input));
  }
  const int64_t out_h = out_size(input[2], config_.kernel_h);
  const int64_t out_w = out_size(input[3], config_.kernel_w);
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument("Conv2d: input " + shape_to_string(input) +
                                " too small for kernel/stride");
  }
  return {input[0], config_.out_channels, out_h, out_w};
}

void Conv2d::im2col(const float* x, int64_t in_h, int64_t in_w, int64_t out_h, int64_t out_w,
                    float* cols) const {
  const int64_t positions = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < config_.in_channels; ++c) {
    const float* plane = x + c * in_h * in_w;
    for (int64_t ki = 0; ki < config_.kernel_h; ++ki) {
      for (int64_t kj = 0; kj < config_.kernel_w; ++kj, ++row) {
        float* out_row = cols + row * positions;
        for (int64_t oy = 0; oy < out_h; ++oy) {
          const int64_t iy = oy * config_.stride - config_.padding + ki;
          if (iy < 0 || iy >= in_h) {
            for (int64_t ox = 0; ox < out_w; ++ox) out_row[oy * out_w + ox] = 0.0f;
            continue;
          }
          const float* in_row = plane + iy * in_w;
          for (int64_t ox = 0; ox < out_w; ++ox) {
            const int64_t ix = ox * config_.stride - config_.padding + kj;
            out_row[oy * out_w + ox] = (ix < 0 || ix >= in_w) ? 0.0f : in_row[ix];
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* cols, int64_t in_h, int64_t in_w, int64_t out_h, int64_t out_w,
                    float* grad_x) const {
  const int64_t positions = out_h * out_w;
  int64_t row = 0;
  for (int64_t c = 0; c < config_.in_channels; ++c) {
    float* plane = grad_x + c * in_h * in_w;
    for (int64_t ki = 0; ki < config_.kernel_h; ++ki) {
      for (int64_t kj = 0; kj < config_.kernel_w; ++kj, ++row) {
        const float* col_row = cols + row * positions;
        for (int64_t oy = 0; oy < out_h; ++oy) {
          const int64_t iy = oy * config_.stride - config_.padding + ki;
          if (iy < 0 || iy >= in_h) continue;
          float* in_row = plane + iy * in_w;
          for (int64_t ox = 0; ox < out_w; ++ox) {
            const int64_t ix = ox * config_.stride - config_.padding + kj;
            if (ix >= 0 && ix < in_w) in_row[ix] += col_row[oy * out_w + ox];
          }
        }
      }
    }
  }
}

const PackedMatrix* Conv2d::packed_weights() {
  // As the GEMM's A operand the weight is reused across samples and frames;
  // out_channels == 1 would take the matvec path where panels go unused.
  if (config_.out_channels <= 1 || !gemm_weight_packing_enabled() ||
      active_gemm_kernel() != GemmKernel::kSimd) {
    return nullptr;
  }
  const int64_t patch = config_.in_channels * config_.kernel_h * config_.kernel_w;
  const uint64_t want = weight_.version + 1;
  if (packed_version_.load(std::memory_order_acquire) != want) {
    std::lock_guard<std::mutex> lock(pack_mutex_);
    if (packed_version_.load(std::memory_order_relaxed) != want) {
      packed_weight_ = pack_a_panels(weight_.value.data(), config_.out_channels, patch);
      packed_version_.store(want, std::memory_order_release);
    }
  }
  return &packed_weight_;
}

Tensor Conv2d::forward(const Tensor& input, Mode mode) { return run_forward(input, mode, false); }

Tensor Conv2d::run_forward(const Tensor& input, Mode mode, bool fuse_relu) {
  const Shape out_shape = output_shape(input.shape());
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = out_shape[2];
  const int64_t out_w = out_shape[3];
  const int64_t patch = config_.in_channels * config_.kernel_h * config_.kernel_w;
  const int64_t positions = out_h * out_w;

  Tensor output(out_shape);
  WorkspaceScope scratch;
  float* cols = scratch.floats(patch * positions);
  const int64_t in_stride = config_.in_channels * in_h * in_w;
  const int64_t out_stride = config_.out_channels * positions;

  GemmEpilogue epilogue;
  epilogue.bias_row = bias_.value.data();
  epilogue.relu = fuse_relu;
  const PackedMatrix* packed = mode == Mode::kInfer ? packed_weights() : nullptr;

  for (int64_t n = 0; n < batch; ++n) {
    im2col(input.data() + n * in_stride, in_h, in_w, out_h, out_w, cols);
    // out[n] = W [out_c, patch] x cols [patch, positions], bias fused.
    gemm_ex(weight_.value.data(), cols, output.data() + n * out_stride, config_.out_channels,
            positions, patch, epilogue, packed, nullptr);
  }

  if (mode == Mode::kTrain) {
    cached_input_ = input;
    have_cache_ = true;
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "Conv2d");
  const Shape out_shape = output_shape(cached_input_.shape());
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Conv2d::backward: grad shape " + shape_to_string(grad_output.shape()) +
                                " does not match output " + shape_to_string(out_shape));
  }
  const int64_t batch = cached_input_.dim(0);
  const int64_t in_h = cached_input_.dim(2);
  const int64_t in_w = cached_input_.dim(3);
  const int64_t out_h = out_shape[2];
  const int64_t out_w = out_shape[3];
  const int64_t patch = config_.in_channels * config_.kernel_h * config_.kernel_w;
  const int64_t positions = out_h * out_w;
  const int64_t in_stride = config_.in_channels * in_h * in_w;
  const int64_t out_stride = config_.out_channels * positions;

  Tensor grad_input(cached_input_.shape());
  WorkspaceScope scratch;
  float* cols = scratch.floats(patch * positions);
  float* grad_cols = scratch.floats(patch * positions);

  for (int64_t n = 0; n < batch; ++n) {
    const float* g_n = grad_output.data() + n * out_stride;

    // dW += g_n [out_c, positions] x cols^T [positions, patch]
    im2col(cached_input_.data() + n * in_stride, in_h, in_w, out_h, out_w, cols);
    gemm_nt_accumulate(g_n, cols, weight_.grad.data(), config_.out_channels, patch, positions);

    // db += row sums of g_n
    for (int64_t oc = 0; oc < config_.out_channels; ++oc) {
      const float* plane = g_n + oc * positions;
      float acc = 0.0f;
      for (int64_t p = 0; p < positions; ++p) acc += plane[p];
      bias_.grad[oc] += acc;
    }

    // dcols = W^T [patch, out_c] x g_n [out_c, positions]; scatter to input.
    std::fill(grad_cols, grad_cols + patch * positions, 0.0f);
    gemm_tn_accumulate(weight_.value.data(), g_n, grad_cols, patch, positions,
                       config_.out_channels);
    col2im(grad_cols, in_h, in_w, out_h, out_w, grad_input.data() + n * in_stride);
  }
  return grad_input;
}

void Conv2d::save_config(std::ostream& os) const {
  write_i64(os, config_.in_channels);
  write_i64(os, config_.out_channels);
  write_i64(os, config_.kernel_h);
  write_i64(os, config_.kernel_w);
  write_i64(os, config_.stride);
  write_i64(os, config_.padding);
}

}  // namespace salnov::nn
