// Elementwise activation layers: ReLU, Sigmoid, Tanh.
//
// The paper's models use ReLU hidden activations everywhere and a sigmoid
// output layer on the autoencoder (pixels are normalized to [0, 1]).
#pragma once

#include "nn/layer.hpp"

namespace salnov::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "relu"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void save_config(std::ostream&) const override {}

 private:
  Tensor cached_input_;
  bool have_cache_ = false;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "sigmoid"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void save_config(std::ostream&) const override {}

 private:
  Tensor cached_output_;  ///< sigmoid' = y (1 - y), so cache the output
  bool have_cache_ = false;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "tanh"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void save_config(std::ostream&) const override {}

 private:
  Tensor cached_output_;  ///< tanh' = 1 - y^2
  bool have_cache_ = false;
};

}  // namespace salnov::nn
