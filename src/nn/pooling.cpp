#include "nn/pooling.hpp"

#include <ostream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace salnov::nn {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ <= 0 || stride_ <= 0) throw std::invalid_argument("MaxPool2d: invalid kernel/stride");
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  if (input.size() != 4) {
    throw std::invalid_argument("MaxPool2d: expected [batch, c, h, w], got " + shape_to_string(input));
  }
  const int64_t out_h = (input[2] - kernel_) / stride_ + 1;
  const int64_t out_w = (input[3] - kernel_) / stride_ + 1;
  if (out_h <= 0 || out_w <= 0) {
    throw std::invalid_argument("MaxPool2d: input too small for kernel");
  }
  return {input[0], input[1], out_h, out_w};
}

Tensor MaxPool2d::forward(const Tensor& input, Mode mode) {
  const Shape out_shape = output_shape(input.shape());
  const int64_t batch = input.dim(0), channels = input.dim(1);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = out_shape[2], out_w = out_shape[3];

  Tensor output(out_shape);
  std::vector<int64_t> argmax(static_cast<size_t>(output.numel()));
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      const int64_t plane_base = (n * channels + c) * in_h * in_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
          float best = plane[(oy * stride_) * in_w + ox * stride_];
          int64_t best_at = (oy * stride_) * in_w + ox * stride_;
          for (int64_t ky = 0; ky < kernel_; ++ky) {
            for (int64_t kx = 0; kx < kernel_; ++kx) {
              const int64_t at = (oy * stride_ + ky) * in_w + (ox * stride_ + kx);
              if (plane[at] > best) {
                best = plane[at];
                best_at = at;
              }
            }
          }
          output[out_idx] = best;
          argmax[static_cast<size_t>(out_idx)] = plane_base + best_at;
        }
      }
    }
  }
  if (mode == Mode::kTrain) {
    cached_input_shape_ = input.shape();
    argmax_ = std::move(argmax);
    have_cache_ = true;
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "MaxPool2d");
  if (grad_output.numel() != static_cast<int64_t>(argmax_.size())) {
    throw std::invalid_argument("MaxPool2d::backward: grad element count mismatch");
  }
  Tensor grad_input(cached_input_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[static_cast<size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

void MaxPool2d::save_config(std::ostream& os) const {
  write_i64(os, kernel_);
  write_i64(os, stride_);
}

}  // namespace salnov::nn
