#include "nn/flatten.hpp"

#include <stdexcept>

namespace salnov::nn {

Shape Flatten::output_shape(const Shape& input) const {
  if (input.empty()) throw std::invalid_argument("Flatten: rank-0 input");
  int64_t rest = 1;
  for (size_t i = 1; i < input.size(); ++i) rest *= input[i];
  return {input[0], rest};
}

Tensor Flatten::forward(const Tensor& input, Mode mode) {
  if (mode == Mode::kTrain) {
    cached_input_shape_ = input.shape();
    have_cache_ = true;
  }
  return input.reshape(output_shape(input.shape()));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "Flatten");
  return grad_output.reshape(cached_input_shape_);
}

}  // namespace salnov::nn
