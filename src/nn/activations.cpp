#include "nn/activations.hpp"

#include <cmath>

namespace salnov::nn {

Tensor ReLU::forward(const Tensor& input, Mode mode) {
  Tensor out = input;
  out.apply([](float v) { return v > 0.0f ? v : 0.0f; });
  if (mode == Mode::kTrain) {
    cached_input_ = input;
    have_cache_ = true;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "ReLU");
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_input[i] = 0.0f;
  }
  return grad_input;
}

Tensor Sigmoid::forward(const Tensor& input, Mode mode) {
  Tensor out = input;
  out.apply([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  if (mode == Mode::kTrain) {
    cached_output_ = out;
    have_cache_ = true;
  }
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "Sigmoid");
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] *= y * (1.0f - y);
  }
  return grad_input;
}

Tensor Tanh::forward(const Tensor& input, Mode mode) {
  Tensor out = input;
  out.apply([](float v) { return std::tanh(v); });
  if (mode == Mode::kTrain) {
    cached_output_ = out;
    have_cache_ = true;
  }
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "Tanh");
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] *= 1.0f - y * y;
  }
  return grad_input;
}

}  // namespace salnov::nn
