#include "nn/trainer.hpp"

#include <algorithm>
#include <iostream>
#include <numeric>
#include <stdexcept>

namespace salnov::nn {

Trainer::Trainer(Sequential& model, Loss& loss, Optimizer& optimizer, Rng rng)
    : model_(model), loss_(loss), optimizer_(optimizer), rng_(rng) {}

Tensor Trainer::gather(const Tensor& source, const std::vector<int64_t>& order, int64_t begin,
                       int64_t end) {
  Shape batch_shape = source.shape();
  batch_shape[0] = end - begin;
  Tensor batch(batch_shape);
  for (int64_t i = begin; i < end; ++i) {
    batch.set_slice0(i - begin, source.slice0(order[static_cast<size_t>(i)]));
  }
  return batch;
}

TrainHistory Trainer::fit(const Tensor& inputs, const Tensor& targets, const TrainOptions& options) {
  if (inputs.rank() < 1 || targets.rank() < 1 || inputs.dim(0) != targets.dim(0)) {
    throw std::invalid_argument("Trainer::fit: inputs and targets must share dimension 0");
  }
  if (inputs.dim(0) == 0) throw std::invalid_argument("Trainer::fit: empty dataset");
  if (options.epochs < 1 || options.batch_size < 1) {
    throw std::invalid_argument("Trainer::fit: epochs and batch_size must be >= 1");
  }

  const int64_t n = inputs.dim(0);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  TrainHistory history;
  const auto params = model_.parameters();
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.shuffle) rng_.shuffle(order);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin < n; begin += options.batch_size) {
      const int64_t end = std::min(begin + options.batch_size, n);
      const Tensor batch_x = gather(inputs, order, begin, end);
      const Tensor batch_y = gather(targets, order, begin, end);

      Optimizer::zero_grad(params);
      const Tensor prediction = model_.forward(batch_x, Mode::kTrain);
      epoch_loss += loss_.value(prediction, batch_y);
      model_.backward(loss_.gradient(prediction, batch_y));
      optimizer_.step(params);
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
    history.epoch_loss.push_back(epoch_loss);
    if (options.verbose) {
      std::cerr << "epoch " << (epoch + 1) << "/" << options.epochs << "  loss " << epoch_loss << '\n';
    }
    if (options.on_epoch && !options.on_epoch(epoch, epoch_loss)) break;
  }
  return history;
}

double Trainer::evaluate(const Tensor& inputs, const Tensor& targets, int64_t batch_size) {
  if (inputs.dim(0) != targets.dim(0) || inputs.dim(0) == 0) {
    throw std::invalid_argument("Trainer::evaluate: invalid dataset");
  }
  const int64_t n = inputs.dim(0);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  double total = 0.0;
  int64_t batches = 0;
  for (int64_t begin = 0; begin < n; begin += batch_size) {
    const int64_t end = std::min(begin + batch_size, n);
    const Tensor batch_x = gather(inputs, order, begin, end);
    const Tensor batch_y = gather(targets, order, begin, end);
    total += loss_.value(model_.forward(batch_x, Mode::kInfer), batch_y);
    ++batches;
  }
  return total / static_cast<double>(batches);
}

}  // namespace salnov::nn
