// First-order optimizers: SGD, SGD with momentum, Adam.
//
// Stateful optimizers key their per-parameter state by position in the
// parameter list, so the same optimizer instance must always be stepped
// with the same model's parameter list (the usual contract).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace salnov::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step from the accumulated gradients. Does not zero
  /// the gradients; call zero_grad() (or Sequential::zero_grad) before the
  /// next backward pass.
  virtual void step(const std::vector<Parameter*>& params) = 0;

  static void zero_grad(const std::vector<Parameter*>& params);
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate);
  void step(const std::vector<Parameter*>& params) override;

 private:
  double lr_;
};

class Momentum : public Optimizer {
 public:
  Momentum(double learning_rate, double momentum = 0.9);
  void step(const std::vector<Parameter*>& params) override;

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999, double epsilon = 1e-8);
  void step(const std::vector<Parameter*>& params) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace salnov::nn
