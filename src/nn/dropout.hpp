// Inverted dropout.
//
// Training-mode forward zeroes each element with probability p and scales
// survivors by 1/(1-p) so the expectation is unchanged; inference is the
// identity. The mask stream is deterministic given the construction seed.
// Used in the autoencoder-regularization ablation (the paper's autoencoder
// is unregularized; dropout is the obvious first knob).
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace salnov::nn {

class Dropout : public Layer {
 public:
  /// `probability` is the drop probability in [0, 1).
  Dropout(double probability, Rng& rng);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "dropout"; }
  Shape output_shape(const Shape& input) const override { return input; }
  void save_config(std::ostream& os) const override;

  double probability() const { return probability_; }

 private:
  double probability_;
  Rng rng_;
  Tensor mask_;  ///< survivor scaling per element from the last kTrain forward
  bool have_cache_ = false;
};

}  // namespace salnov::nn
