// Mini-batch trainer for Sequential models.
//
// Handles epoch loops, deterministic shuffling, batching (the paper uses a
// mini-batch size of 32), and per-epoch reporting. Works for any
// (model, loss, optimizer) triple; both the steering CNN and the
// autoencoder train through this.
#pragma once

#include <functional>
#include <vector>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace salnov::nn {

struct TrainOptions {
  int64_t epochs = 10;
  int64_t batch_size = 32;     ///< Paper: 32.
  bool shuffle = true;
  bool verbose = false;        ///< Print per-epoch loss to stderr.
  /// Optional per-epoch callback: (epoch index, mean training loss).
  /// Return false to stop early.
  std::function<bool(int64_t, double)> on_epoch;
};

struct TrainHistory {
  std::vector<double> epoch_loss;  ///< Mean training loss per completed epoch.

  double final_loss() const { return epoch_loss.empty() ? 0.0 : epoch_loss.back(); }
};

class Trainer {
 public:
  /// `rng` drives shuffling only; pass a split() of your master Rng.
  Trainer(Sequential& model, Loss& loss, Optimizer& optimizer, Rng rng);

  /// Trains on inputs [N, ...] / targets [N, ...] (dimension 0 is the sample
  /// dimension for both). Returns per-epoch loss history.
  TrainHistory fit(const Tensor& inputs, const Tensor& targets, const TrainOptions& options);

  /// Mean loss over a dataset without updating weights.
  double evaluate(const Tensor& inputs, const Tensor& targets, int64_t batch_size = 32);

 private:
  /// Gathers rows `index_batch` of `source` into a contiguous batch tensor.
  static Tensor gather(const Tensor& source, const std::vector<int64_t>& order, int64_t begin,
                       int64_t end);

  Sequential& model_;
  Loss& loss_;
  Optimizer& optimizer_;
  Rng rng_;
};

}  // namespace salnov::nn
