// Differentiable SSIM loss for autoencoder training.
//
// The paper trains the one-class autoencoder to *maximize* the structural
// similarity between input and reconstruction; as a minimization objective
// we use  L = 1 - meanSSIM(x, y)  averaged over the batch, with the exact
// analytic gradient of mean SSIM w.r.t. the reconstruction.
//
// For a window with biased statistics (mu, sigma^2, sigma_xy over N = w^2
// pixels) and A1 = 2 mu_x mu_y + c1, A2 = 2 sigma_xy + c2,
// B1 = mu_x^2 + mu_y^2 + c1, B2 = sigma_x^2 + sigma_y^2 + c2:
//
//   dSSIM/dy_k = (2 / (N B1^2 B2^2)) *
//       [ mu_x A2 B1 B2 + (x_k - mu_x) A1 B1 B2
//         - mu_y A1 A2 B2 - (y_k - mu_y) A1 A2 B1 ]
//
// which decomposes per window into alpha + beta * x_k + gamma * y_k. The
// implementation computes window statistics with summed-area tables and
// accumulates the per-pixel alpha/beta/gamma sums with a second set of
// summed-area tables over the window grid, so value + gradient cost is
// O(H * W) per image independent of the window size.
#pragma once

#include "metrics/ssim.hpp"
#include "nn/loss.hpp"

namespace salnov::nn {

class SsimLoss : public Loss {
 public:
  /// Loss over batches of flattened images: tensors must be
  /// [batch, height * width]. `options` controls window size / constants.
  SsimLoss(int64_t height, int64_t width, SsimOptions options = {});

  double value(const Tensor& prediction, const Tensor& target) const override;
  Tensor gradient(const Tensor& prediction, const Tensor& target) const override;
  std::string name() const override { return "ssim"; }

  /// Mean SSIM of a single flattened (reconstruction, input) pair; the
  /// novelty *score* used at detection time (higher = more similar).
  double mean_ssim(const Tensor& prediction_row, const Tensor& target_row) const;

  int64_t height() const { return height_; }
  int64_t width() const { return width_; }
  const SsimOptions& options() const { return options_; }

 private:
  void validate_batch(const Tensor& prediction, const Tensor& target) const;

  /// Computes the mean SSIM of one sample and, if `grad_row` is non-null,
  /// adds dmeanSSIM/dy into it (length height_*width_).
  double sample_ssim(const float* y_recon, const float* x_input, float* grad_row) const;

  int64_t height_;
  int64_t width_;
  SsimOptions options_;
};

}  // namespace salnov::nn
