#include "nn/ssim_loss.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "metrics/summed_area.hpp"
#include "parallel/parallel_for.hpp"

namespace salnov::nn {
namespace {

// Ceiling division for possibly-negative numerators (b > 0).
int64_t ceil_div(int64_t a, int64_t b) { return a >= 0 ? (a + b - 1) / b : -((-a) / b); }

// Local aliases for the shared summed-area helpers.
inline void build_sat(const double* grid, int64_t rows, int64_t cols, double* sat) {
  build_summed_area(grid, rows, cols, sat);
}
inline double sat_rect(const double* sat, int64_t cols, int64_t r0, int64_t c0, int64_t r1,
                       int64_t c1) {
  return summed_area_rect(sat, cols, r0, c0, r1, c1);
}

}  // namespace

SsimLoss::SsimLoss(int64_t height, int64_t width, SsimOptions options)
    : height_(height), width_(width), options_(options) {
  if (height_ < options_.window || width_ < options_.window) {
    throw std::invalid_argument("SsimLoss: image smaller than SSIM window");
  }
  if (options_.window < 1 || options_.stride < 1) {
    throw std::invalid_argument("SsimLoss: window and stride must be >= 1");
  }
}

void SsimLoss::validate_batch(const Tensor& prediction, const Tensor& target) const {
  require_same_shape(prediction, target, "SsimLoss");
  if (prediction.rank() != 2 || prediction.dim(1) != height_ * width_) {
    throw std::invalid_argument("SsimLoss: expected [batch, " + std::to_string(height_ * width_) +
                                "], got " + shape_to_string(prediction.shape()));
  }
}

double SsimLoss::sample_ssim(const float* y_recon, const float* x_input, float* grad_row) const {
  const int64_t h = height_, w = width_;
  const int64_t win = options_.window, stride = options_.stride;
  const int64_t grid_rows = (h - win) / stride + 1;
  const int64_t grid_cols = (w - win) / stride + 1;
  const double n_win = static_cast<double>(win * win);
  const double c1 = options_.c1();
  const double c2 = options_.c2();

  // Summed-area tables of x, y, x^2, y^2, xy over the image.
  const int64_t sat_size = (h + 1) * (w + 1);
  std::vector<double> sx(sat_size), sy(sat_size), sxx(sat_size), syy(sat_size), sxy(sat_size);
  {
    // Five independent tables, one pool chunk each (nested calls — e.g.
    // from the batch fan-out in value()/gradient() — run inline).
    double* const sats[5] = {sx.data(), sy.data(), sxx.data(), syy.data(), sxy.data()};
    parallel::parallel_for(0, 5, 1, [&](int64_t table_begin, int64_t table_end) {
      std::vector<double> grid(static_cast<size_t>(h * w));
      for (int64_t t = table_begin; t < table_end; ++t) {
        for (int64_t i = 0; i < h * w; ++i) {
          const double xv = x_input[i];
          const double yv = y_recon[i];
          switch (t) {
            case 0: grid[i] = xv; break;
            case 1: grid[i] = yv; break;
            case 2: grid[i] = xv * xv; break;
            case 3: grid[i] = yv * yv; break;
            default: grid[i] = xv * yv; break;
          }
        }
        build_sat(grid.data(), h, w, sats[t]);
      }
    });
  }

  std::vector<double> alpha, beta, gamma;
  if (grad_row != nullptr) {
    alpha.assign(grid_rows * grid_cols, 0.0);
    beta.assign(grid_rows * grid_cols, 0.0);
    gamma.assign(grid_rows * grid_cols, 0.0);
  }

  double ssim_acc = 0.0;
  for (int64_t gr = 0; gr < grid_rows; ++gr) {
    const int64_t y0 = gr * stride;
    for (int64_t gc = 0; gc < grid_cols; ++gc) {
      const int64_t x0 = gc * stride;
      const double sum_x = sat_rect(sx.data(), w, y0, x0, y0 + win, x0 + win);
      const double sum_y = sat_rect(sy.data(), w, y0, x0, y0 + win, x0 + win);
      const double sum_xx = sat_rect(sxx.data(), w, y0, x0, y0 + win, x0 + win);
      const double sum_yy = sat_rect(syy.data(), w, y0, x0, y0 + win, x0 + win);
      const double sum_xy = sat_rect(sxy.data(), w, y0, x0, y0 + win, x0 + win);

      const double mu_x = sum_x / n_win;
      const double mu_y = sum_y / n_win;
      const double var_x = std::max(0.0, sum_xx / n_win - mu_x * mu_x);
      const double var_y = std::max(0.0, sum_yy / n_win - mu_y * mu_y);
      const double cov = sum_xy / n_win - mu_x * mu_y;

      const double a1 = 2.0 * mu_x * mu_y + c1;
      const double a2 = 2.0 * cov + c2;
      const double b1 = mu_x * mu_x + mu_y * mu_y + c1;
      const double b2 = var_x + var_y + c2;
      ssim_acc += (a1 * a2) / (b1 * b2);

      if (grad_row != nullptr) {
        const double term = 2.0 / (n_win * b1 * b1 * b2 * b2);
        const double beta_w = term * a1 * b1 * b2;
        const double gamma_w = -term * a1 * a2 * b1;
        const double alpha_w =
            term * (mu_x * b1 * b2 * (a2 - a1) + mu_y * a1 * a2 * (b1 - b2));
        const int64_t g = gr * grid_cols + gc;
        alpha[g] = alpha_w;
        beta[g] = beta_w;
        gamma[g] = gamma_w;
      }
    }
  }
  const double window_count = static_cast<double>(grid_rows * grid_cols);
  const double mean_ssim_value = ssim_acc / window_count;

  if (grad_row != nullptr) {
    // Accumulate per-pixel sums of alpha/beta/gamma over covering windows
    // with summed-area tables over the window grid.
    const int64_t gsat_size = (grid_rows + 1) * (grid_cols + 1);
    std::vector<double> sat_a(gsat_size), sat_b(gsat_size), sat_g(gsat_size);
    build_sat(alpha.data(), grid_rows, grid_cols, sat_a.data());
    build_sat(beta.data(), grid_rows, grid_cols, sat_b.data());
    build_sat(gamma.data(), grid_rows, grid_cols, sat_g.data());

    for (int64_t py = 0; py < h; ++py) {
      const int64_t r0 = std::max<int64_t>(0, ceil_div(py - win + 1, stride));
      const int64_t r1 = std::min(grid_rows - 1, py / stride);
      if (r0 > r1) continue;
      for (int64_t px = 0; px < w; ++px) {
        const int64_t q0 = std::max<int64_t>(0, ceil_div(px - win + 1, stride));
        const int64_t q1 = std::min(grid_cols - 1, px / stride);
        if (q0 > q1) continue;
        const double a_sum = sat_rect(sat_a.data(), grid_cols, r0, q0, r1 + 1, q1 + 1);
        const double b_sum = sat_rect(sat_b.data(), grid_cols, r0, q0, r1 + 1, q1 + 1);
        const double g_sum = sat_rect(sat_g.data(), grid_cols, r0, q0, r1 + 1, q1 + 1);
        const int64_t k = py * w + px;
        const double d_mean_ssim =
            (a_sum + b_sum * x_input[k] + g_sum * y_recon[k]) / window_count;
        grad_row[k] += static_cast<float>(d_mean_ssim);
      }
    }
  }
  return mean_ssim_value;
}

double SsimLoss::value(const Tensor& prediction, const Tensor& target) const {
  validate_batch(prediction, target);
  const int64_t batch = prediction.dim(0);
  const int64_t dim = height_ * width_;
  // Per-sample SSIM in parallel; the final reduction runs in ascending
  // sample order, which is exactly the serial path's association.
  std::vector<double> per_sample(static_cast<size_t>(batch));
  parallel::parallel_for(0, batch, 1, [&](int64_t n_begin, int64_t n_end) {
    for (int64_t n = n_begin; n < n_end; ++n) {
      per_sample[static_cast<size_t>(n)] =
          1.0 - sample_ssim(prediction.data() + n * dim, target.data() + n * dim, nullptr);
    }
  });
  double acc = 0.0;
  for (int64_t n = 0; n < batch; ++n) acc += per_sample[static_cast<size_t>(n)];
  return acc / static_cast<double>(batch);
}

Tensor SsimLoss::gradient(const Tensor& prediction, const Tensor& target) const {
  validate_batch(prediction, target);
  const int64_t batch = prediction.dim(0);
  const int64_t dim = height_ * width_;
  // grad of L = (1/B) sum (1 - meanSSIM) is -(1/B) * dmeanSSIM/dy. Each
  // sample writes a disjoint row of `grad`, so the batch fans out cleanly.
  Tensor grad(prediction.shape());
  const float scale = -1.0f / static_cast<float>(batch);
  parallel::parallel_for(0, batch, 1, [&](int64_t n_begin, int64_t n_end) {
    std::vector<float> sample_grad(static_cast<size_t>(dim));
    for (int64_t n = n_begin; n < n_end; ++n) {
      std::fill(sample_grad.begin(), sample_grad.end(), 0.0f);
      sample_ssim(prediction.data() + n * dim, target.data() + n * dim, sample_grad.data());
      float* out = grad.data() + n * dim;
      for (int64_t k = 0; k < dim; ++k) out[k] = scale * sample_grad[static_cast<size_t>(k)];
    }
  });
  return grad;
}

double SsimLoss::mean_ssim(const Tensor& prediction_row, const Tensor& target_row) const {
  if (prediction_row.numel() != height_ * width_ || target_row.numel() != height_ * width_) {
    throw std::invalid_argument("SsimLoss::mean_ssim: expected " + std::to_string(height_ * width_) +
                                " elements");
  }
  return sample_ssim(prediction_row.data(), target_row.data(), nullptr);
}

}  // namespace salnov::nn
