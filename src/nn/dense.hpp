// Fully-connected layer: y = x W + b.
//
// The bias add is fused into the GEMM epilogue, and inference forwards with
// batch > 1 use weight panels pre-packed for the SIMD kernel. Packing is
// lazy (first kInfer forward) and invalidated by Parameter::version, which
// every weight mutation (optimizer step, fault injection) bumps. The lazy
// pack is guarded by a mutex so concurrent inference-mode forwards — the
// detector's batch fan-out — stay safe; concurrent training and inference
// on the same layer remain unsupported, as before.
#pragma once

#include <atomic>
#include <mutex>

#include "nn/layer.hpp"
#include "tensor/pack.hpp"
#include "tensor/rng.hpp"

namespace salnov::nn {

class Dense : public Layer {
 public:
  /// He-uniform initialized dense layer mapping `in_features` -> `out_features`.
  Dense(int64_t in_features, int64_t out_features, Rng& rng);

  /// Constructs from explicit weights (used by model loading and tests).
  /// `weight` must be [in_features, out_features], `bias` [out_features].
  Dense(Tensor weight, Tensor bias);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string type_name() const override { return "dense"; }
  Shape output_shape(const Shape& input) const override;
  void save_config(std::ostream& os) const override;

  /// Inference forward with the following ReLU fused into the GEMM
  /// epilogue (used by Sequential in inference mode). Bit-identical to
  /// forward(kInfer) followed by a ReLU layer.
  Tensor forward_infer_fused_relu(const Tensor& input) { return run_forward(input, Mode::kInfer, true); }

  int64_t in_features() const { return weight_.value.dim(0); }
  int64_t out_features() const { return weight_.value.dim(1); }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

 private:
  Tensor run_forward(const Tensor& input, Mode mode, bool fuse_relu);

  /// Pre-packed weight panels for the SIMD kernel, or nullptr when packing
  /// is off, the scalar kernel is active, or the shape cannot use panels
  /// (batch 1 takes the matvec path). Thread-safe; repacks when
  /// weight_.version moved.
  const PackedMatrix* packed_weights(int64_t batch);

  Parameter weight_;  ///< [in, out]
  Parameter bias_;    ///< [out]
  Tensor cached_input_;
  bool have_cache_ = false;

  std::mutex pack_mutex_;
  std::atomic<uint64_t> packed_version_{0};  ///< weight version + 1; 0 = not packed
  PackedMatrix packed_weight_;
};

}  // namespace salnov::nn
