// Fully-connected layer: y = x W + b.
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace salnov::nn {

class Dense : public Layer {
 public:
  /// He-uniform initialized dense layer mapping `in_features` -> `out_features`.
  Dense(int64_t in_features, int64_t out_features, Rng& rng);

  /// Constructs from explicit weights (used by model loading and tests).
  /// `weight` must be [in_features, out_features], `bias` [out_features].
  Dense(Tensor weight, Tensor bias);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string type_name() const override { return "dense"; }
  Shape output_shape(const Shape& input) const override;
  void save_config(std::ostream& os) const override;

  int64_t in_features() const { return weight_.value.dim(0); }
  int64_t out_features() const { return weight_.value.dim(1); }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

 private:
  Parameter weight_;  ///< [in, out]
  Parameter bias_;    ///< [out]
  Tensor cached_input_;
  bool have_cache_ = false;
};

}  // namespace salnov::nn
