// 2-D convolution layer (im2col + GEMM).
//
// Layout: inputs and outputs are [batch, channels, height, width]; weights
// are [out_channels, in_channels, kernel_h, kernel_w]. Stride is uniform in
// both spatial dimensions; padding is symmetric zero padding. PilotNet uses
// valid (pad = 0) convolutions with stride 2 (5x5 kernels) and stride 1
// (3x3 kernels), both of which this layer covers.
//
// The per-sample im2col/col2im buffers come from the calling thread's
// workspace arena (zero heap allocations after warm-up), the bias add is
// fused into the GEMM epilogue, and inference forwards reuse the weight
// matrix pre-packed into micro-kernel panels (lazy, invalidated via
// Parameter::version).
#pragma once

#include <atomic>
#include <mutex>

#include "nn/layer.hpp"
#include "tensor/pack.hpp"
#include "tensor/rng.hpp"

namespace salnov::nn {

struct Conv2dConfig {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t padding = 0;
};

class Conv2d : public Layer {
 public:
  /// He-uniform initialized convolution.
  Conv2d(const Conv2dConfig& config, Rng& rng);

  /// Constructs from explicit weights: weight [out_c, in_c, kh, kw],
  /// bias [out_c] (used by model loading and tests).
  Conv2d(const Conv2dConfig& config, Tensor weight, Tensor bias);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string type_name() const override { return "conv2d"; }
  Shape output_shape(const Shape& input) const override;
  void save_config(std::ostream& os) const override;

  /// Inference forward with the following ReLU fused into the GEMM
  /// epilogue (used by Sequential in inference mode). Bit-identical to
  /// forward(kInfer) followed by a ReLU layer.
  Tensor forward_infer_fused_relu(const Tensor& input) {
    return run_forward(input, Mode::kInfer, true);
  }

  const Conv2dConfig& config() const { return config_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

  /// Output spatial size for a given input spatial size.
  int64_t out_size(int64_t in_size, int64_t kernel) const;

 private:
  void validate_config() const;

  Tensor run_forward(const Tensor& input, Mode mode, bool fuse_relu);

  /// Pre-packed weight panels ([out_c, patch] as GEMM A) for the SIMD
  /// kernel, or nullptr when unavailable. Thread-safe; repacks when
  /// weight_.version moved.
  const PackedMatrix* packed_weights();

  /// Fills `cols` ([in_c * kh * kw, out_h * out_w]) with the unrolled
  /// patches of one sample `x` ([in_c, in_h, in_w] flat).
  void im2col(const float* x, int64_t in_h, int64_t in_w, int64_t out_h, int64_t out_w,
              float* cols) const;

  /// Scatter-adds column gradients back into one sample's input gradient.
  void col2im(const float* cols, int64_t in_h, int64_t in_w, int64_t out_h, int64_t out_w,
              float* grad_x) const;

  Conv2dConfig config_;
  Parameter weight_;  ///< [out_c, in_c, kh, kw]
  Parameter bias_;    ///< [out_c]
  Tensor cached_input_;
  bool have_cache_ = false;

  std::mutex pack_mutex_;
  std::atomic<uint64_t> packed_version_{0};  ///< weight version + 1; 0 = not packed
  PackedMatrix packed_weight_;
};

}  // namespace salnov::nn
