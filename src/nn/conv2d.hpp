// 2-D convolution layer (im2col + GEMM).
//
// Layout: inputs and outputs are [batch, channels, height, width]; weights
// are [out_channels, in_channels, kernel_h, kernel_w]. Stride is uniform in
// both spatial dimensions; padding is symmetric zero padding. PilotNet uses
// valid (pad = 0) convolutions with stride 2 (5x5 kernels) and stride 1
// (3x3 kernels), both of which this layer covers.
#pragma once

#include "nn/layer.hpp"
#include "tensor/rng.hpp"

namespace salnov::nn {

struct Conv2dConfig {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t padding = 0;
};

class Conv2d : public Layer {
 public:
  /// He-uniform initialized convolution.
  Conv2d(const Conv2dConfig& config, Rng& rng);

  /// Constructs from explicit weights: weight [out_c, in_c, kh, kw],
  /// bias [out_c] (used by model loading and tests).
  Conv2d(const Conv2dConfig& config, Tensor weight, Tensor bias);

  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string type_name() const override { return "conv2d"; }
  Shape output_shape(const Shape& input) const override;
  void save_config(std::ostream& os) const override;

  const Conv2dConfig& config() const { return config_; }
  const Parameter& weight() const { return weight_; }

  /// Output spatial size for a given input spatial size.
  int64_t out_size(int64_t in_size, int64_t kernel) const;

 private:
  void validate_config() const;

  /// Fills `cols` ([in_c * kh * kw, out_h * out_w]) with the unrolled
  /// patches of one sample `x` ([in_c, in_h, in_w] flat).
  void im2col(const float* x, int64_t in_h, int64_t in_w, int64_t out_h, int64_t out_w,
              float* cols) const;

  /// Scatter-adds column gradients back into one sample's input gradient.
  void col2im(const float* cols, int64_t in_h, int64_t in_w, int64_t out_h, int64_t out_w,
              float* grad_x) const;

  Conv2dConfig config_;
  Parameter weight_;  ///< [out_c, in_c, kh, kw]
  Parameter bias_;    ///< [out_c]
  Tensor cached_input_;
  bool have_cache_ = false;
};

}  // namespace salnov::nn
