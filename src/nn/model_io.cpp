#include "nn/model_io.hpp"

#include <sstream>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"
#include "tensor/serialize.hpp"

namespace salnov::nn {
namespace {

constexpr const char* kMagic = "salnov-model";
constexpr uint32_t kVersion = 1;

std::unique_ptr<Layer> make_layer(const std::string& type, std::istream& is) {
  if (type == "dense") {
    const int64_t in = read_i64(is);
    const int64_t out = read_i64(is);
    return std::make_unique<Dense>(Tensor::zeros({in, out}), Tensor::zeros({out}));
  }
  if (type == "conv2d") {
    Conv2dConfig config;
    config.in_channels = read_i64(is);
    config.out_channels = read_i64(is);
    config.kernel_h = read_i64(is);
    config.kernel_w = read_i64(is);
    config.stride = read_i64(is);
    config.padding = read_i64(is);
    return std::make_unique<Conv2d>(
        config,
        Tensor::zeros({config.out_channels, config.in_channels, config.kernel_h, config.kernel_w}),
        Tensor::zeros({config.out_channels}));
  }
  if (type == "relu") return std::make_unique<ReLU>();
  if (type == "sigmoid") return std::make_unique<Sigmoid>();
  if (type == "tanh") return std::make_unique<Tanh>();
  if (type == "flatten") return std::make_unique<Flatten>();
  if (type == "batchnorm") {
    const int64_t features = read_i64(is);
    const double momentum = read_f64(is);
    const double epsilon = read_f64(is);
    auto layer = std::make_unique<BatchNorm>(features, momentum, epsilon);
    Tensor mean = read_tensor(is);
    Tensor var = read_tensor(is);
    layer->set_running_stats(std::move(mean), std::move(var));
    return layer;
  }
  if (type == "dropout") {
    const double probability = read_f64(is);
    // The mask stream is training-only state; a loaded model gets a fresh
    // deterministic stream (inference behaviour is unaffected).
    Rng rng(0x5eed);
    return std::make_unique<Dropout>(probability, rng);
  }
  if (type == "maxpool2d") {
    const int64_t kernel = read_i64(is);
    const int64_t stride = read_i64(is);
    return std::make_unique<MaxPool2d>(kernel, stride);
  }
  throw SerializationError("load_model: unknown layer type '" + type + "'");
}

}  // namespace

void save_model(std::ostream& os, Sequential& model) {
  write_header(os, kMagic, kVersion);
  write_u32(os, static_cast<uint32_t>(model.size()));
  for (size_t i = 0; i < model.size(); ++i) {
    Layer& layer = model.layer(i);
    write_string(os, layer.type_name());
    layer.save_config(os);
    const auto params = layer.parameters();
    write_u32(os, static_cast<uint32_t>(params.size()));
    for (const Parameter* p : params) {
      write_string(os, p->name);
      write_tensor(os, p->value);
    }
  }
}

void save_model_file(const std::string& path, Sequential& model) {
  save_file_checked(path, [&](std::ostream& os) { save_model(os, model); });
}

Sequential load_model(std::istream& is) {
  read_header(is, kMagic, kVersion);
  const uint32_t layer_count = read_u32(is);
  Sequential model;
  for (uint32_t i = 0; i < layer_count; ++i) {
    const std::string type = read_string(is);
    auto layer = make_layer(type, is);
    const uint32_t param_count = read_u32(is);
    const auto params = layer->parameters();
    if (param_count != params.size()) {
      throw SerializationError("load_model: layer '" + type + "' expects " +
                               std::to_string(params.size()) + " parameters, file has " +
                               std::to_string(param_count));
    }
    for (Parameter* p : params) {
      const std::string name = read_string(is);
      Tensor value = read_tensor(is);
      if (name != p->name) {
        throw SerializationError("load_model: parameter name mismatch: '" + name + "' vs '" + p->name +
                                 "'");
      }
      if (value.shape() != p->value.shape()) {
        throw SerializationError("load_model: parameter shape mismatch for '" + name + "'");
      }
      p->value = std::move(value);
      p->grad = Tensor::zeros(p->value.shape());
    }
    model.add(std::move(layer));
  }
  return model;
}

Sequential load_model_file(const std::string& path) {
  std::istringstream is(load_file_checked(path), std::ios::binary);
  return load_model(is);
}

}  // namespace salnov::nn
