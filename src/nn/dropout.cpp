#include "nn/dropout.hpp"

#include <ostream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace salnov::nn {

Dropout::Dropout(double probability, Rng& rng) : probability_(probability), rng_(rng.split()) {
  if (probability < 0.0 || probability >= 1.0) {
    throw std::invalid_argument("Dropout: probability must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input, Mode mode) {
  // Inference must not touch members: concurrent kInfer forwards through a
  // shared model (the detector's scoring fan-out) rely on it being
  // read-only, per the Layer contract.
  if (mode == Mode::kInfer) return input;
  if (probability_ == 0.0) {
    mask_ = Tensor::ones(input.shape());
    have_cache_ = true;
    return input;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - probability_));
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (int64_t i = 0; i < input.numel(); ++i) {
    const float m = rng_.bernoulli(probability_) ? 0.0f : keep_scale;
    mask_[i] = m;
    out[i] *= m;
  }
  have_cache_ = true;
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "Dropout");
  if (grad_output.shape() != mask_.shape()) {
    throw std::invalid_argument("Dropout::backward: grad shape mismatch");
  }
  Tensor grad = grad_output;
  grad *= mask_;
  return grad;
}

void Dropout::save_config(std::ostream& os) const {
  write_f64(os, probability_);
}

}  // namespace salnov::nn
