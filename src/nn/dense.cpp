#include "nn/dense.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/serialize.hpp"

namespace salnov::nn {

Dense::Dense(int64_t in_features, int64_t out_features, Rng& rng) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: feature counts must be positive");
  }
  // He-uniform: bound = sqrt(6 / fan_in); well-suited to the ReLU chains
  // used in both PilotNet and the autoencoder.
  const double bound = std::sqrt(6.0 / static_cast<double>(in_features));
  weight_ = Parameter("weight", rng.uniform_tensor({in_features, out_features}, -bound, bound));
  bias_ = Parameter("bias", Tensor::zeros({out_features}));
}

Dense::Dense(Tensor weight, Tensor bias) {
  if (weight.rank() != 2 || bias.rank() != 1 || bias.dim(0) != weight.dim(1)) {
    throw std::invalid_argument("Dense: weight must be [in, out] and bias [out]");
  }
  weight_ = Parameter("weight", std::move(weight));
  bias_ = Parameter("bias", std::move(bias));
}

Shape Dense::output_shape(const Shape& input) const {
  if (input.size() != 2 || input[1] != in_features()) {
    throw std::invalid_argument("Dense: expected input [batch, " + std::to_string(in_features()) +
                                "], got " + shape_to_string(input));
  }
  return {input[0], out_features()};
}

const PackedMatrix* Dense::packed_weights(int64_t batch) {
  // Batch-1 inference takes the matvec path, which streams the row-major
  // weight directly; panels would go unused.
  if (batch <= 1 || !gemm_weight_packing_enabled() || active_gemm_kernel() != GemmKernel::kSimd) {
    return nullptr;
  }
  const uint64_t want = weight_.version + 1;
  if (packed_version_.load(std::memory_order_acquire) != want) {
    std::lock_guard<std::mutex> lock(pack_mutex_);
    if (packed_version_.load(std::memory_order_relaxed) != want) {
      packed_weight_ = pack_b_panels(weight_.value.data(), in_features(), out_features());
      packed_version_.store(want, std::memory_order_release);
    }
  }
  return &packed_weight_;
}

Tensor Dense::run_forward(const Tensor& input, Mode mode, bool fuse_relu) {
  output_shape(input.shape());  // validates
  const int64_t batch = input.dim(0);
  Tensor out({batch, out_features()});
  GemmEpilogue epilogue;
  epilogue.bias_col = bias_.value.data();
  epilogue.relu = fuse_relu;
  const PackedMatrix* packed = mode == Mode::kInfer ? packed_weights(batch) : nullptr;
  gemm_ex(input.data(), weight_.value.data(), out.data(), batch, out_features(), in_features(),
          epilogue, nullptr, packed);
  if (mode == Mode::kTrain) {
    cached_input_ = input;
    have_cache_ = true;
  }
  return out;
}

Tensor Dense::forward(const Tensor& input, Mode mode) { return run_forward(input, mode, false); }

Tensor Dense::backward(const Tensor& grad_output) {
  require_forward_cache(have_cache_, "Dense");
  const int64_t batch = cached_input_.dim(0);
  if (grad_output.shape() != Shape{batch, out_features()}) {
    throw std::invalid_argument("Dense::backward: grad shape " + shape_to_string(grad_output.shape()) +
                                " does not match output [batch, out]");
  }

  // dW += x^T g, fed transposed straight from the row-major cache (no
  // materialized x^T copy on the training hot loop).
  gemm_tn_accumulate(cached_input_.data(), grad_output.data(), weight_.grad.data(), in_features(),
                     out_features(), batch);

  // db += sum over batch of g.
  for (int64_t n = 0; n < batch; ++n) {
    const float* row = grad_output.data() + n * out_features();
    for (int64_t j = 0; j < out_features(); ++j) bias_.grad[j] += row[j];
  }

  // dx = g W^T, with W consumed row-major as the transposed operand.
  Tensor grad_input({batch, in_features()});
  gemm_nt_accumulate(grad_output.data(), weight_.value.data(), grad_input.data(), batch,
                     in_features(), out_features());
  return grad_input;
}

void Dense::save_config(std::ostream& os) const {
  write_i64(os, in_features());
  write_i64(os, out_features());
}

}  // namespace salnov::nn
