#include "nn/sequential.hpp"

#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace salnov::nn {

namespace {

// In inference mode a Dense/Conv2d immediately followed by a ReLU can run
// with the ReLU fused into the GEMM epilogue. max(v, 0) at the store is
// bit-identical to a separate ReLU pass, so fusion is purely a perf change.
// Returns true (and writes `out`) if layers [i, i+1] were fused.
bool try_fused_infer(const std::vector<std::unique_ptr<Layer>>& layers, size_t i,
                     const Tensor& input, Tensor& out) {
  if (i + 1 >= layers.size() || layers[i + 1]->type_name() != "relu") return false;
  if (auto* dense = dynamic_cast<Dense*>(layers[i].get())) {
    out = dense->forward_infer_fused_relu(input);
    return true;
  }
  if (auto* conv = dynamic_cast<Conv2d*>(layers[i].get())) {
    out = conv->forward_infer_fused_relu(input);
    return true;
  }
  return false;
}

}  // namespace

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, Mode mode) {
  Tensor current = input;
  if (mode == Mode::kInfer) {
    for (size_t i = 0; i < layers_.size(); ++i) {
      Tensor fused;
      if (try_fused_infer(layers_, i, current, fused)) {
        current = std::move(fused);
        ++i;  // the ReLU ran inside the GEMM epilogue
      } else {
        current = layers_[i]->forward(current, mode);
      }
    }
    return current;
  }
  for (auto& layer : layers_) current = layer->forward(current, mode);
  return current;
}

std::vector<Tensor> Sequential::forward_collect(const Tensor& input) const {
  std::vector<Tensor> activations;
  activations.reserve(layers_.size());
  Tensor current = input;
  for (const auto& layer : layers_) {
    // forward() is non-const on Layer because of training caches; inference
    // mode leaves caches untouched, making this call logically const.
    current = const_cast<Layer&>(*layer).forward(current, Mode::kInfer);
    activations.push_back(current);
  }
  return activations;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

Shape Sequential::output_shape(Shape input) const {
  for (const auto& layer : layers_) input = layer->output_shape(input);
  return input;
}

int64_t Sequential::parameter_count() { return nn::parameter_count(parameters()); }

}  // namespace salnov::nn
