#include "nn/sequential.hpp"

#include <stdexcept>

namespace salnov::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, Mode mode) {
  Tensor current = input;
  for (auto& layer : layers_) current = layer->forward(current, mode);
  return current;
}

std::vector<Tensor> Sequential::forward_collect(const Tensor& input) const {
  std::vector<Tensor> activations;
  activations.reserve(layers_.size());
  Tensor current = input;
  for (const auto& layer : layers_) {
    // forward() is non-const on Layer because of training caches; inference
    // mode leaves caches untouched, making this call logically const.
    current = const_cast<Layer&>(*layer).forward(current, Mode::kInfer);
    activations.push_back(current);
  }
  return activations;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

Shape Sequential::output_shape(Shape input) const {
  for (const auto& layer : layers_) input = layer->output_shape(input);
  return input;
}

int64_t Sequential::parameter_count() { return nn::parameter_count(parameters()); }

}  // namespace salnov::nn
