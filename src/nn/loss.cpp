#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace salnov::nn {

void Loss::require_same_shape(const Tensor& prediction, const Tensor& target, const char* loss) {
  if (prediction.shape() != target.shape()) {
    throw std::invalid_argument(std::string(loss) + ": prediction " + shape_to_string(prediction.shape()) +
                                " vs target " + shape_to_string(target.shape()));
  }
  if (prediction.numel() == 0) {
    throw std::invalid_argument(std::string(loss) + ": empty tensors");
  }
}

double MseLoss::value(const Tensor& prediction, const Tensor& target) const {
  require_same_shape(prediction, target, "MseLoss");
  double acc = 0.0;
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    const double d = static_cast<double>(prediction[i]) - static_cast<double>(target[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(prediction.numel());
}

Tensor MseLoss::gradient(const Tensor& prediction, const Tensor& target) const {
  require_same_shape(prediction, target, "MseLoss");
  const float scale = 2.0f / static_cast<float>(prediction.numel());
  Tensor grad = prediction;
  grad -= target;
  grad *= scale;
  return grad;
}

double L1Loss::value(const Tensor& prediction, const Tensor& target) const {
  require_same_shape(prediction, target, "L1Loss");
  double acc = 0.0;
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    acc += std::abs(static_cast<double>(prediction[i]) - static_cast<double>(target[i]));
  }
  return acc / static_cast<double>(prediction.numel());
}

Tensor L1Loss::gradient(const Tensor& prediction, const Tensor& target) const {
  require_same_shape(prediction, target, "L1Loss");
  const float scale = 1.0f / static_cast<float>(prediction.numel());
  Tensor grad(prediction.shape());
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    const float d = prediction[i] - target[i];
    grad[i] = d > 0.0f ? scale : (d < 0.0f ? -scale : 0.0f);
  }
  return grad;
}

double BceLoss::value(const Tensor& prediction, const Tensor& target) const {
  require_same_shape(prediction, target, "BceLoss");
  const double eps = epsilon_;
  double acc = 0.0;
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    const double p = std::clamp(static_cast<double>(prediction[i]), eps, 1.0 - eps);
    const double t = target[i];
    acc += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
  }
  return acc / static_cast<double>(prediction.numel());
}

Tensor BceLoss::gradient(const Tensor& prediction, const Tensor& target) const {
  require_same_shape(prediction, target, "BceLoss");
  const double eps = epsilon_;
  const double scale = 1.0 / static_cast<double>(prediction.numel());
  Tensor grad(prediction.shape());
  for (int64_t i = 0; i < prediction.numel(); ++i) {
    const double p = std::clamp(static_cast<double>(prediction[i]), eps, 1.0 - eps);
    const double t = target[i];
    grad[i] = static_cast<float>(scale * (p - t) / (p * (1.0 - p)));
  }
  return grad;
}

}  // namespace salnov::nn
