// Flatten: [batch, ...] -> [batch, product-of-rest]. Bridges the conv stack
// to the dense head of the steering network.
#pragma once

#include "nn/layer.hpp"

namespace salnov::nn {

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "flatten"; }
  Shape output_shape(const Shape& input) const override;
  void save_config(std::ostream&) const override {}

 private:
  Shape cached_input_shape_;
  bool have_cache_ = false;
};

}  // namespace salnov::nn
