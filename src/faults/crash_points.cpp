#include "faults/crash_points.hpp"

#include <array>
#include <atomic>

namespace salnov::faults {
namespace {

std::atomic<int> g_armed{-1};  ///< CrashPoint value, or -1 for disarmed
std::array<std::atomic<int64_t>, kCrashPointCount> g_passes{};

}  // namespace

const char* crash_point_name(CrashPoint point) {
  switch (point) {
    case CrashPoint::kSwapBeforeTempWrite:
      return "swap-before-temp-write";
    case CrashPoint::kSwapAfterTempWrite:
      return "swap-after-temp-write";
    case CrashPoint::kSwapAfterRename:
      return "swap-after-rename";
  }
  return "unknown";
}

void arm_crash_point(CrashPoint point) {
  g_armed.store(static_cast<int>(point), std::memory_order_release);
}

void disarm_crash_points() { g_armed.store(-1, std::memory_order_release); }

void hit_crash_point(CrashPoint point) {
  g_passes[static_cast<size_t>(point)].fetch_add(1, std::memory_order_relaxed);
  if (g_armed.load(std::memory_order_acquire) == static_cast<int>(point)) {
    throw InjectedCrash(std::string("injected crash at ") + crash_point_name(point));
  }
}

int64_t crash_point_passes(CrashPoint point) {
  return g_passes[static_cast<size_t>(point)].load(std::memory_order_relaxed);
}

}  // namespace salnov::faults
