// Fault injection: deterministic camera- and model-fault models.
//
// The paper's noise experiment (Fig. 7) perturbs frames with ad-hoc
// Gaussian noise; real sensor failures are richer — cameras freeze, frames
// drop to black, rolling shutters tear, exposure control saturates, lenses
// get occluded. FaultInjector packages those failure modes as composable,
// seedable transforms with one `severity` knob each (0 = identity,
// 1 = worst case), so the detector's robustness can be characterized as a
// fault-type x severity matrix (bench_fault_matrix) instead of a single
// noise sweep. A weight-corruption injector (random bit-flips in Sequential
// parameters) plays the same role for *model* faults.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "image/image.hpp"
#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace salnov::faults {

enum class CameraFault {
  kFrozenFrame,    ///< the previous frame bleeds through / replaces this one
  kDroppedFrame,   ///< signal fades to black (severity 1 = fully black)
  kSaltPepper,     ///< impulse noise on a severity-scaled pixel fraction
  kBandTearing,    ///< a horizontal band is sheared sideways (readout tear)
  kOverExposure,   ///< gain + bias push pixels into white saturation
  kUnderExposure,  ///< gain collapse toward black
  kOcclusion,      ///< opaque rectangle (lens obstruction), grows with severity
  kGaussianBlur,   ///< defocus; separable Gaussian, sigma scales with severity
};

/// Stable tag for tables and CSV artifacts ("frozen-frame", ...).
const char* camera_fault_name(CameraFault fault);

/// Every camera fault, in declaration order (for sweeps).
const std::vector<CameraFault>& all_camera_faults();

/// One fault with its severity in [0, 1].
struct FaultSpec {
  CameraFault fault;
  double severity = 0.5;
};

/// Deterministic, seedable fault source. All randomness (impulse positions,
/// tear row, occlusion center) comes from the owned Rng, and every fault
/// draws the same number of variates regardless of severity, so two
/// injectors with equal seeds produce bit-identical streams and severity
/// sweeps at a fixed seed are nested (monotone in distortion).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  /// Applies one fault. kFrozenFrame is stateful: the frame buffer updates
  /// on healthy captures (severity 0, or the first/size-changing frame) and
  /// sticks while the fault is active, so a severity-1 stream repeats the
  /// last healthy frame bit-identically. apply() calls should follow the
  /// camera's frame order. Throws std::invalid_argument unless severity is
  /// finite and in [0, 1]. Severity 0 returns the frame unchanged.
  Image apply(CameraFault fault, double severity, const Image& frame);
  Image apply(const FaultSpec& spec, const Image& frame) {
    return apply(spec.fault, spec.severity, frame);
  }

  /// Applies a fault chain left to right (faults compose: e.g. an
  /// under-exposed, blurred, torn frame).
  Image apply_all(const std::vector<FaultSpec>& chain, const Image& frame);

  /// Reseeds the stream and forgets the stale frame.
  void reset(uint64_t seed);

 private:
  Rng rng_;
  std::optional<Image> stale_;  ///< last frame seen (kFrozenFrame state)
};

/// Model-fault injector: flips `flips` uniformly random bits across the
/// model's parameter tensors (the classic single-event-upset model). The
/// same (element, bit) pair may be drawn twice, un-flipping it. Returns the
/// number of flips performed (0 for a parameterless model).
int64_t flip_weight_bits(nn::Sequential& model, int64_t flips, Rng& rng);

}  // namespace salnov::faults
