// Crash-point injection around crash-safe persistence.
//
// The threshold hot-swap path persists a new ThresholdSet through the
// temp-file + atomic-rename protocol before exposing it to the scorer. The
// safety claim — a crash at ANY instant leaves the served threshold file
// either the complete old set or the complete new one, never torn — is only
// a claim until something actually crashes there. This module plants named
// crash points along the swap path; a test arms one, the next pass through
// it throws InjectedCrash (a stand-in for the process dying), and the test
// then proves the file on disk still loads.
//
// Arming is process-wide and sticky until disarmed. The armed flag is an
// atomic so a point may be armed from a test thread while a worker thread
// runs the swap; hit counters are also atomic for the same reason.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace salnov::faults {

/// The instants along the threshold hot-swap persistence path where a crash
/// is injectable. Order mirrors the swap sequence.
enum class CrashPoint : int {
  kSwapBeforeTempWrite = 0,  ///< before any byte is written
  kSwapAfterTempWrite,       ///< temp file complete, rename not yet done
  kSwapAfterRename,          ///< new file in place, live pointer not yet exchanged
};

inline constexpr int kCrashPointCount = 3;

const char* crash_point_name(CrashPoint point);

/// Thrown at an armed crash point. Deliberately NOT a SerializationError:
/// callers must treat it as "the process died here", not as a format issue.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what) : std::runtime_error(what) {}
};

/// Arms `point`: every subsequent hit_crash_point(point) throws until
/// disarm_crash_points() runs. Only one point is armed at a time.
void arm_crash_point(CrashPoint point);

/// Disarms whatever is armed (idempotent).
void disarm_crash_points();

/// Called by instrumented code at each milestone. Counts the pass, then
/// throws InjectedCrash when `point` is armed.
void hit_crash_point(CrashPoint point);

/// How many times `point` has been passed (armed or not) since process
/// start. Lets tests assert a code path actually reached the milestone.
int64_t crash_point_passes(CrashPoint point);

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor so a failed EXPECT cannot leak an armed point into the next
/// test.
class ScopedCrashPoint {
 public:
  explicit ScopedCrashPoint(CrashPoint point) { arm_crash_point(point); }
  ~ScopedCrashPoint() { disarm_crash_points(); }
  ScopedCrashPoint(const ScopedCrashPoint&) = delete;
  ScopedCrashPoint& operator=(const ScopedCrashPoint&) = delete;
};

}  // namespace salnov::faults
