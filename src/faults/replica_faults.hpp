// Replica-fault injection: deterministic failure schedules for cluster replicas.
//
// The timing-fault injector corrupts a single pipeline's *stages*; this one
// corrupts whole *replicas* of a ServingCluster. A ReplicaFaultSchedule is a
// pure function of (replica, kind, now_ns): it answers "is this replica
// crashed / hung / slowed / weight-corrupted at this instant". The cluster's
// workers and watchdog consult the schedule against the shared Clock, so two
// runs with the same schedule and the same arrival timestamps produce
// identical quarantine/failover/restore traces — which is what lets chaos
// runs be recorded and replayed bit-exactly (trace format v4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace salnov::faults {

/// What a scheduled replica fault does while active.
enum class ReplicaFaultKind : int {
  kCrash = 0,        ///< replica seals no batches; queued frames strand until failover
  kHang = 1,         ///< same outage as kCrash but models a stuck (not dead) worker
  kSlow = 2,         ///< each sealed batch costs an extra slow_penalty_ns
  kWeightCorrupt = 3 ///< canary clone has weight_bits bits flipped; batched compute withheld
};

const char* replica_fault_kind_name(ReplicaFaultKind kind);

/// One scheduled replica fault, active over [start_ns, end_ns).
struct ReplicaFault {
  int64_t replica = 0;
  ReplicaFaultKind kind = ReplicaFaultKind::kCrash;
  int64_t start_ns = 0;
  int64_t end_ns = 0;           ///< exclusive
  int64_t slow_penalty_ns = 0;  ///< kSlow only: extra latency per sealed batch
  int64_t weight_bits = 0;      ///< kWeightCorrupt only: bits flipped in the canary clone
  uint64_t seed = 1;            ///< kWeightCorrupt only: Rng seed for flip_weight_bits
};

/// A set of scheduled replica faults with point-in-time queries. Purely
/// passive: the cluster decides what an active fault *means* (skip sealing,
/// add latency, fail the canary); the schedule only answers what is active.
class ReplicaFaultSchedule {
 public:
  /// Adds one fault. Throws std::invalid_argument on a negative replica,
  /// an inverted or negative time window, or negative penalty/bit counts.
  void add(const ReplicaFault& fault);

  /// First fault of `kind` active on `replica` at `now_ns`, else nullptr.
  const ReplicaFault* active_of_kind(int64_t replica, ReplicaFaultKind kind,
                                     int64_t now_ns) const;

  /// Total slow-batch penalty active on `replica` at `now_ns` (sums
  /// overlapping kSlow windows). Zero when nothing matches.
  int64_t slow_penalty_ns(int64_t replica, int64_t now_ns) const;

  /// True when any fault of any kind is active on `replica` at `now_ns`.
  bool any_active(int64_t replica, int64_t now_ns) const;

  /// True when the replica is in an outage (kCrash or kHang) at `now_ns`.
  bool outage_active(int64_t replica, int64_t now_ns) const;

  const std::vector<ReplicaFault>& faults() const { return faults_; }

  void clear() { faults_.clear(); }
  bool empty() const { return faults_.empty(); }
  size_t size() const { return faults_.size(); }

 private:
  std::vector<ReplicaFault> faults_;
};

}  // namespace salnov::faults
