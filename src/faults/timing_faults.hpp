// Timing-fault injection: deterministic per-stage stalls and spikes.
//
// The camera-fault injector corrupts *pixels*; this injector corrupts
// *time*. A serving pipeline's watchdog and degraded-mode ladder react to
// stages blowing their wall-clock budgets, and those reactions must be
// testable without relying on a loaded CI machine to be slow in just the
// right way. A TimingFaultInjector is a pure schedule: for a (stage, frame)
// pair it answers "how much extra latency does this stage suffer on this
// frame", and the serving executor turns that answer into a real sleep
// (SteadyClock) or an instantaneous advance (FakeClock). No randomness:
// two runs of the same schedule produce identical overrun/fallback traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace salnov::faults {

/// One scheduled stall. `stage` is a pipeline stage index (the serving
/// layer's Stage enum values); the fault applies to frames in
/// [first_frame, last_frame] whose offset from first_frame is a multiple of
/// `period` (period 1 = a sustained stall, period N = a latency spike every
/// N-th frame).
struct TimingFault {
  int stage = 0;
  int64_t stall_ns = 0;
  int64_t first_frame = 0;
  int64_t last_frame = std::numeric_limits<int64_t>::max();  ///< inclusive
  int64_t period = 1;
};

class TimingFaultInjector {
 public:
  /// Adds one fault to the schedule. Throws std::invalid_argument on a
  /// negative stall, non-positive period, or an inverted frame range.
  void add(const TimingFault& fault);

  /// Total extra latency scheduled for `stage` on `frame` (sums overlapping
  /// faults). Zero when nothing matches.
  int64_t stall_ns(int stage, int64_t frame) const;

  void clear() { faults_.clear(); }
  bool empty() const { return faults_.empty(); }
  size_t size() const { return faults_.size(); }

 private:
  std::vector<TimingFault> faults_;
};

}  // namespace salnov::faults
