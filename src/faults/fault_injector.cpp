#include "faults/fault_injector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace salnov::faults {
namespace {

Image salt_pepper(Rng& rng, double severity, const Image& frame) {
  // One uniform draw per pixel regardless of severity: the flipped pixel
  // sets at p1 < p2 are nested for a fixed seed, which makes the severity
  // sweep monotone in distortion.
  const double p = 0.5 * severity;
  Image out = frame;
  for (int64_t i = 0; i < out.numel(); ++i) {
    const double u = rng.uniform();
    if (u < p / 2.0) {
      out.tensor()[i] = 0.0f;
    } else if (u >= 1.0 - p / 2.0) {
      out.tensor()[i] = 1.0f;
    }
  }
  return out;
}

Image band_tearing(Rng& rng, double severity, const Image& frame) {
  const int64_t h = frame.height();
  const int64_t w = frame.width();
  // The tear row is drawn even at severity 0 to keep the stream aligned.
  const int64_t y0 = rng.uniform_int(0, std::max<int64_t>(0, h - 1));
  if (severity <= 0.0) return frame;
  const int64_t band = std::min(h - y0, std::max<int64_t>(1, std::llround(severity * h / 2.0)));
  const int64_t dx = std::max<int64_t>(1, std::llround(severity * w / 2.0));
  Image out = frame;
  for (int64_t y = y0; y < y0 + band; ++y) {
    for (int64_t x = 0; x < w; ++x) out(y, x) = frame(y, (x + dx) % w);
  }
  return out;
}

Image exposure(double gain, double bias, const Image& frame) {
  Image out = frame;
  for (int64_t i = 0; i < out.numel(); ++i) {
    out.tensor()[i] =
        std::clamp(static_cast<float>(out.tensor()[i] * gain + bias), 0.0f, 1.0f);
  }
  return out;
}

Image occlusion(Rng& rng, double severity, const Image& frame) {
  const int64_t h = frame.height();
  const int64_t w = frame.width();
  const int64_t cy = rng.uniform_int(0, std::max<int64_t>(0, h - 1));
  const int64_t cx = rng.uniform_int(0, std::max<int64_t>(0, w - 1));
  if (severity <= 0.0) return frame;
  // Sides scale with sqrt(severity) so the *covered area* scales with
  // severity; a fixed center makes rectangles at increasing severity nested.
  const int64_t rh = std::max<int64_t>(1, std::llround(0.8 * h * std::sqrt(severity)));
  const int64_t rw = std::max<int64_t>(1, std::llround(0.8 * w * std::sqrt(severity)));
  const int64_t top = std::clamp<int64_t>(cy - rh / 2, 0, h - 1);
  const int64_t left = std::clamp<int64_t>(cx - rw / 2, 0, w - 1);
  const int64_t bottom = std::min(h, top + rh);
  const int64_t right = std::min(w, left + rw);
  Image out = frame;
  for (int64_t y = top; y < bottom; ++y) {
    for (int64_t x = left; x < right; ++x) out(y, x) = 0.0f;
  }
  return out;
}

Image gaussian_blur(double severity, const Image& frame) {
  const double sigma = 2.5 * severity;
  if (sigma < 1e-6) return frame;
  const int64_t radius = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(2.5 * sigma)));
  std::vector<float> kernel(static_cast<size_t>(2 * radius + 1));
  double norm = 0.0;
  for (int64_t k = -radius; k <= radius; ++k) {
    const double wgt = std::exp(-0.5 * (static_cast<double>(k) / sigma) * (static_cast<double>(k) / sigma));
    kernel[static_cast<size_t>(k + radius)] = static_cast<float>(wgt);
    norm += wgt;
  }
  for (float& wgt : kernel) wgt = static_cast<float>(wgt / norm);

  const int64_t h = frame.height();
  const int64_t w = frame.width();
  Image horizontal(h, w);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int64_t k = -radius; k <= radius; ++k) {
        acc += kernel[static_cast<size_t>(k + radius)] * frame.at_clamped(y, x + k);
      }
      horizontal(y, x) = acc;
    }
  }
  Image out(h, w);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int64_t k = -radius; k <= radius; ++k) {
        acc += kernel[static_cast<size_t>(k + radius)] * horizontal.at_clamped(y + k, x);
      }
      out(y, x) = acc;
    }
  }
  return out;
}

}  // namespace

const char* camera_fault_name(CameraFault fault) {
  switch (fault) {
    case CameraFault::kFrozenFrame:
      return "frozen-frame";
    case CameraFault::kDroppedFrame:
      return "dropped-frame";
    case CameraFault::kSaltPepper:
      return "salt-pepper";
    case CameraFault::kBandTearing:
      return "band-tearing";
    case CameraFault::kOverExposure:
      return "over-exposure";
    case CameraFault::kUnderExposure:
      return "under-exposure";
    case CameraFault::kOcclusion:
      return "occlusion";
    case CameraFault::kGaussianBlur:
      return "gaussian-blur";
  }
  return "unknown";
}

const std::vector<CameraFault>& all_camera_faults() {
  static const std::vector<CameraFault> faults = {
      CameraFault::kFrozenFrame,  CameraFault::kDroppedFrame, CameraFault::kSaltPepper,
      CameraFault::kBandTearing,  CameraFault::kOverExposure, CameraFault::kUnderExposure,
      CameraFault::kOcclusion,    CameraFault::kGaussianBlur,
  };
  return faults;
}

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::reset(uint64_t seed) {
  rng_ = Rng(seed);
  stale_.reset();
}

Image FaultInjector::apply(CameraFault fault, double severity, const Image& frame) {
  if (!std::isfinite(severity) || severity < 0.0 || severity > 1.0) {
    throw std::invalid_argument("FaultInjector: severity must be in [0, 1]");
  }
  if (frame.empty()) throw std::invalid_argument("FaultInjector: empty frame");

  switch (fault) {
    case CameraFault::kFrozenFrame: {
      Image out = frame;
      if (!stale_.has_value() || !stale_->same_size(frame) || severity <= 0.0) {
        // Healthy capture: the frame buffer updates normally.
        stale_ = frame;
      } else {
        // Stuck buffer: the stale frame does NOT update while the fault is
        // active, so at severity 1 the output repeats bit-identically —
        // what a frozen camera actually produces (not a one-frame lag).
        for (int64_t i = 0; i < out.numel(); ++i) {
          out.tensor()[i] = static_cast<float>(severity * stale_->tensor()[i] +
                                               (1.0 - severity) * frame.tensor()[i]);
        }
      }
      return out;
    }
    case CameraFault::kDroppedFrame: {
      Image out = frame;
      for (int64_t i = 0; i < out.numel(); ++i) {
        out.tensor()[i] = static_cast<float>(out.tensor()[i] * (1.0 - severity));
      }
      return out;
    }
    case CameraFault::kSaltPepper:
      return salt_pepper(rng_, severity, frame);
    case CameraFault::kBandTearing:
      return band_tearing(rng_, severity, frame);
    case CameraFault::kOverExposure:
      return exposure(1.0 + 3.0 * severity, 0.25 * severity, frame);
    case CameraFault::kUnderExposure:
      return exposure(1.0 - 0.95 * severity, 0.0, frame);
    case CameraFault::kOcclusion:
      return occlusion(rng_, severity, frame);
    case CameraFault::kGaussianBlur:
      return gaussian_blur(severity, frame);
  }
  throw std::logic_error("FaultInjector: unknown fault");
}

Image FaultInjector::apply_all(const std::vector<FaultSpec>& chain, const Image& frame) {
  Image out = frame;
  for (const FaultSpec& spec : chain) out = apply(spec, out);
  return out;
}

int64_t flip_weight_bits(nn::Sequential& model, int64_t flips, Rng& rng) {
  const auto params = model.parameters();
  int64_t total = 0;
  for (const nn::Parameter* p : params) total += p->value.numel();
  if (total == 0 || flips <= 0) return 0;

  for (int64_t f = 0; f < flips; ++f) {
    int64_t element = rng.uniform_int(0, total - 1);
    const int bit = static_cast<int>(rng.uniform_int(0, 31));
    for (nn::Parameter* p : params) {
      if (element < p->value.numel()) {
        float& value = p->value[element];
        value = std::bit_cast<float>(std::bit_cast<uint32_t>(value) ^ (1u << bit));
        p->bump_version();  // invalidate pre-packed inference weights
        break;
      }
      element -= p->value.numel();
    }
  }
  return flips;
}

}  // namespace salnov::faults
