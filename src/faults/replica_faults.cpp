#include "faults/replica_faults.hpp"

#include <stdexcept>

namespace salnov::faults {

const char* replica_fault_kind_name(ReplicaFaultKind kind) {
  switch (kind) {
    case ReplicaFaultKind::kCrash: return "crash";
    case ReplicaFaultKind::kHang: return "hang";
    case ReplicaFaultKind::kSlow: return "slow";
    case ReplicaFaultKind::kWeightCorrupt: return "weight_corrupt";
  }
  return "unknown";
}

void ReplicaFaultSchedule::add(const ReplicaFault& fault) {
  if (fault.replica < 0) {
    throw std::invalid_argument("ReplicaFaultSchedule: negative replica");
  }
  if (fault.start_ns < 0 || fault.end_ns <= fault.start_ns) {
    throw std::invalid_argument("ReplicaFaultSchedule: bad time window");
  }
  if (fault.slow_penalty_ns < 0) {
    throw std::invalid_argument("ReplicaFaultSchedule: negative slow penalty");
  }
  if (fault.weight_bits < 0) {
    throw std::invalid_argument("ReplicaFaultSchedule: negative weight bits");
  }
  faults_.push_back(fault);
}

const ReplicaFault* ReplicaFaultSchedule::active_of_kind(int64_t replica,
                                                         ReplicaFaultKind kind,
                                                         int64_t now_ns) const {
  for (const ReplicaFault& fault : faults_) {
    if (fault.replica != replica || fault.kind != kind) continue;
    if (now_ns < fault.start_ns || now_ns >= fault.end_ns) continue;
    return &fault;
  }
  return nullptr;
}

int64_t ReplicaFaultSchedule::slow_penalty_ns(int64_t replica, int64_t now_ns) const {
  int64_t total = 0;
  for (const ReplicaFault& fault : faults_) {
    if (fault.replica != replica || fault.kind != ReplicaFaultKind::kSlow) continue;
    if (now_ns < fault.start_ns || now_ns >= fault.end_ns) continue;
    total += fault.slow_penalty_ns;
  }
  return total;
}

bool ReplicaFaultSchedule::any_active(int64_t replica, int64_t now_ns) const {
  for (const ReplicaFault& fault : faults_) {
    if (fault.replica != replica) continue;
    if (now_ns < fault.start_ns || now_ns >= fault.end_ns) continue;
    return true;
  }
  return false;
}

bool ReplicaFaultSchedule::outage_active(int64_t replica, int64_t now_ns) const {
  return active_of_kind(replica, ReplicaFaultKind::kCrash, now_ns) != nullptr ||
         active_of_kind(replica, ReplicaFaultKind::kHang, now_ns) != nullptr;
}

}  // namespace salnov::faults
