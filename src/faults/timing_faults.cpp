#include "faults/timing_faults.hpp"

#include <stdexcept>

namespace salnov::faults {

void TimingFaultInjector::add(const TimingFault& fault) {
  if (fault.stall_ns < 0) {
    throw std::invalid_argument("TimingFaultInjector: negative stall");
  }
  if (fault.period <= 0) {
    throw std::invalid_argument("TimingFaultInjector: period must be >= 1");
  }
  if (fault.last_frame < fault.first_frame || fault.first_frame < 0) {
    throw std::invalid_argument("TimingFaultInjector: bad frame range");
  }
  faults_.push_back(fault);
}

int64_t TimingFaultInjector::stall_ns(int stage, int64_t frame) const {
  int64_t total = 0;
  for (const TimingFault& fault : faults_) {
    if (fault.stage != stage) continue;
    if (frame < fault.first_frame || frame > fault.last_frame) continue;
    if ((frame - fault.first_frame) % fault.period != 0) continue;
    total += fault.stall_ns;
  }
  return total;
}

}  // namespace salnov::faults
