#include "image/image_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace salnov {
namespace {

uint8_t to_byte(float v) {
  return static_cast<uint8_t>(std::lround(std::clamp(v, 0.0f, 1.0f) * 255.0f));
}

// Reads one whitespace/comment-delimited token from a PNM header.
std::string next_token(std::istream& is) {
  std::string token;
  int c = is.get();
  while (is) {
    if (c == '#') {  // comment runs to end of line
      while (is && c != '\n') c = is.get();
    } else if (std::isspace(c)) {
      if (!token.empty()) break;
    } else {
      token.push_back(static_cast<char>(c));
    }
    c = is.get();
  }
  if (token.empty()) throw std::runtime_error("PNM: truncated header");
  return token;
}

struct PnmHeader {
  int64_t width = 0;
  int64_t height = 0;
  int64_t maxval = 0;
};

PnmHeader read_pnm_header(std::istream& is, const std::string& expected_magic, const std::string& path) {
  const std::string magic = next_token(is);
  if (magic != expected_magic) {
    throw std::runtime_error(path + ": expected " + expected_magic + " file, got magic '" + magic + "'");
  }
  PnmHeader h;
  h.width = std::stoll(next_token(is));
  h.height = std::stoll(next_token(is));
  h.maxval = std::stoll(next_token(is));
  if (h.width <= 0 || h.height <= 0) throw std::runtime_error(path + ": invalid dimensions");
  if (h.maxval != 255) throw std::runtime_error(path + ": only 8-bit PNM supported");
  return h;
}

}  // namespace

void write_pgm(const std::string& path, const Image& image) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path);
  os << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  std::vector<uint8_t> row(static_cast<size_t>(image.width()));
  for (int64_t y = 0; y < image.height(); ++y) {
    for (int64_t x = 0; x < image.width(); ++x) row[static_cast<size_t>(x)] = to_byte(image(y, x));
    os.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  if (!os) throw std::runtime_error("write_pgm: write failed for " + path);
}

Image read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_pgm: cannot open " + path);
  const PnmHeader h = read_pnm_header(is, "P5", path);
  Image image(h.height, h.width);
  std::vector<uint8_t> row(static_cast<size_t>(h.width));
  for (int64_t y = 0; y < h.height; ++y) {
    is.read(reinterpret_cast<char*>(row.data()), static_cast<std::streamsize>(row.size()));
    if (!is) throw std::runtime_error("read_pgm: truncated pixel data in " + path);
    for (int64_t x = 0; x < h.width; ++x) image(y, x) = static_cast<float>(row[static_cast<size_t>(x)]) / 255.0f;
  }
  return image;
}

void write_ppm(const std::string& path, const RgbImage& image) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_ppm: cannot open " + path);
  os << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  std::vector<uint8_t> row(static_cast<size_t>(image.width() * 3));
  for (int64_t y = 0; y < image.height(); ++y) {
    for (int64_t x = 0; x < image.width(); ++x) {
      for (int64_t c = 0; c < 3; ++c) row[static_cast<size_t>(x * 3 + c)] = to_byte(image(y, x, c));
    }
    os.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  if (!os) throw std::runtime_error("write_ppm: write failed for " + path);
}

RgbImage read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_ppm: cannot open " + path);
  const PnmHeader h = read_pnm_header(is, "P6", path);
  RgbImage image(h.height, h.width);
  std::vector<uint8_t> row(static_cast<size_t>(h.width * 3));
  for (int64_t y = 0; y < h.height; ++y) {
    is.read(reinterpret_cast<char*>(row.data()), static_cast<std::streamsize>(row.size()));
    if (!is) throw std::runtime_error("read_ppm: truncated pixel data in " + path);
    for (int64_t x = 0; x < h.width; ++x) {
      image.set(y, x, static_cast<float>(row[static_cast<size_t>(x * 3 + 0)]) / 255.0f,
                static_cast<float>(row[static_cast<size_t>(x * 3 + 1)]) / 255.0f,
                static_cast<float>(row[static_cast<size_t>(x * 3 + 2)]) / 255.0f);
    }
  }
  return image;
}

}  // namespace salnov
