// Image transforms used by the pipeline and the perturbation experiments.
//
// The paper evaluates robustness to two perturbation families (Fig. 3 and
// Fig. 7): additive Gaussian noise and brightness shifts, and cites Engstrom
// et al. for rotation/translation attacks, which we include as additional
// perturbations for the extension experiments.
#pragma once

#include "image/image.hpp"
#include "tensor/rng.hpp"

namespace salnov {

/// Bilinear resize to (out_height, out_width).
Image resize_bilinear(const Image& src, int64_t out_height, int64_t out_width);

/// Adds i.i.d. N(0, stddev^2) noise to every pixel and clamps to [0, 1].
/// `stddev` is in [0, 1] pixel units (e.g. 0.1 = 10% of full scale).
Image add_gaussian_noise(const Image& src, double stddev, Rng& rng);

/// Adds a constant `delta` to every pixel and clamps to [0, 1].
Image adjust_brightness(const Image& src, double delta);

/// Scales contrast about the image mean by `factor` and clamps to [0, 1].
Image adjust_contrast(const Image& src, double factor);

/// Rotates about the image center by `degrees` (bilinear sampling, edge
/// clamp). Positive angles rotate counter-clockwise.
Image rotate(const Image& src, double degrees);

/// Translates by (dy, dx) pixels with edge clamping.
Image translate(const Image& src, int64_t dy, int64_t dx);

/// Mirrors the image left-right (the classic steering-training augmentation:
/// a mirrored road view corresponds to the negated steering angle).
Image flip_horizontal(const Image& src);

/// Salt-and-pepper noise: each pixel independently becomes 0 or 1 with
/// probability `p / 2` each.
Image add_salt_pepper_noise(const Image& src, double p, Rng& rng);

/// Occludes a rectangle of the image with a constant `value` (models e.g. a
/// lens obstruction; used in extension experiments).
Image occlude(const Image& src, int64_t y0, int64_t x0, int64_t h, int64_t w, float value);

/// Finds the additive-noise stddev whose Gaussian-noised version of `src`
/// has (squared-error) MSE closest to `target_mse` (in 0-255 intensity
/// units, matching the paper's Fig. 3 numbers). Used to "engineer" a noise
/// level with the same MSE as a brightness shift.
double calibrate_noise_for_mse(const Image& src, double target_mse, Rng& rng, int iterations = 24);

/// Finds the brightness delta whose shifted version of `src` has MSE
/// closest to `target_mse` (0-255 intensity units).
double calibrate_brightness_for_mse(const Image& src, double target_mse, int iterations = 40);

}  // namespace salnov
