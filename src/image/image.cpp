#include "image/image.hpp"

#include <algorithm>
#include <stdexcept>

namespace salnov {

Image::Image(int64_t height, int64_t width) : height_(height), width_(width), pixels_({height, width}) {
  if (height < 0 || width < 0) throw std::invalid_argument("Image: negative size");
}

Image::Image(int64_t height, int64_t width, Tensor pixels) : height_(height), width_(width) {
  if (pixels.numel() != height * width) {
    throw std::invalid_argument("Image: tensor has " + std::to_string(pixels.numel()) +
                                " elements, expected " + std::to_string(height * width));
  }
  pixels_ = pixels.reshape({height, width});
}

float Image::at_clamped(int64_t y, int64_t x) const {
  y = std::clamp<int64_t>(y, 0, height_ - 1);
  x = std::clamp<int64_t>(x, 0, width_ - 1);
  return pixels_[index(y, x)];
}

Image Image::from_tensor(int64_t height, int64_t width, const Tensor& t) {
  return Image(height, width, t);
}

void Image::clamp01() {
  pixels_.apply([](float v) { return std::clamp(v, 0.0f, 1.0f); });
}

void Image::normalize_minmax() {
  if (empty()) return;
  const float lo = pixels_.min();
  const float hi = pixels_.max();
  const float range = hi - lo;
  if (range <= 0.0f) {
    pixels_.fill(0.0f);
    return;
  }
  pixels_.apply([lo, range](float v) { return (v - lo) / range; });
}

RgbImage::RgbImage(int64_t height, int64_t width)
    : height_(height), width_(width), pixels_({height, width, 3}) {
  if (height < 0 || width < 0) throw std::invalid_argument("RgbImage: negative size");
}

void RgbImage::set(int64_t y, int64_t x, float r, float g, float b) {
  pixels_[index(y, x, 0)] = r;
  pixels_[index(y, x, 1)] = g;
  pixels_[index(y, x, 2)] = b;
}

void RgbImage::clamp01() {
  pixels_.apply([](float v) { return std::clamp(v, 0.0f, 1.0f); });
}

Image RgbImage::to_grayscale() const {
  Image gray(height_, width_);
  for (int64_t y = 0; y < height_; ++y) {
    for (int64_t x = 0; x < width_; ++x) {
      gray(y, x) = 0.299f * (*this)(y, x, 0) + 0.587f * (*this)(y, x, 1) + 0.114f * (*this)(y, x, 2);
    }
  }
  return gray;
}

}  // namespace salnov
