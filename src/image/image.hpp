// Image types used throughout the pipeline.
//
// The paper's pipeline operates on low-resolution (60x160) grayscale images
// normalized to [0, 1]. We keep two value types:
//   * Image     — single-channel float image in [0, 1] (the workhorse),
//   * RgbImage  — three-channel float image, produced by the scene
//                 generators and converted to grayscale at pipeline entry.
// Both are thin wrappers around Tensor with (height, width[, channel])
// accessors, so they interoperate with the nn:: substrate at zero cost.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace salnov {

/// Single-channel float image, row-major, values nominally in [0, 1].
class Image {
 public:
  Image() = default;

  /// Black image of the given size.
  Image(int64_t height, int64_t width);

  /// Wraps existing pixel data; `pixels` must have shape [height, width] or
  /// be reshapeable to it.
  Image(int64_t height, int64_t width, Tensor pixels);

  int64_t height() const { return height_; }
  int64_t width() const { return width_; }
  int64_t numel() const { return height_ * width_; }
  bool empty() const { return numel() == 0; }

  float operator()(int64_t y, int64_t x) const { return pixels_[index(y, x)]; }
  float& operator()(int64_t y, int64_t x) { return pixels_[index(y, x)]; }

  /// Bounds-clamped read: out-of-range coordinates are clamped to the edge.
  /// Used by resampling kernels.
  float at_clamped(int64_t y, int64_t x) const;

  const Tensor& tensor() const { return pixels_; }
  Tensor& tensor() { return pixels_; }

  /// Flattened copy as a [height * width] tensor (autoencoder input layout).
  Tensor flattened() const { return pixels_.reshape({numel()}); }

  /// As a [1, 1, height, width] tensor (CNN input layout, batch of one).
  Tensor as_nchw() const { return pixels_.reshape({1, 1, height_, width_}); }

  /// Rebuilds an image from a flat or [h, w] tensor.
  static Image from_tensor(int64_t height, int64_t width, const Tensor& t);

  /// Clamps every pixel into [0, 1] in place.
  void clamp01();

  /// Linearly rescales pixel values so min -> 0 and max -> 1. A constant
  /// image becomes all zeros.
  void normalize_minmax();

  float mean() const { return pixels_.mean(); }
  float min() const { return pixels_.min(); }
  float max() const { return pixels_.max(); }

  bool same_size(const Image& other) const {
    return height_ == other.height_ && width_ == other.width_;
  }

 private:
  int64_t index(int64_t y, int64_t x) const { return y * width_ + x; }

  int64_t height_ = 0;
  int64_t width_ = 0;
  Tensor pixels_{Shape{0}};
};

/// Three-channel (RGB) float image with values nominally in [0, 1].
class RgbImage {
 public:
  RgbImage() = default;
  RgbImage(int64_t height, int64_t width);

  int64_t height() const { return height_; }
  int64_t width() const { return width_; }

  float operator()(int64_t y, int64_t x, int64_t c) const { return pixels_[index(y, x, c)]; }
  float& operator()(int64_t y, int64_t x, int64_t c) { return pixels_[index(y, x, c)]; }

  const Tensor& tensor() const { return pixels_; }

  /// Sets all three channels at (y, x).
  void set(int64_t y, int64_t x, float r, float g, float b);

  void clamp01();

  /// Luminance conversion (ITU-R BT.601: 0.299 R + 0.587 G + 0.114 B),
  /// matching the paper's "converted to grayscale" preprocessing step.
  Image to_grayscale() const;

 private:
  int64_t index(int64_t y, int64_t x, int64_t c) const { return (y * width_ + x) * 3 + c; }

  int64_t height_ = 0;
  int64_t width_ = 0;
  Tensor pixels_{Shape{0}};
};

}  // namespace salnov
