// PGM / PPM image file IO.
//
// Benches and examples dump VBP masks, reconstructions, and generated scenes
// as binary PGM (grayscale) / PPM (color) so results can be inspected with
// any image viewer without adding a codec dependency.
#pragma once

#include <string>

#include "image/image.hpp"

namespace salnov {

/// Writes `image` as binary PGM (P5, 8-bit); pixels are clamped to [0, 1].
/// Throws std::runtime_error on IO failure.
void write_pgm(const std::string& path, const Image& image);

/// Reads a binary PGM (P5, 8-bit) file. Throws std::runtime_error on parse
/// or IO failure.
Image read_pgm(const std::string& path);

/// Writes `image` as binary PPM (P6, 8-bit); pixels are clamped to [0, 1].
void write_ppm(const std::string& path, const RgbImage& image);

/// Reads a binary PPM (P6, 8-bit) file.
RgbImage read_ppm(const std::string& path);

}  // namespace salnov
