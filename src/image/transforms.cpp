#include "image/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace salnov {
namespace {

float bilinear_sample(const Image& src, double y, double x) {
  const auto y0 = static_cast<int64_t>(std::floor(y));
  const auto x0 = static_cast<int64_t>(std::floor(x));
  const double fy = y - static_cast<double>(y0);
  const double fx = x - static_cast<double>(x0);
  const double v00 = src.at_clamped(y0, x0);
  const double v01 = src.at_clamped(y0, x0 + 1);
  const double v10 = src.at_clamped(y0 + 1, x0);
  const double v11 = src.at_clamped(y0 + 1, x0 + 1);
  const double top = v00 + (v01 - v00) * fx;
  const double bottom = v10 + (v11 - v10) * fx;
  return static_cast<float>(top + (bottom - top) * fy);
}

// Pixel-wise MSE in 0-255 intensity units (the scale the paper quotes in
// Fig. 3), local to this file to keep image/ below metrics/ in the layering.
double mse_255(const Image& a, const Image& b) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = (static_cast<double>(a.tensor()[i]) - static_cast<double>(b.tensor()[i])) * 255.0;
    acc += d * d;
  }
  return acc / static_cast<double>(a.numel());
}

}  // namespace

Image resize_bilinear(const Image& src, int64_t out_height, int64_t out_width) {
  if (out_height <= 0 || out_width <= 0) {
    throw std::invalid_argument("resize_bilinear: non-positive output size");
  }
  if (src.empty()) throw std::invalid_argument("resize_bilinear: empty source");
  Image out(out_height, out_width);
  const double sy = static_cast<double>(src.height()) / static_cast<double>(out_height);
  const double sx = static_cast<double>(src.width()) / static_cast<double>(out_width);
  for (int64_t y = 0; y < out_height; ++y) {
    // Align sample points to pixel centers to avoid a half-pixel shift.
    const double src_y = (static_cast<double>(y) + 0.5) * sy - 0.5;
    for (int64_t x = 0; x < out_width; ++x) {
      const double src_x = (static_cast<double>(x) + 0.5) * sx - 0.5;
      out(y, x) = bilinear_sample(src, src_y, src_x);
    }
  }
  return out;
}

Image add_gaussian_noise(const Image& src, double stddev, Rng& rng) {
  Image out = src;
  for (int64_t y = 0; y < out.height(); ++y) {
    for (int64_t x = 0; x < out.width(); ++x) {
      out(y, x) = static_cast<float>(out(y, x) + rng.normal(0.0, stddev));
    }
  }
  out.clamp01();
  return out;
}

Image adjust_brightness(const Image& src, double delta) {
  Image out = src;
  out.tensor() += static_cast<float>(delta);
  out.clamp01();
  return out;
}

Image adjust_contrast(const Image& src, double factor) {
  Image out = src;
  const float mean = src.mean();
  out.tensor().apply([mean, factor](float v) {
    return static_cast<float>(mean + factor * (static_cast<double>(v) - mean));
  });
  out.clamp01();
  return out;
}

Image rotate(const Image& src, double degrees) {
  const double radians = degrees * std::numbers::pi / 180.0;
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  const double cy = static_cast<double>(src.height() - 1) / 2.0;
  const double cx = static_cast<double>(src.width() - 1) / 2.0;
  Image out(src.height(), src.width());
  for (int64_t y = 0; y < src.height(); ++y) {
    for (int64_t x = 0; x < src.width(); ++x) {
      // Inverse mapping: sample the source at the pre-rotation location.
      const double dy = static_cast<double>(y) - cy;
      const double dx = static_cast<double>(x) - cx;
      const double src_y = cy + c * dy + s * dx;
      const double src_x = cx - s * dy + c * dx;
      out(y, x) = bilinear_sample(src, src_y, src_x);
    }
  }
  return out;
}

Image translate(const Image& src, int64_t dy, int64_t dx) {
  Image out(src.height(), src.width());
  for (int64_t y = 0; y < src.height(); ++y) {
    for (int64_t x = 0; x < src.width(); ++x) {
      out(y, x) = src.at_clamped(y - dy, x - dx);
    }
  }
  return out;
}

Image flip_horizontal(const Image& src) {
  Image out(src.height(), src.width());
  for (int64_t y = 0; y < src.height(); ++y) {
    for (int64_t x = 0; x < src.width(); ++x) {
      out(y, x) = src(y, src.width() - 1 - x);
    }
  }
  return out;
}

Image add_salt_pepper_noise(const Image& src, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("add_salt_pepper_noise: p outside [0, 1]");
  Image out = src;
  for (int64_t y = 0; y < out.height(); ++y) {
    for (int64_t x = 0; x < out.width(); ++x) {
      const double u = rng.uniform();
      if (u < p / 2.0) {
        out(y, x) = 0.0f;
      } else if (u < p) {
        out(y, x) = 1.0f;
      }
    }
  }
  return out;
}

Image occlude(const Image& src, int64_t y0, int64_t x0, int64_t h, int64_t w, float value) {
  Image out = src;
  const int64_t y1 = std::min(y0 + h, src.height());
  const int64_t x1 = std::min(x0 + w, src.width());
  for (int64_t y = std::max<int64_t>(y0, 0); y < y1; ++y) {
    for (int64_t x = std::max<int64_t>(x0, 0); x < x1; ++x) {
      out(y, x) = value;
    }
  }
  return out;
}

double calibrate_noise_for_mse(const Image& src, double target_mse, Rng& rng, int iterations) {
  // Clamping at [0, 1] makes realized MSE a monotone but nonlinear function
  // of sigma, so bisect on sigma using a fixed noise realization per probe.
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    Rng probe = rng;  // same stream per probe: keeps the function monotone
    const Image noisy = add_gaussian_noise(src, mid, probe);
    if (mse_255(src, noisy) < target_mse) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double calibrate_brightness_for_mse(const Image& src, double target_mse, int iterations) {
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (mse_255(src, adjust_brightness(src, mid)) < target_mse) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace salnov
