// Training harness for the steering-angle regression task.
//
// Wraps nn::Trainer with driving-specific conveniences: builds tensors from
// a DrivingDataset, supports the paper's Fig. 2 control experiment (training
// on *random* steering labels to show VBP masks then carry no road
// structure), and reports steering MAE.
#pragma once

#include "nn/quantized.hpp"
#include "nn/trainer.hpp"
#include "roadsim/dataset.hpp"

namespace salnov::driving {

struct SteeringTrainOptions {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  double learning_rate = 1e-3;   ///< Adam.
  bool verbose = false;
  /// If true, replaces every label with an independent U(-1, 1) draw —
  /// the Fig. 2 "network trained with random steering angles" control.
  bool randomize_labels = false;
};

struct SteeringTrainResult {
  nn::TrainHistory history;
  double train_mse = 0.0;  ///< Final-epoch mean training loss.
};

/// Trains `model` (from build_pilotnet) on the dataset in place.
SteeringTrainResult train_steering_model(nn::Sequential& model,
                                         const roadsim::DrivingDataset& dataset,
                                         const SteeringTrainOptions& options, Rng& rng);

/// Mean absolute steering error of the model over a dataset.
double steering_mae(nn::Sequential& model, const roadsim::DrivingDataset& dataset);

/// Predicts the steering angle for one image.
double predict_steering(nn::Sequential& model, const Image& image);

/// Predicts steering angles for a batch of same-sized images with one fused
/// [B, 1, H, W] forward pass. Every layer in the inference path treats batch
/// rows independently (per-sample conv loops, per-row GEMM accumulation
/// chains, elementwise activations), so element i is bit-identical to
/// predict_steering(model, *images[i]) at any batch size — the serving
/// cluster's cross-frame micro-batching relies on this.
std::vector<double> predict_steering_batch(nn::Sequential& model,
                                           const std::vector<const Image*>& images);

/// Predicts the steering angle through the int8-quantized view of the model
/// (the q8 ladder rungs). Unlike the float entries, the result is
/// bit-identical across GEMM kernels and thread counts, not just batch
/// sizes — the quantized path accumulates in exact int32.
double predict_steering_q8(const nn::QuantizedForward& model, const Image& image);

/// Batched counterpart; element i is bit-identical to
/// predict_steering_q8(model, *images[i]).
std::vector<double> predict_steering_q8_batch(const nn::QuantizedForward& model,
                                              const std::vector<const Image*>& images);

}  // namespace salnov::driving
