#include "driving/pilotnet.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"

namespace salnov::driving {

PilotNetConfig PilotNetConfig::paper() { return PilotNetConfig{}; }

PilotNetConfig PilotNetConfig::compact() {
  PilotNetConfig config;
  config.conv_channels = {8, 12, 16, 20, 20};
  config.dense_units = {32, 16};
  return config;
}

PilotNetConfig PilotNetConfig::tiny(int64_t height, int64_t width) {
  PilotNetConfig config;
  config.input_height = height;
  config.input_width = width;
  config.conv_channels = {4, 6, 8};
  config.dense_units = {16};
  return config;
}

nn::Sequential build_pilotnet(const PilotNetConfig& config, Rng& rng) {
  if (config.conv_channels.empty() || config.dense_units.empty()) {
    throw std::invalid_argument("build_pilotnet: need at least one conv and one dense layer");
  }
  nn::Sequential model;
  // Kernel schedule: all but the last two convs are 5x5 stride 2 (feature
  // extraction + downsampling), the last two are 3x3 stride 1. The 3x3
  // layers use padding 1 because the paper's 60x160 input (smaller than
  // PilotNet's original 66x200) would otherwise shrink below the kernel.
  const auto conv_count = static_cast<int64_t>(config.conv_channels.size());
  const int64_t strided = std::max<int64_t>(conv_count - 2, 1);
  int64_t in_channels = 1;
  for (int64_t i = 0; i < conv_count; ++i) {
    nn::Conv2dConfig conv;
    conv.in_channels = in_channels;
    conv.out_channels = config.conv_channels[static_cast<size_t>(i)];
    if (i < strided) {
      conv.kernel_h = conv.kernel_w = 5;
      conv.stride = 2;
      conv.padding = 0;
    } else {
      conv.kernel_h = conv.kernel_w = 3;
      conv.stride = 1;
      conv.padding = 1;
    }
    model.emplace<nn::Conv2d>(conv, rng);
    model.emplace<nn::ReLU>();
    in_channels = conv.out_channels;
  }
  model.emplace<nn::Flatten>();

  const Shape flat_shape =
      model.output_shape({1, 1, config.input_height, config.input_width});
  int64_t features = flat_shape[1];
  for (int64_t units : config.dense_units) {
    model.emplace<nn::Dense>(features, units, rng);
    model.emplace<nn::ReLU>();
    features = units;
  }
  // Output head: a down-scaled init keeps the tanh out of saturation at the
  // start of training (a saturated head has vanishing gradients and can lock
  // the model into a constant +/-1 prediction).
  auto head = std::make_unique<nn::Dense>(features, 1, rng);
  for (nn::Parameter* p : head->parameters()) p->value *= 0.1f;
  model.add(std::move(head));
  model.emplace<nn::Tanh>();
  return model;
}

std::vector<size_t> conv_stage_outputs(const nn::Sequential& model) {
  std::vector<size_t> stages;
  for (size_t i = 0; i < model.size(); ++i) {
    if (model.layer(i).type_name() != "conv2d") continue;
    // The stage output is the activation following the conv if present,
    // otherwise the conv output itself.
    if (i + 1 < model.size() && model.layer(i + 1).type_name() == "relu") {
      stages.push_back(i + 1);
    } else {
      stages.push_back(i);
    }
  }
  return stages;
}

}  // namespace salnov::driving
