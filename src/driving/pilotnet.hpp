// PilotNet-style steering-angle regression network.
//
// The paper models its prediction CNN on Bojarski et al.'s end-to-end
// steering network ("End to End Learning for Self-Driving Cars" /
// "VisualBackProp"): five convolutional layers (5x5 stride 2, then 3x3
// stride 1) followed by fully-connected layers, ReLU activations, and a
// single tanh-bounded steering output. `PilotNetConfig::paper()` is the
// full-size network for 60x160 inputs; `PilotNetConfig::compact()` is a
// reduced-width variant that trains in seconds on one CPU core and is used
// by tests and the faster benches (the saliency method is
// architecture-agnostic — the paper says so explicitly).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace salnov::driving {

struct PilotNetConfig {
  int64_t input_height = 60;   ///< Paper's pipeline resolution.
  int64_t input_width = 160;
  std::vector<int64_t> conv_channels = {24, 36, 48, 64, 64};  ///< Bojarski et al.
  std::vector<int64_t> dense_units = {100, 50, 10};
  /// Kernel sizes / strides follow PilotNet: three 5x5 stride-2 convs, then
  /// two 3x3 stride-1 convs. (Fixed; widths above are the tunable part.)

  /// Full-size configuration from the paper's reference network.
  static PilotNetConfig paper();

  /// Reduced-width configuration for CPU-budget experiments.
  static PilotNetConfig compact();

  /// Tiny configuration for unit tests (very small images train in <1 s).
  static PilotNetConfig tiny(int64_t height, int64_t width);
};

/// Builds the network. The returned Sequential maps [N, 1, H, W] images to
/// [N, 1] steering angles in (-1, 1) (tanh output).
nn::Sequential build_pilotnet(const PilotNetConfig& config, Rng& rng);

/// Indices (into the Sequential) of the ReLU outputs that follow each
/// convolution — the feature maps VisualBackProp averages. Identified
/// structurally, so it works for any conv/relu chain.
std::vector<size_t> conv_stage_outputs(const nn::Sequential& model);

}  // namespace salnov::driving
