#include "driving/steering_trainer.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace salnov::driving {

SteeringTrainResult train_steering_model(nn::Sequential& model,
                                         const roadsim::DrivingDataset& dataset,
                                         const SteeringTrainOptions& options, Rng& rng) {
  if (dataset.size() == 0) throw std::invalid_argument("train_steering_model: empty dataset");
  const Tensor inputs = dataset.images_nchw();
  Tensor targets = dataset.steering_tensor();
  if (options.randomize_labels) {
    Rng label_rng = rng.split();
    for (int64_t i = 0; i < targets.numel(); ++i) {
      targets[i] = static_cast<float>(label_rng.uniform(-1.0, 1.0));
    }
  }

  nn::MseLoss loss;
  nn::Adam optimizer(options.learning_rate);
  nn::Trainer trainer(model, loss, optimizer, rng.split());

  nn::TrainOptions train_options;
  train_options.epochs = options.epochs;
  train_options.batch_size = options.batch_size;
  train_options.verbose = options.verbose;

  SteeringTrainResult result;
  result.history = trainer.fit(inputs, targets, train_options);
  result.train_mse = result.history.final_loss();
  return result;
}

double steering_mae(nn::Sequential& model, const roadsim::DrivingDataset& dataset) {
  if (dataset.size() == 0) throw std::invalid_argument("steering_mae: empty dataset");
  double acc = 0.0;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    acc += std::abs(predict_steering(model, dataset.image(i)) - dataset.steering(i));
  }
  return acc / static_cast<double>(dataset.size());
}

double predict_steering(nn::Sequential& model, const Image& image) {
  const Tensor out = model.forward(image.as_nchw(), nn::Mode::kInfer);
  if (out.numel() != 1) throw std::logic_error("predict_steering: model output is not scalar");
  return out[0];
}

std::vector<double> predict_steering_batch(nn::Sequential& model,
                                           const std::vector<const Image*>& images) {
  if (images.empty()) return {};
  const int64_t batch = static_cast<int64_t>(images.size());
  const int64_t h = images[0]->height();
  const int64_t w = images[0]->width();
  Tensor input({batch, 1, h, w});
  for (int64_t n = 0; n < batch; ++n) {
    const Image& image = *images[static_cast<size_t>(n)];
    if (image.height() != h || image.width() != w) {
      throw std::invalid_argument("predict_steering_batch: mixed image sizes in one batch");
    }
    std::memcpy(input.data() + n * h * w, image.tensor().data(),
                static_cast<size_t>(h * w) * sizeof(float));
  }
  const Tensor out = model.forward(input, nn::Mode::kInfer);
  if (out.numel() != batch) {
    throw std::logic_error("predict_steering_batch: model output is not one scalar per image");
  }
  std::vector<double> angles(static_cast<size_t>(batch));
  for (int64_t n = 0; n < batch; ++n) angles[static_cast<size_t>(n)] = out[n];
  return angles;
}

double predict_steering_q8(const nn::QuantizedForward& model, const Image& image) {
  const Tensor out = model.forward(image.as_nchw());
  if (out.numel() != 1) throw std::logic_error("predict_steering_q8: model output is not scalar");
  return out[0];
}

std::vector<double> predict_steering_q8_batch(const nn::QuantizedForward& model,
                                              const std::vector<const Image*>& images) {
  if (images.empty()) return {};
  const int64_t batch = static_cast<int64_t>(images.size());
  const int64_t h = images[0]->height();
  const int64_t w = images[0]->width();
  Tensor input({batch, 1, h, w});
  for (int64_t n = 0; n < batch; ++n) {
    const Image& image = *images[static_cast<size_t>(n)];
    if (image.height() != h || image.width() != w) {
      throw std::invalid_argument("predict_steering_q8_batch: mixed image sizes in one batch");
    }
    std::memcpy(input.data() + n * h * w, image.tensor().data(),
                static_cast<size_t>(h * w) * sizeof(float));
  }
  const Tensor out = model.forward(input);
  if (out.numel() != batch) {
    throw std::logic_error("predict_steering_q8_batch: model output is not one scalar per image");
  }
  std::vector<double> angles(static_cast<size_t>(batch));
  for (int64_t n = 0; n < batch; ++n) angles[static_cast<size_t>(n)] = out[n];
  return angles;
}

}  // namespace salnov::driving
