#include "core/frame_validator.hpp"

#include <cmath>

namespace salnov::core {

const char* frame_fault_name(FrameFault fault) {
  switch (fault) {
    case FrameFault::kNone:
      return "none";
    case FrameFault::kWrongSize:
      return "wrong-size";
    case FrameFault::kNonFinite:
      return "non-finite";
    case FrameFault::kOutOfRange:
      return "out-of-range";
    case FrameFault::kNearConstant:
      return "near-constant";
  }
  return "unknown";
}

FrameValidator::FrameValidator(int64_t height, int64_t width, FrameValidatorConfig config)
    : height_(height), width_(width), config_(config) {
  if (height_ <= 0 || width_ <= 0) {
    throw std::invalid_argument("FrameValidator: non-positive frame size");
  }
  if (config_.range_slack < 0.0 || config_.min_stddev < 0.0) {
    throw std::invalid_argument("FrameValidator: negative tolerance");
  }
}

FrameFault FrameValidator::check(const Image& frame) const {
  if (frame.height() != height_ || frame.width() != width_) return FrameFault::kWrongSize;

  const float lo = static_cast<float>(0.0 - config_.range_slack);
  const float hi = static_cast<float>(1.0 + config_.range_slack);
  const int64_t n = frame.numel();
  const float* pixels = frame.tensor().data();

  // One fused pass: finiteness and range per pixel, plus the running moments
  // for the constancy check. Comparisons are written so NaN falls through to
  // the non-finite verdict rather than silently passing a range test.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float v = pixels[i];
    if (config_.check_finite && !std::isfinite(v)) return FrameFault::kNonFinite;
    if (config_.check_range && !(v >= lo && v <= hi)) {
      return std::isfinite(v) ? FrameFault::kOutOfRange : FrameFault::kNonFinite;
    }
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  if (config_.check_constant && n > 1) {
    const double mean = sum / static_cast<double>(n);
    const double variance = std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
    if (std::sqrt(variance) < config_.min_stddev) return FrameFault::kNearConstant;
  }
  return FrameFault::kNone;
}

void FrameValidator::require_valid(const Image& frame, const std::string& context) const {
  const FrameFault fault = check(frame);
  if (fault == FrameFault::kNone) return;
  std::string what = context + ": frame rejected (" + frame_fault_name(fault) + ")";
  if (fault == FrameFault::kWrongSize) {
    what += ": input is " + std::to_string(frame.height()) + "x" + std::to_string(frame.width()) +
            ", pipeline expects " + std::to_string(height_) + "x" + std::to_string(width_);
  } else if (fault == FrameFault::kNearConstant) {
    what += ": pixel variance is ~0 — frozen, dropped, or disconnected sensor";
  } else {
    what += ": the sensor or upstream preprocessing produced unusable pixel values";
  }
  throw InvalidFrameError(fault, what);
}

}  // namespace salnov::core
