// NoveltyDetector: the paper's end-to-end two-layer framework (Fig. 1).
//
//   input image -> [VBP of the trained steering CNN] -> one-class
//   autoencoder reconstruction -> similarity score -> threshold test.
//
// The detector is configurable along the paper's two experimental axes:
//   * preprocessing: VBP saliency masks (proposed) vs raw images
//     (Richter & Roy baseline),
//   * reconstruction loss/score: SSIM (proposed) vs pixel-wise MSE
//     (baseline),
// so every Fig. 5 configuration is one NoveltyDetectorConfig away.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/autoencoder.hpp"
#include "core/frame_validator.hpp"
#include "core/threshold.hpp"
#include "image/image.hpp"
#include "nn/sequential.hpp"
#include "nn/ssim_loss.hpp"
#include "nn/trainer.hpp"
#include "saliency/saliency.hpp"
#include "tensor/rng.hpp"

namespace salnov::core {

enum class Preprocessing {
  kRaw,       ///< feed the grayscale image directly (baseline)
  kVbp,       ///< feed the VisualBackProp mask of the steering model (proposed)
  kGradient,  ///< gradient-saliency mask (ablation; slower than VBP)
  kLrp,       ///< layer-wise relevance propagation mask (ablation; slowest)
};

/// True for any preprocessing mode that needs the steering model.
constexpr bool uses_saliency(Preprocessing preprocessing) {
  return preprocessing != Preprocessing::kRaw;
}

enum class ReconstructionScore {
  kMse,   ///< pixel-wise reconstruction error; high = novel (baseline)
  kSsim,  ///< structural similarity; low = novel (proposed)
};

struct NoveltyDetectorConfig {
  int64_t height = 60;   ///< Paper's pipeline resolution (60 x 160).
  int64_t width = 160;
  Preprocessing preprocessing = Preprocessing::kVbp;
  ReconstructionScore score = ReconstructionScore::kSsim;
  AutoencoderConfig autoencoder;  ///< Its input size is forced to (height, width).
  SsimOptions ssim;               ///< Window/constants for the SSIM loss and score.
  int64_t train_epochs = 20;
  int64_t batch_size = 32;        ///< Paper: 32.
  double learning_rate = 1e-3;    ///< Adam.
  double threshold_percentile = 0.99;  ///< Paper: 99th percentile of the ECDF.
  bool verbose = false;

  /// Guarded inference: when true (default), every frame entering the
  /// pipeline is screened by a FrameValidator and malformed frames (NaN/Inf,
  /// out-of-range, dead-constant) raise InvalidFrameError instead of being
  /// scored as if the world were novel. Runtime policy — not serialized.
  bool validate_frames = true;
  FrameValidatorConfig frame_validator;

  /// The paper's proposed configuration (VBP + SSIM).
  static NoveltyDetectorConfig proposed();
  /// The Richter & Roy baseline (raw images + MSE).
  static NoveltyDetectorConfig baseline_raw_mse();
  /// The intermediate ablation (VBP images + MSE loss).
  static NoveltyDetectorConfig vbp_mse();
};

/// Classification result for one input.
struct NoveltyResult {
  double score = 0.0;      ///< MSE error or mean SSIM, per config.
  double threshold = 0.0;
  bool is_novel = false;
};

class NoveltyDetector {
 public:
  explicit NoveltyDetector(NoveltyDetectorConfig config);

  /// Attaches the trained steering model whose saliency defines the
  /// preprocessing (required for Preprocessing::kVbp before fit/score;
  /// the model must outlive this detector and is not modified).
  void attach_steering_model(nn::Sequential* model);

  /// Trains the one-class autoencoder on the (preprocessed) training images
  /// and calibrates the novelty threshold on the training-score ECDF.
  /// Returns the autoencoder's per-epoch loss history.
  nn::TrainHistory fit(const std::vector<Image>& training_images, Rng& rng);

  /// Preprocessing stage only (VBP mask or pass-through). Throws
  /// InvalidFrameError on malformed frames when config().validate_frames.
  Image preprocess(const Image& input) const;

  /// The input guard used by the full pipeline (and by NoveltyMonitor for
  /// its sensor-fault path).
  const FrameValidator& frame_validator() const { return validator_; }

  /// Autoencoder reconstruction of a *preprocessed* image.
  Image reconstruct(const Image& preprocessed) const;

  /// Similarity/error score of one input (runs the full pipeline).
  double score(const Image& input) const;

  /// Scores a batch of inputs. Frames fan out across the parallel worker
  /// pool (see parallel/parallel_for.hpp; SALNOV_THREADS) whenever the
  /// configured preprocessing is safe to run concurrently; results are
  /// bit-identical to scoring each input serially, at any thread count.
  std::vector<double> scores(const std::vector<Image>& inputs) const;

  /// Full classification of one input. Requires fit() (or a loaded model).
  NoveltyResult classify(const Image& input) const;

  bool is_fitted() const { return fitted_; }
  const NoveltyDetectorConfig& config() const { return config_; }
  const NoveltyThreshold& threshold() const;
  nn::Sequential& autoencoder() { return autoencoder_; }

 private:
  friend class PipelineIo;

  /// Scores a reconstruction against its (preprocessed) input.
  double score_pair(const Image& preprocessed, const Image& reconstruction) const;

  /// True when batches may be preprocessed/scored on multiple threads:
  /// either no saliency stage, or one whose compute() is reentrant.
  bool batch_parallel_safe() const;

  NoveltyDetectorConfig config_;
  nn::Sequential autoencoder_;
  nn::Sequential* steering_model_ = nullptr;
  /// Built eagerly in the constructor (per config_.preprocessing) so that
  /// const scoring paths never mutate shared state — lazy construction here
  /// was a data race under concurrent scores()/classify() calls.
  std::unique_ptr<saliency::SaliencyMethod> saliency_;
  nn::SsimLoss ssim_;  ///< Shared SSIM machinery (also used for scoring).
  FrameValidator validator_;  ///< Input guard (see config_.validate_frames).
  std::optional<NoveltyThreshold> threshold_;
  bool fitted_ = false;
};

}  // namespace salnov::core
