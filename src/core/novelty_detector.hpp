// NoveltyDetector: the paper's end-to-end two-layer framework (Fig. 1).
//
//   input image -> [VBP of the trained steering CNN] -> one-class
//   autoencoder reconstruction -> similarity score -> threshold test.
//
// The detector is configurable along the paper's two experimental axes:
//   * preprocessing: VBP saliency masks (proposed) vs raw images
//     (Richter & Roy baseline),
//   * reconstruction loss/score: SSIM (proposed) vs pixel-wise MSE
//     (baseline),
// so every Fig. 5 configuration is one NoveltyDetectorConfig away.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/autoencoder.hpp"
#include "core/frame_validator.hpp"
#include "core/threshold.hpp"
#include "image/image.hpp"
#include "nn/quantized.hpp"
#include "nn/sequential.hpp"
#include "nn/ssim_loss.hpp"
#include "nn/trainer.hpp"
#include "saliency/saliency.hpp"
#include "tensor/rng.hpp"

namespace salnov::saliency {
class VisualBackProp;
}

namespace salnov::core {

enum class Preprocessing {
  kRaw,       ///< feed the grayscale image directly (baseline)
  kVbp,       ///< feed the VisualBackProp mask of the steering model (proposed)
  kGradient,  ///< gradient-saliency mask (ablation; slower than VBP)
  kLrp,       ///< layer-wise relevance propagation mask (ablation; slowest)
};

/// True for any preprocessing mode that needs the steering model.
constexpr bool uses_saliency(Preprocessing preprocessing) {
  return preprocessing != Preprocessing::kRaw;
}

enum class ReconstructionScore {
  kMse,   ///< pixel-wise reconstruction error; high = novel (baseline)
  kSsim,  ///< structural similarity; low = novel (proposed)
};

/// Scoring variants of one fitted detector, ordered by cost. They form the
/// serving runtime's degradation ladder (see serving/supervisor.hpp): when
/// the preferred path blows its deadline or misbehaves, the supervisor steps
/// down to a cheaper variant that shares the same trained autoencoder but
/// skips the expensive stages. Each variant is calibrated against its *own*
/// training-score ECDF at fit() time, so every rung has a meaningful
/// threshold.
enum class DetectorVariant : int {
  kPrimary = 0,        ///< configured preprocessing + configured score (VBP+SSIM as proposed)
  kPreprocessedMse,    ///< configured preprocessing + MSE score (skips the SSIM pass)
  kRawMse,             ///< raw pass-through + MSE (skips saliency entirely; Richter & Roy floor)
  kPrimaryQ8,          ///< kPrimary with int8-quantized forwards (bounded score drift)
  kPreprocessedMseQ8,  ///< kPreprocessedMse with int8-quantized forwards
};
/// The quantized variants are APPENDED (serialized ordinals are
/// load-bearing); ladder order lives in serving/health.hpp's rank table.
inline constexpr int kDetectorVariantCount = 5;
/// The float variants form a prefix: slots [0, kDetectorFloatVariantCount).
inline constexpr int kDetectorFloatVariantCount = 3;

/// True for the int8-quantized scoring variants.
constexpr bool detector_variant_quantized(DetectorVariant variant) {
  return variant == DetectorVariant::kPrimaryQ8 ||
         variant == DetectorVariant::kPreprocessedMseQ8;
}

/// The float variant a quantized variant mirrors (identity for float ones).
/// A q8 variant shares its peer's preprocessing and score metric; only the
/// forward passes (and therefore the calibrated ECDF) differ.
constexpr DetectorVariant detector_variant_float_peer(DetectorVariant variant) {
  return variant == DetectorVariant::kPrimaryQ8            ? DetectorVariant::kPrimary
         : variant == DetectorVariant::kPreprocessedMseQ8 ? DetectorVariant::kPreprocessedMse
                                                           : variant;
}

/// Stable tag for logs and artifacts ("primary", "preproc+mse", "raw+mse",
/// "primary-q8", "preproc+mse-q8").
const char* detector_variant_name(DetectorVariant variant);

struct NoveltyDetectorConfig {
  int64_t height = 60;   ///< Paper's pipeline resolution (60 x 160).
  int64_t width = 160;
  Preprocessing preprocessing = Preprocessing::kVbp;
  ReconstructionScore score = ReconstructionScore::kSsim;
  AutoencoderConfig autoencoder;  ///< Its input size is forced to (height, width).
  SsimOptions ssim;               ///< Window/constants for the SSIM loss and score.
  int64_t train_epochs = 20;
  int64_t batch_size = 32;        ///< Paper: 32.
  double learning_rate = 1e-3;    ///< Adam.
  double threshold_percentile = 0.99;  ///< Paper: 99th percentile of the ECDF.
  bool verbose = false;

  /// Guarded inference: when true (default), every frame entering the
  /// pipeline is screened by a FrameValidator and malformed frames (NaN/Inf,
  /// out-of-range, dead-constant) raise InvalidFrameError instead of being
  /// scored as if the world were novel. Runtime policy — not serialized.
  bool validate_frames = true;
  FrameValidatorConfig frame_validator;

  /// When true (default), fit() also calibrates the int8 quantization scales
  /// and the q8 variants' ECDF thresholds, enabling the vbp+ssim-q8 /
  /// vbp+mse-q8 serving rungs. Skipped silently for gradient/LRP
  /// preprocessing (no quantized saliency path exists for the ablations).
  bool fit_quantization = true;

  /// The paper's proposed configuration (VBP + SSIM).
  static NoveltyDetectorConfig proposed();
  /// The Richter & Roy baseline (raw images + MSE).
  static NoveltyDetectorConfig baseline_raw_mse();
  /// The intermediate ablation (VBP images + MSE loss).
  static NoveltyDetectorConfig vbp_mse();
};

/// Classification result for one input.
struct NoveltyResult {
  double score = 0.0;      ///< MSE error or mean SSIM, per config.
  double threshold = 0.0;
  bool is_novel = false;
};

class NoveltyDetector {
 public:
  explicit NoveltyDetector(NoveltyDetectorConfig config);

  /// Attaches the trained steering model whose saliency defines the
  /// preprocessing (required for Preprocessing::kVbp before fit/score;
  /// the model must outlive this detector and is not modified).
  void attach_steering_model(nn::Sequential* model);

  /// Trains the one-class autoencoder on the (preprocessed) training images
  /// and calibrates the novelty threshold on the training-score ECDF.
  /// Returns the autoencoder's per-epoch loss history.
  nn::TrainHistory fit(const std::vector<Image>& training_images, Rng& rng);

  /// Preprocessing stage only (VBP mask or pass-through). Throws
  /// InvalidFrameError on malformed frames when config().validate_frames.
  Image preprocess(const Image& input) const;

  /// The input guard used by the full pipeline (and by NoveltyMonitor for
  /// its sensor-fault path).
  const FrameValidator& frame_validator() const { return validator_; }

  /// Autoencoder reconstruction of a *preprocessed* image.
  Image reconstruct(const Image& preprocessed) const;

  /// Similarity/error score of one input (runs the full pipeline).
  double score(const Image& input) const;

  /// Scores a batch of inputs. Frames fan out across the parallel worker
  /// pool (see parallel/parallel_for.hpp; SALNOV_THREADS) whenever the
  /// configured preprocessing is safe to run concurrently; results are
  /// bit-identical to scoring each input serially, at any thread count.
  std::vector<double> scores(const std::vector<Image>& inputs) const;

  /// Full classification of one input. Requires fit() (or a loaded model).
  NoveltyResult classify(const Image& input) const;

  // --- Variant scoring (degraded-mode fallback chain) ----------------------
  // The serving runtime executes the pipeline stage by stage under per-stage
  // deadlines, so the variant API exposes each stage separately on top of
  // the whole-pipeline score_variant() convenience.

  /// The preprocessing a variant actually runs: kRawMse is always raw, the
  /// other variants use the configured preprocessing.
  Preprocessing variant_preprocessing(DetectorVariant variant) const;

  /// The score metric a variant uses: kPrimary follows the configuration,
  /// the degraded variants use MSE.
  ReconstructionScore variant_score_metric(DetectorVariant variant) const;

  /// Preprocessing stage for a variant (validated pass-through for kRawMse).
  Image variant_preprocess(DetectorVariant variant, const Image& input) const;

  /// Scores a reconstruction against its variant-preprocessed input.
  double variant_score_pair(DetectorVariant variant, const Image& preprocessed,
                            const Image& reconstruction) const;

  /// Variant-aware autoencoder reconstruction: the q8 variants run the
  /// int8-quantized forward (bit-identical across kernels/threads/batch
  /// sizes), the float variants are identical to reconstruct().
  Image variant_reconstruct(DetectorVariant variant, const Image& preprocessed) const;

  /// Batched counterpart; element i is bit-identical to
  /// variant_reconstruct(variant, *preprocessed[i]).
  std::vector<Image> variant_reconstruct_batch(DetectorVariant variant,
                                               const std::vector<const Image*>& preprocessed) const;

  /// Full pipeline score under one variant. score_variant(kPrimary, x) is
  /// identical to score(x).
  double score_variant(DetectorVariant variant, const Image& input) const;

  // --- Cross-frame batched scoring (serving-cluster hot path) --------------
  // These aggregate many frames into batch-B forward passes (autoencoder
  // GEMMs, VBP forward) instead of B batch-1 matvecs. The contract is strict
  // bitwise equivalence: element i of every batched call is bit-identical to
  // the corresponding batch-1 call, regardless of batch size or composition.
  // (Conv layers loop per sample; dense GEMM kernels accumulate each output
  // row in the same ascending-k order at any m; packing pads with zeros.)

  /// Batched preprocessing stage. Element i is bit-identical to
  /// variant_preprocess(variant, *inputs[i]); saliency-backed configurations
  /// share one batched VBP pass. Validates every input (same checks, same
  /// order, as the batch-1 entry).
  std::vector<Image> variant_preprocess_batch(DetectorVariant variant,
                                              const std::vector<const Image*>& inputs) const;

  /// Batched autoencoder reconstruction: one [B, H*W] forward. Element i is
  /// bit-identical to reconstruct(*preprocessed[i]).
  std::vector<Image> reconstruct_batch(const std::vector<const Image*>& preprocessed) const;

  /// Batched full-pipeline scoring under one variant. Element i is
  /// bit-identical to score_variant(variant, *inputs[i]).
  std::vector<double> score_batch(DetectorVariant variant,
                                  const std::vector<const Image*>& inputs) const;

  /// Per-variant calibration (training-score ECDF + threshold), fitted for
  /// all variants by fit() and persisted through PipelineIo. Throws
  /// std::logic_error when the detector was not fitted/loaded.
  const VariantCalibration& variant_calibration(DetectorVariant variant) const;

  /// Non-throwing lookup: nullptr when the variant is not calibrated (e.g.
  /// the q8 slots of a pipeline fitted or loaded without quantization).
  const VariantCalibration* variant_calibration_if(DetectorVariant variant) const;

  /// True when every FLOAT variant is calibrated — the contract older
  /// pipelines already satisfy; the q8 slots are optional extras.
  bool has_variant_calibrations() const;

  /// True when both q8 variants are calibrated.
  bool has_quant_calibrations() const;

  /// True when the quantized forwards are ready to run: quantization scales
  /// are fitted/loaded for the autoencoder and — for saliency
  /// configurations — the attached steering model.
  bool has_quant_path() const;

  /// The quantized model views, or nullptr when has_quant_path() is false
  /// (steering also requires attach_steering_model()).
  const nn::QuantizedForward* quant_autoencoder() const { return quant_ae_.get(); }
  const nn::QuantizedForward* quant_steering() const { return quant_steering_.get(); }

  bool is_fitted() const { return fitted_; }
  const NoveltyDetectorConfig& config() const { return config_; }
  const NoveltyThreshold& threshold() const;
  nn::Sequential& autoencoder() { return autoencoder_; }

 private:
  friend class PipelineIo;

  /// Scores a reconstruction against its (preprocessed) input.
  double score_pair(const Image& preprocessed, const Image& reconstruction) const;

  /// Shared entry guard: size check, wiring check, content validation.
  void validate_input(const Image& input, bool needs_saliency) const;

  /// True when batches may be preprocessed/scored on multiple threads:
  /// either no saliency stage, or one whose compute() is reentrant.
  bool batch_parallel_safe() const;

  /// True when the configuration admits a quantized path at all (raw or VBP
  /// preprocessing; the gradient/LRP ablations have no quantized saliency).
  bool quant_supported() const;

  /// (Re)builds quant_ae_ / quant_steering_ from the current models and
  /// scales. Called after fit, after attach_steering_model, and by
  /// PipelineIo::load — the wrappers cache layer pointers, so any model
  /// rebuild must run through here.
  void rebuild_quant_path();

  NoveltyDetectorConfig config_;
  nn::Sequential autoencoder_;
  nn::Sequential* steering_model_ = nullptr;
  /// Built eagerly in the constructor (per config_.preprocessing) so that
  /// const scoring paths never mutate shared state — lazy construction here
  /// was a data race under concurrent scores()/classify() calls.
  std::unique_ptr<saliency::SaliencyMethod> saliency_;
  nn::SsimLoss ssim_;  ///< Shared SSIM machinery (also used for scoring).
  FrameValidator validator_;  ///< Input guard (see config_.validate_frames).
  std::optional<NoveltyThreshold> threshold_;
  /// One calibration per DetectorVariant (same index), fitted by fit() and
  /// restored by PipelineIo::load. threshold_ mirrors the kPrimary entry.
  /// The q8 slots stay empty for pipelines fitted/loaded without
  /// quantization.
  std::array<std::optional<VariantCalibration>, kDetectorVariantCount> variant_calibrations_;

  /// Int8 per-layer activation scales (empty = no quantized path) and the
  /// quantized model views built from them. Weight scales are derived from
  /// the live weights, so only activation scales persist (PipelineIo v3).
  nn::QuantScales ae_quant_scales_;
  nn::QuantScales steering_quant_scales_;
  std::unique_ptr<nn::QuantizedForward> quant_ae_;
  std::unique_ptr<nn::QuantizedForward> quant_steering_;
  /// Non-owning view of saliency_ when it is VisualBackProp (the only
  /// method with a quantized entry); null otherwise.
  saliency::VisualBackProp* vbp_ = nullptr;

  bool fitted_ = false;
};

}  // namespace salnov::core
