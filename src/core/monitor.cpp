#include "core/monitor.hpp"

#include <stdexcept>

namespace salnov::core {

NoveltyMonitor::NoveltyMonitor(const NoveltyDetector& detector, MonitorConfig config)
    : detector_(detector), config_(config) {
  if (config_.trigger_frames < 1 || config_.release_frames < 1) {
    throw std::invalid_argument("NoveltyMonitor: frame counts must be >= 1");
  }
  if (config_.score_smoothing <= 0.0 || config_.score_smoothing > 1.0) {
    throw std::invalid_argument("NoveltyMonitor: smoothing must be in (0, 1]");
  }
  if (!detector.is_fitted()) {
    throw std::logic_error("NoveltyMonitor: detector is not fitted");
  }
}

MonitorUpdate NoveltyMonitor::update(const Image& frame) {
  const NoveltyResult result = detector_.classify(frame);
  ++frames_seen_;

  if (smoothed_.has_value()) {
    smoothed_ = (1.0 - config_.score_smoothing) * *smoothed_ + config_.score_smoothing * result.score;
  } else {
    smoothed_ = result.score;
  }

  if (result.is_novel) {
    ++consecutive_novel_;
    consecutive_familiar_ = 0;
  } else {
    ++consecutive_familiar_;
    consecutive_novel_ = 0;
  }

  switch (state_) {
    case MonitorState::kNominal:
    case MonitorState::kAlert:
      if (consecutive_novel_ >= config_.trigger_frames) {
        state_ = MonitorState::kFallback;
      } else if (consecutive_novel_ > 0) {
        state_ = MonitorState::kAlert;
      } else {
        state_ = MonitorState::kNominal;
      }
      break;
    case MonitorState::kFallback:
      if (consecutive_familiar_ >= config_.release_frames) {
        state_ = MonitorState::kNominal;
      }
      break;
  }

  MonitorUpdate update;
  update.raw_score = result.score;
  update.smoothed_score = *smoothed_;
  update.frame_novel = result.is_novel;
  update.state = state_;
  return update;
}

void NoveltyMonitor::reset() {
  state_ = MonitorState::kNominal;
  consecutive_novel_ = 0;
  consecutive_familiar_ = 0;
  smoothed_.reset();
}

}  // namespace salnov::core
