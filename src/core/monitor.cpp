#include "core/monitor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace salnov::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

NoveltyMonitor::NoveltyMonitor(const NoveltyDetector& detector, MonitorConfig config)
    : detector_(detector), config_(config) {
  if (config_.trigger_frames < 1 || config_.release_frames < 1 ||
      config_.sensor_trigger_frames < 1 || config_.sensor_release_frames < 1) {
    throw std::invalid_argument("NoveltyMonitor: frame counts must be >= 1");
  }
  if (config_.score_smoothing <= 0.0 || config_.score_smoothing > 1.0) {
    throw std::invalid_argument("NoveltyMonitor: smoothing must be in (0, 1]");
  }
  if (!detector.is_fitted()) {
    throw std::logic_error("NoveltyMonitor: detector is not fitted");
  }
}

MonitorUpdate NoveltyMonitor::update(const Image& frame) {
  // Sensor screening runs before the detector: a malformed frame must not be
  // scored (its "novelty" would be meaningless), and a frozen frame must not
  // be scored either — a stuck camera showing a familiar scene would
  // otherwise keep releasing the fallback it should be triggering.
  const FrameFault fault = detector_.frame_validator().check(frame);
  bool frozen = false;
  if (fault == FrameFault::kNone) {
    frozen = config_.detect_frozen_frames && last_valid_frame_.has_value() &&
             last_valid_frame_->tensor() == frame.tensor();
    last_valid_frame_ = frame;
  } else {
    // An invalid frame breaks any identical-frame chain.
    last_valid_frame_.reset();
  }

  if (fault != FrameFault::kNone || frozen) return update_sensor_bad(fault, frozen);
  const NoveltyResult result = detector_.classify(frame);
  return update_scored(result.score, result.is_novel);
}

MonitorUpdate NoveltyMonitor::update_sensor_bad(FrameFault fault, bool frozen) {
  ++frames_seen_;
  MonitorUpdate u;
  u.frame_fault = fault;
  u.frame_frozen = frozen;
  ++consecutive_sensor_bad_;
  consecutive_sensor_good_ = 0;
  // A broken frame is evidence of neither novelty nor familiarity.
  consecutive_novel_ = 0;
  consecutive_familiar_ = 0;
  u.frame_scored = false;
  u.frame_novel = false;
  u.raw_score = kNaN;
  u.smoothed_score = smoothed_.value_or(kNaN);
  advance_state(u, /*sensor_bad=*/true);
  return u;
}

MonitorUpdate NoveltyMonitor::update_scored(double raw_score, bool frame_novel) {
  ++frames_seen_;
  MonitorUpdate u;
  consecutive_sensor_bad_ = 0;
  ++consecutive_sensor_good_;

  // Non-finite containment: a NaN/Inf score is itself a fault signal and is
  // kept out of the EMA, which would otherwise stay NaN forever.
  if (std::isfinite(raw_score)) {
    if (smoothed_.has_value()) {
      smoothed_ = (1.0 - config_.score_smoothing) * *smoothed_ + config_.score_smoothing * raw_score;
    } else {
      smoothed_ = raw_score;
    }
  }

  if (frame_novel) {
    ++consecutive_novel_;
    consecutive_familiar_ = 0;
  } else {
    ++consecutive_familiar_;
    consecutive_novel_ = 0;
  }
  u.frame_scored = true;
  u.frame_novel = frame_novel;
  u.raw_score = raw_score;
  u.smoothed_score = smoothed_.value_or(kNaN);
  advance_state(u, /*sensor_bad=*/false);
  return u;
}

void NoveltyMonitor::advance_state(MonitorUpdate& u, bool sensor_bad) {
  // State transitions. Sensor faults dominate: they can be entered from any
  // state, and while in kSensorFault the novelty machine is suspended (its
  // streaks still accumulate on scored frames, so a release into a novel
  // world re-triggers the novelty path immediately afterwards).
  if (state_ == MonitorState::kSensorFault) {
    if (consecutive_sensor_good_ >= config_.sensor_release_frames) {
      state_ = MonitorState::kNominal;
    }
  } else if (consecutive_sensor_bad_ >= config_.sensor_trigger_frames) {
    state_ = MonitorState::kSensorFault;
  } else if (!sensor_bad) {
    switch (state_) {
      case MonitorState::kNominal:
      case MonitorState::kAlert:
        if (consecutive_novel_ >= config_.trigger_frames) {
          state_ = MonitorState::kFallback;
        } else if (consecutive_novel_ > 0) {
          state_ = MonitorState::kAlert;
        } else {
          state_ = MonitorState::kNominal;
        }
        break;
      case MonitorState::kFallback:
        if (consecutive_familiar_ >= config_.release_frames) {
          state_ = MonitorState::kNominal;
        }
        break;
      case MonitorState::kSensorFault:
        break;  // unreachable: handled above
    }
  }
  // Remaining case — a sensor-bad frame below the trigger count — holds the
  // current state (mirroring how a single novel frame only raises kAlert).

  u.state = state_;
  u.fallback_path = state_ == MonitorState::kFallback      ? FallbackPath::kNovelty
                    : state_ == MonitorState::kSensorFault ? FallbackPath::kSensorFault
                                                           : FallbackPath::kNone;
}

void NoveltyMonitor::reset() {
  state_ = MonitorState::kNominal;
  consecutive_novel_ = 0;
  consecutive_familiar_ = 0;
  consecutive_sensor_bad_ = 0;
  consecutive_sensor_good_ = 0;
  smoothed_.reset();
  last_valid_frame_.reset();
}

}  // namespace salnov::core
