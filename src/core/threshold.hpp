// Novelty threshold calibration.
//
// Following the paper (and Richter & Roy): fit the empirical CDF of the
// training-set reconstruction scores and flag an input as novel when its
// score falls outside the 99th percentile. The tail direction depends on
// the score: reconstruction *error* (MSE) flags the high tail, similarity
// (SSIM) flags the low tail.
#pragma once

#include <iosfwd>
#include <vector>

#include "metrics/ecdf.hpp"

namespace salnov::core {

enum class ScoreOrientation {
  kHighIsNovel,  ///< e.g. MSE reconstruction error
  kLowIsNovel,   ///< e.g. SSIM similarity
};

class NoveltyThreshold {
 public:
  NoveltyThreshold() = default;

  /// Calibrates from training scores: the threshold is the `percentile`
  /// quantile of the scores for kHighIsNovel, or the (1 - percentile)
  /// quantile for kLowIsNovel. `percentile` defaults to the paper's 0.99.
  static NoveltyThreshold calibrate(const std::vector<double>& training_scores,
                                    ScoreOrientation orientation, double percentile = 0.99);

  /// Constructs directly from a known threshold (used by deserialization).
  NoveltyThreshold(double threshold, ScoreOrientation orientation);

  /// True when `score` falls outside the calibrated threshold. Non-finite
  /// scores (NaN, +/-Inf reconstruction output) are always novel: a score
  /// the pipeline cannot even represent is the strongest possible evidence
  /// that the input (or the model) left the training distribution.
  bool is_novel(double score) const;
  double threshold() const { return threshold_; }
  ScoreOrientation orientation() const { return orientation_; }

  void save(std::ostream& os) const;
  static NoveltyThreshold load(std::istream& is);

 private:
  double threshold_ = 0.0;
  ScoreOrientation orientation_ = ScoreOrientation::kHighIsNovel;
};

/// Calibration artifact for one detector scoring variant: the full
/// training-score ECDF plus the threshold derived from it. The serving
/// runtime's degraded-mode fallback chain keeps one of these per scoring
/// level (primary, preprocessed+MSE, raw+MSE), and the whole struct is
/// persisted through PipelineIo so a reloaded pipeline degrades against
/// exactly the distributions it was fitted on.
struct VariantCalibration {
  EmpiricalCdf cdf;
  NoveltyThreshold threshold;

  /// Builds the ECDF of `training_scores` (non-finite samples dropped) and
  /// derives the threshold at `percentile` for the given orientation.
  static VariantCalibration calibrate(const std::vector<double>& training_scores,
                                      ScoreOrientation orientation, double percentile = 0.99);

  void save(std::ostream& os) const;
  static VariantCalibration load(std::istream& is);
};

}  // namespace salnov::core
