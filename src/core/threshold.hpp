// Novelty threshold calibration.
//
// Following the paper (and Richter & Roy): fit the empirical CDF of the
// training-set reconstruction scores and flag an input as novel when its
// score falls outside the 99th percentile. The tail direction depends on
// the score: reconstruction *error* (MSE) flags the high tail, similarity
// (SSIM) flags the low tail.
#pragma once

#include <iosfwd>
#include <vector>

namespace salnov::core {

enum class ScoreOrientation {
  kHighIsNovel,  ///< e.g. MSE reconstruction error
  kLowIsNovel,   ///< e.g. SSIM similarity
};

class NoveltyThreshold {
 public:
  NoveltyThreshold() = default;

  /// Calibrates from training scores: the threshold is the `percentile`
  /// quantile of the scores for kHighIsNovel, or the (1 - percentile)
  /// quantile for kLowIsNovel. `percentile` defaults to the paper's 0.99.
  static NoveltyThreshold calibrate(const std::vector<double>& training_scores,
                                    ScoreOrientation orientation, double percentile = 0.99);

  /// Constructs directly from a known threshold (used by deserialization).
  NoveltyThreshold(double threshold, ScoreOrientation orientation);

  bool is_novel(double score) const;
  double threshold() const { return threshold_; }
  ScoreOrientation orientation() const { return orientation_; }

  void save(std::ostream& os) const;
  static NoveltyThreshold load(std::istream& is);

 private:
  double threshold_ = 0.0;
  ScoreOrientation orientation_ = ScoreOrientation::kHighIsNovel;
};

}  // namespace salnov::core
