#include "core/threshold.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace salnov::core {

NoveltyThreshold::NoveltyThreshold(double threshold, ScoreOrientation orientation)
    : threshold_(threshold), orientation_(orientation) {}

NoveltyThreshold NoveltyThreshold::calibrate(const std::vector<double>& training_scores,
                                             ScoreOrientation orientation, double percentile) {
  return VariantCalibration::calibrate(training_scores, orientation, percentile).threshold;
}

bool NoveltyThreshold::is_novel(double score) const {
  if (!std::isfinite(score)) return true;
  return orientation_ == ScoreOrientation::kHighIsNovel ? score > threshold_ : score < threshold_;
}

void NoveltyThreshold::save(std::ostream& os) const {
  write_f64(os, threshold_);
  write_u32(os, orientation_ == ScoreOrientation::kHighIsNovel ? 0u : 1u);
}

NoveltyThreshold NoveltyThreshold::load(std::istream& is) {
  const double threshold = read_f64(is);
  const uint32_t tag = read_u32(is);
  if (tag > 1) throw SerializationError("NoveltyThreshold::load: bad orientation tag");
  return NoveltyThreshold(threshold,
                          tag == 0 ? ScoreOrientation::kHighIsNovel : ScoreOrientation::kLowIsNovel);
}

VariantCalibration VariantCalibration::calibrate(const std::vector<double>& training_scores,
                                                 ScoreOrientation orientation, double percentile) {
  if (percentile <= 0.0 || percentile >= 1.0) {
    throw std::invalid_argument("VariantCalibration: percentile must be in (0, 1)");
  }
  EmpiricalCdf cdf(training_scores);
  // Conservative order-statistic quantiles: the threshold is always an
  // actual training score, so at most a (1 - percentile) fraction of the
  // training set is flagged even when ties dominate the distribution (the
  // interpolating quantile() can land between tied values and flag a whole
  // duplicate block).
  const double cut = orientation == ScoreOrientation::kHighIsNovel
                         ? cdf.upper_quantile(percentile)
                         : cdf.lower_quantile(1.0 - percentile);
  NoveltyThreshold threshold(cut, orientation);
  return VariantCalibration{std::move(cdf), threshold};
}

void VariantCalibration::save(std::ostream& os) const {
  cdf.save(os);
  threshold.save(os);
}

VariantCalibration VariantCalibration::load(std::istream& is) {
  EmpiricalCdf cdf = EmpiricalCdf::load(is);
  const NoveltyThreshold threshold = NoveltyThreshold::load(is);
  return VariantCalibration{std::move(cdf), threshold};
}

}  // namespace salnov::core
