// FrameValidator: guarded-inference entry check for camera frames.
//
// The detector's novelty score answers "is this frame outside the training
// distribution?", which silently conflates two very different situations:
// the world being novel and the *sensor* being broken. A NaN-filled,
// wrong-sized, saturated, or dead-constant frame should never reach the
// scoring pipeline — it should be rejected here, so the runtime policy
// (NoveltyMonitor) can route it down a sensor-fault path distinct from
// novelty fallback.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "image/image.hpp"

namespace salnov::core {

/// What is wrong with a frame; kNone means the frame is usable.
enum class FrameFault {
  kNone,          ///< frame passed every check
  kWrongSize,     ///< dimensions differ from the pipeline resolution
  kNonFinite,     ///< contains NaN or +/-Inf pixels
  kOutOfRange,    ///< pixels outside [0, 1] beyond the configured slack
  kNearConstant,  ///< (near-)zero variance: dead or disconnected sensor
};

/// Stable human-readable tag ("none", "wrong-size", ...).
const char* frame_fault_name(FrameFault fault);

struct FrameValidatorConfig {
  /// Allowed overshoot beyond [0, 1] before a pixel counts as out of range
  /// (PGM-decoded inputs are exact, but resampled/blended frames may carry
  /// float dust).
  double range_slack = 1e-3;
  /// Frames whose pixel standard deviation falls below this are flagged as
  /// near-constant. Deliberately tiny: a dark night frame has little
  /// contrast but is not *constant*; a dead sensor is.
  double min_stddev = 1e-6;
  /// Master switches so deployments can relax individual checks.
  bool check_finite = true;
  bool check_range = true;
  bool check_constant = true;
};

/// Thrown by guarded inference when a frame fails validation. Subclasses
/// std::invalid_argument so callers treating bad inputs generically keep
/// working; fault() says which check fired.
class InvalidFrameError : public std::invalid_argument {
 public:
  InvalidFrameError(FrameFault fault, const std::string& what)
      : std::invalid_argument(what), fault_(fault) {}
  FrameFault fault() const { return fault_; }

 private:
  FrameFault fault_;
};

class FrameValidator {
 public:
  FrameValidator(int64_t height, int64_t width, FrameValidatorConfig config = {});

  /// Returns the first failing check (size, finiteness, range, constancy —
  /// in that order), or kNone for a usable frame.
  FrameFault check(const Image& frame) const;

  bool valid(const Image& frame) const { return check(frame) == FrameFault::kNone; }

  /// Throws InvalidFrameError if check() fails; `context` prefixes the
  /// message (e.g. "NoveltyDetector").
  void require_valid(const Image& frame, const std::string& context) const;

  int64_t height() const { return height_; }
  int64_t width() const { return width_; }
  const FrameValidatorConfig& config() const { return config_; }

 private:
  int64_t height_;
  int64_t width_;
  FrameValidatorConfig config_;
};

}  // namespace salnov::core
