#include "core/novelty_detector.hpp"

#include <cstring>
#include <stdexcept>

#include "metrics/mse.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "parallel/parallel_for.hpp"
#include "saliency/gradient_saliency.hpp"
#include "saliency/lrp.hpp"
#include "saliency/visual_backprop.hpp"

namespace salnov::core {
namespace {

std::unique_ptr<saliency::SaliencyMethod> make_saliency(Preprocessing preprocessing) {
  switch (preprocessing) {
    case Preprocessing::kVbp:
      return std::make_unique<saliency::VisualBackProp>();
    case Preprocessing::kGradient:
      return std::make_unique<saliency::GradientSaliency>();
    case Preprocessing::kLrp:
      return std::make_unique<saliency::LayerwiseRelevancePropagation>();
    case Preprocessing::kRaw:
      return nullptr;
  }
  throw std::logic_error("make_saliency: unknown preprocessing");
}

/// Runs fn(i) for i in [0, n), fanning out across the pool when the
/// per-index work is reentrant. Each index owns its own output slot, so the
/// parallel and serial paths are bit-identical.
void fan_out(int64_t n, bool parallel_ok, const std::function<void(int64_t)>& fn) {
  if (!parallel_ok) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  parallel::parallel_for(0, n, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace

const char* detector_variant_name(DetectorVariant variant) {
  switch (variant) {
    case DetectorVariant::kPrimary:
      return "primary";
    case DetectorVariant::kPreprocessedMse:
      return "preproc+mse";
    case DetectorVariant::kRawMse:
      return "raw+mse";
    case DetectorVariant::kPrimaryQ8:
      return "primary-q8";
    case DetectorVariant::kPreprocessedMseQ8:
      return "preproc+mse-q8";
  }
  return "unknown";
}

NoveltyDetectorConfig NoveltyDetectorConfig::proposed() { return NoveltyDetectorConfig{}; }

NoveltyDetectorConfig NoveltyDetectorConfig::baseline_raw_mse() {
  NoveltyDetectorConfig config;
  config.preprocessing = Preprocessing::kRaw;
  config.score = ReconstructionScore::kMse;
  return config;
}

NoveltyDetectorConfig NoveltyDetectorConfig::vbp_mse() {
  NoveltyDetectorConfig config;
  config.preprocessing = Preprocessing::kVbp;
  config.score = ReconstructionScore::kMse;
  return config;
}

NoveltyDetector::NoveltyDetector(NoveltyDetectorConfig config)
    : config_([&] {
        if (config.height <= 0 || config.width <= 0) {
          throw std::invalid_argument("NoveltyDetector: non-positive input size");
        }
        return std::move(config);
      }()),
      saliency_(make_saliency(config_.preprocessing)),
      ssim_(config_.height, config_.width, config_.ssim),
      validator_(config_.height, config_.width, config_.frame_validator) {
  config_.autoencoder.input_height = config_.height;
  config_.autoencoder.input_width = config_.width;
  vbp_ = dynamic_cast<saliency::VisualBackProp*>(saliency_.get());
}

void NoveltyDetector::attach_steering_model(nn::Sequential* model) {
  if (model == nullptr) throw std::invalid_argument("attach_steering_model: null model");
  steering_model_ = model;
  // A loaded pipeline may carry steering scales from before the model was
  // attached; the quantized view can only be built now.
  rebuild_quant_path();
}

bool NoveltyDetector::quant_supported() const {
  return config_.preprocessing == Preprocessing::kRaw ||
         (config_.preprocessing == Preprocessing::kVbp && vbp_ != nullptr);
}

void NoveltyDetector::rebuild_quant_path() {
  quant_ae_.reset();
  quant_steering_.reset();
  if (!quant_supported()) return;
  if (fitted_ && !ae_quant_scales_.empty()) {
    quant_ae_ = std::make_unique<nn::QuantizedForward>(autoencoder_, ae_quant_scales_);
  }
  if (steering_model_ != nullptr && !steering_quant_scales_.empty()) {
    quant_steering_ = std::make_unique<nn::QuantizedForward>(*steering_model_, steering_quant_scales_);
  }
}

bool NoveltyDetector::has_quant_path() const {
  if (quant_ae_ == nullptr) return false;
  return !uses_saliency(config_.preprocessing) || quant_steering_ != nullptr;
}

void NoveltyDetector::validate_input(const Image& input, bool needs_saliency) const {
  if (input.height() != config_.height || input.width() != config_.width) {
    throw InvalidFrameError(
        FrameFault::kWrongSize,
        "NoveltyDetector: input is " + std::to_string(input.height()) + "x" +
            std::to_string(input.width()) + ", pipeline expects " + std::to_string(config_.height) +
            "x" + std::to_string(config_.width));
  }
  if (needs_saliency && steering_model_ == nullptr) {
    throw std::logic_error("NoveltyDetector: saliency preprocessing requires attach_steering_model()");
  }
  // Content checks run after the configuration errors above so that a
  // mis-wired pipeline surfaces as logic_error, not as a sensor fault.
  if (config_.validate_frames) validator_.require_valid(input, "NoveltyDetector");
}

Image NoveltyDetector::preprocess(const Image& input) const {
  return variant_preprocess(DetectorVariant::kPrimary, input);
}

Preprocessing NoveltyDetector::variant_preprocessing(DetectorVariant variant) const {
  return variant == DetectorVariant::kRawMse ? Preprocessing::kRaw : config_.preprocessing;
}

ReconstructionScore NoveltyDetector::variant_score_metric(DetectorVariant variant) const {
  return detector_variant_float_peer(variant) == DetectorVariant::kPrimary
             ? config_.score
             : ReconstructionScore::kMse;
}

Image NoveltyDetector::variant_preprocess(DetectorVariant variant, const Image& input) const {
  const bool saliency = uses_saliency(variant_preprocessing(variant));
  validate_input(input, saliency);
  if (!saliency) return input;
  if (detector_variant_quantized(variant)) {
    if (quant_steering_ == nullptr || vbp_ == nullptr) {
      throw std::logic_error("NoveltyDetector: quantized saliency path is not available");
    }
    return vbp_->compute_quantized(*quant_steering_, input);
  }
  // saliency_ exists since construction, so this const path mutates nothing
  // of the detector's and is safe under the concurrent batch fan-out.
  return saliency_->compute(*steering_model_, input);
}

bool NoveltyDetector::batch_parallel_safe() const {
  return saliency_ == nullptr || saliency_->thread_safe();
}

nn::TrainHistory NoveltyDetector::fit(const std::vector<Image>& training_images, Rng& rng) {
  if (training_images.empty()) throw std::invalid_argument("NoveltyDetector::fit: no training images");

  // Refit invalidates any previous quantized state up front: stage 2
  // replaces the autoencoder's layers, which the quantized views point at.
  quant_ae_.reset();
  quant_steering_.reset();
  ae_quant_scales_ = {};
  steering_quant_scales_ = {};
  variant_calibrations_[static_cast<size_t>(DetectorVariant::kPrimaryQ8)].reset();
  variant_calibrations_[static_cast<size_t>(DetectorVariant::kPreprocessedMseQ8)].reset();

  // Stage 1: preprocess every training image (VBP mask or pass-through),
  // one image per pool chunk.
  std::vector<Image> preprocessed(training_images.size());
  fan_out(static_cast<int64_t>(training_images.size()), batch_parallel_safe(), [&](int64_t i) {
    preprocessed[static_cast<size_t>(i)] = preprocess(training_images[static_cast<size_t>(i)]);
  });

  const int64_t n = static_cast<int64_t>(preprocessed.size());
  const int64_t dim = config_.height * config_.width;
  Tensor data({n, dim});
  for (int64_t i = 0; i < n; ++i) {
    data.set_slice0(i, preprocessed[static_cast<size_t>(i)].flattened());
  }

  // Stage 2: train the one-class autoencoder to reconstruct its input.
  autoencoder_ = build_autoencoder(config_.autoencoder, rng);
  nn::MseLoss mse_loss;
  std::unique_ptr<nn::SsimLoss> ssim_loss;
  nn::Loss* loss = &mse_loss;
  if (config_.score == ReconstructionScore::kSsim) {
    ssim_loss = std::make_unique<nn::SsimLoss>(config_.height, config_.width, config_.ssim);
    loss = ssim_loss.get();
  }
  nn::Adam optimizer(config_.learning_rate);
  nn::Trainer trainer(autoencoder_, *loss, optimizer, rng.split());
  nn::TrainOptions options;
  options.epochs = config_.train_epochs;
  options.batch_size = config_.batch_size;
  options.verbose = config_.verbose;
  const nn::TrainHistory history = trainer.fit(data, data, options);
  fitted_ = true;

  // Stage 3: calibrate the novelty threshold on the training-score ECDF —
  // once per scoring variant, so the serving runtime's degraded modes each
  // test against their own fitted distribution. Reconstruction + scoring per
  // image is independent (inference-mode forwards only), so calibration fans
  // out unconditionally.
  const bool saliency_configured = uses_saliency(config_.preprocessing);
  std::vector<double> primary_scores(preprocessed.size());
  std::vector<double> preproc_mse_scores(preprocessed.size());
  std::vector<double> raw_mse_scores(preprocessed.size());
  fan_out(n, true, [&](int64_t i) {
    const size_t s = static_cast<size_t>(i);
    const Image& image = preprocessed[s];
    const Image recon = reconstruct(image);
    primary_scores[s] = variant_score_pair(DetectorVariant::kPrimary, image, recon);
    preproc_mse_scores[s] = variant_score_pair(DetectorVariant::kPreprocessedMse, image, recon);
    if (saliency_configured) {
      // The raw variant feeds the raw frame through the same autoencoder;
      // its threshold is meaningful because it is calibrated on exactly
      // this statistic over the training set.
      const Image& raw = training_images[s];
      raw_mse_scores[s] = variant_score_pair(DetectorVariant::kRawMse, raw, reconstruct(raw));
    } else {
      raw_mse_scores[s] = preproc_mse_scores[s];
    }
  });
  const ScoreOrientation orientation = config_.score == ReconstructionScore::kMse
                                           ? ScoreOrientation::kHighIsNovel
                                           : ScoreOrientation::kLowIsNovel;
  variant_calibrations_[0] =
      VariantCalibration::calibrate(primary_scores, orientation, config_.threshold_percentile);
  variant_calibrations_[1] = VariantCalibration::calibrate(
      preproc_mse_scores, ScoreOrientation::kHighIsNovel, config_.threshold_percentile);
  variant_calibrations_[2] = VariantCalibration::calibrate(
      raw_mse_scores, ScoreOrientation::kHighIsNovel, config_.threshold_percentile);
  threshold_ = variant_calibrations_[0]->threshold;

  // Stage 4 (optional): int8 quantization. Fits per-layer activation scales
  // over the training set, builds the quantized model views, and calibrates
  // the q8 variants against their own training-score ECDFs. Draws nothing
  // from `rng`, so enabling or disabling quantization leaves every float
  // artifact (weights, thresholds) bit-identical.
  if (config_.fit_quantization && quant_supported()) {
    // Activation maxima are computed over the stacked batch tensors — the
    // per-layer max of a batch forward equals the max over batch-1 calls.
    ae_quant_scales_ = nn::QuantizedForward::calibrate(autoencoder_, {&data});
    if (saliency_configured && steering_model_ != nullptr) {
      Tensor steer_data({n, 1, config_.height, config_.width});
      for (int64_t i = 0; i < n; ++i) {
        std::memcpy(steer_data.data() + i * dim, training_images[static_cast<size_t>(i)].tensor().data(),
                    static_cast<size_t>(dim) * sizeof(float));
      }
      steering_quant_scales_ = nn::QuantizedForward::calibrate(*steering_model_, {&steer_data});
    }
    rebuild_quant_path();
    if (has_quant_path()) {
      std::vector<double> primary_q8_scores(preprocessed.size());
      std::vector<double> preproc_mse_q8_scores(preprocessed.size());
      fan_out(n, true, [&](int64_t i) {
        const size_t s = static_cast<size_t>(i);
        const Image pq = variant_preprocess(DetectorVariant::kPrimaryQ8, training_images[s]);
        const Image rq = variant_reconstruct(DetectorVariant::kPrimaryQ8, pq);
        primary_q8_scores[s] = variant_score_pair(DetectorVariant::kPrimaryQ8, pq, rq);
        preproc_mse_q8_scores[s] =
            variant_score_pair(DetectorVariant::kPreprocessedMseQ8, pq, rq);
      });
      variant_calibrations_[static_cast<size_t>(DetectorVariant::kPrimaryQ8)] =
          VariantCalibration::calibrate(primary_q8_scores, orientation,
                                        config_.threshold_percentile);
      variant_calibrations_[static_cast<size_t>(DetectorVariant::kPreprocessedMseQ8)] =
          VariantCalibration::calibrate(preproc_mse_q8_scores, ScoreOrientation::kHighIsNovel,
                                        config_.threshold_percentile);
    }
  }
  return history;
}

Image NoveltyDetector::reconstruct(const Image& preprocessed) const {
  if (!fitted_) throw std::logic_error("NoveltyDetector: not fitted");
  const Tensor input = preprocessed.flattened().reshape({1, config_.height * config_.width});
  // forward() is stateless in inference mode; the const_cast mirrors
  // Sequential::forward_collect's reasoning.
  const Tensor output = const_cast<nn::Sequential&>(autoencoder_).forward(input, nn::Mode::kInfer);
  return Image(config_.height, config_.width, output.reshape({config_.height, config_.width}));
}

double NoveltyDetector::score_pair(const Image& preprocessed, const Image& reconstruction) const {
  return variant_score_pair(DetectorVariant::kPrimary, preprocessed, reconstruction);
}

double NoveltyDetector::variant_score_pair(DetectorVariant variant, const Image& preprocessed,
                                           const Image& reconstruction) const {
  if (variant_score_metric(variant) == ReconstructionScore::kMse) {
    return mse(reconstruction, preprocessed);
  }
  return ssim_.mean_ssim(reconstruction.flattened(), preprocessed.flattened());
}

std::vector<Image> NoveltyDetector::variant_preprocess_batch(
    DetectorVariant variant, const std::vector<const Image*>& inputs) const {
  const bool saliency = uses_saliency(variant_preprocessing(variant));
  for (const Image* input : inputs) {
    if (input == nullptr) {
      throw std::invalid_argument("variant_preprocess_batch: null input image");
    }
    validate_input(*input, saliency);
  }
  if (!saliency) {
    std::vector<Image> out;
    out.reserve(inputs.size());
    for (const Image* input : inputs) out.push_back(*input);
    return out;
  }
  if (detector_variant_quantized(variant)) {
    if (quant_steering_ == nullptr || vbp_ == nullptr) {
      throw std::logic_error("NoveltyDetector: quantized saliency path is not available");
    }
    return vbp_->compute_batch_quantized(*quant_steering_, inputs);
  }
  return saliency_->compute_batch(*steering_model_, inputs);
}

std::vector<Image> NoveltyDetector::reconstruct_batch(
    const std::vector<const Image*>& preprocessed) const {
  if (!fitted_) throw std::logic_error("NoveltyDetector: not fitted");
  if (preprocessed.empty()) return {};
  const int64_t batch = static_cast<int64_t>(preprocessed.size());
  const int64_t dim = config_.height * config_.width;
  Tensor input({batch, dim});
  for (int64_t n = 0; n < batch; ++n) {
    const Image* image = preprocessed[static_cast<size_t>(n)];
    if (image == nullptr) throw std::invalid_argument("reconstruct_batch: null image");
    if (image->numel() != dim) {
      throw std::invalid_argument("reconstruct_batch: image size does not match the pipeline");
    }
    input.set_slice0(n, image->flattened());
  }
  const Tensor output = const_cast<nn::Sequential&>(autoencoder_).forward(input, nn::Mode::kInfer);
  std::vector<Image> result(preprocessed.size());
  for (int64_t n = 0; n < batch; ++n) {
    Tensor row({dim});
    std::memcpy(row.data(), output.data() + n * dim, static_cast<size_t>(dim) * sizeof(float));
    result[static_cast<size_t>(n)] =
        Image(config_.height, config_.width, row.reshape({config_.height, config_.width}));
  }
  return result;
}

std::vector<double> NoveltyDetector::score_batch(DetectorVariant variant,
                                                 const std::vector<const Image*>& inputs) const {
  const std::vector<Image> preprocessed = variant_preprocess_batch(variant, inputs);
  std::vector<const Image*> views;
  views.reserve(preprocessed.size());
  for (const Image& image : preprocessed) views.push_back(&image);
  const std::vector<Image> reconstructions = variant_reconstruct_batch(variant, views);
  std::vector<double> scores(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    scores[i] = variant_score_pair(variant, preprocessed[i], reconstructions[i]);
  }
  return scores;
}

Image NoveltyDetector::variant_reconstruct(DetectorVariant variant,
                                           const Image& preprocessed) const {
  if (!detector_variant_quantized(variant)) return reconstruct(preprocessed);
  if (!fitted_) throw std::logic_error("NoveltyDetector: not fitted");
  if (quant_ae_ == nullptr) {
    throw std::logic_error("NoveltyDetector: quantized autoencoder path is not available");
  }
  const Tensor input = preprocessed.flattened().reshape({1, config_.height * config_.width});
  const Tensor output = quant_ae_->forward(input);
  return Image(config_.height, config_.width, output.reshape({config_.height, config_.width}));
}

std::vector<Image> NoveltyDetector::variant_reconstruct_batch(
    DetectorVariant variant, const std::vector<const Image*>& preprocessed) const {
  if (!detector_variant_quantized(variant)) return reconstruct_batch(preprocessed);
  if (!fitted_) throw std::logic_error("NoveltyDetector: not fitted");
  if (quant_ae_ == nullptr) {
    throw std::logic_error("NoveltyDetector: quantized autoencoder path is not available");
  }
  if (preprocessed.empty()) return {};
  const int64_t batch = static_cast<int64_t>(preprocessed.size());
  const int64_t dim = config_.height * config_.width;
  Tensor input({batch, dim});
  for (int64_t n = 0; n < batch; ++n) {
    const Image* image = preprocessed[static_cast<size_t>(n)];
    if (image == nullptr) throw std::invalid_argument("variant_reconstruct_batch: null image");
    if (image->numel() != dim) {
      throw std::invalid_argument("variant_reconstruct_batch: image size does not match the pipeline");
    }
    input.set_slice0(n, image->flattened());
  }
  const Tensor output = quant_ae_->forward(input);
  std::vector<Image> result(preprocessed.size());
  for (int64_t n = 0; n < batch; ++n) {
    Tensor row({dim});
    std::memcpy(row.data(), output.data() + n * dim, static_cast<size_t>(dim) * sizeof(float));
    result[static_cast<size_t>(n)] =
        Image(config_.height, config_.width, row.reshape({config_.height, config_.width}));
  }
  return result;
}

double NoveltyDetector::score(const Image& input) const {
  return score_variant(DetectorVariant::kPrimary, input);
}

double NoveltyDetector::score_variant(DetectorVariant variant, const Image& input) const {
  const Image p = variant_preprocess(variant, input);
  return variant_score_pair(variant, p, variant_reconstruct(variant, p));
}

const VariantCalibration& NoveltyDetector::variant_calibration(DetectorVariant variant) const {
  const auto& slot = variant_calibrations_[static_cast<size_t>(variant)];
  if (!slot.has_value()) {
    throw std::logic_error(std::string("NoveltyDetector: variant '") +
                           detector_variant_name(variant) +
                           "' is not calibrated (call fit or load)");
  }
  return *slot;
}

const VariantCalibration* NoveltyDetector::variant_calibration_if(DetectorVariant variant) const {
  const auto& slot = variant_calibrations_[static_cast<size_t>(variant)];
  return slot.has_value() ? &*slot : nullptr;
}

bool NoveltyDetector::has_variant_calibrations() const {
  for (int v = 0; v < kDetectorFloatVariantCount; ++v) {
    if (!variant_calibrations_[static_cast<size_t>(v)].has_value()) return false;
  }
  return true;
}

bool NoveltyDetector::has_quant_calibrations() const {
  return variant_calibrations_[static_cast<size_t>(DetectorVariant::kPrimaryQ8)].has_value() &&
         variant_calibrations_[static_cast<size_t>(DetectorVariant::kPreprocessedMseQ8)]
             .has_value();
}

std::vector<double> NoveltyDetector::scores(const std::vector<Image>& inputs) const {
  std::vector<double> result(inputs.size());
  fan_out(static_cast<int64_t>(inputs.size()), batch_parallel_safe(), [&](int64_t i) {
    result[static_cast<size_t>(i)] = score(inputs[static_cast<size_t>(i)]);
  });
  return result;
}

NoveltyResult NoveltyDetector::classify(const Image& input) const {
  const NoveltyThreshold& t = threshold();
  NoveltyResult result;
  result.score = score(input);
  result.threshold = t.threshold();
  result.is_novel = t.is_novel(result.score);
  return result;
}

const NoveltyThreshold& NoveltyDetector::threshold() const {
  if (!threshold_.has_value()) {
    throw std::logic_error("NoveltyDetector: threshold not calibrated (call fit or load)");
  }
  return *threshold_;
}

}  // namespace salnov::core
