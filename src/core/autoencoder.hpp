// The one-class autoencoder of the paper's second stage.
//
// Architecture (paper, §III-A): a feed-forward autoencoder with three
// hidden fully-connected layers of 64, 16, and 64 units, ReLU activations,
// and a sigmoid output layer; input/output dimension 9600 = 60 x 160
// grayscale pixels normalized to [0, 1].
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace salnov::core {

struct AutoencoderConfig {
  int64_t input_height = 60;
  int64_t input_width = 160;
  std::vector<int64_t> hidden_units = {64, 16, 64};  ///< Paper's layout.

  int64_t input_dim() const { return input_height * input_width; }

  /// The paper's exact configuration.
  static AutoencoderConfig paper() { return AutoencoderConfig{}; }

  /// Scaled-down configuration for unit tests.
  static AutoencoderConfig tiny(int64_t height, int64_t width);
};

/// Builds the autoencoder: [N, H*W] -> [N, H*W] with sigmoid outputs.
nn::Sequential build_autoencoder(const AutoencoderConfig& config, Rng& rng);

}  // namespace salnov::core
