#include "core/autoencoder.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/dense.hpp"

namespace salnov::core {

AutoencoderConfig AutoencoderConfig::tiny(int64_t height, int64_t width) {
  AutoencoderConfig config;
  config.input_height = height;
  config.input_width = width;
  config.hidden_units = {32, 16, 32};
  return config;
}

nn::Sequential build_autoencoder(const AutoencoderConfig& config, Rng& rng) {
  if (config.input_dim() <= 0) throw std::invalid_argument("build_autoencoder: empty input");
  if (config.hidden_units.empty()) {
    throw std::invalid_argument("build_autoencoder: need at least one hidden layer");
  }
  nn::Sequential model;
  int64_t features = config.input_dim();
  for (int64_t units : config.hidden_units) {
    if (units <= 0) throw std::invalid_argument("build_autoencoder: non-positive hidden width");
    model.emplace<nn::Dense>(features, units, rng);
    model.emplace<nn::ReLU>();
    features = units;
  }
  model.emplace<nn::Dense>(features, config.input_dim(), rng);
  model.emplace<nn::Sigmoid>();
  return model;
}

}  // namespace salnov::core
