// NoveltyMonitor: run-time policy layer over a fitted NoveltyDetector.
//
// A per-frame novelty bit is too twitchy to gate a safety action on — the
// 99th-percentile rule flags ~1% of in-distribution frames by construction.
// The monitor adds the standard deployment policy: an exponential moving
// average of the score plus consecutive-flag hysteresis, entering the
// kFallback state only after `trigger_frames` consecutive novel frames and
// leaving it only after `release_frames` consecutive familiar ones.
#pragma once

#include <cstdint>
#include <optional>

#include "core/novelty_detector.hpp"

namespace salnov::core {

struct MonitorConfig {
  int64_t trigger_frames = 3;   ///< consecutive novel frames to enter fallback
  int64_t release_frames = 5;   ///< consecutive familiar frames to leave it
  double score_smoothing = 0.3; ///< EMA coefficient for the reported score
};

enum class MonitorState {
  kNominal,   ///< trusting the model
  kAlert,     ///< novel frames seen, below the trigger count
  kFallback,  ///< fallback controller should be engaged
};

struct MonitorUpdate {
  double raw_score = 0.0;
  double smoothed_score = 0.0;
  bool frame_novel = false;
  MonitorState state = MonitorState::kNominal;
};

class NoveltyMonitor {
 public:
  /// `detector` must be fitted and outlive the monitor.
  NoveltyMonitor(const NoveltyDetector& detector, MonitorConfig config = {});

  /// Feeds one camera frame; returns the per-frame result and the updated
  /// policy state.
  MonitorUpdate update(const Image& frame);

  MonitorState state() const { return state_; }
  int64_t frames_seen() const { return frames_seen_; }

  /// Resets the policy state (e.g. after an operator handover).
  void reset();

 private:
  const NoveltyDetector& detector_;
  MonitorConfig config_;
  MonitorState state_ = MonitorState::kNominal;
  int64_t consecutive_novel_ = 0;
  int64_t consecutive_familiar_ = 0;
  int64_t frames_seen_ = 0;
  std::optional<double> smoothed_;
};

}  // namespace salnov::core
