// NoveltyMonitor: run-time policy layer over a fitted NoveltyDetector.
//
// A per-frame novelty bit is too twitchy to gate a safety action on — the
// 99th-percentile rule flags ~1% of in-distribution frames by construction.
// The monitor adds the standard deployment policy: an exponential moving
// average of the score plus consecutive-flag hysteresis, entering the
// kFallback state only after `trigger_frames` consecutive novel frames and
// leaving it only after `release_frames` consecutive familiar ones.
//
// It also distinguishes "the world is novel" from "the sensor died": frames
// that fail the FrameValidator (NaN, out-of-range, dead-constant) or repeat
// bit-identically (frozen camera) are never scored; they feed a *separate*
// trigger/release hysteresis that enters kSensorFault. MonitorUpdate reports
// which path — novelty or sensor fault — engaged the degraded mode.
#pragma once

#include <cstdint>
#include <optional>

#include "core/frame_validator.hpp"
#include "core/novelty_detector.hpp"

namespace salnov::core {

struct MonitorConfig {
  int64_t trigger_frames = 3;   ///< consecutive novel frames to enter fallback
  int64_t release_frames = 5;   ///< consecutive familiar frames to leave it
  double score_smoothing = 0.3; ///< EMA coefficient for the reported score

  // Sensor-fault hysteresis — its own knobs, because a dead camera warrants
  // a different reaction time than a drifting world.
  int64_t sensor_trigger_frames = 3;  ///< consecutive bad frames to enter kSensorFault
  int64_t sensor_release_frames = 5;  ///< consecutive good frames to leave it
  bool detect_frozen_frames = true;   ///< treat bit-identical repeats as sensor faults
};

enum class MonitorState {
  kNominal,      ///< trusting the model
  kAlert,        ///< novel frames seen, below the trigger count
  kFallback,     ///< fallback controller should be engaged (novelty path)
  kSensorFault,  ///< fallback controller should be engaged (sensor path)
};

/// Which mechanism currently engages the fallback controller.
enum class FallbackPath {
  kNone,         ///< nominal / alert: the model is trusted
  kNovelty,      ///< consecutive novel frames (kFallback)
  kSensorFault,  ///< validator rejections or frozen frames (kSensorFault)
};

struct MonitorUpdate {
  double raw_score = 0.0;       ///< NaN when the frame was not scored
  double smoothed_score = 0.0;  ///< last EMA value (NaN before any scored frame)
  bool frame_novel = false;
  bool frame_scored = true;     ///< false for validator-rejected / frozen frames
  FrameFault frame_fault = FrameFault::kNone;
  bool frame_frozen = false;    ///< bit-identical to the previous valid frame
  MonitorState state = MonitorState::kNominal;
  FallbackPath fallback_path = FallbackPath::kNone;
};

class NoveltyMonitor {
 public:
  /// `detector` must be fitted and outlive the monitor.
  NoveltyMonitor(const NoveltyDetector& detector, MonitorConfig config = {});

  /// Feeds one camera frame; returns the per-frame result and the updated
  /// policy state. Malformed or frozen frames are screened out before the
  /// detector runs, so this never throws InvalidFrameError.
  MonitorUpdate update(const Image& frame);

  /// Feeds an externally-computed score for a frame that already passed
  /// screening. The serving runtime scores frames through its own staged,
  /// deadline-aware executor (possibly at a degraded detector variant) and
  /// uses this entry point so the hysteresis policy stays in one place.
  /// Non-finite scores count as novel evidence but do NOT update the EMA —
  /// one NaN must not poison every later smoothed value.
  MonitorUpdate update_scored(double raw_score, bool frame_novel);

  /// Feeds a frame rejected by screening (validator fault and/or frozen
  /// repeat) without scoring it. Callers using this entry point do their own
  /// screening, including frozen-frame detection.
  MonitorUpdate update_sensor_bad(FrameFault fault, bool frozen);

  MonitorState state() const { return state_; }
  int64_t frames_seen() const { return frames_seen_; }

  /// Resets the policy state (e.g. after an operator handover).
  void reset();

 private:
  /// Shared state-transition tail of every update path.
  void advance_state(MonitorUpdate& update, bool sensor_bad);

  const NoveltyDetector& detector_;
  MonitorConfig config_;
  MonitorState state_ = MonitorState::kNominal;
  int64_t consecutive_novel_ = 0;
  int64_t consecutive_familiar_ = 0;
  int64_t consecutive_sensor_bad_ = 0;
  int64_t consecutive_sensor_good_ = 0;
  int64_t frames_seen_ = 0;
  std::optional<double> smoothed_;
  std::optional<Image> last_valid_frame_;  ///< for frozen-frame detection
};

}  // namespace salnov::core
