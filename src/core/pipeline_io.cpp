#include "core/pipeline_io.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/model_io.hpp"
#include "tensor/serialize.hpp"

namespace salnov::core {
namespace {

constexpr const char* kMagic = "salnov-pipeline";
// v2: appends the per-variant fallback-chain calibrations (ECDF + threshold
// for primary, preproc+MSE, raw+MSE) after the primary threshold. Older v1
// files are rejected on load (callers refit; the bench cache does so
// automatically), so every loadable pipeline can serve the full ladder.
// v3: per-variant presence flags (the q8 calibrations are optional), the two
// q8 rung calibrations, and the int8 activation-scale blocks for the
// autoencoder and steering forwards. v2 files load with empty q8 state —
// the serving layer falls back to the float ladder/thresholds.

void write_quant_scales(std::ostream& os, const nn::QuantScales& scales) {
  write_u32(os, static_cast<uint32_t>(scales.act_scales.size()));
  for (float s : scales.act_scales) write_f32(os, s);
}

nn::QuantScales read_quant_scales(std::istream& is) {
  const uint32_t count = read_u32(is);
  if (count > 4096) throw SerializationError("pipeline: implausible quant scale count");
  nn::QuantScales scales;
  scales.act_scales.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const float s = read_f32(is);
    if (!std::isfinite(s) || s <= 0.0f) {
      throw SerializationError("pipeline: quant scale must be finite and positive");
    }
    scales.act_scales.push_back(s);
  }
  return scales;
}

uint32_t preprocessing_tag(Preprocessing preprocessing) {
  switch (preprocessing) {
    case Preprocessing::kRaw:
      return 0;
    case Preprocessing::kVbp:
      return 1;
    case Preprocessing::kGradient:
      return 2;
    case Preprocessing::kLrp:
      return 3;
  }
  throw std::logic_error("preprocessing_tag: unknown preprocessing");
}

Preprocessing preprocessing_from_tag(uint32_t tag) {
  switch (tag) {
    case 0:
      return Preprocessing::kRaw;
    case 1:
      return Preprocessing::kVbp;
    case 2:
      return Preprocessing::kGradient;
    case 3:
      return Preprocessing::kLrp;
    default:
      throw SerializationError("pipeline: unknown preprocessing tag " + std::to_string(tag));
  }
}

void write_config(std::ostream& os, const NoveltyDetectorConfig& config) {
  write_i64(os, config.height);
  write_i64(os, config.width);
  write_u32(os, preprocessing_tag(config.preprocessing));
  write_u32(os, config.score == ReconstructionScore::kSsim ? 1u : 0u);
  write_u32(os, static_cast<uint32_t>(config.autoencoder.hidden_units.size()));
  for (int64_t units : config.autoencoder.hidden_units) write_i64(os, units);
  write_i64(os, config.train_epochs);
  write_i64(os, config.batch_size);
  write_f32(os, static_cast<float>(config.learning_rate));
  write_f32(os, static_cast<float>(config.threshold_percentile));
  write_i64(os, config.ssim.window);
  write_i64(os, config.ssim.stride);
  write_f64(os, config.ssim.k1);
  write_f64(os, config.ssim.k2);
  write_f64(os, config.ssim.dynamic_range);
}

NoveltyDetectorConfig read_config(std::istream& is) {
  NoveltyDetectorConfig config;
  config.height = read_i64(is);
  config.width = read_i64(is);
  config.preprocessing = preprocessing_from_tag(read_u32(is));
  config.score = read_u32(is) == 1 ? ReconstructionScore::kSsim : ReconstructionScore::kMse;
  const uint32_t hidden_count = read_u32(is);
  if (hidden_count > 64) throw SerializationError("pipeline: implausible hidden layer count");
  config.autoencoder.hidden_units.clear();
  for (uint32_t i = 0; i < hidden_count; ++i) config.autoencoder.hidden_units.push_back(read_i64(is));
  config.train_epochs = read_i64(is);
  config.batch_size = read_i64(is);
  config.learning_rate = read_f32(is);
  config.threshold_percentile = read_f32(is);
  config.ssim.window = read_i64(is);
  config.ssim.stride = read_i64(is);
  config.ssim.k1 = read_f64(is);
  config.ssim.k2 = read_f64(is);
  config.ssim.dynamic_range = read_f64(is);
  return config;
}

}  // namespace

void PipelineIo::save(std::ostream& os, const NoveltyDetector& detector,
                      nn::Sequential* steering_model, uint32_t version) {
  if (version != kCurrentVersion && version != kLegacyVersion) {
    throw std::invalid_argument("PipelineIo::save: unsupported version " + std::to_string(version));
  }
  if (!detector.is_fitted()) {
    throw std::logic_error("PipelineIo::save: detector is not fitted");
  }
  if (uses_saliency(detector.config().preprocessing) && steering_model == nullptr) {
    throw std::invalid_argument("PipelineIo::save: saliency pipeline requires its steering model");
  }
  if (!detector.has_variant_calibrations()) {
    throw std::logic_error("PipelineIo::save: detector lacks variant calibrations (refit required)");
  }
  write_header(os, kMagic, version);
  write_config(os, detector.config());
  detector.threshold().save(os);
  const int variant_count =
      version == kLegacyVersion ? kDetectorFloatVariantCount : kDetectorVariantCount;
  write_u32(os, static_cast<uint32_t>(variant_count));
  for (int v = 0; v < variant_count; ++v) {
    const VariantCalibration* calibration =
        detector.variant_calibration_if(static_cast<DetectorVariant>(v));
    if (version == kLegacyVersion) {
      // The float calibrations are guaranteed by the precondition; v2 has no
      // presence flags.
      calibration->save(os);
      continue;
    }
    write_u32(os, calibration != nullptr ? 1u : 0u);
    if (calibration != nullptr) calibration->save(os);
  }
  // The autoencoder is logically const here; save_model only reads weights.
  nn::save_model(os, const_cast<NoveltyDetector&>(detector).autoencoder());
  write_u32(os, steering_model != nullptr ? 1u : 0u);
  if (steering_model != nullptr) nn::save_model(os, *steering_model);
  if (version >= kCurrentVersion) {
    write_quant_scales(os, detector.ae_quant_scales_);
    write_quant_scales(os, detector.steering_quant_scales_);
  }
}

void PipelineIo::save_file(const std::string& path, const NoveltyDetector& detector,
                           nn::Sequential* steering_model) {
  save_file_checked(path, [&](std::ostream& os) { save(os, detector, steering_model); });
}

LoadedPipeline PipelineIo::load(std::istream& is) {
  const std::string magic = read_string(is);
  if (magic != kMagic) {
    throw SerializationError("pipeline: expected magic '" + std::string(kMagic) + "', got '" +
                             magic + "'");
  }
  const uint32_t version = read_u32(is);
  if (version != kLegacyVersion && version != kCurrentVersion) {
    throw SerializationError("pipeline: version " + std::to_string(version) +
                             " unsupported (want " + std::to_string(kLegacyVersion) + " or " +
                             std::to_string(kCurrentVersion) + ")");
  }
  const NoveltyDetectorConfig config = read_config(is);
  const NoveltyThreshold threshold = NoveltyThreshold::load(is);

  LoadedPipeline pipeline;
  pipeline.detector = std::make_unique<NoveltyDetector>(config);
  const uint32_t expected_variants = static_cast<uint32_t>(
      version == kLegacyVersion ? kDetectorFloatVariantCount : kDetectorVariantCount);
  const uint32_t variant_count = read_u32(is);
  if (variant_count != expected_variants) {
    throw SerializationError("pipeline: expected " + std::to_string(expected_variants) +
                             " variant calibrations, file has " + std::to_string(variant_count));
  }
  for (uint32_t v = 0; v < variant_count; ++v) {
    if (version >= kCurrentVersion) {
      const uint32_t present = read_u32(is);
      if (present > 1) throw SerializationError("pipeline: calibration presence flag out of range");
      if (present == 0) {
        if (v < static_cast<uint32_t>(kDetectorFloatVariantCount)) {
          throw SerializationError("pipeline: float variant calibration missing");
        }
        continue;  // absent q8 calibration: the float peer serves the rung
      }
    }
    pipeline.detector->variant_calibrations_[v] = VariantCalibration::load(is);
  }
  pipeline.detector->autoencoder_ = nn::load_model(is);
  pipeline.detector->threshold_ = threshold;
  pipeline.detector->fitted_ = true;

  const uint32_t has_steering = read_u32(is);
  if (has_steering == 1) {
    pipeline.steering_model = std::make_unique<nn::Sequential>(nn::load_model(is));
    pipeline.detector->attach_steering_model(pipeline.steering_model.get());
  } else if (uses_saliency(config.preprocessing)) {
    throw SerializationError("pipeline: saliency configuration but no steering model in file");
  }
  if (version >= kCurrentVersion) {
    pipeline.detector->ae_quant_scales_ = read_quant_scales(is);
    pipeline.detector->steering_quant_scales_ = read_quant_scales(is);
    if (!pipeline.detector->ae_quant_scales_.empty() &&
        pipeline.detector->ae_quant_scales_.act_scales.size() !=
            static_cast<size_t>(
                nn::QuantizedForward::count_quantizable(pipeline.detector->autoencoder_))) {
      throw SerializationError("pipeline: autoencoder quant scale count mismatch");
    }
    if (!pipeline.detector->steering_quant_scales_.empty() &&
        (pipeline.steering_model == nullptr ||
         pipeline.detector->steering_quant_scales_.act_scales.size() !=
             static_cast<size_t>(
                 nn::QuantizedForward::count_quantizable(*pipeline.steering_model)))) {
      throw SerializationError("pipeline: steering quant scale count mismatch");
    }
  }
  // Builds the quantized wrappers from the freshly loaded weights + scales
  // (attach_steering_model above ran too early — before the scales existed).
  pipeline.detector->rebuild_quant_path();
  return pipeline;
}

LoadedPipeline PipelineIo::load_file(const std::string& path) {
  std::istringstream is(load_file_checked(path), std::ios::binary);
  return load(is);
}

}  // namespace salnov::core
