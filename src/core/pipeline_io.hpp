// Whole-pipeline serialization.
//
// Saves/loads a fitted NoveltyDetector — configuration, trained
// autoencoder weights, and calibrated threshold — plus (optionally) the
// steering model it preprocesses with, so a deployed system can restore
// the complete Fig. 1 framework from one file.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "core/novelty_detector.hpp"

namespace salnov::core {

/// A detector restored from a file, bundled with the steering model it
/// owns (if one was saved with it).
struct LoadedPipeline {
  std::unique_ptr<nn::Sequential> steering_model;  ///< null if none saved
  std::unique_ptr<NoveltyDetector> detector;
};

class PipelineIo {
 public:
  /// Current file format. v3 appends per-variant presence flags, the q8
  /// rung calibrations, and the int8 activation-scale blocks; v2 files
  /// (pre-quantization) still load with the q8 slots empty.
  static constexpr uint32_t kCurrentVersion = 3;
  static constexpr uint32_t kLegacyVersion = 2;

  /// `steering_model` may be null when the detector uses raw preprocessing.
  /// `version` selects the written format (kLegacyVersion writes a v2 file,
  /// dropping any quantization state — used to exercise the legacy loader).
  static void save(std::ostream& os, const NoveltyDetector& detector,
                   nn::Sequential* steering_model, uint32_t version = kCurrentVersion);

  /// Crash-safe save: writes payload + CRC32 trailer to a temp file and
  /// atomically renames it over `path`, so a kill mid-save never leaves a
  /// partial file at the target.
  static void save_file(const std::string& path, const NoveltyDetector& detector,
                        nn::Sequential* steering_model);

  static LoadedPipeline load(std::istream& is);

  /// Verifies the CRC32 trailer before parsing; throws TruncatedFileError /
  /// CorruptFileError (both SerializationError) on damaged files.
  static LoadedPipeline load_file(const std::string& path);
};

}  // namespace salnov::core
