#include "saliency/gradient_saliency.hpp"

#include <cmath>
#include <stdexcept>

namespace salnov::saliency {

Image GradientSaliency::compute(nn::Sequential& model, const Image& input) {
  // Training-mode forward arms the layer caches; the backward pass then
  // yields d(output)/d(input). Parameter gradients are perturbed as a side
  // effect, so reset them afterwards.
  const Tensor output = model.forward(input.as_nchw(), nn::Mode::kTrain);
  if (output.numel() != 1) {
    throw std::invalid_argument("GradientSaliency: expected scalar-output model");
  }
  Tensor seed(output.shape());
  seed.fill(1.0f);
  Tensor grad = model.backward(seed);
  model.zero_grad();

  grad.apply([](float v) { return std::abs(v); });
  Image mask(input.height(), input.width(), grad.reshape({input.height(), input.width()}));
  mask.normalize_minmax();
  return mask;
}

}  // namespace salnov::saliency
