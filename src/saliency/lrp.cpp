#include "saliency/lrp.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"

namespace salnov::saliency {
namespace {

double stabilized(double z, double epsilon) { return z + (z >= 0.0 ? epsilon : -epsilon); }

/// Dense epsilon-rule: R_in_i = x_i * sum_j w_ij * R_j / stab(z_j).
Tensor propagate_dense(const nn::Dense& dense, const Tensor& input, const Tensor& output,
                       const Tensor& relevance, double epsilon) {
  const int64_t batch = input.dim(0);
  const int64_t in_f = dense.in_features();
  const int64_t out_f = dense.out_features();
  const Tensor& w = dense.weight().value;  // [in, out]
  Tensor result(input.shape());
  for (int64_t n = 0; n < batch; ++n) {
    const float* x = input.data() + n * in_f;
    const float* z = output.data() + n * out_f;
    const float* r = relevance.data() + n * out_f;
    float* out = result.data() + n * in_f;
    // factor_j = R_j / stab(z_j); R_in_i = x_i * sum_j w_ij factor_j.
    std::vector<double> factor(static_cast<size_t>(out_f));
    for (int64_t j = 0; j < out_f; ++j) {
      factor[static_cast<size_t>(j)] = r[j] / stabilized(z[j], epsilon);
    }
    for (int64_t i = 0; i < in_f; ++i) {
      const float* w_row = w.data() + i * out_f;
      double acc = 0.0;
      for (int64_t j = 0; j < out_f; ++j) acc += w_row[j] * factor[static_cast<size_t>(j)];
      out[i] = static_cast<float>(static_cast<double>(x[i]) * acc);
    }
  }
  return result;
}

/// Conv epsilon-rule, direct loops over output positions and kernel taps.
Tensor propagate_conv(const nn::Conv2d& conv, const Tensor& input, const Tensor& output,
                      const Tensor& relevance, double epsilon) {
  const auto& cfg = conv.config();
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = output.dim(2), out_w = output.dim(3);
  const Tensor& w = conv.weight().value;  // [oc, ic, kh, kw]
  Tensor result(input.shape());

  for (int64_t n = 0; n < batch; ++n) {
    const float* x_n = input.data() + n * cfg.in_channels * in_h * in_w;
    const float* z_n = output.data() + n * cfg.out_channels * out_h * out_w;
    const float* r_n = relevance.data() + n * cfg.out_channels * out_h * out_w;
    float* res_n = result.data() + n * cfg.in_channels * in_h * in_w;
    for (int64_t oc = 0; oc < cfg.out_channels; ++oc) {
      const float* w_oc = w.data() + oc * cfg.in_channels * cfg.kernel_h * cfg.kernel_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          const int64_t out_at = (oc * out_h + oy) * out_w + ox;
          const double factor = r_n[out_at] / stabilized(z_n[out_at], epsilon);
          if (factor == 0.0) continue;
          for (int64_t ic = 0; ic < cfg.in_channels; ++ic) {
            const float* w_ic = w_oc + ic * cfg.kernel_h * cfg.kernel_w;
            const float* x_plane = x_n + ic * in_h * in_w;
            float* res_plane = res_n + ic * in_h * in_w;
            for (int64_t ki = 0; ki < cfg.kernel_h; ++ki) {
              const int64_t iy = oy * cfg.stride - cfg.padding + ki;
              if (iy < 0 || iy >= in_h) continue;
              for (int64_t kj = 0; kj < cfg.kernel_w; ++kj) {
                const int64_t ix = ox * cfg.stride - cfg.padding + kj;
                if (ix < 0 || ix >= in_w) continue;
                res_plane[iy * in_w + ix] += static_cast<float>(
                    static_cast<double>(x_plane[iy * in_w + ix]) * w_ic[ki * cfg.kernel_w + kj] * factor);
              }
            }
          }
        }
      }
    }
  }
  return result;
}

/// Max-pool winner-take-all: all relevance goes to the window maximum.
Tensor propagate_maxpool(const nn::MaxPool2d& pool, const Tensor& input, const Tensor& relevance) {
  const int64_t batch = input.dim(0), channels = input.dim(1);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = relevance.dim(2), out_w = relevance.dim(3);
  const int64_t k = pool.kernel(), stride = pool.stride();
  Tensor result(input.shape());
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      float* res_plane = result.data() + (n * channels + c) * in_h * in_w;
      const float* r_plane = relevance.data() + (n * channels + c) * out_h * out_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          int64_t best_at = (oy * stride) * in_w + ox * stride;
          float best = plane[best_at];
          for (int64_t ky = 0; ky < k; ++ky) {
            for (int64_t kx = 0; kx < k; ++kx) {
              const int64_t at = (oy * stride + ky) * in_w + (ox * stride + kx);
              if (plane[at] > best) {
                best = plane[at];
                best_at = at;
              }
            }
          }
          res_plane[best_at] += r_plane[oy * out_w + ox];
        }
      }
    }
  }
  return result;
}

}  // namespace

Tensor LayerwiseRelevancePropagation::relevance(nn::Sequential& model, const Image& input) const {
  const Tensor nchw = input.as_nchw();
  const auto activations = model.forward_collect(nchw);
  if (activations.empty()) throw std::invalid_argument("LRP: empty model");

  // Start from the model output itself as the relevance to explain.
  Tensor r = activations.back();
  for (size_t i = model.size(); i-- > 0;) {
    const Tensor& layer_input = i == 0 ? nchw : activations[i - 1];
    const Tensor& layer_output = activations[i];
    const nn::Layer& layer = model.layer(i);
    const std::string type = layer.type_name();
    if (type == "dense") {
      r = propagate_dense(dynamic_cast<const nn::Dense&>(layer), layer_input, layer_output, r, epsilon_);
    } else if (type == "conv2d") {
      r = propagate_conv(dynamic_cast<const nn::Conv2d&>(layer), layer_input, layer_output, r, epsilon_);
    } else if (type == "maxpool2d") {
      r = propagate_maxpool(dynamic_cast<const nn::MaxPool2d&>(layer), layer_input, r);
    } else if (type == "flatten") {
      r = r.reshape(layer_input.shape());
    } else if (type == "relu" || type == "sigmoid" || type == "tanh") {
      // Activation layers pass relevance through unchanged.
    } else {
      throw std::invalid_argument("LRP: unsupported layer type '" + type + "'");
    }
  }
  return r;
}

Image LayerwiseRelevancePropagation::compute(nn::Sequential& model, const Image& input) {
  Tensor r = relevance(model, input);
  r.apply([](float v) { return std::abs(v); });
  Image mask(input.height(), input.width(), r.reshape({input.height(), input.width()}));
  mask.normalize_minmax();
  return mask;
}

}  // namespace salnov::saliency
