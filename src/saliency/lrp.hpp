// Layer-wise Relevance Propagation (Bach et al., 2015), epsilon rule.
//
// Decomposes the model output into per-pixel relevances by walking the
// network backwards: each neuron's relevance is redistributed to its inputs
// proportionally to their contribution z_ij = x_i w_ij, stabilized by
// R_i = sum_j (z_ij / (z_j + eps * sign(z_j))) R_j. Activation layers pass
// relevance through; max-pooling routes it winner-take-all.
//
// This is the comparison method for the paper's claim that VBP is "an order
// of magnitude faster" than relevance-decomposition saliency: LRP must
// touch every weight (a backward-sized pass), whereas VBP only averages
// feature maps and upsamples.
#pragma once

#include "saliency/saliency.hpp"

namespace salnov::saliency {

class LayerwiseRelevancePropagation : public SaliencyMethod {
 public:
  explicit LayerwiseRelevancePropagation(double epsilon = 1e-6) : epsilon_(epsilon) {}

  Image compute(nn::Sequential& model, const Image& input) override;
  /// Walks weights via inference-mode forward_collect only; no per-call
  /// member scratch, so concurrent compute() calls are safe.
  bool thread_safe() const override { return true; }
  std::string name() const override { return "lrp"; }

  /// Raw signed relevance at the input, before abs/normalization
  /// (exposed for the conservation-property tests).
  Tensor relevance(nn::Sequential& model, const Image& input) const;

 private:
  double epsilon_;
};

}  // namespace salnov::saliency
