#include "saliency/visual_backprop.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "nn/conv2d.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/workspace.hpp"

namespace salnov::saliency {
namespace {

struct ConvStage {
  const nn::Conv2d* conv = nullptr;
  size_t output_index = 0;  ///< index into forward_collect results (post-ReLU)
};

std::vector<ConvStage> find_conv_stages(const nn::Sequential& model) {
  std::vector<ConvStage> stages;
  for (size_t i = 0; i < model.size(); ++i) {
    const auto* conv = dynamic_cast<const nn::Conv2d*>(&model.layer(i));
    if (conv == nullptr) continue;
    ConvStage stage;
    stage.conv = conv;
    stage.output_index =
        (i + 1 < model.size() && model.layer(i + 1).type_name() == "relu") ? i + 1 : i;
    stages.push_back(stage);
  }
  return stages;
}

/// Mean over channels of sample `n` of a [B, C, H, W] activation -> [H, W].
/// Channels are accumulated in ascending order, so the batched path and the
/// batch-1 path sum the same values in the same order — bit-identical.
Tensor channel_average_sample(const Tensor& activation, int64_t n) {
  if (activation.rank() != 4 || n < 0 || n >= activation.dim(0)) {
    throw std::logic_error("VisualBackProp: expected [B, C, H, W] activation with sample " +
                           std::to_string(n) + " in range, got " +
                           shape_to_string(activation.shape()));
  }
  const int64_t channels = activation.dim(1);
  const int64_t h = activation.dim(2);
  const int64_t w = activation.dim(3);
  Tensor avg({h, w});
  const float* src = activation.data() + n * channels * h * w;
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t i = 0; i < h * w; ++i) avg[i] += src[c * h * w + i];
  }
  avg *= 1.0f / static_cast<float>(channels);
  return avg;
}

/// Scales a map so its max is 1 (keeps zeros if the map is all-zero).
/// Normalizing every stage keeps the running product numerically stable
/// across deep chains of pointwise multiplications.
void normalize_by_max(float* map, int64_t count) {
  float peak = 0.0f;
  for (int64_t i = 0; i < count; ++i) peak = std::max(peak, map[i]);
  if (peak > 0.0f) {
    const float inv = 1.0f / peak;
    for (int64_t i = 0; i < count; ++i) map[i] *= inv;
  }
}

/// Raw-buffer core of deconv_ones: scatters `map` [in_h, in_w] into
/// `out` [out_h, out_w]. `out` is overwritten.
void deconv_ones_into(const float* map, int64_t in_h, int64_t in_w, int64_t kernel_h,
                      int64_t kernel_w, int64_t stride, int64_t padding, int64_t out_h,
                      int64_t out_w, float* out) {
  std::memset(out, 0, static_cast<size_t>(out_h * out_w) * sizeof(float));
  for (int64_t y = 0; y < in_h; ++y) {
    for (int64_t x = 0; x < in_w; ++x) {
      const float v = map[y * in_w + x];
      if (v == 0.0f) continue;
      for (int64_t ki = 0; ki < kernel_h; ++ki) {
        const int64_t oy = y * stride - padding + ki;
        if (oy < 0 || oy >= out_h) continue;
        for (int64_t kj = 0; kj < kernel_w; ++kj) {
          const int64_t ox = x * stride - padding + kj;
          if (ox >= 0 && ox < out_w) out[oy * out_w + ox] += v;
        }
      }
    }
  }
}

/// Walks the averaged maps deep-to-shallow, multiplying each deconvolved
/// relevance map into the next stage's averaged activation, and returns the
/// normalized input-resolution mask. Shared by the batch-1 and batched
/// entries so they cannot drift apart.
Image relevance_chain(const std::vector<ConvStage>& stages,
                      const std::vector<Tensor>& averaged_maps, int64_t in_h, int64_t in_w) {
  // The relevance chain ping-pongs between two workspace buffers sized for
  // the largest intermediate map, so steady-state frames allocate nothing.
  int64_t max_map = averaged_maps.back().numel();
  for (size_t i = 0; i + 1 < stages.size(); ++i) max_map = std::max(max_map, averaged_maps[i].numel());
  WorkspaceScope scratch;
  float* cur = scratch.floats(max_map);
  float* next = scratch.floats(max_map);

  const Tensor& deepest = averaged_maps.back();
  int64_t cur_h = deepest.dim(0);
  int64_t cur_w = deepest.dim(1);
  std::memcpy(cur, deepest.data(), static_cast<size_t>(deepest.numel()) * sizeof(float));
  normalize_by_max(cur, cur_h * cur_w);

  for (size_t i = stages.size() - 1; i-- > 0;) {
    const nn::Conv2dConfig& geo = stages[i + 1].conv->config();
    const Tensor& target = averaged_maps[i];
    const int64_t th = target.dim(0);
    const int64_t tw = target.dim(1);
    deconv_ones_into(cur, cur_h, cur_w, geo.kernel_h, geo.kernel_w, geo.stride, geo.padding, th, tw,
                     next);
    for (int64_t j = 0; j < th * tw; ++j) next[j] *= target.data()[j];
    normalize_by_max(next, th * tw);
    std::swap(cur, next);
    cur_h = th;
    cur_w = tw;
  }

  const nn::Conv2dConfig& first = stages.front().conv->config();
  Tensor relevance({in_h, in_w});
  deconv_ones_into(cur, cur_h, cur_w, first.kernel_h, first.kernel_w, first.stride, first.padding,
                   in_h, in_w, relevance.data());

  Image mask(in_h, in_w, std::move(relevance));
  mask.normalize_minmax();
  return mask;
}

}  // namespace

Tensor deconv_ones(const Tensor& map, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                   int64_t padding, int64_t out_h, int64_t out_w) {
  if (map.rank() != 2) {
    throw std::invalid_argument("deconv_ones: expected [h, w] map, got " + shape_to_string(map.shape()));
  }
  Tensor out({out_h, out_w});
  deconv_ones_into(map.data(), map.dim(0), map.dim(1), kernel_h, kernel_w, stride, padding, out_h,
                   out_w, out.data());
  return out;
}

Image VisualBackProp::compute(nn::Sequential& model, const Image& input) {
  std::vector<Tensor> averaged_maps;
  return compute_with_maps(model, input, averaged_maps);
}

Image VisualBackProp::compute_with_maps(nn::Sequential& model, const Image& input,
                                        std::vector<Tensor>& averaged_maps) const {
  const auto stages = find_conv_stages(model);
  if (stages.empty()) {
    throw std::invalid_argument("VisualBackProp: model has no convolutional stages");
  }
  const auto activations = model.forward_collect(input.as_nchw());

  averaged_maps.clear();
  averaged_maps.reserve(stages.size());
  for (const auto& stage : stages) {
    averaged_maps.push_back(channel_average_sample(activations[stage.output_index], 0));
  }
  return relevance_chain(stages, averaged_maps, input.height(), input.width());
}

Image VisualBackProp::compute_quantized(const nn::QuantizedForward& model,
                                        const Image& input) const {
  const auto stages = find_conv_stages(model.model());
  if (stages.empty()) {
    throw std::invalid_argument("VisualBackProp: model has no convolutional stages");
  }
  const auto activations = model.forward_collect(input.as_nchw());
  std::vector<Tensor> averaged_maps;
  averaged_maps.reserve(stages.size());
  for (const auto& stage : stages) {
    averaged_maps.push_back(channel_average_sample(activations[stage.output_index], 0));
  }
  return relevance_chain(stages, averaged_maps, input.height(), input.width());
}

std::vector<Image> VisualBackProp::compute_batch_quantized(
    const nn::QuantizedForward& model, const std::vector<const Image*>& inputs) const {
  if (inputs.empty()) return {};
  const auto stages = find_conv_stages(model.model());
  if (stages.empty()) {
    throw std::invalid_argument("VisualBackProp: model has no convolutional stages");
  }
  const int64_t batch = static_cast<int64_t>(inputs.size());
  const int64_t h = inputs[0]->height();
  const int64_t w = inputs[0]->width();
  Tensor stacked({batch, 1, h, w});
  for (int64_t n = 0; n < batch; ++n) {
    const Image& input = *inputs[static_cast<size_t>(n)];
    if (input.height() != h || input.width() != w) {
      throw std::invalid_argument("VisualBackProp: mixed image sizes in one batch");
    }
    std::memcpy(stacked.data() + n * h * w, input.tensor().data(),
                static_cast<size_t>(h * w) * sizeof(float));
  }
  const auto activations = model.forward_collect(stacked);
  std::vector<Image> masks(inputs.size());
  parallel::parallel_for(0, batch, 1, [&](int64_t begin, int64_t end) {
    for (int64_t n = begin; n < end; ++n) {
      std::vector<Tensor> averaged_maps;
      averaged_maps.reserve(stages.size());
      for (const auto& stage : stages) {
        averaged_maps.push_back(channel_average_sample(activations[stage.output_index], n));
      }
      masks[static_cast<size_t>(n)] = relevance_chain(stages, averaged_maps, h, w);
    }
  });
  return masks;
}

std::vector<Image> VisualBackProp::compute_batch(nn::Sequential& model,
                                                 const std::vector<const Image*>& inputs) {
  if (inputs.empty()) return {};
  const auto stages = find_conv_stages(model);
  if (stages.empty()) {
    throw std::invalid_argument("VisualBackProp: model has no convolutional stages");
  }
  const int64_t batch = static_cast<int64_t>(inputs.size());
  const int64_t h = inputs[0]->height();
  const int64_t w = inputs[0]->width();
  Tensor stacked({batch, 1, h, w});
  for (int64_t n = 0; n < batch; ++n) {
    const Image& input = *inputs[static_cast<size_t>(n)];
    if (input.height() != h || input.width() != w) {
      throw std::invalid_argument("VisualBackProp: mixed image sizes in one batch");
    }
    std::memcpy(stacked.data() + n * h * w, input.tensor().data(),
                static_cast<size_t>(h * w) * sizeof(float));
  }
  // One forward pass for the whole batch: this is where the batch-B GEMMs
  // replace B batch-1 calls. The activations are shared read-only below.
  const auto activations = model.forward_collect(stacked);

  std::vector<Image> masks(inputs.size());
  parallel::parallel_for(0, batch, 1, [&](int64_t begin, int64_t end) {
    for (int64_t n = begin; n < end; ++n) {
      std::vector<Tensor> averaged_maps;
      averaged_maps.reserve(stages.size());
      for (const auto& stage : stages) {
        averaged_maps.push_back(channel_average_sample(activations[stage.output_index], n));
      }
      masks[static_cast<size_t>(n)] = relevance_chain(stages, averaged_maps, h, w);
    }
  });
  return masks;
}

}  // namespace salnov::saliency
