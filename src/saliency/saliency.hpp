// Common interface for network-saliency methods.
//
// A SaliencyMethod maps (trained model, input image) to a saliency mask at
// input resolution, normalized to [0, 1], highlighting the pixels that most
// influenced the model's output. The paper uses VisualBackProp; gradient
// saliency and layer-wise relevance propagation are provided as comparators
// (LRP is the method the paper cites VBP as being an order of magnitude
// faster than).
#pragma once

#include <string>
#include <vector>

#include "image/image.hpp"
#include "nn/sequential.hpp"

namespace salnov::saliency {

class SaliencyMethod {
 public:
  virtual ~SaliencyMethod() = default;

  /// Computes the normalized ([0, 1] min-max) saliency mask for `input`.
  /// `model` is taken non-const because some methods (gradient saliency)
  /// run a backward pass through the layer caches; no weights are modified.
  virtual Image compute(nn::Sequential& model, const Image& input) = 0;

  /// Computes masks for a batch of same-sized images. The contract is
  /// strict bitwise equivalence: element i must be bit-identical to
  /// compute(model, *inputs[i]) regardless of batch size or composition —
  /// the serving cluster's micro-batching scatters these masks back into
  /// per-stream decisions recorded by the golden-trace harness. The default
  /// simply loops; methods with a genuine cross-frame batched path
  /// (VisualBackProp) override it.
  virtual std::vector<Image> compute_batch(nn::Sequential& model,
                                           const std::vector<const Image*>& inputs);

  /// True when concurrent compute() calls on the same method + model are
  /// safe (the method keeps no per-call scratch in members and only runs
  /// inference-mode forwards). The batch fan-out in NoveltyDetector checks
  /// this before scoring frames on multiple threads.
  virtual bool thread_safe() const { return false; }

  virtual std::string name() const = 0;
};

/// Fraction of total mask energy that falls on pixels where `mask` is
/// non-zero in `relevance` (a binary ground-truth relevance mask). Used to
/// quantify the Fig. 2 / Fig. 4 claim that VBP masks align with road
/// features: a concentrated mask scores well above the relevance mask's
/// area fraction, a uniform or random mask scores approximately at it.
double mask_energy_fraction(const Image& saliency_mask, const Image& relevance);

/// Top-k precision ("pointing game" style): the fraction of the mask's
/// `top_fraction` brightest pixels that land on relevant pixels. Sharper
/// than energy fraction because it ignores the diffuse mask background and
/// scores only where the saliency method actually points.
double topk_precision(const Image& saliency_mask, const Image& relevance, double top_fraction = 0.05);

/// Binary dilation of a mask by a square structuring element of radius
/// `radius` (Chebyshev distance). Used to tolerate small localization
/// offsets when scoring saliency masks against thin ground-truth features.
Image dilate(const Image& mask, int64_t radius);

}  // namespace salnov::saliency
