// Gradient (vanilla) saliency: |d output / d input|, min-max normalized.
//
// The simplest sensitivity map; included as a cheap comparator between VBP
// and LRP and as a sanity baseline for the saliency ablation bench.
#pragma once

#include "saliency/saliency.hpp"

namespace salnov::saliency {

class GradientSaliency : public SaliencyMethod {
 public:
  Image compute(nn::Sequential& model, const Image& input) override;
  std::string name() const override { return "gradient"; }
};

}  // namespace salnov::saliency
