#include "saliency/saliency.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace salnov::saliency {

std::vector<Image> SaliencyMethod::compute_batch(nn::Sequential& model,
                                                 const std::vector<const Image*>& inputs) {
  std::vector<Image> masks;
  masks.reserve(inputs.size());
  for (const Image* input : inputs) {
    if (input == nullptr) throw std::invalid_argument("compute_batch: null input image");
    masks.push_back(compute(model, *input));
  }
  return masks;
}

double mask_energy_fraction(const Image& saliency_mask, const Image& relevance) {
  if (!saliency_mask.same_size(relevance)) {
    throw std::invalid_argument("mask_energy_fraction: size mismatch");
  }
  double total = 0.0;
  double on_relevant = 0.0;
  for (int64_t y = 0; y < saliency_mask.height(); ++y) {
    for (int64_t x = 0; x < saliency_mask.width(); ++x) {
      const double v = saliency_mask(y, x);
      total += v;
      if (relevance(y, x) > 0.0f) on_relevant += v;
    }
  }
  if (total <= 0.0) return 0.0;
  return on_relevant / total;
}

double topk_precision(const Image& saliency_mask, const Image& relevance, double top_fraction) {
  if (!saliency_mask.same_size(relevance)) {
    throw std::invalid_argument("topk_precision: size mismatch");
  }
  if (top_fraction <= 0.0 || top_fraction > 1.0) {
    throw std::invalid_argument("topk_precision: top_fraction outside (0, 1]");
  }
  const int64_t n = saliency_mask.numel();
  const auto k = std::max<int64_t>(1, static_cast<int64_t>(top_fraction * static_cast<double>(n)));
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(), [&](int64_t a, int64_t b) {
    return saliency_mask.tensor()[a] > saliency_mask.tensor()[b];
  });
  int64_t hits = 0;
  for (int64_t i = 0; i < k; ++i) {
    if (relevance.tensor()[order[static_cast<size_t>(i)]] > 0.0f) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

Image dilate(const Image& mask, int64_t radius) {
  if (radius < 0) throw std::invalid_argument("dilate: negative radius");
  Image out(mask.height(), mask.width());
  for (int64_t y = 0; y < mask.height(); ++y) {
    for (int64_t x = 0; x < mask.width(); ++x) {
      float v = 0.0f;
      for (int64_t dy = -radius; dy <= radius && v == 0.0f; ++dy) {
        for (int64_t dx = -radius; dx <= radius; ++dx) {
          if (mask.at_clamped(y + dy, x + dx) > 0.0f) {
            v = 1.0f;
            break;
          }
        }
      }
      out(y, x) = v;
    }
  }
  return out;
}

}  // namespace salnov::saliency
