// VisualBackProp (Bojarski et al., ICRA 2018).
//
// For each convolutional stage (conv + ReLU), average the post-activation
// feature maps over channels; then, walking from the deepest stage back to
// the input, repeatedly (a) upscale the running relevance map to the
// previous stage's resolution with a transposed convolution whose weights
// are all ones (geometry taken from the intervening conv layer), and (b)
// multiply pointwise with that stage's averaged feature map. A final
// ones-deconvolution through the first conv layer brings the mask to input
// resolution; the result is min-max normalized.
//
// The cost is one forward pass plus channel averages and O(pixels)
// upsampling — no backward pass through weights — which is what makes VBP
// an order of magnitude faster than decomposition methods like LRP.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/quantized.hpp"
#include "saliency/saliency.hpp"

namespace salnov::saliency {

class VisualBackProp : public SaliencyMethod {
 public:
  VisualBackProp() = default;

  /// Stateless per call: all scratch (the per-stage averaged maps) is local,
  /// so one VisualBackProp instance may serve concurrent compute() calls —
  /// the detector's parallel scoring fan-out relies on this.
  Image compute(nn::Sequential& model, const Image& input) override;

  /// Cross-frame batched VBP: one forward_collect over the stacked
  /// [B, 1, H, W] input (conv layers loop per sample with identical
  /// im2col + GEMM calls; dense layers accumulate each output row in the
  /// same ascending-k order at any batch size), then per-sample channel
  /// averages and deconvolution chains. Element i is bit-identical to
  /// compute(model, *inputs[i]) for any batch composition. The per-sample
  /// relevance chains fan out across the worker pool (they are pure and
  /// write disjoint outputs).
  std::vector<Image> compute_batch(nn::Sequential& model,
                                   const std::vector<const Image*>& inputs) override;

  bool thread_safe() const override { return true; }
  std::string name() const override { return "vbp"; }

  /// As compute(), but also returns the averaged (over channels) feature
  /// map of each conv stage, shallow to deep (for inspection and tests).
  Image compute_with_maps(nn::Sequential& model, const Image& input,
                          std::vector<Tensor>& averaged_maps) const;

  /// Int8-quantized VBP: the forward pass runs through the quantized view of
  /// the steering model (exact-int32 GEMMs, bit-identical at any kernel /
  /// thread count / batch size); the channel averages and relevance chain
  /// are the same float code as the float path. Used by the q8 ladder rungs.
  Image compute_quantized(const nn::QuantizedForward& model, const Image& input) const;

  /// Batched counterpart; element i is bit-identical to
  /// compute_quantized(model, *inputs[i]) for any batch composition.
  std::vector<Image> compute_batch_quantized(const nn::QuantizedForward& model,
                                             const std::vector<const Image*>& inputs) const;
};

/// Transposed convolution with all-ones weights: scatters each input value
/// into the k x k output window it came from. `out_h` / `out_w` give the
/// exact target size (transposed-conv arithmetic can disagree by a pixel
/// with the true pre-conv size when the stride does not divide evenly;
/// out-of-range contributions are dropped). Exposed for tests.
Tensor deconv_ones(const Tensor& map, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                   int64_t padding, int64_t out_h, int64_t out_w);

}  // namespace salnov::saliency
