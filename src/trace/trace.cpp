#include "trace/trace.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "image/transforms.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "serving/clock.hpp"
#include "serving/cluster.hpp"
#include "tensor/serialize.hpp"

namespace salnov::trace {

namespace {

constexpr const char* kTraceMagic = "salnov-trace";
// v1: original format. v2 appends the online-calibration spec block, the
// per-frame swap flag + epoch, and the drift/swap health counters. v3
// appends the multi-stream cluster spec block and the per-frame stream_id.
// v4 appends the failure-domain spec block (watchdog knobs, admission
// credits, replica-fault schedule), the cluster event log, and the
// cluster-health counters. v5 appends the quantized-ladder flag (the q8
// serving rungs; per-frame modes widen through the same checked_enum range).
// save() always writes the current version; load() accepts every version
// back to kTraceVersionMin (checked-in goldens span v1..v5) and fills newer
// fields with their feature-off defaults (calibration off, single stream,
// no watchdog/faults, quant rungs off).
constexpr uint32_t kTraceVersion = 5;
constexpr uint32_t kTraceVersionMin = 1;

// Frame-record flag bits (TraceFrame bools packed into one u32).
constexpr uint32_t kFlagScored = 1u << 0;
constexpr uint32_t kFlagAbandoned = 1u << 1;
constexpr uint32_t kFlagDeadlineOverrun = 1u << 2;
constexpr uint32_t kFlagSensorBad = 1u << 3;
constexpr uint32_t kFlagNovel = 1u << 4;
constexpr uint32_t kFlagSwapped = 1u << 5;  // v2

uint32_t checked_enum(std::istream& is, uint32_t limit, const char* what) {
  const uint32_t value = read_u32(is);
  if (value >= limit) {
    throw SerializationError(std::string("trace: ") + what + " value " + std::to_string(value) +
                             " out of range");
  }
  return value;
}

std::string format_i64(int64_t value) { return std::to_string(value); }

std::string format_f64(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// True when `fault` is scheduled to fire on `frame`.
bool fault_active(const TraceCameraFault& fault, int64_t frame) {
  if (frame < fault.first_frame || frame > fault.last_frame) return false;
  return (frame - fault.first_frame) % fault.period == 0;
}

std::unique_ptr<roadsim::SceneGenerator> make_generator(const std::string& dataset) {
  if (dataset == "outdoor") return std::make_unique<roadsim::OutdoorSceneGenerator>();
  if (dataset == "indoor") return std::make_unique<roadsim::IndoorSceneGenerator>();
  throw std::invalid_argument("trace: unknown dataset '" + dataset + "'");
}

/// Floats diverge when not both-NaN and the relative gap exceeds the
/// tolerance. tolerance 0 demands bit-exactness (NaN == NaN included).
bool f64_diverges(double recorded, double replayed, double tolerance) {
  const bool rec_nan = std::isnan(recorded);
  const bool rep_nan = std::isnan(replayed);
  if (rec_nan || rep_nan) return rec_nan != rep_nan;
  if (tolerance <= 0.0) return recorded != replayed;
  const double scale = std::max({1.0, std::fabs(recorded), std::fabs(replayed)});
  return std::fabs(recorded - replayed) > tolerance * scale;
}

/// Comparison context: first divergence wins, later checks become no-ops.
struct Differ {
  std::optional<Divergence>& out;
  int64_t frame = -1;

  void check_i64(const char* stage, const char* field, int64_t recorded, int64_t replayed) {
    if (out || recorded == replayed) return;
    out = Divergence{frame, stage, field, format_i64(recorded), format_i64(replayed)};
  }
  void check_bool(const char* stage, const char* field, bool recorded, bool replayed) {
    check_i64(stage, field, recorded ? 1 : 0, replayed ? 1 : 0);
  }
  void check_enum(const char* stage, const char* field, int recorded, int replayed,
                  const char* (*name)(int)) {
    if (out || recorded == replayed) return;
    out = Divergence{frame, stage, field, name(recorded), name(replayed)};
  }
  void check_f64(const char* stage, const char* field, double recorded, double replayed,
                 double tolerance) {
    if (out || !f64_diverges(recorded, replayed, tolerance)) return;
    out = Divergence{frame, stage, field, format_f64(recorded), format_f64(replayed)};
  }
};

const char* serving_mode_tag(int value) {
  return serving::serving_mode_name(static_cast<serving::ServingMode>(value));
}
const char* breaker_state_tag(int value) {
  return serving::breaker_state_name(static_cast<serving::BreakerState>(value));
}
const char* monitor_state_tag(int value) {
  switch (static_cast<core::MonitorState>(value)) {
    case core::MonitorState::kNominal: return "nominal";
    case core::MonitorState::kAlert: return "alert";
    case core::MonitorState::kFallback: return "fallback";
    case core::MonitorState::kSensorFault: return "sensor-fault";
  }
  return "?";
}
const char* fallback_path_tag(int value) {
  switch (static_cast<core::FallbackPath>(value)) {
    case core::FallbackPath::kNone: return "none";
    case core::FallbackPath::kNovelty: return "novelty";
    case core::FallbackPath::kSensorFault: return "sensor-fault";
  }
  return "?";
}
const char* cluster_event_tag(int value) {
  return serving::cluster_event_kind_name(static_cast<serving::ClusterEventKind>(value));
}

}  // namespace

// --- spec -------------------------------------------------------------------

void TraceRunSpec::validate() const {
  make_generator(dataset);  // throws on unknown dataset
  if (frames < 0) throw std::invalid_argument("trace: negative frame count");
  if (height <= 0 || width <= 0) throw std::invalid_argument("trace: non-positive resolution");
  calib::validate(supervisor.calibration);  // throws on out-of-range drift knobs
  faults::TimingFaultInjector probe;
  for (const auto& stall : stalls) probe.add(stall);  // throws on a bad schedule
  for (const auto& fault : camera_faults) {
    if (!(fault.severity >= 0.0 && fault.severity <= 1.0)) {
      throw std::invalid_argument("trace: camera-fault severity outside [0, 1]");
    }
    if (fault.period <= 0 || fault.first_frame < 0 || fault.last_frame < fault.first_frame) {
      throw std::invalid_argument("trace: bad camera-fault schedule");
    }
  }
  if (cluster.streams < 0) throw std::invalid_argument("trace: negative stream count");
  if (cluster.streams > 0) {
    if (cluster.replicas < 1) throw std::invalid_argument("trace: cluster replicas must be >= 1");
    if (cluster.max_batch < 1) throw std::invalid_argument("trace: cluster max_batch must be >= 1");
    if (cluster.gather_window_ns < 0 || cluster.arrival_period_ns < 0) {
      throw std::invalid_argument("trace: negative cluster window/period");
    }
    if (cluster.replicas > 1 && !stalls.empty()) {
      // Concurrent replicas share the FakeClock: a stall advanced by one
      // worker would bleed into another worker's stage timings, making
      // stage_ns a race instead of a function of the spec.
      throw std::invalid_argument("trace: stalls require a single replica");
    }
  }
  if (cluster.admission_credits < 0) {
    throw std::invalid_argument("trace: negative admission credits");
  }
  if (cluster.watchdog.enabled) {
    const serving::WatchdogConfig& wd = cluster.watchdog;
    if (wd.batch_deadline_ns <= 0 || wd.heartbeat_timeout_ns <= 0 || wd.probe_backoff_ns <= 0 ||
        wd.max_probe_backoff_ns < wd.probe_backoff_ns) {
      throw std::invalid_argument("trace: bad watchdog timeouts");
    }
    if (wd.missed_deadlines_to_quarantine < 1 || wd.canary_failures_to_quarantine < 1 ||
        wd.canary_period_ns < 0 || wd.max_redispatches < 0 || !(wd.canary_epsilon >= 0.0)) {
      throw std::invalid_argument("trace: bad watchdog thresholds");
    }
  }
  if (!cluster.replica_faults.empty()) {
    if (cluster.streams <= 0) {
      throw std::invalid_argument("trace: replica faults require a cluster run");
    }
    faults::ReplicaFaultSchedule probe_schedule;
    for (const auto& fault : cluster.replica_faults) {
      probe_schedule.add(fault);  // throws on a bad fault window / fields
      if (fault.replica >= cluster.replicas) {
        throw std::invalid_argument("trace: replica fault targets replica " +
                                    std::to_string(fault.replica) + " of " +
                                    std::to_string(cluster.replicas));
      }
    }
  }
}

// --- conversion -------------------------------------------------------------

TraceFrame TraceFrame::from(const serving::ServeResult& result, serving::ServingMode mode_after,
                            serving::BreakerState breaker_after) {
  TraceFrame frame;
  frame.frame_index = result.frame_index;
  frame.mode = result.mode;
  frame.scored = result.scored;
  frame.abandoned = result.abandoned;
  frame.deadline_overrun = result.deadline_overrun;
  frame.sensor_bad = result.sensor_bad;
  frame.novel = result.novel;
  frame.score = result.score;
  frame.steering = result.steering;
  frame.monitor_state = result.monitor_state;
  frame.fallback_path = result.fallback_path;
  frame.stage_ns = result.stage_ns;
  frame.mode_after = mode_after;
  frame.breaker_after = breaker_after;
  frame.swapped = result.threshold_swapped;
  frame.epoch_after = result.threshold_epoch;
  return frame;
}

TraceHealth TraceHealth::from(const serving::HealthSnapshot& snapshot) {
  TraceHealth health;
  health.frames_total = snapshot.frames_total;
  health.frames_scored = snapshot.frames_scored;
  health.frames_abandoned = snapshot.frames_abandoned;
  health.frames_held = snapshot.frames_held;
  health.frames_sensor_bad = snapshot.frames_sensor_bad;
  health.deadline_overruns = snapshot.deadline_overruns;
  health.scoring_failures = snapshot.scoring_failures;
  health.nonfinite_scores = snapshot.nonfinite_scores;
  health.step_downs = snapshot.step_downs;
  health.promotions = snapshot.promotions;
  health.breaker_trips = snapshot.breaker_trips;
  health.probe_successes = snapshot.probe_successes;
  health.probe_failures = snapshot.probe_failures;
  health.drift_checks = snapshot.drift_checks;
  health.drift_detections = snapshot.drift_detections;
  health.threshold_swaps = snapshot.threshold_swaps;
  health.threshold_epoch = snapshot.threshold_epoch;
  return health;
}

TraceClusterHealth TraceClusterHealth::from(const serving::ClusterStats& stats) {
  TraceClusterHealth health;
  health.quarantines = stats.quarantines;
  health.probe_attempts = stats.probe_attempts;
  health.probe_failures = stats.probe_failures;
  health.restores = stats.restores;
  health.failovers = stats.failovers;
  health.redispatched_frames = stats.redispatched_frames;
  health.fallback_frames = stats.fallback_frames;
  health.shed_frames = stats.shed_frames;
  return health;
}

// --- serialization ----------------------------------------------------------

void Trace::save(std::ostream& os) const {
  write_header(os, kTraceMagic, kTraceVersion);

  write_string(os, spec.dataset);
  write_i64(os, static_cast<int64_t>(spec.frame_seed));
  write_i64(os, static_cast<int64_t>(spec.fault_seed));
  write_i64(os, spec.frames);
  write_i64(os, spec.height);
  write_i64(os, spec.width);

  write_u32(os, static_cast<uint32_t>(spec.stalls.size()));
  for (const auto& stall : spec.stalls) {
    write_i64(os, stall.stage);
    write_i64(os, stall.stall_ns);
    write_i64(os, stall.first_frame);
    write_i64(os, stall.last_frame);
    write_i64(os, stall.period);
  }

  write_u32(os, static_cast<uint32_t>(spec.camera_faults.size()));
  for (const auto& fault : spec.camera_faults) {
    write_u32(os, static_cast<uint32_t>(fault.fault));
    write_f64(os, fault.severity);
    write_i64(os, fault.first_frame);
    write_i64(os, fault.last_frame);
    write_i64(os, fault.period);
  }

  const serving::SupervisorConfig& sup = spec.supervisor;
  for (int64_t budget : sup.stage_budget_ns) write_i64(os, budget);
  write_i64(os, sup.frame_budget_ns);
  write_i64(os, sup.breaker.failure_threshold);
  write_i64(os, sup.breaker.open_frames);
  write_i64(os, sup.demote_after_bad_frames);
  write_i64(os, sup.promote_after_healthy_frames);
  write_i64(os, sup.monitor.trigger_frames);
  write_i64(os, sup.monitor.release_frames);
  write_f64(os, sup.monitor.score_smoothing);
  write_i64(os, sup.monitor.sensor_trigger_frames);
  write_i64(os, sup.monitor.sensor_release_frames);
  write_u32(os, sup.monitor.detect_frozen_frames ? 1 : 0);

  // v2: online-calibration block. store_path is deliberately omitted (a
  // replay must never write operator files).
  const calib::OnlineCalibrationConfig& cal = sup.calibration;
  write_u32(os, cal.enabled ? 1 : 0);
  write_u32(os, cal.auto_swap ? 1 : 0);
  write_f64(os, cal.percentile);
  write_i64(os, cal.warmup);
  write_i64(os, cal.min_samples);
  write_f64(os, cal.drift_tolerance);
  write_i64(os, cal.check_every_frames);
  write_i64(os, cal.trigger_checks);
  write_i64(os, cal.release_checks);
  write_u32(os, static_cast<uint32_t>(cal.forced_swap_frames.size()));
  for (int64_t frame : cal.forced_swap_frames) write_i64(os, frame);

  // v3: multi-stream cluster block.
  write_i64(os, spec.cluster.streams);
  write_i64(os, spec.cluster.replicas);
  write_i64(os, spec.cluster.gather_window_ns);
  write_i64(os, spec.cluster.max_batch);
  write_i64(os, spec.cluster.arrival_period_ns);

  // v4: failure-domain block (watchdog, admission credits, fault schedule).
  const serving::WatchdogConfig& wd = spec.cluster.watchdog;
  write_u32(os, wd.enabled ? 1 : 0);
  write_i64(os, wd.batch_deadline_ns);
  write_i64(os, wd.heartbeat_timeout_ns);
  write_i64(os, wd.missed_deadlines_to_quarantine);
  write_i64(os, wd.canary_period_ns);
  write_i64(os, wd.canary_failures_to_quarantine);
  write_i64(os, wd.probe_backoff_ns);
  write_i64(os, wd.max_probe_backoff_ns);
  write_i64(os, wd.max_redispatches);
  write_f64(os, wd.canary_epsilon);
  write_i64(os, spec.cluster.admission_credits);
  write_u32(os, static_cast<uint32_t>(spec.cluster.replica_faults.size()));
  for (const auto& fault : spec.cluster.replica_faults) {
    write_i64(os, fault.replica);
    write_u32(os, static_cast<uint32_t>(fault.kind));
    write_i64(os, fault.start_ns);
    write_i64(os, fault.end_ns);
    write_i64(os, fault.slow_penalty_ns);
    write_i64(os, fault.weight_bits);
    write_i64(os, static_cast<int64_t>(fault.seed));
  }

  // v5: quantized-ladder block.
  write_u32(os, sup.enable_quant_rungs ? 1 : 0);

  write_u32(os, spec.pipeline_crc);
  write_i64(os, spec.pipeline_bytes);

  write_i64(os, static_cast<int64_t>(frames.size()));
  for (const auto& frame : frames) {
    write_i64(os, frame.frame_index);
    write_u32(os, static_cast<uint32_t>(frame.mode));
    uint32_t flags = 0;
    if (frame.scored) flags |= kFlagScored;
    if (frame.abandoned) flags |= kFlagAbandoned;
    if (frame.deadline_overrun) flags |= kFlagDeadlineOverrun;
    if (frame.sensor_bad) flags |= kFlagSensorBad;
    if (frame.novel) flags |= kFlagNovel;
    if (frame.swapped) flags |= kFlagSwapped;
    write_u32(os, flags);
    write_f64(os, frame.score);
    write_f64(os, frame.steering);
    write_u32(os, static_cast<uint32_t>(frame.monitor_state));
    write_u32(os, static_cast<uint32_t>(frame.fallback_path));
    for (int64_t ns : frame.stage_ns) write_i64(os, ns);
    write_u32(os, static_cast<uint32_t>(frame.mode_after));
    write_u32(os, static_cast<uint32_t>(frame.breaker_after));
    write_i64(os, frame.epoch_after);
    write_i64(os, frame.stream_id);  // v3
  }

  write_i64(os, health.frames_total);
  write_i64(os, health.frames_scored);
  write_i64(os, health.frames_abandoned);
  write_i64(os, health.frames_held);
  write_i64(os, health.frames_sensor_bad);
  write_i64(os, health.deadline_overruns);
  write_i64(os, health.scoring_failures);
  write_i64(os, health.nonfinite_scores);
  write_i64(os, health.step_downs);
  write_i64(os, health.promotions);
  write_i64(os, health.breaker_trips);
  write_i64(os, health.probe_successes);
  write_i64(os, health.probe_failures);
  write_i64(os, health.drift_checks);
  write_i64(os, health.drift_detections);
  write_i64(os, health.threshold_swaps);
  write_i64(os, health.threshold_epoch);

  // v4: failure-domain event log + cluster-health counters.
  write_i64(os, static_cast<int64_t>(events.size()));
  for (const auto& event : events) {
    write_u32(os, static_cast<uint32_t>(event.kind));
    write_i64(os, event.at_ns);
    write_i64(os, event.replica);
    write_i64(os, event.stream);
    write_i64(os, event.detail);
  }
  write_i64(os, cluster_health.quarantines);
  write_i64(os, cluster_health.probe_attempts);
  write_i64(os, cluster_health.probe_failures);
  write_i64(os, cluster_health.restores);
  write_i64(os, cluster_health.failovers);
  write_i64(os, cluster_health.redispatched_frames);
  write_i64(os, cluster_health.fallback_frames);
  write_i64(os, cluster_health.shed_frames);
}

Trace Trace::load(std::istream& is) {
  // Hand-rolled header read (read_header demands one exact version): every
  // version in [kTraceVersionMin, kTraceVersion] must keep loading so the
  // checked-in v1 goldens stay replayable.
  const std::string got_magic = read_string(is);
  if (got_magic != kTraceMagic) {
    throw SerializationError("trace: expected magic '" + std::string(kTraceMagic) + "', got '" +
                             got_magic + "'");
  }
  const uint32_t version = read_u32(is);
  if (version < kTraceVersionMin || version > kTraceVersion) {
    throw SerializationError("trace: version " + std::to_string(version) + " unsupported (want " +
                             std::to_string(kTraceVersionMin) + ".." +
                             std::to_string(kTraceVersion) + ")");
  }
  Trace trace;
  TraceRunSpec& spec = trace.spec;

  spec.dataset = read_string(is);
  spec.frame_seed = static_cast<uint64_t>(read_i64(is));
  spec.fault_seed = static_cast<uint64_t>(read_i64(is));
  spec.frames = read_i64(is);
  spec.height = read_i64(is);
  spec.width = read_i64(is);

  const uint32_t n_stalls = read_u32(is);
  spec.stalls.resize(n_stalls);
  for (auto& stall : spec.stalls) {
    stall.stage = static_cast<int>(read_i64(is));
    stall.stall_ns = read_i64(is);
    stall.first_frame = read_i64(is);
    stall.last_frame = read_i64(is);
    stall.period = read_i64(is);
  }

  const uint32_t n_camera = read_u32(is);
  spec.camera_faults.resize(n_camera);
  for (auto& fault : spec.camera_faults) {
    fault.fault = static_cast<faults::CameraFault>(checked_enum(is, 8, "camera fault"));
    fault.severity = read_f64(is);
    fault.first_frame = read_i64(is);
    fault.last_frame = read_i64(is);
    fault.period = read_i64(is);
  }

  serving::SupervisorConfig& sup = spec.supervisor;
  for (int64_t& budget : sup.stage_budget_ns) budget = read_i64(is);
  sup.frame_budget_ns = read_i64(is);
  sup.breaker.failure_threshold = static_cast<int>(read_i64(is));
  sup.breaker.open_frames = read_i64(is);
  sup.demote_after_bad_frames = static_cast<int>(read_i64(is));
  sup.promote_after_healthy_frames = static_cast<int>(read_i64(is));
  sup.monitor.trigger_frames = read_i64(is);
  sup.monitor.release_frames = read_i64(is);
  sup.monitor.score_smoothing = read_f64(is);
  sup.monitor.sensor_trigger_frames = read_i64(is);
  sup.monitor.sensor_release_frames = read_i64(is);
  sup.monitor.detect_frozen_frames = read_u32(is) != 0;

  if (version >= 2) {
    calib::OnlineCalibrationConfig& cal = sup.calibration;
    cal.enabled = read_u32(is) != 0;
    cal.auto_swap = read_u32(is) != 0;
    cal.percentile = read_f64(is);
    cal.warmup = read_i64(is);
    cal.min_samples = read_i64(is);
    cal.drift_tolerance = read_f64(is);
    cal.check_every_frames = read_i64(is);
    cal.trigger_checks = read_i64(is);
    cal.release_checks = read_i64(is);
    const uint32_t n_forced = read_u32(is);
    if (n_forced > (1u << 20)) {
      throw SerializationError("trace: implausible forced-swap count " + std::to_string(n_forced));
    }
    cal.forced_swap_frames.resize(n_forced);
    for (int64_t& frame : cal.forced_swap_frames) frame = read_i64(is);
  }  // v1: calibration-off defaults

  if (version >= 3) {
    spec.cluster.streams = read_i64(is);
    spec.cluster.replicas = read_i64(is);
    spec.cluster.gather_window_ns = read_i64(is);
    spec.cluster.max_batch = read_i64(is);
    spec.cluster.arrival_period_ns = read_i64(is);
  }  // v1/v2: single-stream defaults

  if (version >= 4) {
    serving::WatchdogConfig& wd = spec.cluster.watchdog;
    wd.enabled = read_u32(is) != 0;
    wd.batch_deadline_ns = read_i64(is);
    wd.heartbeat_timeout_ns = read_i64(is);
    wd.missed_deadlines_to_quarantine = read_i64(is);
    wd.canary_period_ns = read_i64(is);
    wd.canary_failures_to_quarantine = read_i64(is);
    wd.probe_backoff_ns = read_i64(is);
    wd.max_probe_backoff_ns = read_i64(is);
    wd.max_redispatches = read_i64(is);
    wd.canary_epsilon = read_f64(is);
    spec.cluster.admission_credits = read_i64(is);
    const uint32_t n_replica_faults = read_u32(is);
    if (n_replica_faults > (1u << 20)) {
      throw SerializationError("trace: implausible replica-fault count " +
                               std::to_string(n_replica_faults));
    }
    spec.cluster.replica_faults.resize(n_replica_faults);
    for (auto& fault : spec.cluster.replica_faults) {
      fault.replica = read_i64(is);
      fault.kind = static_cast<faults::ReplicaFaultKind>(checked_enum(is, 4, "replica fault"));
      fault.start_ns = read_i64(is);
      fault.end_ns = read_i64(is);
      fault.slow_penalty_ns = read_i64(is);
      fault.weight_bits = read_i64(is);
      fault.seed = static_cast<uint64_t>(read_i64(is));
    }
  }  // v1..v3: no watchdog, no faults, no admission control

  if (version >= 5) {
    sup.enable_quant_rungs = read_u32(is) != 0;
  }  // v1..v4: float ladder only

  spec.pipeline_crc = read_u32(is);
  spec.pipeline_bytes = read_i64(is);

  const int64_t n_frames = read_i64(is);
  if (n_frames < 0) throw SerializationError("trace: negative frame-record count");
  trace.frames.resize(static_cast<size_t>(n_frames));
  for (auto& frame : trace.frames) {
    frame.frame_index = read_i64(is);
    frame.mode = static_cast<serving::ServingMode>(
        checked_enum(is, serving::kServingModeCount, "serving mode"));
    const uint32_t flags = read_u32(is);
    frame.scored = (flags & kFlagScored) != 0;
    frame.abandoned = (flags & kFlagAbandoned) != 0;
    frame.deadline_overrun = (flags & kFlagDeadlineOverrun) != 0;
    frame.sensor_bad = (flags & kFlagSensorBad) != 0;
    frame.novel = (flags & kFlagNovel) != 0;
    frame.swapped = (flags & kFlagSwapped) != 0;
    frame.score = read_f64(is);
    frame.steering = read_f64(is);
    frame.monitor_state = static_cast<core::MonitorState>(checked_enum(is, 4, "monitor state"));
    frame.fallback_path = static_cast<core::FallbackPath>(checked_enum(is, 3, "fallback path"));
    for (int64_t& ns : frame.stage_ns) ns = read_i64(is);
    frame.mode_after = static_cast<serving::ServingMode>(
        checked_enum(is, serving::kServingModeCount, "serving mode"));
    frame.breaker_after =
        static_cast<serving::BreakerState>(checked_enum(is, 3, "breaker state"));
    if (version >= 2) frame.epoch_after = read_i64(is);
    if (version >= 3) frame.stream_id = read_i64(is);
  }

  TraceHealth& health = trace.health;
  health.frames_total = read_i64(is);
  health.frames_scored = read_i64(is);
  health.frames_abandoned = read_i64(is);
  health.frames_held = read_i64(is);
  health.frames_sensor_bad = read_i64(is);
  health.deadline_overruns = read_i64(is);
  health.scoring_failures = read_i64(is);
  health.nonfinite_scores = read_i64(is);
  health.step_downs = read_i64(is);
  health.promotions = read_i64(is);
  health.breaker_trips = read_i64(is);
  health.probe_successes = read_i64(is);
  health.probe_failures = read_i64(is);
  if (version >= 2) {
    health.drift_checks = read_i64(is);
    health.drift_detections = read_i64(is);
    health.threshold_swaps = read_i64(is);
    health.threshold_epoch = read_i64(is);
  }

  if (version >= 4) {
    const int64_t n_events = read_i64(is);
    if (n_events < 0 || n_events > (1 << 24)) {
      throw SerializationError("trace: implausible event count " + std::to_string(n_events));
    }
    trace.events.resize(static_cast<size_t>(n_events));
    for (auto& event : trace.events) {
      event.kind = static_cast<serving::ClusterEventKind>(checked_enum(is, 7, "cluster event"));
      event.at_ns = read_i64(is);
      event.replica = read_i64(is);
      event.stream = read_i64(is);
      event.detail = read_i64(is);
    }
    TraceClusterHealth& cluster_health = trace.cluster_health;
    cluster_health.quarantines = read_i64(is);
    cluster_health.probe_attempts = read_i64(is);
    cluster_health.probe_failures = read_i64(is);
    cluster_health.restores = read_i64(is);
    cluster_health.failovers = read_i64(is);
    cluster_health.redispatched_frames = read_i64(is);
    cluster_health.fallback_frames = read_i64(is);
    cluster_health.shed_frames = read_i64(is);
  }  // v1..v3: empty event log, zero counters
  return trace;
}

void Trace::save_file(const std::string& path) const {
  save_file_checked(path, [this](std::ostream& os) { save(os); });
}

Trace Trace::load_file(const std::string& path) {
  const std::string payload = load_file_checked(path);
  std::istringstream is(payload);
  return load(is);
}

// --- scenario driver --------------------------------------------------------

serving::HealthSnapshot drive(const TraceRunSpec& spec, const core::NoveltyDetector& detector,
                              nn::Sequential* steering_model,
                              const std::function<void(const TraceFrame&)>& on_frame,
                              std::vector<serving::ClusterEvent>* events,
                              serving::ClusterStats* cluster_stats) {
  spec.validate();
  if (spec.height != detector.config().height || spec.width != detector.config().width) {
    throw std::invalid_argument("trace: spec resolution " + std::to_string(spec.height) + "x" +
                                std::to_string(spec.width) + " does not match the pipeline (" +
                                std::to_string(detector.config().height) + "x" +
                                std::to_string(detector.config().width) + ")");
  }

  const std::unique_ptr<roadsim::SceneGenerator> generator = make_generator(spec.dataset);
  faults::TimingFaultInjector stalls;
  for (const auto& stall : spec.stalls) stalls.add(stall);
  serving::SupervisorConfig config = spec.supervisor;
  config.timing_faults = stalls.empty() ? nullptr : &stalls;
  // Traced runs never persist threshold sets: the decision stream must be a
  // pure function of the spec, and a replay must not write operator files.
  // (store_path is not serialized either; this guards in-memory specs.)
  config.calibration.store_path.clear();

  // All timing under a FakeClock: elapsed time is exactly the injected
  // stalls, so the decision stream is a pure function of the spec.
  serving::FakeClock clock;

  if (spec.cluster.streams <= 0) {
    serving::Supervisor supervisor(detector, steering_model, config, &clock);

    Rng rng(spec.frame_seed);
    faults::FaultInjector camera(spec.fault_seed);
    for (int64_t i = 0; i < spec.frames; ++i) {
      const roadsim::Sample sample = generator->generate(rng);
      Image view = resize_bilinear(sample.rgb.to_grayscale(), spec.height, spec.width);
      // Tick every scheduled fault each frame — severity 0 when inactive —
      // so stateful faults (frozen-frame) and per-call variate draws see the
      // same stream a continuously-faulted camera would.
      for (const auto& fault : spec.camera_faults) {
        view = camera.apply(fault.fault, fault_active(fault, i) ? fault.severity : 0.0, view);
      }
      const serving::ServeResult result = supervisor.process(view);
      if (on_frame) {
        on_frame(TraceFrame::from(result, supervisor.mode(), supervisor.breaker_state()));
      }
    }
    return supervisor.health();
  }

  // Multi-stream path: one ServingCluster, deterministic arrival schedule.
  // The whole schedule is staged while the workers are paused — every frame
  // is stamped with its scheduled fake arrival time before any compute runs,
  // so the batch composition (and, with a single replica, every stall-driven
  // stage timing) is a pure function of the spec.
  serving::ClusterConfig cluster_config;
  cluster_config.streams = spec.cluster.streams;
  cluster_config.replicas = spec.cluster.replicas;
  cluster_config.gather_window_ns = spec.cluster.gather_window_ns;
  cluster_config.max_batch = spec.cluster.max_batch;
  cluster_config.supervisor = config;
  cluster_config.watchdog = spec.cluster.watchdog;
  cluster_config.admission_credits = spec.cluster.admission_credits;
  // Declared before the cluster so the schedule outlives the workers.
  faults::ReplicaFaultSchedule replica_faults;
  for (const auto& fault : spec.cluster.replica_faults) replica_faults.add(fault);
  cluster_config.replica_faults = replica_faults.empty() ? nullptr : &replica_faults;
  // A simulated slow replica must never sleep the shared FakeClock: under
  // the staged protocol the driver owns time, so the penalty is charged to
  // the watchdog's deadline accounting only.
  cluster_config.sleep_on_slow = false;
  serving::ServingCluster cluster(detector, steering_model, cluster_config, &clock);
  cluster.pause();

  const int64_t streams = spec.cluster.streams;
  std::vector<std::unique_ptr<roadsim::SceneGenerator>> generators;
  std::vector<Rng> rngs;
  std::vector<faults::FaultInjector> cameras;
  for (int64_t s = 0; s < streams; ++s) {
    generators.push_back(make_generator(spec.dataset));
    rngs.emplace_back(spec.frame_seed + static_cast<uint64_t>(s));
    cameras.emplace_back(spec.fault_seed + static_cast<uint64_t>(s));
  }
  for (int64_t i = 0; i < spec.frames; ++i) {
    for (int64_t s = 0; s < streams; ++s) {
      const size_t si = static_cast<size_t>(s);
      const roadsim::Sample sample = generators[si]->generate(rngs[si]);
      Image view = resize_bilinear(sample.rgb.to_grayscale(), spec.height, spec.width);
      for (const auto& fault : spec.camera_faults) {
        view = cameras[si].apply(fault.fault, fault_active(fault, i) ? fault.severity : 0.0, view);
      }
      cluster.submit(s, std::move(view));
    }
    clock.advance_ns(spec.cluster.arrival_period_ns);
  }
  cluster.drain();
  if (on_frame) {
    // take_results() sorts by arrival_seq == submission order, so the frame
    // stream is emitted in global arrival order.
    for (const auto& cr : cluster.take_results()) {
      TraceFrame frame = TraceFrame::from(cr.result, cr.mode_after, cr.breaker_after);
      frame.stream_id = cr.stream_id;
      on_frame(frame);
    }
  }
  if (events) *events = cluster.take_events();
  if (cluster_stats) *cluster_stats = cluster.stats();
  const serving::HealthSnapshot health = cluster.aggregate_health();
  cluster.stop();
  return health;
}

Trace TraceRecorder::record(const TraceRunSpec& spec, const core::NoveltyDetector& detector,
                            nn::Sequential* steering_model) {
  Trace trace;
  trace.spec = spec;
  trace.frames.reserve(static_cast<size_t>(spec.frames));
  serving::ClusterStats stats;
  const serving::HealthSnapshot health =
      drive(spec, detector, steering_model,
            [&trace](const TraceFrame& frame) { trace.frames.push_back(frame); }, &trace.events,
            &stats);
  trace.health = TraceHealth::from(health);
  trace.cluster_health = TraceClusterHealth::from(stats);
  return trace;
}

// --- diffing ----------------------------------------------------------------

std::string Divergence::format() const {
  std::string where = frame >= 0 ? "frame " + std::to_string(frame) : "run level";
  return "divergence at " + where + ", stage " + stage + ", field " + field +
         ": recorded=" + recorded + " replayed=" + replayed;
}

std::string ReplayReport::format() const {
  if (!divergence) {
    return "replay conformant (" + std::to_string(frames_compared) + " frames)";
  }
  return divergence->format();
}

ReplayReport compare(const Trace& recorded, const std::vector<TraceFrame>& replayed,
                     const TraceHealth& replayed_health, const ReplayOptions& options,
                     const std::vector<serving::ClusterEvent>* replayed_events,
                     const TraceClusterHealth* replayed_cluster) {
  ReplayReport report;
  Differ diff{report.divergence};

  diff.check_i64("supervisor", "frame_count", static_cast<int64_t>(recorded.frames.size()),
                 static_cast<int64_t>(replayed.size()));

  const size_t n = std::min(recorded.frames.size(), replayed.size());
  for (size_t i = 0; i < n && !report.divergence; ++i) {
    const TraceFrame& rec = recorded.frames[i];
    const TraceFrame& rep = replayed[i];
    diff.frame = rec.frame_index;
    ++report.frames_compared;

    // Fields in pipeline order, so the first divergence names the earliest
    // stage that moved.
    diff.check_i64("supervisor", "frame_index", rec.frame_index, rep.frame_index);
    diff.check_i64("cluster", "stream_id", rec.stream_id, rep.stream_id);
    diff.check_enum("ladder", "mode", static_cast<int>(rec.mode), static_cast<int>(rep.mode),
                    serving_mode_tag);
    diff.check_bool("validate", "sensor_bad", rec.sensor_bad, rep.sensor_bad);
    for (int s = 0; s < serving::kStageCount; ++s) {
      diff.check_i64(serving::stage_name(static_cast<serving::Stage>(s)), "stage_ns",
                     rec.stage_ns[static_cast<size_t>(s)], rep.stage_ns[static_cast<size_t>(s)]);
    }
    diff.check_f64("steer", "steering", rec.steering, rep.steering, options.score_tolerance);
    diff.check_f64("score", "score", rec.score, rep.score, options.score_tolerance);
    diff.check_bool("score", "novel", rec.novel, rep.novel);
    diff.check_bool("supervisor", "scored", rec.scored, rep.scored);
    diff.check_bool("supervisor", "abandoned", rec.abandoned, rep.abandoned);
    diff.check_bool("supervisor", "deadline_overrun", rec.deadline_overrun, rep.deadline_overrun);
    diff.check_enum("monitor", "monitor_state", static_cast<int>(rec.monitor_state),
                    static_cast<int>(rep.monitor_state), monitor_state_tag);
    diff.check_enum("monitor", "fallback_path", static_cast<int>(rec.fallback_path),
                    static_cast<int>(rep.fallback_path), fallback_path_tag);
    diff.check_enum("ladder", "mode_after", static_cast<int>(rec.mode_after),
                    static_cast<int>(rep.mode_after), serving_mode_tag);
    diff.check_enum("breaker", "breaker_after", static_cast<int>(rec.breaker_after),
                    static_cast<int>(rep.breaker_after), breaker_state_tag);
    diff.check_bool("calib", "swapped", rec.swapped, rep.swapped);
    diff.check_i64("calib", "epoch_after", rec.epoch_after, rep.epoch_after);
  }

  if (!report.divergence) {
    diff.frame = -1;
    const TraceHealth& rec = recorded.health;
    const TraceHealth& rep = replayed_health;
    diff.check_i64("health", "frames_total", rec.frames_total, rep.frames_total);
    diff.check_i64("health", "frames_scored", rec.frames_scored, rep.frames_scored);
    diff.check_i64("health", "frames_abandoned", rec.frames_abandoned, rep.frames_abandoned);
    diff.check_i64("health", "frames_held", rec.frames_held, rep.frames_held);
    diff.check_i64("health", "frames_sensor_bad", rec.frames_sensor_bad, rep.frames_sensor_bad);
    diff.check_i64("health", "deadline_overruns", rec.deadline_overruns, rep.deadline_overruns);
    diff.check_i64("health", "scoring_failures", rec.scoring_failures, rep.scoring_failures);
    diff.check_i64("health", "nonfinite_scores", rec.nonfinite_scores, rep.nonfinite_scores);
    diff.check_i64("health", "step_downs", rec.step_downs, rep.step_downs);
    diff.check_i64("health", "promotions", rec.promotions, rep.promotions);
    diff.check_i64("health", "breaker_trips", rec.breaker_trips, rep.breaker_trips);
    diff.check_i64("health", "probe_successes", rec.probe_successes, rep.probe_successes);
    diff.check_i64("health", "probe_failures", rec.probe_failures, rep.probe_failures);
    diff.check_i64("health", "drift_checks", rec.drift_checks, rep.drift_checks);
    diff.check_i64("health", "drift_detections", rec.drift_detections, rep.drift_detections);
    diff.check_i64("health", "threshold_swaps", rec.threshold_swaps, rep.threshold_swaps);
    diff.check_i64("health", "threshold_epoch", rec.threshold_epoch, rep.threshold_epoch);
  }

  // v4: the failure-domain event log and cluster-health counters must replay
  // bit-exactly — a recovery path that fires at a different fake time, moves
  // a different frame count, or quarantines a different replica is a policy
  // divergence even when every per-frame decision matches.
  if (!report.divergence && replayed_events) {
    diff.frame = -1;
    diff.check_i64("events", "event_count", static_cast<int64_t>(recorded.events.size()),
                   static_cast<int64_t>(replayed_events->size()));
    const size_t n_events = std::min(recorded.events.size(), replayed_events->size());
    for (size_t i = 0; i < n_events && !report.divergence; ++i) {
      const serving::ClusterEvent& rec = recorded.events[i];
      const serving::ClusterEvent& rep = (*replayed_events)[i];
      diff.frame = static_cast<int64_t>(i);  // event index, not a frame index
      diff.check_enum("events", "kind", static_cast<int>(rec.kind), static_cast<int>(rep.kind),
                      cluster_event_tag);
      diff.check_i64("events", "at_ns", rec.at_ns, rep.at_ns);
      diff.check_i64("events", "replica", rec.replica, rep.replica);
      diff.check_i64("events", "stream", rec.stream, rep.stream);
      diff.check_i64("events", "detail", rec.detail, rep.detail);
    }
  }
  if (!report.divergence && replayed_cluster) {
    diff.frame = -1;
    const TraceClusterHealth& rec = recorded.cluster_health;
    const TraceClusterHealth& rep = *replayed_cluster;
    diff.check_i64("cluster_health", "quarantines", rec.quarantines, rep.quarantines);
    diff.check_i64("cluster_health", "probe_attempts", rec.probe_attempts, rep.probe_attempts);
    diff.check_i64("cluster_health", "probe_failures", rec.probe_failures, rep.probe_failures);
    diff.check_i64("cluster_health", "restores", rec.restores, rep.restores);
    diff.check_i64("cluster_health", "failovers", rec.failovers, rep.failovers);
    diff.check_i64("cluster_health", "redispatched_frames", rec.redispatched_frames,
                   rep.redispatched_frames);
    diff.check_i64("cluster_health", "fallback_frames", rec.fallback_frames, rep.fallback_frames);
    diff.check_i64("cluster_health", "shed_frames", rec.shed_frames, rep.shed_frames);
  }
  return report;
}

ReplayReport TraceReplayer::replay(const Trace& trace, const core::NoveltyDetector& detector,
                                   nn::Sequential* steering_model, const ReplayOptions& options) {
  std::vector<TraceFrame> replayed;
  replayed.reserve(trace.frames.size());
  std::vector<serving::ClusterEvent> replayed_events;
  serving::ClusterStats replayed_stats;
  const serving::HealthSnapshot health =
      drive(trace.spec, detector, steering_model,
            [&replayed](const TraceFrame& frame) { replayed.push_back(frame); }, &replayed_events,
            &replayed_stats);
  const TraceClusterHealth replayed_cluster = TraceClusterHealth::from(replayed_stats);
  return compare(trace, replayed, TraceHealth::from(health), options, &replayed_events,
                 &replayed_cluster);
}

}  // namespace salnov::trace
