// Golden-trace record/replay conformance layer.
//
// The serving stack makes a long chain of decisions per frame — validator
// verdict, VBP/SSIM (or degraded-rung) score, ECDF threshold test, monitor
// hysteresis, ladder and breaker transitions — and the safety argument rests
// on that chain being reproducible. This module pins it down end to end:
//
//   * A TraceRunSpec is a complete, serializable description of a scenario:
//     scene stream (dataset + seed), camera-fault schedule, stall schedule,
//     and every supervisor/monitor/breaker knob. All timing runs under a
//     FakeClock, so the only "time" in a run is the injected stalls and the
//     whole decision trace is a pure function of the spec and the fitted
//     pipeline.
//   * TraceRecorder::record drives the scenario and captures one TraceFrame
//     per frame (scores, verdicts, modes, monitor state, stage timings) plus
//     the final health counters, into a versioned file guarded by the
//     checked-persistence CRC trailer.
//   * TraceReplayer::replay re-drives the pipeline from the spec and diffs
//     the fresh decision stream against the recorded one. Discrete decisions
//     (verdicts, modes, states, counters) must match bit-exactly; float
//     scores are bit-exact at the recording kernel/thread configuration (the
//     PR-1 determinism contract) and tolerance-bounded across GEMM kernels
//     (which legitimately round differently). The first mismatch is reported
//     with frame, stage, and field.
//
// Golden traces checked into tests/golden/ turn every future refactor into a
// cheap conformance question: replay them at 1 vs N threads and scalar vs
// SIMD kernels and require an empty diff.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/novelty_detector.hpp"
#include "faults/fault_injector.hpp"
#include "faults/replica_faults.hpp"
#include "faults/timing_faults.hpp"
#include "serving/health.hpp"
#include "serving/supervisor.hpp"
#include "serving/watchdog.hpp"

namespace salnov::trace {

/// One scheduled camera fault: applied to frames in [first_frame,
/// last_frame] whose offset from first_frame is a multiple of `period`.
/// Inactive frames still tick the injector at severity 0 so stateful faults
/// (frozen-frame) track the healthy stream exactly as a real camera would.
struct TraceCameraFault {
  faults::CameraFault fault = faults::CameraFault::kFrozenFrame;
  double severity = 1.0;
  int64_t first_frame = 0;
  int64_t last_frame = std::numeric_limits<int64_t>::max();  ///< inclusive
  int64_t period = 1;
};

/// Multi-stream scenario shape (format v3). `streams == 0` selects the
/// legacy single-supervisor driver; `streams > 0` drives a ServingCluster:
/// stream s draws its scene stream from frame_seed + s and its camera-fault
/// variates from fault_seed + s, `frames` becomes frames *per stream*, and
/// arrivals are scheduled round-robin (every stream's frame i arrives at
/// i * arrival_period_ns of fake time) so the batch composition is a pure
/// function of the spec. Stalls require `replicas == 1`: concurrent
/// replicas share the FakeClock, and a stall advanced by one worker would
/// bleed into another worker's stage timings.
struct TraceClusterSpec {
  int64_t streams = 0;    ///< 0 = single-stream legacy driver
  int64_t replicas = 1;
  int64_t gather_window_ns = 2'000'000;
  int64_t max_batch = 16;
  int64_t arrival_period_ns = 1'000'000;  ///< fake time between arrival rounds

  // Format v4: the replica failure domain. All feature-off defaults, so a
  // v3 trace loads as a cluster without watchdog, faults, or admission
  // control and replays exactly as before.
  serving::WatchdogConfig watchdog;
  int64_t admission_credits = 0;  ///< per-stream pending bound (0 = off)
  std::vector<faults::ReplicaFault> replica_faults;
};

/// Complete description of a recordable scenario. Everything that can move
/// a decision is in here; the fitted pipeline arrives separately (and is
/// guarded by `pipeline_crc`).
struct TraceRunSpec {
  std::string dataset = "outdoor";  ///< "outdoor" | "indoor"
  uint64_t frame_seed = 1;          ///< scene-stream RNG seed
  uint64_t fault_seed = 77;         ///< camera-fault RNG seed
  int64_t frames = 0;               ///< zero-frame runs are valid (and tested)
  int64_t height = 60;              ///< pipeline resolution (frames are resized)
  int64_t width = 160;

  std::vector<faults::TimingFault> stalls;       ///< deterministic stage stalls
  std::vector<TraceCameraFault> camera_faults;   ///< deterministic pixel faults

  /// Supervisor/monitor/breaker knobs for the run, including the online
  /// calibration loop (format v2). `timing_faults` is ignored here — the
  /// replayer rebuilds the injector from `stalls` — and
  /// `calibration.store_path` is machine-local and never serialized:
  /// replaying a trace must not write operator files.
  serving::SupervisorConfig supervisor;

  /// Multi-stream cluster shape; default (streams == 0) keeps the
  /// single-stream driver and serializes backward-compatibly.
  TraceClusterSpec cluster;

  /// Integrity guard for the pipeline the trace was recorded against:
  /// CRC32 + byte size of the checked pipeline file's payload (0 = unset).
  uint32_t pipeline_crc = 0;
  int64_t pipeline_bytes = 0;

  /// Throws std::invalid_argument on an unusable spec (unknown dataset,
  /// negative frame count, non-positive resolution, bad fault schedule).
  void validate() const;
};

/// Everything the pipeline decided about one frame, plus the policy state
/// it left behind.
struct TraceFrame {
  int64_t frame_index = 0;
  serving::ServingMode mode = serving::ServingMode::kVbpSsim;  ///< rung that served the frame
  bool scored = false;
  bool abandoned = false;
  bool deadline_overrun = false;
  bool sensor_bad = false;
  bool novel = false;
  double score = std::numeric_limits<double>::quiet_NaN();
  double steering = std::numeric_limits<double>::quiet_NaN();
  core::MonitorState monitor_state = core::MonitorState::kNominal;
  core::FallbackPath fallback_path = core::FallbackPath::kNone;
  std::array<int64_t, serving::kStageCount> stage_ns{};
  serving::ServingMode mode_after = serving::ServingMode::kVbpSsim;  ///< ladder rung after the frame
  serving::BreakerState breaker_after = serving::BreakerState::kClosed;
  bool swapped = false;       ///< a threshold hot-swap completed on this frame
  int64_t epoch_after = 0;    ///< served ThresholdSet epoch after the frame
  int64_t stream_id = 0;      ///< owning stream (v3; 0 in single-stream runs)

  static TraceFrame from(const serving::ServeResult& result, serving::ServingMode mode_after,
                         serving::BreakerState breaker_after);
};

/// Exact end-of-run counters (the HealthSnapshot minus queue/latency fields,
/// which belong to the server and the real clock respectively).
struct TraceHealth {
  int64_t frames_total = 0;
  int64_t frames_scored = 0;
  int64_t frames_abandoned = 0;
  int64_t frames_held = 0;
  int64_t frames_sensor_bad = 0;
  int64_t deadline_overruns = 0;
  int64_t scoring_failures = 0;
  int64_t nonfinite_scores = 0;
  int64_t step_downs = 0;
  int64_t promotions = 0;
  int64_t breaker_trips = 0;
  int64_t probe_successes = 0;
  int64_t probe_failures = 0;
  int64_t drift_checks = 0;
  int64_t drift_detections = 0;
  int64_t threshold_swaps = 0;
  int64_t threshold_epoch = 0;

  static TraceHealth from(const serving::HealthSnapshot& snapshot);
};

/// Exact end-of-run failure-domain counters (format v4; all zero for older
/// traces and for runs without a watchdog).
struct TraceClusterHealth {
  int64_t quarantines = 0;
  int64_t probe_attempts = 0;
  int64_t probe_failures = 0;
  int64_t restores = 0;
  int64_t failovers = 0;
  int64_t redispatched_frames = 0;
  int64_t fallback_frames = 0;
  int64_t shed_frames = 0;

  static TraceClusterHealth from(const serving::ClusterStats& stats);
};

/// A recorded run: spec + per-frame decision stream + final counters. v4
/// traces additionally carry the failure-domain event log (quarantine /
/// probe / restore / failover / fallback / shed, in decision order) and the
/// cluster-health counters, both diffed on replay.
struct Trace {
  TraceRunSpec spec;
  std::vector<TraceFrame> frames;
  TraceHealth health;
  std::vector<serving::ClusterEvent> events;  // v4
  TraceClusterHealth cluster_health;          // v4

  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

  /// Checked persistence: temp-file + atomic rename + CRC32 trailer, same
  /// guarantees as model/pipeline files.
  void save_file(const std::string& path) const;
  static Trace load_file(const std::string& path);
};

/// Re-executes a spec against a fitted pipeline under a FakeClock, invoking
/// `on_frame` once per frame in order (multi-stream runs emit frames in
/// global arrival order, each tagged with its stream_id, and return the
/// aggregate health). This is the ONE scenario driver — recording and
/// replaying go through the same code path, so they cannot drift apart.
/// `events` / `cluster_stats`, when non-null, receive the failure-domain
/// event log and end-of-run ClusterStats of a cluster run (left untouched by
/// the single-stream driver).
serving::HealthSnapshot drive(const TraceRunSpec& spec, const core::NoveltyDetector& detector,
                              nn::Sequential* steering_model,
                              const std::function<void(const TraceFrame&)>& on_frame,
                              std::vector<serving::ClusterEvent>* events = nullptr,
                              serving::ClusterStats* cluster_stats = nullptr);

class TraceRecorder {
 public:
  /// Runs the scenario and captures the full decision trace.
  static Trace record(const TraceRunSpec& spec, const core::NoveltyDetector& detector,
                      nn::Sequential* steering_model);
};

/// One field-level mismatch between a recorded and a replayed stream.
struct Divergence {
  int64_t frame = -1;    ///< -1 = run-level (frame count / health counters)
  std::string stage;     ///< pipeline stage or policy layer owning the field
  std::string field;
  std::string recorded;
  std::string replayed;

  /// "divergence at frame 17, stage score, field novel: recorded=1 replayed=0"
  std::string format() const;
};

struct ReplayOptions {
  /// Tolerance for float fields (score, steering): |a - b| <=
  /// score_tolerance * max(1, |a|, |b|). 0 demands bit-exact floats — the
  /// right setting when replaying at the recording's GEMM kernel; use a
  /// small tolerance (~1e-6) across kernels. Discrete fields are always
  /// compared exactly.
  double score_tolerance = 0.0;
};

struct ReplayReport {
  int64_t frames_compared = 0;
  std::optional<Divergence> divergence;  ///< first divergence, if any

  bool ok() const { return !divergence.has_value(); }
  /// "replay conformant (N frames)" or the first-divergence line.
  std::string format() const;
};

/// Diffs a recorded trace against a freshly replayed stream (used by the
/// replayer and by perturbation tests that tamper with a trace in memory).
/// When `replayed_events` / `replayed_cluster` are provided, the v4
/// failure-domain event log and cluster-health counters are diffed too —
/// every quarantine, failover, fallback, and shed must replay bit-exactly.
ReplayReport compare(const Trace& recorded, const std::vector<TraceFrame>& replayed,
                     const TraceHealth& replayed_health, const ReplayOptions& options = {},
                     const std::vector<serving::ClusterEvent>* replayed_events = nullptr,
                     const TraceClusterHealth* replayed_cluster = nullptr);

class TraceReplayer {
 public:
  /// Re-drives the spec and diffs against the recorded stream.
  static ReplayReport replay(const Trace& trace, const core::NoveltyDetector& detector,
                             nn::Sequential* steering_model, const ReplayOptions& options = {});
};

}  // namespace salnov::trace
