// Saliency explorer: compares the three network-saliency methods shipped
// with the library (VisualBackProp, gradient saliency, LRP) on a trained
// steering model, dumping input/mask/overlay images and timing each method.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "image/image_io.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "saliency/gradient_saliency.hpp"
#include "saliency/lrp.hpp"
#include "saliency/visual_backprop.hpp"

int main() {
  using namespace salnov;
  const int64_t kHeight = 60, kWidth = 160;
  Rng rng(29);

  roadsim::OutdoorSceneGenerator outdoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 300, kHeight, kWidth, rng);

  std::printf("training steering model (compact PilotNet, ~30s)...\n");
  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::compact(), rng);
  driving::SteeringTrainOptions options;
  options.epochs = 15;
  options.learning_rate = 2e-3;
  driving::train_steering_model(steering, train, options, rng);

  saliency::VisualBackProp vbp;
  saliency::GradientSaliency gradient;
  saliency::LayerwiseRelevancePropagation lrp;
  saliency::SaliencyMethod* methods[] = {&vbp, &gradient, &lrp};

  std::filesystem::create_directories("saliency_out");
  std::printf("\n%-12s %14s   %s\n", "method", "time/image", "output");
  for (saliency::SaliencyMethod* method : methods) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < 4; ++i) {
      const Image& input = train.image(i);
      const Image mask = method->compute(steering, input);
      Image overlay(kHeight, kWidth);
      for (int64_t k = 0; k < overlay.numel(); ++k) {
        overlay.tensor()[k] = 0.45f * input.tensor()[k] + 0.55f * mask.tensor()[k];
      }
      const std::string stem = "saliency_out/" + method->name() + std::to_string(i);
      write_pgm(stem + "_mask.pgm", mask);
      write_pgm(stem + "_overlay.pgm", overlay);
      if (method == &vbp) write_pgm("saliency_out/input" + std::to_string(i) + ".pgm", input);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 4;
    std::printf("%-12s %11lld us   saliency_out/%s*.pgm\n", method->name().c_str(),
                static_cast<long long>(us), method->name().c_str());
  }
  std::printf("\nInspect the PGMs with any image viewer; the VBP masks should trace the\n"
              "road geometry the steering model attends to.\n");
  return 0;
}
