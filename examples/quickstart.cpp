// Quickstart: the complete pipeline in ~60 lines.
//
//   1. Generate a synthetic driving dataset (stand-in for your camera data).
//   2. Train a steering CNN on it.
//   3. Fit the novelty detector (VBP preprocessing + SSIM autoencoder).
//   4. Classify familiar and novel images.
//
// Runs in about a minute on one CPU core (reduced-scale configuration).
#include <cstdio>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"

int main() {
  using namespace salnov;
  const int64_t kHeight = 30, kWidth = 80;
  Rng rng(7);

  // 1. Data: outdoor scenes are the training domain, indoor scenes novel.
  roadsim::OutdoorSceneGenerator outdoor;
  roadsim::IndoorSceneGenerator indoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 300, kHeight, kWidth, rng);
  const auto familiar = roadsim::DrivingDataset::generate(outdoor, 10, kHeight, kWidth, rng);
  const auto novel = roadsim::DrivingDataset::generate(indoor, 10, kHeight, kWidth, rng);

  // 2. Steering model (compact PilotNet).
  std::printf("training steering model...\n");
  auto pilot_config = driving::PilotNetConfig::compact();
  pilot_config.input_height = kHeight;
  pilot_config.input_width = kWidth;
  nn::Sequential steering = driving::build_pilotnet(pilot_config, rng);
  driving::SteeringTrainOptions steering_options;
  steering_options.epochs = 20;
  driving::train_steering_model(steering, train, steering_options, rng);
  std::printf("steering MAE on fresh outdoor scenes: %.3f\n",
              driving::steering_mae(steering, familiar));

  // 3. Novelty detector: VBP saliency masks + SSIM-loss autoencoder,
  //    threshold at the 99th percentile of training scores (paper defaults).
  std::printf("fitting novelty detector...\n");
  core::NoveltyDetectorConfig config = core::NoveltyDetectorConfig::proposed();
  config.height = kHeight;
  config.width = kWidth;
  config.autoencoder.hidden_units = {64, 16, 64};
  config.train_epochs = 120;
  config.learning_rate = 3e-3;
  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  detector.fit(train.images(), rng);

  // 4. Classify.
  std::printf("\n%-28s %10s %10s %s\n", "input", "SSIM", "threshold", "verdict");
  for (int64_t i = 0; i < 5; ++i) {
    const core::NoveltyResult r = detector.classify(familiar.image(i));
    std::printf("%-28s %10.3f %10.3f %s\n", "familiar (outdoor scene)", r.score, r.threshold,
                r.is_novel ? "NOVEL" : "ok");
  }
  for (int64_t i = 0; i < 5; ++i) {
    const core::NoveltyResult r = detector.classify(novel.image(i));
    std::printf("%-28s %10.3f %10.3f %s\n", "novel (indoor scene)", r.score, r.threshold,
                r.is_novel ? "NOVEL" : "ok");
  }
  return 0;
}
