// Perturbation audit: how does the detector score degraded versions of its
// own training domain? Exercises the adversarial-robustness motivation from
// the paper's problem statement (noise, brightness, contrast, rotation,
// translation, occlusion, salt & pepper) and prints a score table per
// perturbation strength.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "image/transforms.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/outdoor_generator.hpp"

int main() {
  using namespace salnov;
  const int64_t kHeight = 30, kWidth = 80;
  Rng rng(13);

  roadsim::OutdoorSceneGenerator outdoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 300, kHeight, kWidth, rng);
  const auto probe = roadsim::DrivingDataset::generate(outdoor, 30, kHeight, kWidth, rng);

  std::printf("training steering model + detector (reduced scale)...\n");
  auto pilot_config = driving::PilotNetConfig::compact();
  pilot_config.input_height = kHeight;
  pilot_config.input_width = kWidth;
  nn::Sequential steering = driving::build_pilotnet(pilot_config, rng);
  driving::SteeringTrainOptions steering_options;
  steering_options.epochs = 20;
  driving::train_steering_model(steering, train, steering_options, rng);

  core::NoveltyDetectorConfig config = core::NoveltyDetectorConfig::proposed();
  config.height = kHeight;
  config.width = kWidth;
  config.autoencoder.hidden_units = {64, 16, 64};
  config.train_epochs = 120;
  config.learning_rate = 3e-3;
  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  detector.fit(train.images(), rng);
  const double threshold = detector.threshold().threshold();

  struct Perturbation {
    std::string name;
    std::function<Image(const Image&, double, Rng&)> apply;
    std::vector<double> levels;
  };
  const std::vector<Perturbation> perturbations = {
      {"gaussian noise (sigma)", [](const Image& im, double v, Rng& r) { return add_gaussian_noise(im, v, r); },
       {0.02, 0.05, 0.1, 0.2}},
      {"brightness (+delta)", [](const Image& im, double v, Rng&) { return adjust_brightness(im, v); },
       {0.05, 0.1, 0.2, 0.4}},
      {"contrast (factor)", [](const Image& im, double v, Rng&) { return adjust_contrast(im, v); },
       {1.2, 1.5, 0.7, 0.4}},
      {"rotation (degrees)", [](const Image& im, double v, Rng&) { return rotate(im, v); },
       {2.0, 5.0, 10.0, 20.0}},
      {"translation (px)", [](const Image& im, double v, Rng&) {
         return translate(im, static_cast<int64_t>(v), static_cast<int64_t>(2 * v));
       },
       {1.0, 2.0, 4.0, 8.0}},
      {"salt & pepper (p)", [](const Image& im, double v, Rng& r) { return add_salt_pepper_noise(im, v, r); },
       {0.01, 0.03, 0.1, 0.25}},
      {"occlusion (width px)", [kHeight](const Image& im, double v, Rng&) {
         const auto w = static_cast<int64_t>(v);
         return occlude(im, kHeight / 3, 10, w, w, 0.0f);
       },
       {4.0, 8.0, 16.0, 24.0}},
  };

  // Baseline: clean probe scores.
  double clean_mean = 0.0;
  for (int64_t i = 0; i < probe.size(); ++i) clean_mean += detector.score(probe.image(i));
  clean_mean /= static_cast<double>(probe.size());
  std::printf("\nclean probe images: mean SSIM %.3f (threshold %.3f)\n", clean_mean, threshold);

  std::printf("\n%-24s %8s %12s %14s\n", "perturbation", "level", "mean SSIM", "flagged novel");
  for (const Perturbation& p : perturbations) {
    for (double level : p.levels) {
      Rng perturb_rng(99);
      double mean_score = 0.0;
      int64_t flagged = 0;
      for (int64_t i = 0; i < probe.size(); ++i) {
        const Image perturbed = p.apply(probe.image(i), level, perturb_rng);
        const core::NoveltyResult r = detector.classify(perturbed);
        mean_score += r.score;
        flagged += r.is_novel ? 1 : 0;
      }
      mean_score /= static_cast<double>(probe.size());
      std::printf("%-24s %8.2f %12.3f %12lld/%lld\n", p.name.c_str(), level, mean_score,
                  static_cast<long long>(flagged), static_cast<long long>(probe.size()));
    }
  }
  std::printf("\nReading: scores fall (toward 'novel') as perturbation strength grows;\n"
              "the 99th-percentile threshold flags the strong corruptions.\n");
  return 0;
}
