// Runtime monitor: the deployment story.
//
// Phase 1 (offline, "factory"): train the steering model and novelty
// detector, then save the whole pipeline to one file with PipelineIo.
// Phase 2 (online, "vehicle"): load the pipeline and run a simulated drive —
// each frame is steered by the CNN and simultaneously screened by the
// novelty detector; flagged frames would trigger a fallback controller.
// Midway through the drive the "vehicle" leaves its training domain
// (outdoor -> indoor), and the monitor should start flagging.
// Phase 3 (online, "degraded"): replay the same drive through the serving
// Supervisor with a saliency stall injected under a fake clock — the mode
// ladder steps down to a cheaper calibrated rung, then climbs back up once
// the stall clears.
#include <cstdio>
#include <filesystem>

#include "core/monitor.hpp"
#include "core/novelty_detector.hpp"
#include "core/pipeline_io.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "faults/timing_faults.hpp"
#include "image/transforms.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "serving/supervisor.hpp"

namespace {

constexpr int64_t kHeight = 30;
constexpr int64_t kWidth = 80;
const char* kPipelinePath = "runtime_monitor.pipeline";

void factory_phase() {
  using namespace salnov;
  Rng rng(17);
  roadsim::OutdoorSceneGenerator outdoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 300, kHeight, kWidth, rng);

  std::printf("[factory] training steering model...\n");
  auto pilot_config = driving::PilotNetConfig::compact();
  pilot_config.input_height = kHeight;
  pilot_config.input_width = kWidth;
  nn::Sequential steering = driving::build_pilotnet(pilot_config, rng);
  driving::SteeringTrainOptions steering_options;
  steering_options.epochs = 20;
  driving::train_steering_model(steering, train, steering_options, rng);

  std::printf("[factory] fitting novelty detector...\n");
  core::NoveltyDetectorConfig config = core::NoveltyDetectorConfig::proposed();
  config.height = kHeight;
  config.width = kWidth;
  config.autoencoder.hidden_units = {64, 16, 64};
  config.train_epochs = 120;
  config.learning_rate = 3e-3;
  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  detector.fit(train.images(), rng);

  core::PipelineIo::save_file(kPipelinePath, detector, &steering);
  std::printf("[factory] pipeline saved to %s\n", kPipelinePath);
}

void vehicle_phase() {
  using namespace salnov;
  std::printf("[vehicle] loading pipeline from %s\n", kPipelinePath);
  core::LoadedPipeline pipeline = core::PipelineIo::load_file(kPipelinePath);

  Rng rng(23);
  roadsim::OutdoorSceneGenerator outdoor;
  roadsim::IndoorSceneGenerator indoor;

  // The NoveltyMonitor adds the deployment policy on top of per-frame
  // classification: enter fallback only after 3 consecutive novel frames,
  // release after 5 consecutive familiar ones.
  core::NoveltyMonitor monitor(*pipeline.detector);

  std::printf("[vehicle] driving: 12 familiar frames, then 8 out-of-domain frames\n\n");
  std::printf("%5s %-10s %10s %10s %10s  %s\n", "frame", "domain", "steer", "SSIM", "smoothed",
              "monitor");
  for (int64_t frame = 0; frame < 20; ++frame) {
    const bool in_domain = frame < 12;
    const roadsim::Sample sample = in_domain ? outdoor.generate(rng) : indoor.generate(rng);
    Image view = sample.rgb.to_grayscale();
    view = resize_bilinear(view, kHeight, kWidth);

    const double steer = driving::predict_steering(*pipeline.steering_model, view);
    const core::MonitorUpdate update = monitor.update(view);

    const char* action = update.state == core::MonitorState::kFallback
                             ? "NOVEL -> fallback controller engaged"
                             : (update.state == core::MonitorState::kAlert ? "NOVEL" : "ok");
    std::printf("%5lld %-10s %10.3f %10.3f %10.3f  %s\n", static_cast<long long>(frame),
                in_domain ? "outdoor" : "indoor", steer, update.raw_score, update.smoothed_score,
                action);
  }
}

void degraded_phase() {
  using namespace salnov;
  std::printf("\n[degraded] same drive through the serving supervisor, with a\n"
              "[degraded] saliency stall injected on frames 4-9 (fake clock)\n\n");
  core::LoadedPipeline pipeline = core::PipelineIo::load_file(kPipelinePath);

  // Stall the saliency stage well past its budget for six frames; the fake
  // clock makes the injected stalls the only elapsed time, so the fallback
  // trace below is identical on every run.
  faults::TimingFaultInjector stalls;
  faults::TimingFault stall;
  stall.stage = static_cast<int>(serving::Stage::kSaliency);
  stall.stall_ns = 80'000'000;
  stall.first_frame = 4;
  stall.last_frame = 9;
  stalls.add(stall);

  serving::SupervisorConfig config;
  config.timing_faults = &stalls;
  config.promote_after_healthy_frames = 4;
  serving::FakeClock clock;
  serving::Supervisor supervisor(*pipeline.detector, pipeline.steering_model.get(), config,
                                 &clock);

  Rng rng(23);
  roadsim::OutdoorSceneGenerator outdoor;
  std::printf("%5s %-10s %10s  %s\n", "frame", "mode", "score", "note");
  for (int64_t frame = 0; frame < 20; ++frame) {
    const roadsim::Sample sample = outdoor.generate(rng);
    Image view = resize_bilinear(sample.rgb.to_grayscale(), kHeight, kWidth);
    const serving::ServeResult result = supervisor.process(view);
    const char* note = result.deadline_overrun ? "saliency overrun -> degraded rung"
                                               : (result.novel ? "NOVEL" : "ok");
    std::printf("%5lld %-10s %10.3f  %s\n", static_cast<long long>(frame),
                serving::serving_mode_name(result.mode), result.score, note);
  }
  const serving::HealthSnapshot health = supervisor.health();
  std::printf("\n[degraded] final mode %s, %lld step-downs, %lld promotions, %lld overruns\n",
              serving::serving_mode_name(health.mode),
              static_cast<long long>(health.step_downs),
              static_cast<long long>(health.promotions),
              static_cast<long long>(health.deadline_overruns));
  std::filesystem::remove(kPipelinePath);
}

}  // namespace

int main() {
  factory_phase();
  vehicle_phase();
  degraded_phase();
  return 0;
}
