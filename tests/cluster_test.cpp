// ServingCluster tests: multi-stream routing, cross-frame micro-batching,
// batch-composition determinism, per-stream policy isolation, and the
// bit-identity contract — a frame scored inside any batch must produce
// exactly the result it would have produced through a bare Supervisor.
//
// All scenarios run under a FakeClock with pre-staged arrival schedules
// (pause -> submit -> advance -> resume), so batch composition is a pure
// function of the scripted timestamps.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "faults/timing_faults.hpp"
#include "serving/clock.hpp"
#include "serving/cluster.hpp"
#include "serving/supervisor.hpp"

namespace salnov::serving {
namespace {

using core::NoveltyDetector;
using core::NoveltyDetectorConfig;
using core::Preprocessing;
using core::ReconstructionScore;

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;
constexpr int64_t kMs = 1'000'000;  // ns

class ClusterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(41);
    steering_ = new nn::Sequential(
        driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng));

    NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = Preprocessing::kVbp;
    config.score = ReconstructionScore::kSsim;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 10;
    detector_ = new NoveltyDetector(config);
    detector_->attach_steering_model(steering_);

    std::vector<Image> train;
    for (int i = 0; i < 24; ++i) train.push_back(familiar_frame(rng));
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    delete steering_;
    steering_ = nullptr;
  }

  static Image familiar_frame(Rng& rng) {
    Image img(kH, kW);
    const double slope = rng.uniform(0.8, 1.2);
    for (int64_t y = 0; y < kH; ++y) {
      for (int64_t x = 0; x < kW; ++x) {
        img(y, x) = static_cast<float>(slope * (y + x) / static_cast<double>(kH + kW));
      }
    }
    img.clamp01();
    return img;
  }

  static Image noise_frame(Rng& rng) {
    Image img(kH, kW);
    for (int64_t y = 0; y < kH; ++y) {
      for (int64_t x = 0; x < kW; ++x) img(y, x) = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    return img;
  }

  /// Per-stream frame scripts: stream s gets a deterministic mix of
  /// familiar and novel frames, distinct across streams.
  static std::vector<std::vector<Image>> stream_scripts(int64_t streams, int64_t frames) {
    std::vector<std::vector<Image>> scripts(static_cast<size_t>(streams));
    for (int64_t s = 0; s < streams; ++s) {
      Rng rng(100 + static_cast<uint64_t>(s));
      for (int64_t i = 0; i < frames; ++i) {
        scripts[static_cast<size_t>(s)].push_back(
            (i + s) % 3 == 2 ? noise_frame(rng) : familiar_frame(rng));
      }
    }
    return scripts;
  }

  static void expect_results_bitexact(const ServeResult& solo, const ServeResult& batched) {
    EXPECT_EQ(solo.frame_index, batched.frame_index);
    EXPECT_EQ(solo.mode, batched.mode);
    EXPECT_EQ(solo.scored, batched.scored);
    EXPECT_EQ(solo.abandoned, batched.abandoned);
    EXPECT_EQ(solo.deadline_overrun, batched.deadline_overrun);
    EXPECT_EQ(solo.sensor_bad, batched.sensor_bad);
    EXPECT_EQ(solo.novel, batched.novel);
    // Bit-exact, NaN-tolerant: compare the representations.
    EXPECT_TRUE((std::isnan(solo.score) && std::isnan(batched.score)) ||
                solo.score == batched.score)
        << "score " << solo.score << " vs " << batched.score;
    EXPECT_TRUE((std::isnan(solo.steering) && std::isnan(batched.steering)) ||
                solo.steering == batched.steering)
        << "steering " << solo.steering << " vs " << batched.steering;
    EXPECT_EQ(solo.monitor_state, batched.monitor_state);
    EXPECT_EQ(solo.fallback_path, batched.fallback_path);
  }

  static NoveltyDetector* detector_;
  static nn::Sequential* steering_;
};

NoveltyDetector* ClusterFixture::detector_ = nullptr;
nn::Sequential* ClusterFixture::steering_ = nullptr;

// ---------------------------------------------------------------------------
// Construction and basic routing.

TEST_F(ClusterFixture, RejectsBadConfigs) {
  ClusterConfig config;
  config.streams = 0;
  EXPECT_THROW(ServingCluster(*detector_, steering_, config), std::invalid_argument);
  config.streams = 1;
  config.replicas = 0;
  EXPECT_THROW(ServingCluster(*detector_, steering_, config), std::invalid_argument);
  config.replicas = 1;
  config.max_batch = 0;
  EXPECT_THROW(ServingCluster(*detector_, steering_, config), std::invalid_argument);
}

TEST_F(ClusterFixture, RejectsBadStreamIds) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  Rng rng(7);
  EXPECT_THROW(cluster.submit(-1, familiar_frame(rng)), std::out_of_range);
  EXPECT_THROW(cluster.submit(2, familiar_frame(rng)), std::out_of_range);
  EXPECT_THROW(cluster.stream_health(2), std::out_of_range);
  cluster.stop();
}

TEST_F(ClusterFixture, StopIsIdempotentAndDropsLateSubmissions) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 1;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  Rng rng(7);
  cluster.submit(0, familiar_frame(rng));
  cluster.stop();
  cluster.stop();
  cluster.submit(0, familiar_frame(rng));  // dropped, not queued
  EXPECT_EQ(cluster.stream_health(0).frames_total, 1);
}

// ---------------------------------------------------------------------------
// Tentpole contract: batched scores are bit-identical to the solo path.

TEST_F(ClusterFixture, BatchedResultsBitIdenticalToSoloSupervisors) {
  const int64_t streams = 4;
  const int64_t frames = 6;
  const auto scripts = stream_scripts(streams, frames);

  // Reference: one independent supervisor per stream (FakeClock, no stalls:
  // timing never varies, so decisions depend only on the frames).
  std::vector<std::vector<ServeResult>> solo(static_cast<size_t>(streams));
  for (int64_t s = 0; s < streams; ++s) {
    FakeClock clock;
    Supervisor supervisor(*detector_, steering_, SupervisorConfig{}, &clock);
    for (const Image& frame : scripts[static_cast<size_t>(s)]) {
      solo[static_cast<size_t>(s)].push_back(supervisor.process(frame));
    }
  }

  // Cluster: 2 replicas, generous window so whole rounds batch together.
  FakeClock clock;
  ClusterConfig config;
  config.streams = streams;
  config.replicas = 2;
  config.gather_window_ns = 10 * kMs;
  config.max_batch = 16;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  for (int64_t i = 0; i < frames; ++i) {
    for (int64_t s = 0; s < streams; ++s) {
      cluster.submit(s, scripts[static_cast<size_t>(s)][static_cast<size_t>(i)]);
    }
    clock.advance_ns(20 * kMs);  // each round is its own gather window
  }
  cluster.drain();
  const std::vector<ClusterResult> results = cluster.take_results();
  cluster.stop();

  ASSERT_EQ(results.size(), static_cast<size_t>(streams * frames));
  std::map<int64_t, int64_t> next_frame;
  bool any_batched = false;
  for (const ClusterResult& cr : results) {
    const int64_t s = cr.stream_id;
    const int64_t i = next_frame[s]++;
    ASSERT_LT(i, frames);
    expect_results_bitexact(solo[static_cast<size_t>(s)][static_cast<size_t>(i)], cr.result);
    if (cr.batch_size > 1) any_batched = true;
  }
  EXPECT_TRUE(any_batched) << "scenario never exercised a multi-frame batch";
  // Every frame went through batched compute: steer and reconstruction were
  // provided for all frames, saliency for every frame predicted on a
  // saliency rung.
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.batched_frames, streams * frames);
  EXPECT_EQ(stats.provided_steer, streams * frames);
  EXPECT_GT(stats.provided_saliency, 0);
  EXPECT_GT(stats.provided_recon, 0);
}

// ---------------------------------------------------------------------------
// Batch composition is a pure function of the arrival schedule.

TEST_F(ClusterFixture, SealsOnGatherWindowBoundaries) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 1;
  config.gather_window_ns = 2 * kMs;
  config.max_batch = 16;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  Rng rng(5);
  for (int i = 0; i < 3; ++i) cluster.submit(0, familiar_frame(rng));  // t = 0
  clock.advance_ns(6 * kMs);
  for (int i = 0; i < 2; ++i) cluster.submit(0, familiar_frame(rng));  // t = 6 ms
  clock.advance_ns(6 * kMs);                                           // now 12 ms > 6 + 2
  cluster.drain();
  const std::vector<ClusterResult> results = cluster.take_results();
  cluster.stop();

  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].batch_size, 3) << "frame " << i;
    EXPECT_EQ(results[static_cast<size_t>(i)].batch_seq, 0) << "frame " << i;
  }
  for (int i = 3; i < 5; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].batch_size, 2) << "frame " << i;
    EXPECT_EQ(results[static_cast<size_t>(i)].batch_seq, 1) << "frame " << i;
  }
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.window_seals, 2);
  EXPECT_EQ(stats.max_batch_seals, 0);
  // Gather wait is bounded by the scripted schedule: the first batch sealed
  // when the beyond-window frames landed at t = 6 ms.
  EXPECT_LE(stats.max_gather_wait_ns, 12 * kMs);
}

TEST_F(ClusterFixture, SealsAtMaxBatch) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 1;
  config.gather_window_ns = 100 * kMs;
  config.max_batch = 4;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  Rng rng(5);
  for (int i = 0; i < 6; ++i) cluster.submit(0, familiar_frame(rng));  // all t = 0
  cluster.drain();  // seals 4 (max_batch), then flushes the remaining 2
  const std::vector<ClusterResult> results = cluster.take_results();
  cluster.stop();

  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(results[static_cast<size_t>(i)].batch_size, 4);
  for (int i = 4; i < 6; ++i) EXPECT_EQ(results[static_cast<size_t>(i)].batch_size, 2);
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.max_batch_seals, 1);
  EXPECT_EQ(stats.flush_seals, 1);
}

TEST_F(ClusterFixture, CompositionIsDeterministicAcrossRuns) {
  const auto run_once = [&] {
    FakeClock clock;
    ClusterConfig config;
    config.streams = 3;
    config.replicas = 2;
    config.gather_window_ns = 3 * kMs;
    config.max_batch = 4;
    ServingCluster cluster(*detector_, steering_, config, &clock);
    cluster.pause();
    const auto scripts = stream_scripts(3, 5);
    for (int64_t i = 0; i < 5; ++i) {
      for (int64_t s = 0; s < 3; ++s) {
        cluster.submit(s, scripts[static_cast<size_t>(s)][static_cast<size_t>(i)]);
      }
      clock.advance_ns(2 * kMs);  // every other round crosses a window boundary
    }
    cluster.drain();
    auto results = cluster.take_results();
    cluster.stop();
    return results;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stream_id, b[i].stream_id) << i;
    EXPECT_EQ(a[i].arrival_seq, b[i].arrival_seq) << i;
    EXPECT_EQ(a[i].replica, b[i].replica) << i;
    EXPECT_EQ(a[i].batch_seq, b[i].batch_seq) << i;
    EXPECT_EQ(a[i].batch_size, b[i].batch_size) << i;
    EXPECT_TRUE((std::isnan(a[i].result.score) && std::isnan(b[i].result.score)) ||
                a[i].result.score == b[i].result.score)
        << i;
  }
}

// ---------------------------------------------------------------------------
// Per-stream policy isolation.

TEST_F(ClusterFixture, StreamsDegradeIndependently) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  // Fast monitor so the novelty-fed stream reaches fallback within the run.
  config.supervisor.monitor.trigger_frames = 3;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  Rng familiar_rng(11);
  Rng noise_rng(12);
  for (int i = 0; i < 8; ++i) {
    cluster.submit(0, familiar_frame(familiar_rng));
    cluster.submit(1, noise_frame(noise_rng));
    clock.advance_ns(10 * kMs);
  }
  cluster.drain();
  cluster.stop();

  const HealthSnapshot healthy = cluster.stream_health(0);
  const HealthSnapshot novel = cluster.stream_health(1);
  EXPECT_EQ(healthy.frames_total, 8);
  EXPECT_EQ(novel.frames_total, 8);
  EXPECT_EQ(healthy.frames_scored, 8);
  // Stream 1 scores novel frame after frame; its monitor must escalate while
  // stream 0 stays nominal.
  const core::NoveltyMonitor& monitor0 = cluster.stream_supervisor(0).monitor();
  const core::NoveltyMonitor& monitor1 = cluster.stream_supervisor(1).monitor();
  EXPECT_NE(monitor0.state(), core::MonitorState::kFallback);
  EXPECT_EQ(monitor1.state(), core::MonitorState::kFallback);

  const HealthSnapshot aggregate = cluster.aggregate_health();
  EXPECT_EQ(aggregate.frames_total, 16);
  EXPECT_EQ(aggregate.frames_scored, healthy.frames_scored + novel.frames_scored);
}

// ---------------------------------------------------------------------------
// Speculation misses fall back to in-stage compute with identical bits.

TEST_F(ClusterFixture, MispredictedReconstructionFallsBackBitIdentically) {
  // Stalls on the reconstruct stage of frames 0 and 1 demote the stream to
  // raw+MSE; frame 2 sits in the same batch, so its reconstruction was
  // speculated from the saliency mask and must be discarded and recomputed
  // from the raw frame.
  faults::TimingFaultInjector stalls;
  stalls.add({/*stage=*/3, /*stall_ns=*/10 * kMs, /*first_frame=*/0, /*last_frame=*/1,
              /*period=*/1});
  SupervisorConfig sup;
  sup.stage_budget_ns = {kMs, kMs, kMs, kMs, kMs};
  sup.frame_budget_ns = 1000 * kMs;
  sup.timing_faults = &stalls;

  const auto scripts = stream_scripts(1, 6);

  // Solo reference under the identical stall schedule.
  std::vector<ServeResult> solo;
  {
    FakeClock clock;
    Supervisor supervisor(*detector_, steering_, sup, &clock);
    for (const Image& frame : scripts[0]) solo.push_back(supervisor.process(frame));
  }

  FakeClock clock;
  ClusterConfig config;
  config.streams = 1;
  config.gather_window_ns = 100 * kMs;
  config.max_batch = 16;
  config.supervisor = sup;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  for (const Image& frame : scripts[0]) cluster.submit(0, frame);
  cluster.drain();
  const std::vector<ClusterResult> results = cluster.take_results();
  const ClusterStats stats = cluster.stats();
  cluster.stop();

  ASSERT_EQ(results.size(), solo.size());
  EXPECT_EQ(results[0].batch_size, 6) << "scenario requires one mixed batch";
  for (size_t i = 0; i < solo.size(); ++i) {
    expect_results_bitexact(solo[i], results[i].result);
  }
  // The mode change mid-batch invalidated at least one speculated
  // reconstruction (raw rung scores against the frame, not the mask).
  EXPECT_GT(stats.recon_mispredicts, 0);
  EXPECT_EQ(cluster.stream_health(0).mode, ServingMode::kRawMse);
}

// ---------------------------------------------------------------------------
// Invalid frames are screened out of batched compute but still accounted.

TEST_F(ClusterFixture, MalformedFramesAreScreenedNotBatched) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 1;
  config.gather_window_ns = 100 * kMs;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  Rng rng(9);
  Image bad(kH, kW);
  bad(0, 0) = std::numeric_limits<float>::quiet_NaN();
  cluster.submit(0, familiar_frame(rng));
  cluster.submit(0, bad);
  cluster.submit(0, familiar_frame(rng));
  cluster.drain();
  const std::vector<ClusterResult> results = cluster.take_results();
  const ClusterStats stats = cluster.stats();
  cluster.stop();

  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].result.sensor_bad);
  EXPECT_TRUE(results[1].result.sensor_bad);
  EXPECT_FALSE(results[2].result.sensor_bad);
  EXPECT_EQ(stats.prescreen_rejects, 1);
  EXPECT_EQ(cluster.stream_health(0).frames_sensor_bad, 1);
  EXPECT_EQ(cluster.stream_health(0).frames_scored, 2);
}

}  // namespace
}  // namespace salnov::serving
