// Unit tests for losses (incl. the differentiable SSIM loss), optimizers,
// the Trainer, and model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "metrics/ssim.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/model_io.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/ssim_loss.hpp"
#include "nn/trainer.hpp"
#include "tensor/serialize.hpp"
#include "test_util.hpp"

namespace salnov::nn {
namespace {

TEST(MseLossTest, KnownValue) {
  MseLoss loss;
  EXPECT_DOUBLE_EQ(loss.value(Tensor({2}, {1, 3}), Tensor({2}, {0, 0})), 5.0);
}

TEST(MseLossTest, ZeroAtTarget) {
  MseLoss loss;
  const Tensor t({3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(loss.value(t, t), 0.0);
}

TEST(MseLossTest, GradientCheck) {
  Rng rng(1);
  MseLoss loss;
  test::check_loss_gradient(loss, rng.uniform_tensor({2, 5}, -1.0, 1.0),
                            rng.uniform_tensor({2, 5}, -1.0, 1.0));
}

TEST(MseLossTest, ShapeMismatchThrows) {
  MseLoss loss;
  EXPECT_THROW(loss.value(Tensor({2}), Tensor({3})), std::invalid_argument);
}

TEST(L1LossTest, KnownValue) {
  L1Loss loss;
  EXPECT_DOUBLE_EQ(loss.value(Tensor({2}, {1, -3}), Tensor({2}, {0, 0})), 2.0);
}

TEST(L1LossTest, GradientCheckAwayFromKink) {
  Rng rng(2);
  L1Loss loss;
  const Tensor target = Tensor::zeros({2, 4});
  Tensor prediction = rng.uniform_tensor({2, 4}, 0.2, 1.0);
  test::check_loss_gradient(loss, prediction, target);
}

TEST(BceLossTest, MinimizedAtTarget) {
  BceLoss loss;
  const Tensor target({2}, {0.0f, 1.0f});
  const Tensor good({2}, {0.01f, 0.99f});
  const Tensor bad({2}, {0.9f, 0.1f});
  EXPECT_LT(loss.value(good, target), loss.value(bad, target));
}

TEST(BceLossTest, GradientCheck) {
  Rng rng(3);
  BceLoss loss;
  const Tensor prediction = rng.uniform_tensor({2, 4}, 0.1, 0.9);
  const Tensor target = rng.uniform_tensor({2, 4}, 0.0, 1.0);
  test::check_loss_gradient(loss, prediction, target, 1e-4, 5e-3);
}

TEST(SsimLossTest, ZeroForPerfectReconstruction) {
  Rng rng(4);
  SsimLoss loss(12, 14);
  const Tensor x = rng.uniform_tensor({2, 12 * 14}, 0.0, 1.0);
  EXPECT_NEAR(loss.value(x, x), 0.0, 1e-9);
}

TEST(SsimLossTest, PositiveForMismatchedImages) {
  Rng rng(5);
  SsimLoss loss(12, 14);
  const Tensor x = rng.uniform_tensor({1, 12 * 14}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({1, 12 * 14}, 0.0, 1.0);
  EXPECT_GT(loss.value(y, x), 0.3);
}

TEST(SsimLossTest, ValueMatchesMetricSsim) {
  // 1 - loss on a single sample must equal metrics::ssim of the images.
  Rng rng(6);
  const int64_t h = 16, w = 18;
  const Tensor x = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  SsimLoss loss(h, w);
  const Image ix(h, w, x.reshape({h, w}));
  const Image iy(h, w, y.reshape({h, w}));
  EXPECT_NEAR(1.0 - loss.value(y, x), ssim(iy, ix), 1e-6);
}

TEST(SsimLossTest, MeanSsimMatchesMetric) {
  Rng rng(7);
  const int64_t h = 13, w = 15;
  const Tensor x = rng.uniform_tensor({h * w}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({h * w}, 0.0, 1.0);
  SsimLoss loss(h, w);
  const Image ix(h, w, x.reshape({h, w}));
  const Image iy(h, w, y.reshape({h, w}));
  EXPECT_NEAR(loss.mean_ssim(y, x), ssim(iy, ix), 1e-6);
}

TEST(SsimLossTest, GradientCheck) {
  Rng rng(8);
  const int64_t h = 12, w = 13;
  SsimLoss loss(h, w);
  const Tensor x = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  test::check_loss_gradient(loss, y, x, 1e-3, 5e-3);
}

TEST(SsimLossTest, GradientCheckBatch) {
  Rng rng(9);
  const int64_t h = 11, w = 12;
  SsimLoss loss(h, w);
  const Tensor x = rng.uniform_tensor({3, h * w}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({3, h * w}, 0.0, 1.0);
  test::check_loss_gradient(loss, y, x, 1e-3, 5e-3);
}

TEST(SsimLossTest, GradientCheckStride2) {
  Rng rng(10);
  const int64_t h = 13, w = 13;
  SsimOptions options;
  options.stride = 2;
  SsimLoss loss(h, w, options);
  const Tensor x = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  test::check_loss_gradient(loss, y, x, 1e-3, 5e-3);
}

TEST(SsimLossTest, GradientDescentImprovesSsim) {
  // Direct gradient descent on the reconstruction must increase SSIM.
  Rng rng(11);
  const int64_t h = 12, w = 12;
  SsimLoss loss(h, w);
  const Tensor x = rng.uniform_tensor({1, h * w}, 0.2, 0.8);
  Tensor y = rng.uniform_tensor({1, h * w}, 0.2, 0.8);
  const double before = loss.value(y, x);
  for (int step = 0; step < 200; ++step) {
    const Tensor g = loss.gradient(y, x);
    y -= g * 1.0f;
  }
  EXPECT_GT(before, 0.5);
  EXPECT_LT(loss.value(y, x), 0.05);
}

TEST(SsimLossTest, RejectsWrongShapes) {
  SsimLoss loss(12, 12);
  EXPECT_THROW(loss.value(Tensor({1, 100}), Tensor({1, 100})), std::invalid_argument);
  EXPECT_THROW(SsimLoss(4, 4), std::invalid_argument);  // smaller than window
}

TEST(SgdTest, StepMovesAgainstGradient) {
  Parameter p("w", Tensor({2}, {1.0f, 2.0f}));
  p.grad = Tensor({2}, {0.5f, -0.5f});
  Sgd sgd(0.1);
  sgd.step({&p});
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
  EXPECT_NEAR(p.value[1], 2.05f, 1e-6f);
}

TEST(SgdTest, InvalidLearningRateThrows) { EXPECT_THROW(Sgd(0.0), std::invalid_argument); }

TEST(MomentumTest, AcceleratesAlongConsistentGradient) {
  Parameter p("w", Tensor({1}, {0.0f}));
  Momentum momentum(0.1, 0.9);
  p.grad = Tensor({1}, {1.0f});
  momentum.step({&p});
  const float first_step = -p.value[0];
  const float before = p.value[0];
  momentum.step({&p});
  EXPECT_GT(before - p.value[0], first_step);  // second step is larger
}

TEST(MomentumTest, ParameterListChangeThrows) {
  Parameter p("w", Tensor({1}));
  Parameter q("v", Tensor({1}));
  Momentum momentum(0.1);
  momentum.step({&p});
  EXPECT_THROW(momentum.step({&p, &q}), std::logic_error);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 by feeding its gradient to Adam.
  Parameter p("w", Tensor({1}, {0.0f}));
  Adam adam(0.1);
  for (int i = 0; i < 300; ++i) {
    p.grad = Tensor({1}, {2.0f * (p.value[0] - 3.0f)});
    adam.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(AdamTest, InvalidHyperparametersThrow) {
  EXPECT_THROW(Adam(-1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 1.0), std::invalid_argument);
}

TEST(OptimizerTest, ZeroGradClearsAccumulators) {
  Parameter p("w", Tensor({2}, {1, 1}));
  p.grad = Tensor({2}, {5, 5});
  Optimizer::zero_grad({&p});
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(TrainerTest, LearnsLinearRegression) {
  // y = 2x - 1, learnable exactly by a single dense layer.
  Rng rng(12);
  Sequential model;
  model.emplace<Dense>(1, 1, rng);
  MseLoss loss;
  Adam optimizer(0.05);
  Trainer trainer(model, loss, optimizer, rng.split());

  const int64_t n = 64;
  Tensor x({n, 1}), y({n, 1});
  Rng data_rng(13);
  for (int64_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    y[i] = 2.0f * x[i] - 1.0f;
  }
  TrainOptions options;
  options.epochs = 200;
  options.batch_size = 16;
  const TrainHistory history = trainer.fit(x, y, options);
  EXPECT_LT(history.final_loss(), 1e-3);
  EXPECT_LT(trainer.evaluate(x, y), 1e-3);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  Rng rng(14);
  Sequential model;
  model.emplace<Dense>(2, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 1, rng);
  MseLoss loss;
  Adam optimizer(0.01);
  Trainer trainer(model, loss, optimizer, rng.split());

  const int64_t n = 128;
  Tensor x({n, 2}), y({n, 1});
  Rng data_rng(15);
  for (int64_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    const float b = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    x[2 * i] = a;
    x[2 * i + 1] = b;
    y[i] = a * b;  // nonlinear target
  }
  TrainOptions options;
  options.epochs = 40;
  const TrainHistory history = trainer.fit(x, y, options);
  EXPECT_LT(history.epoch_loss.back(), history.epoch_loss.front() * 0.5);
}

TEST(TrainerTest, EarlyStopCallback) {
  Rng rng(16);
  Sequential model;
  model.emplace<Dense>(1, 1, rng);
  MseLoss loss;
  Sgd optimizer(0.01);
  Trainer trainer(model, loss, optimizer, rng.split());
  Tensor x({4, 1}), y({4, 1});
  TrainOptions options;
  options.epochs = 100;
  options.on_epoch = [](int64_t epoch, double) { return epoch < 4; };
  const TrainHistory history = trainer.fit(x, y, options);
  EXPECT_EQ(history.epoch_loss.size(), 5u);
}

TEST(TrainerTest, MismatchedDatasetThrows) {
  Rng rng(17);
  Sequential model;
  model.emplace<Dense>(1, 1, rng);
  MseLoss loss;
  Sgd optimizer(0.01);
  Trainer trainer(model, loss, optimizer, rng.split());
  EXPECT_THROW(trainer.fit(Tensor({3, 1}), Tensor({4, 1}), {}), std::invalid_argument);
}

TEST(ModelIo, RoundTripPreservesArchitectureAndWeights) {
  Rng rng(18);
  Sequential model;
  Conv2dConfig cfg{1, 3, 3, 3, 2, 1};
  model.emplace<Conv2d>(cfg, rng);
  model.emplace<ReLU>();
  model.emplace<MaxPool2d>(2, 2);
  model.emplace<Flatten>();
  model.emplace<Dense>(12, 4, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(4, 1, rng);
  model.emplace<Sigmoid>();

  std::stringstream ss;
  save_model(ss, model);
  Sequential loaded = load_model(ss);

  ASSERT_EQ(loaded.size(), model.size());
  const Tensor input = rng.uniform_tensor({2, 1, 8, 8}, -1.0, 1.0);
  test::expect_tensors_near(loaded.forward(input, Mode::kInfer), model.forward(input, Mode::kInfer),
                            1e-6f);
}

TEST(ModelIo, CorruptedMagicRejected) {
  std::stringstream ss("garbage-not-a-model-file-____");
  EXPECT_THROW(load_model(ss), SerializationError);
}

TEST(ModelIo, TruncatedFileRejected) {
  Rng rng(19);
  Sequential model;
  model.emplace<Dense>(4, 4, rng);
  std::stringstream ss;
  save_model(ss, model);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_model(truncated), SerializationError);
}

}  // namespace
}  // namespace salnov::nn
