// Unit tests for the tensor substrate: Tensor, GEMM kernels, Rng,
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"
#include "test_util.hpp"

namespace salnov {
namespace {

TEST(Shape, NumelOfEmptyShapeIsOne) { EXPECT_EQ(shape_numel({}), 1); }

TEST(Shape, NumelMultipliesDimensions) { EXPECT_EQ(shape_numel({2, 3, 4}), 24); }

TEST(Shape, NumelZeroDimension) { EXPECT_EQ(shape_numel({5, 0, 3}), 0); }

TEST(Shape, NegativeDimensionThrows) { EXPECT_THROW(shape_numel({2, -1}), std::invalid_argument); }

TEST(Shape, ToStringFormatsBrackets) { EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]"); }

TEST(Tensor, DefaultConstructedIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ConstructedZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructFromDataValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  EXPECT_EQ(t[2], 2.5f);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at({1, 2}), 7.0f);
}

TEST(Tensor, MultiIndexWrongRankThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({1}), std::invalid_argument);
}

TEST(Tensor, MultiIndexOutOfRangeThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({1, 3}), std::out_of_range);
}

TEST(Tensor, DimSupportsNegativeIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_THROW(t.dim(3), std::out_of_range);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at({2, 1}), 6.0f);
}

TEST(Tensor, ReshapeInfersDimension) {
  Tensor t({2, 6});
  const Tensor r = t.reshape({-1, 3});
  EXPECT_EQ(r.shape(), (Shape{4, 3}));
}

TEST(Tensor, ReshapeTwoInferredThrows) {
  Tensor t({4});
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
}

TEST(Tensor, ReshapeWrongCountThrows) {
  Tensor t({4});
  EXPECT_THROW(t.reshape({3}), std::invalid_argument);
}

TEST(Tensor, TransposedSwapsRowsCols) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor tt = t.transposed();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_EQ(tt.at({0, 1}), 4.0f);
  EXPECT_EQ(tt.at({2, 0}), 3.0f);
}

TEST(Tensor, TransposedRequiresRank2) {
  Tensor t({2, 2, 2});
  EXPECT_THROW(t.transposed(), std::logic_error);
}

TEST(Tensor, Slice0ExtractsRow) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor row = t.slice0(1);
  EXPECT_EQ(row.shape(), (Shape{3}));
  EXPECT_EQ(row[0], 4.0f);
}

TEST(Tensor, Narrow0ExtractsRange) {
  Tensor t({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor mid = t.narrow0(1, 3);
  EXPECT_EQ(mid.shape(), (Shape{2, 2}));
  EXPECT_EQ(mid[0], 3.0f);
  EXPECT_EQ(mid[3], 6.0f);
}

TEST(Tensor, SetSlice0Writes) {
  Tensor t({2, 2});
  t.set_slice0(1, Tensor({2}, {9, 8}));
  EXPECT_EQ(t.at({1, 0}), 9.0f);
  EXPECT_EQ(t.at({1, 1}), 8.0f);
}

TEST(Tensor, SetSlice0WrongSizeThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.set_slice0(0, Tensor({3})), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 5});
  EXPECT_EQ((a + b)[1], 7.0f);
  EXPECT_EQ((b - a)[0], 2.0f);
  EXPECT_EQ((a * b)[1], 10.0f);
  EXPECT_EQ((a * 2.0f)[0], 2.0f);
  EXPECT_EQ((3.0f * a)[1], 6.0f);
}

TEST(Tensor, MismatchedShapesThrow) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, ApplyAndMap) {
  Tensor t({3}, {1, -2, 3});
  const Tensor abs = t.map([](float v) { return std::abs(v); });
  EXPECT_EQ(abs[1], 2.0f);
  t.apply([](float v) { return v * v; });
  EXPECT_EQ(t[2], 9.0f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1, -2, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.min(), -2.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_FLOAT_EQ(t.squared_norm(), 1 + 4 + 9 + 4);
}

TEST(Tensor, EmptyReductionsThrow) {
  Tensor t(Shape{0});
  EXPECT_THROW(t.mean(), std::logic_error);
  EXPECT_THROW(t.min(), std::logic_error);
  EXPECT_THROW(t.max(), std::logic_error);
  EXPECT_THROW(t.argmax(), std::logic_error);
}

TEST(Tensor, KahanSumStaysAccurate) {
  // One large value followed by many tiny ones; naive float accumulation
  // loses the tiny ones entirely.
  Tensor t({100001});
  t[0] = 1e8f;
  for (int64_t i = 1; i < t.numel(); ++i) t[i] = 1.0f;
  EXPECT_NEAR(t.sum(), 1e8f + 100000.0f, 16.0f);
}

TEST(Tensor, EqualityAndAllclose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.00002f});
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.allclose(b, 1e-4f));
  EXPECT_FALSE(a.allclose(b, 1e-6f));
  EXPECT_FALSE(a.allclose(Tensor({3}), 1.0f));
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({2}, {1, 5});
  Tensor b({2}, {2, 3});
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 2.0f);
}

TEST(Matmul, SmallKnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  test::expect_tensors_near(c, Tensor({2, 2}, {58, 64, 139, 154}));
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 2})), std::invalid_argument);
}

TEST(Matmul, RankCheck) { EXPECT_THROW(matmul(Tensor({2}), Tensor({2, 2})), std::invalid_argument); }

TEST(Gemm, MatchesNaiveOnRandomMatrices) {
  Rng rng(7);
  const int64_t m = 13, k = 17, n = 11;
  const Tensor a = rng.uniform_tensor({m, k}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({k, n}, -1.0, 1.0);
  Tensor naive({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) acc += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      naive[i * n + j] = static_cast<float>(acc);
    }
  }
  test::expect_tensors_near(matmul(a, b), naive, 1e-4f);
}

TEST(Gemm, AccumulateAddsIntoC) {
  Tensor a({1, 2}, {1, 1});
  Tensor b({2, 1}, {2, 3});
  Tensor c({1, 1}, {10});
  gemm_accumulate(a.data(), b.data(), c.data(), 1, 1, 2);
  EXPECT_FLOAT_EQ(c[0], 15.0f);
}

TEST(Gemm, NtVariantMatchesExplicitTranspose) {
  Rng rng(11);
  const Tensor a = rng.uniform_tensor({5, 7}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({4, 7}, -1.0, 1.0);
  Tensor c({5, 4});
  gemm_nt_accumulate(a.data(), b.data(), c.data(), 5, 4, 7);
  test::expect_tensors_near(c, matmul(a, b.transposed()), 1e-4f);
}

TEST(Gemm, TnVariantMatchesExplicitTranspose) {
  Rng rng(13);
  const Tensor a = rng.uniform_tensor({7, 5}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({7, 4}, -1.0, 1.0);
  Tensor c({5, 4});
  gemm_tn_accumulate(a.data(), b.data(), c.data(), 5, 4, 7);
  test::expect_tensors_near(c, matmul(a.transposed(), b), 1e-4f);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntInvalidRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int64_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::vector<int64_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NormalTensorStddev) {
  Rng rng(31);
  const Tensor t = rng.normal_tensor({10000}, 0.5);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) sum_sq += static_cast<double>(t[i]) * t[i];
  EXPECT_NEAR(std::sqrt(sum_sq / static_cast<double>(t.numel())), 0.5, 0.02);
}

TEST(Serialize, PrimitivesRoundTrip) {
  std::stringstream ss;
  write_u32(ss, 123u);
  write_i64(ss, -456);
  write_f32(ss, 7.25f);
  write_string(ss, "hello");
  EXPECT_EQ(read_u32(ss), 123u);
  EXPECT_EQ(read_i64(ss), -456);
  EXPECT_FLOAT_EQ(read_f32(ss), 7.25f);
  EXPECT_EQ(read_string(ss), "hello");
}

TEST(Serialize, TensorRoundTrip) {
  Rng rng(5);
  const Tensor t = rng.uniform_tensor({3, 4, 5}, -2.0, 2.0);
  std::stringstream ss;
  write_tensor(ss, t);
  EXPECT_EQ(read_tensor(ss), t);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  write_u32(ss, 10u);
  EXPECT_THROW(read_i64(ss), SerializationError);
}

TEST(Serialize, HeaderValidatesMagic) {
  std::stringstream ss;
  write_header(ss, "right-magic", 1);
  EXPECT_THROW(read_header(ss, "wrong-magic", 1), SerializationError);
}

TEST(Serialize, HeaderValidatesVersion) {
  std::stringstream ss;
  write_header(ss, "magic", 2);
  EXPECT_THROW(read_header(ss, "magic", 1), SerializationError);
}

TEST(Serialize, ImplausibleTensorRejected) {
  std::stringstream ss;
  write_u32(ss, 99u);  // rank 99
  EXPECT_THROW(read_tensor(ss), SerializationError);
}

}  // namespace
}  // namespace salnov
