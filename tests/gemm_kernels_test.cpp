// Property tests pinning the GEMM kernel-equivalence contracts:
//   * every kernel matches a naive triple-loop reference over a shape grid
//     that exercises empty dims, the matvec fast path, and tail tiles
//     (scalar bit-exactly, SIMD within FMA-reassociation tolerance);
//   * the packed and unpacked SIMD paths are bit-identical;
//   * the fused bias/ReLU epilogue is bit-identical to a separate post-pass;
//   * the transposed accumulate variants match their naive definitions
//     bit-exactly (both sum k in ascending order);
//   * detector scores are exactly invariant to weight pre-packing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/pack.hpp"
#include "tensor/rng.hpp"

namespace salnov {
namespace {

/// Restores kernel selection and the packing switch when a test scope ends.
struct KernelGuard {
  GemmKernel saved_kernel = active_gemm_kernel();
  bool saved_packing = gemm_weight_packing_enabled();
  ~KernelGuard() {
    set_gemm_kernel(saved_kernel);
    set_gemm_weight_packing(saved_packing);
  }
};

const std::vector<int64_t> kSizes = {0, 1, 3, 5, 17, 31, 64, 100};

/// Reference GEMM: per-element float accumulation in ascending-k order,
/// epilogue applied in the documented order (+bias_row, +bias_col, ReLU).
std::vector<float> naive_gemm(const float* a, const float* b, int64_t m, int64_t n, int64_t k,
                              const GemmEpilogue& epilogue = {}) {
  std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      if (epilogue.bias_row != nullptr) acc += epilogue.bias_row[i];
      if (epilogue.bias_col != nullptr) acc += epilogue.bias_col[j];
      if (epilogue.relu && acc < 0.0f) acc = 0.0f;
      c[static_cast<size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

struct Operands {
  Tensor a;
  Tensor b;
  Operands(Rng& rng, int64_t m, int64_t n, int64_t k)
      : a(rng.uniform_tensor({m * k + 1}, -1.0, 1.0)),  // +1: non-null even when empty
        b(rng.uniform_tensor({k * n + 1}, -1.0, 1.0)) {}
};

TEST(GemmKernels, ScalarMatchesNaiveBitExactly) {
  // The scalar kernel also sums k in ascending order per element, so it must
  // reproduce the reference exactly, not just approximately.
  KernelGuard guard;
  set_gemm_kernel(GemmKernel::kScalar);
  Rng rng(1);
  for (int64_t m : kSizes) {
    for (int64_t n : kSizes) {
      for (int64_t k : kSizes) {
        Operands ops(rng, m, n, k);
        const std::vector<float> expected = naive_gemm(ops.a.data(), ops.b.data(), m, n, k);
        std::vector<float> c(static_cast<size_t>(m * n), 42.0f);
        gemm(ops.a.data(), ops.b.data(), c.data(), m, n, k);
        ASSERT_EQ(0, std::memcmp(c.data(), expected.data(), c.size() * sizeof(float)))
            << "m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmKernels, SimdMatchesNaiveWithinFmaTolerance) {
  if (!gemm_simd_available()) GTEST_SKIP() << "SIMD kernel not available on this CPU";
  KernelGuard guard;
  set_gemm_kernel(GemmKernel::kSimd);
  Rng rng(2);
  for (int64_t m : kSizes) {
    for (int64_t n : kSizes) {
      for (int64_t k : kSizes) {
        Operands ops(rng, m, n, k);
        const std::vector<float> expected = naive_gemm(ops.a.data(), ops.b.data(), m, n, k);
        std::vector<float> c(static_cast<size_t>(m * n), 42.0f);
        gemm(ops.a.data(), ops.b.data(), c.data(), m, n, k);
        // Operands are in [-1, 1], so |c| <= k; FMA only tightens per-term
        // rounding, leaving reassociation-free ascending sums this close.
        const float tol = 1e-5f * static_cast<float>(std::max<int64_t>(k, 1)) + 1e-6f;
        for (int64_t i = 0; i < m * n; ++i) {
          ASSERT_NEAR(c[static_cast<size_t>(i)], expected[static_cast<size_t>(i)], tol)
              << "m=" << m << " n=" << n << " k=" << k << " flat=" << i;
        }
      }
    }
  }
}

TEST(GemmKernels, PackedOperandsBitIdenticalToUnpacked) {
  if (!gemm_simd_available()) GTEST_SKIP() << "SIMD kernel not available on this CPU";
  KernelGuard guard;
  set_gemm_kernel(GemmKernel::kSimd);
  Rng rng(3);
  for (int64_t m : kSizes) {
    for (int64_t n : kSizes) {
      for (int64_t k : kSizes) {
        Operands ops(rng, m, n, k);
        std::vector<float> plain(static_cast<size_t>(m * n), 1.0f);
        gemm_ex(ops.a.data(), ops.b.data(), plain.data(), m, n, k, GemmEpilogue{});

        const PackedMatrix pa = pack_a_panels(ops.a.data(), m, k);
        const PackedMatrix pb = pack_b_panels(ops.b.data(), k, n);
        std::vector<float> both(static_cast<size_t>(m * n), 2.0f);
        gemm_ex(ops.a.data(), ops.b.data(), both.data(), m, n, k, GemmEpilogue{}, &pa, &pb);
        ASSERT_EQ(0, std::memcmp(both.data(), plain.data(), plain.size() * sizeof(float)))
            << "packed A+B, m=" << m << " n=" << n << " k=" << k;

        std::vector<float> only_b(static_cast<size_t>(m * n), 3.0f);
        gemm_ex(ops.a.data(), ops.b.data(), only_b.data(), m, n, k, GemmEpilogue{}, nullptr, &pb);
        ASSERT_EQ(0, std::memcmp(only_b.data(), plain.data(), plain.size() * sizeof(float)))
            << "packed B, m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmKernels, FusedEpilogueBitIdenticalToPostPass) {
  std::vector<GemmKernel> kernels = {GemmKernel::kScalar};
  if (gemm_simd_available()) kernels.push_back(GemmKernel::kSimd);
  KernelGuard guard;
  Rng rng(4);
  for (GemmKernel kernel : kernels) {
    set_gemm_kernel(kernel);
    for (int64_t m : {1, 5, 24, 64}) {
      for (int64_t n : {1, 17, 48}) {
        const int64_t k = 33;
        Operands ops(rng, m, n, k);
        const Tensor bias_row = rng.uniform_tensor({m}, -1.0, 1.0);
        const Tensor bias_col = rng.uniform_tensor({n}, -1.0, 1.0);
        GemmEpilogue epilogue;
        epilogue.bias_row = bias_row.data();
        epilogue.bias_col = bias_col.data();
        epilogue.relu = true;

        std::vector<float> fused(static_cast<size_t>(m * n));
        gemm_ex(ops.a.data(), ops.b.data(), fused.data(), m, n, k, epilogue);

        // Same arithmetic as a separate post-pass over the plain product.
        std::vector<float> manual(static_cast<size_t>(m * n));
        gemm(ops.a.data(), ops.b.data(), manual.data(), m, n, k);
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            float v = manual[static_cast<size_t>(i * n + j)];
            v += bias_row[i];
            v += bias_col[j];
            if (v < 0.0f) v = 0.0f;
            manual[static_cast<size_t>(i * n + j)] = v;
          }
        }
        ASSERT_EQ(0, std::memcmp(fused.data(), manual.data(), fused.size() * sizeof(float)))
            << gemm_kernel_name(kernel) << " m=" << m << " n=" << n;
      }
    }
  }
}

TEST(GemmKernels, TransposedAccumulatesMatchNaiveBitExactly) {
  Rng rng(5);
  for (int64_t m : {1, 6, 31}) {
    for (int64_t n : {1, 16, 40}) {
      for (int64_t k : {1, 17, 64}) {
        // nt: C[m,n] += A[m,k] * B[n,k]^T, ascending-k dot per element.
        const Tensor a_nt = rng.uniform_tensor({m, k}, -1.0, 1.0);
        const Tensor b_nt = rng.uniform_tensor({n, k}, -1.0, 1.0);
        Tensor c_nt({m, n});
        gemm_nt_accumulate(a_nt.data(), b_nt.data(), c_nt.data(), m, n, k);
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t kk = 0; kk < k; ++kk) acc += a_nt[i * k + kk] * b_nt[j * k + kk];
            ASSERT_EQ(c_nt[i * n + j], acc) << "nt m=" << m << " n=" << n << " k=" << k;
          }
        }

        // tn: C[m,n] += A[k,m]^T * B[k,n], ascending-k accumulation.
        const Tensor a_tn = rng.uniform_tensor({k, m}, -1.0, 1.0);
        const Tensor b_tn = rng.uniform_tensor({k, n}, -1.0, 1.0);
        Tensor c_tn({m, n});
        gemm_tn_accumulate(a_tn.data(), b_tn.data(), c_tn.data(), m, n, k);
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int64_t kk = 0; kk < k; ++kk) acc += a_tn[kk * m + i] * b_tn[kk * n + j];
            ASSERT_EQ(c_tn[i * n + j], acc) << "tn m=" << m << " n=" << n << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(GemmKernels, KernelNamesAndAvailability) {
  EXPECT_STREQ("scalar", gemm_kernel_name(GemmKernel::kScalar));
  if (!gemm_simd_available()) {
    EXPECT_THROW(set_gemm_kernel(GemmKernel::kSimd), std::invalid_argument);
  } else {
    const char* name = gemm_kernel_name(GemmKernel::kSimd);
    EXPECT_TRUE(std::strcmp(name, "avx2") == 0 || std::strcmp(name, "avx512") == 0 ||
                std::strcmp(name, "neon") == 0)
        << name;
  }
}

TEST(GemmKernels, DetectorScoresExactlyInvariantToWeightPacking) {
  if (!gemm_simd_available()) GTEST_SKIP() << "SIMD kernel not available on this CPU";
  KernelGuard guard;
  set_gemm_kernel(GemmKernel::kSimd);

  constexpr int64_t kH = 24, kW = 48;
  Rng rng(123);
  roadsim::OutdoorSceneGenerator outdoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 16, kH, kW, rng);
  const auto probe = roadsim::DrivingDataset::generate(outdoor, 6, kH, kW, rng);

  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng);

  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 2;

  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  Rng fit_rng(7);
  detector.fit(train.images(), fit_rng);

  set_gemm_weight_packing(false);
  const std::vector<double> unpacked = detector.scores(probe.images());
  set_gemm_weight_packing(true);
  const std::vector<double> packed = detector.scores(probe.images());

  ASSERT_EQ(unpacked.size(), packed.size());
  for (size_t i = 0; i < unpacked.size(); ++i) {
    EXPECT_EQ(unpacked[i], packed[i]) << "score " << i << " changed under weight packing";
  }
}

// --- int8 kernel rungs -------------------------------------------------------
// The quantized scoring rungs promise bit-exact int32 accumulation, so the
// int8 contracts are strictly tighter than the float ones above: every
// comparison here is memcmp-strength, SIMD included.

/// Restores the int8 kernel selection when a test scope ends.
struct Int8KernelGuard {
  GemmInt8Kernel saved = active_gemm_int8_kernel();
  ~Int8KernelGuard() { set_gemm_int8_kernel(saved); }
};

/// Reference u8*s8 -> int32 GEMM: plain integer dot, order-independent.
std::vector<int32_t> naive_gemm_int8(const uint8_t* a, const int8_t* b, int64_t m, int64_t n,
                                     int64_t k) {
  std::vector<int32_t> c(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<int32_t>(a[i * k + kk]) * static_cast<int32_t>(b[kk * n + j]);
      }
      c[static_cast<size_t>(i * n + j)] = acc;
    }
  }
  return c;
}

struct QuantOperands {
  std::vector<uint8_t> a;
  std::vector<int8_t> b;
  QuantOperands(Rng& rng, int64_t m, int64_t n, int64_t k)
      : a(static_cast<size_t>(m * k + 1)), b(static_cast<size_t>(k * n + 1)) {
    for (auto& v : a) v = static_cast<uint8_t>(rng.uniform_int(0, 127));
    for (auto& v : b) v = static_cast<int8_t>(rng.uniform_int(-127, 127));
  }
};

TEST(GemmInt8Kernels, EveryKernelMatchesNaiveInt32Exactly) {
  // Force each kernel in turn (forced-fallback coverage: the scalar rung
  // must hold the same exactness contract the SIMD rung is dispatched to).
  std::vector<GemmInt8Kernel> kernels = {GemmInt8Kernel::kScalar};
  if (gemm_int8_simd_available()) kernels.push_back(GemmInt8Kernel::kSimd);
  Int8KernelGuard guard;
  Rng rng(6);
  for (GemmInt8Kernel kernel : kernels) {
    set_gemm_int8_kernel(kernel);
    for (int64_t m : kSizes) {
      for (int64_t n : kSizes) {
        for (int64_t k : kSizes) {
          QuantOperands ops(rng, m, n, k);
          const std::vector<int32_t> expected = naive_gemm_int8(ops.a.data(), ops.b.data(), m, n, k);
          std::vector<int32_t> c(static_cast<size_t>(m * n), 42);
          gemm_u8s8(ops.a.data(), ops.b.data(), c.data(), m, n, k);
          ASSERT_EQ(expected, c)
              << gemm_int8_kernel_name(kernel) << " m=" << m << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(GemmInt8Kernels, PackedOperandBitIdenticalToUnpacked) {
  std::vector<GemmInt8Kernel> kernels = {GemmInt8Kernel::kScalar};
  if (gemm_int8_simd_available()) kernels.push_back(GemmInt8Kernel::kSimd);
  Int8KernelGuard guard;
  Rng rng(7);
  for (GemmInt8Kernel kernel : kernels) {
    set_gemm_int8_kernel(kernel);
    for (int64_t m : {1, 5, 31}) {
      for (int64_t n : {1, 17, 40}) {
        const int64_t k = 33;
        QuantOperands ops(rng, m, n, k);
        std::vector<int32_t> plain(static_cast<size_t>(m * n), 1);
        gemm_u8s8(ops.a.data(), ops.b.data(), plain.data(), m, n, k);
        const PackedQuantMatrix pb = pack_quant_b(ops.b.data(), k, n);
        std::vector<int32_t> packed(static_cast<size_t>(m * n), 2);
        gemm_u8s8(ops.a.data(), ops.b.data(), packed.data(), m, n, k, &pb);
        ASSERT_EQ(plain, packed)
            << gemm_int8_kernel_name(kernel) << " m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GemmInt8Kernels, DequantEpilogueMatchesManualFmafExactly) {
  // The dequant contract is a single correctly-rounded fmaf per element
  // (then ReLU); verify against a manual pass over the int32 product for
  // every kernel.
  std::vector<GemmInt8Kernel> kernels = {GemmInt8Kernel::kScalar};
  if (gemm_int8_simd_available()) kernels.push_back(GemmInt8Kernel::kSimd);
  Int8KernelGuard guard;
  Rng rng(8);
  for (GemmInt8Kernel kernel : kernels) {
    set_gemm_int8_kernel(kernel);
    for (bool relu : {false, true}) {
      const int64_t m = 7, n = 19, k = 41;
      QuantOperands ops(rng, m, n, k);
      std::vector<float> bias(static_cast<size_t>(n));
      for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      QuantEpilogue epilogue;
      epilogue.scale = 3.07e-3f;
      epilogue.bias_col = bias.data();
      epilogue.relu = relu;

      std::vector<float> fused(static_cast<size_t>(m * n));
      gemm_u8s8_dequant(ops.a.data(), ops.b.data(), fused.data(), m, n, k, epilogue);

      const std::vector<int32_t> acc = naive_gemm_int8(ops.a.data(), ops.b.data(), m, n, k);
      std::vector<float> manual(static_cast<size_t>(m * n));
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float v = std::fmaf(static_cast<float>(acc[static_cast<size_t>(i * n + j)]),
                              epilogue.scale, bias[static_cast<size_t>(j)]);
          if (relu && v < 0.0f) v = 0.0f;
          manual[static_cast<size_t>(i * n + j)] = v;
        }
      }
      ASSERT_EQ(0, std::memcmp(fused.data(), manual.data(), fused.size() * sizeof(float)))
          << gemm_int8_kernel_name(kernel) << " relu=" << relu;
    }
  }
}

TEST(GemmInt8Kernels, KernelNamesAvailabilityAndGuards) {
  EXPECT_STREQ("scalar", gemm_int8_kernel_name(GemmInt8Kernel::kScalar));
  if (!gemm_int8_simd_available()) {
    EXPECT_THROW(set_gemm_int8_kernel(GemmInt8Kernel::kSimd), std::invalid_argument);
  } else {
    Int8KernelGuard guard;
    set_gemm_int8_kernel(GemmInt8Kernel::kSimd);
    EXPECT_EQ(GemmInt8Kernel::kSimd, active_gemm_int8_kernel());
    set_gemm_int8_kernel(GemmInt8Kernel::kScalar);
    EXPECT_EQ(GemmInt8Kernel::kScalar, active_gemm_int8_kernel());
  }

  // Exactness guard: k beyond kMaxQuantK could overflow the int32
  // accumulator, so the entry point must refuse rather than wrap.
  std::vector<uint8_t> a(1);
  std::vector<int8_t> b(1);
  std::vector<int32_t> c(1);
  EXPECT_THROW(gemm_u8s8(a.data(), b.data(), c.data(), 1, 1, kMaxQuantK + 1),
               std::invalid_argument);
  EXPECT_THROW(gemm_u8s8(a.data(), b.data(), c.data(), -1, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace salnov
