// Tests for the extension features: MS-SSIM, Dropout, horizontal-flip
// augmentation, and the umbrella header.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "salnov.hpp"

namespace salnov {
namespace {

Image random_image(int64_t h, int64_t w, uint64_t seed, double lo = 0.0, double hi = 1.0) {
  Rng rng(seed);
  return Image(h, w, rng.uniform_tensor({h * w}, lo, hi));
}

// ---------------------------------------------------------------------------
// MS-SSIM.

TEST(MsSsim, IdentityScoresOne) {
  const Image img = random_image(64, 96, 1);
  EXPECT_NEAR(ms_ssim(img, img), 1.0, 1e-9);
}

TEST(MsSsim, BoundedZeroOne) {
  for (uint64_t seed = 2; seed < 8; ++seed) {
    const Image a = random_image(48, 48, seed);
    const Image b = random_image(48, 48, seed + 50);
    const double s = ms_ssim(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-12);
  }
}

TEST(MsSsim, Symmetric) {
  const Image a = random_image(48, 64, 9);
  const Image b = random_image(48, 64, 10);
  EXPECT_NEAR(ms_ssim(a, b), ms_ssim(b, a), 1e-12);
}

TEST(MsSsim, DecreasesWithNoise) {
  const Image base = random_image(64, 64, 11, 0.3, 0.7);
  double previous = 1.1;
  for (double sigma : {0.02, 0.08, 0.25}) {
    Rng rng(12);
    const double s = ms_ssim(base, add_gaussian_noise(base, sigma, rng));
    EXPECT_LT(s, previous);
    previous = s;
  }
}

TEST(MsSsim, ScaleCountRespectsImageSize) {
  EXPECT_EQ(ms_ssim_scale_count(176, 176), 5);
  EXPECT_EQ(ms_ssim_scale_count(44, 44), 3);   // 44 -> 22 -> 11, then 5 < 11
  EXPECT_EQ(ms_ssim_scale_count(11, 11), 1);
  EXPECT_EQ(ms_ssim_scale_count(8, 8), 0);
  MsSsimOptions capped;
  capped.max_scales = 2;
  EXPECT_EQ(ms_ssim_scale_count(176, 176, capped), 2);
}

TEST(MsSsim, TooSmallImageThrows) {
  EXPECT_THROW(ms_ssim(Image(8, 8), Image(8, 8)), std::invalid_argument);
  EXPECT_THROW(ms_ssim(random_image(32, 32, 1), random_image(32, 30, 1)), std::invalid_argument);
}

TEST(MsSsim, MoreTolerantOfBrightnessThanSingleScaleIsOfNoise) {
  // MS-SSIM keeps the Fig. 3 property: a brightness shift stays near 1.
  Image base(64, 64);
  for (int64_t y = 0; y < 64; ++y) {
    for (int64_t x = 0; x < 64; ++x) base(y, x) = 0.3f + 0.4f * static_cast<float>(x + y) / 126.0f;
  }
  Rng rng(13);
  const Image bright = adjust_brightness(base, 0.1);
  const Image noisy = add_gaussian_noise(base, 0.1, rng);
  EXPECT_GT(ms_ssim(base, bright), ms_ssim(base, noisy));
}

TEST(Downsample2x, AveragesBlocks) {
  Image img(2, 4, Tensor({8}, {0.0f, 1.0f, 0.5f, 0.5f, 1.0f, 0.0f, 0.5f, 0.5f}));
  const Image out = downsample2x(img);
  EXPECT_EQ(out.height(), 1);
  EXPECT_EQ(out.width(), 2);
  EXPECT_NEAR(out(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out(0, 1), 0.5f, 1e-6f);
}

TEST(Downsample2x, DropsOddTrailingEdge) {
  const Image out = downsample2x(Image(5, 7));
  EXPECT_EQ(out.height(), 2);
  EXPECT_EQ(out.width(), 3);
}

// ---------------------------------------------------------------------------
// Dropout.

TEST(DropoutLayer, InferenceIsIdentity) {
  Rng rng(1);
  nn::Dropout dropout(0.5, rng);
  const Tensor input = rng.uniform_tensor({4, 8}, -1.0, 1.0);
  EXPECT_EQ(dropout.forward(input, nn::Mode::kInfer), input);
}

TEST(DropoutLayer, TrainingDropsApproximatelyP) {
  Rng rng(2);
  nn::Dropout dropout(0.3, rng);
  const Tensor input = Tensor::ones({100, 100});
  const Tensor out = dropout.forward(input, nn::Mode::kTrain);
  int64_t zeros = 0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(out[i], 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(out.numel()), 0.3, 0.02);
}

TEST(DropoutLayer, ExpectationPreserved) {
  Rng rng(3);
  nn::Dropout dropout(0.4, rng);
  const Tensor input = Tensor::ones({200, 200});
  const Tensor out = dropout.forward(input, nn::Mode::kTrain);
  EXPECT_NEAR(out.mean(), 1.0f, 0.02f);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Rng rng(4);
  nn::Dropout dropout(0.5, rng);
  const Tensor input = Tensor::ones({6, 6});
  const Tensor out = dropout.forward(input, nn::Mode::kTrain);
  const Tensor grad = dropout.backward(Tensor::ones({6, 6}));
  // Gradient must be zero exactly where the activation was dropped.
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_EQ(out[i] == 0.0f, grad[i] == 0.0f) << "at " << i;
  }
}

TEST(DropoutLayer, ZeroProbabilityIsIdentityInTraining) {
  Rng rng(5);
  nn::Dropout dropout(0.0, rng);
  const Tensor input = rng.uniform_tensor({3, 3}, -1.0, 1.0);
  EXPECT_EQ(dropout.forward(input, nn::Mode::kTrain), input);
}

TEST(DropoutLayer, InvalidProbabilityThrows) {
  Rng rng(6);
  EXPECT_THROW(nn::Dropout(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0, rng), std::invalid_argument);
}

TEST(DropoutLayer, SurvivesModelRoundTrip) {
  Rng rng(7);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 4, rng);
  model.emplace<nn::Dropout>(0.25, rng);
  model.emplace<nn::Dense>(4, 1, rng);
  std::stringstream ss;
  nn::save_model(ss, model);
  nn::Sequential loaded = nn::load_model(ss);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.layer(1).type_name(), "dropout");
  const Tensor probe = rng.uniform_tensor({2, 4}, -1.0, 1.0);
  // Inference path is deterministic and identical after the round trip.
  EXPECT_EQ(loaded.forward(probe, nn::Mode::kInfer), model.forward(probe, nn::Mode::kInfer));
}

TEST(DropoutLayer, TrainingStillLearnsWithDropout) {
  Rng rng(8);
  nn::Sequential model;
  model.emplace<nn::Dense>(1, 16, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dropout>(0.2, rng);
  model.emplace<nn::Dense>(16, 1, rng);
  nn::MseLoss loss;
  nn::Adam optimizer(0.02);
  nn::Trainer trainer(model, loss, optimizer, rng.split());
  const int64_t n = 64;
  Tensor x({n, 1}), y({n, 1});
  Rng data_rng(9);
  for (int64_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    y[i] = 0.5f * x[i] + 0.2f;
  }
  nn::TrainOptions options;
  options.epochs = 150;
  trainer.fit(x, y, options);
  EXPECT_LT(trainer.evaluate(x, y), 0.02);
}

// ---------------------------------------------------------------------------
// Horizontal flip + mirror augmentation.

TEST(FlipHorizontal, ReversesColumns) {
  Image img(1, 3, Tensor({3}, {1.0f, 2.0f, 3.0f}));
  const Image out = flip_horizontal(img);
  EXPECT_FLOAT_EQ(out(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out(0, 2), 1.0f);
}

TEST(FlipHorizontal, Involution) {
  const Image img = random_image(6, 9, 10);
  EXPECT_EQ(flip_horizontal(flip_horizontal(img)).tensor(), img.tensor());
}

TEST(MirrorAugmentation, DoublesDatasetAndNegatesSteering) {
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(11);
  const auto ds = roadsim::DrivingDataset::generate(gen, 6, 30, 80, rng);
  const auto augmented = ds.with_mirrored();
  ASSERT_EQ(augmented.size(), 12);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(augmented.image(i).tensor(), ds.image(i).tensor());
    EXPECT_NEAR(augmented.steering(i + 6), -ds.steering(i), 1e-12);
    EXPECT_EQ(augmented.image(i + 6).tensor(), flip_horizontal(ds.image(i)).tensor());
    EXPECT_DOUBLE_EQ(augmented.params(i + 6).curvature, -ds.params(i).curvature);
  }
}

TEST(MirrorAugmentation, AugmentedTrainingImprovesSteering) {
  // With few scenes, mirroring should not hurt (and typically helps) the
  // steering fit; mainly this guards the label/image consistency end-to-end.
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(12);
  const auto ds = roadsim::DrivingDataset::generate(gen, 40, 24, 48, rng);
  const auto test = roadsim::DrivingDataset::generate(gen, 20, 24, 48, rng);
  nn::Sequential model = driving::build_pilotnet(driving::PilotNetConfig::tiny(24, 48), rng);
  driving::SteeringTrainOptions options;
  options.epochs = 15;
  driving::train_steering_model(model, ds.with_mirrored(), options, rng);
  EXPECT_LT(driving::steering_mae(model, test), 0.35);
}

}  // namespace
}  // namespace salnov
