// Crash-safety and integrity tests for the checked file IO layer
// (save_file_checked / load_file_checked) and the model/pipeline files
// built on it. The acceptance bar: a saved file round-trips, ANY flipped
// payload byte is rejected with a CRC error, and a failure mid-save never
// corrupts an existing target file.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/autoencoder.hpp"
#include "core/novelty_detector.hpp"
#include "core/pipeline_io.hpp"
#include "driving/pilotnet.hpp"
#include "nn/dense.hpp"
#include "nn/model_io.hpp"
#include "nn/sequential.hpp"
#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"

namespace salnov {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() / fs::path("salnov_persist_" + unique())) {
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string file(const std::string& name) const { return (path_ / name).string(); }
  const fs::path& path() const { return path_; }

 private:
  static std::string unique() {
    static int counter = 0;
    return std::to_string(::getpid()) + "_" + std::to_string(counter++);
  }
  fs::path path_;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Number of non-directory entries in a directory (leak check for temps).
int64_t file_count(const fs::path& dir) {
  int64_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(Crc32, MatchesReferenceVector) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  // Chaining blocks equals one pass.
  const uint32_t first = crc32(data, 4);
  EXPECT_EQ(crc32(data + 4, 5, first), 0xCBF43926u);
  EXPECT_EQ(crc32(data, 0), 0u);
}

TEST(CheckedFileIo, RoundTripsPayload) {
  TempDir dir;
  const std::string path = dir.file("payload.bin");
  const std::string payload("hello\0binary\xFFpayload", 20);  // embedded NUL + high byte
  save_file_checked(path, [&](std::ostream& os) {
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  });
  EXPECT_EQ(load_file_checked(path), payload);
  // The file itself carries the 16-byte trailer on top of the payload.
  EXPECT_EQ(fs::file_size(path), payload.size() + 16);
}

TEST(CheckedFileIo, EveryFlippedByteIsRejected) {
  TempDir dir;
  const std::string path = dir.file("flip.bin");
  save_file_checked(path, [](std::ostream& os) {
    for (int i = 0; i < 64; ++i) write_u32(os, static_cast<uint32_t>(i * 2654435761u));
  });
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 16u);
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    dump(path, bad);
    EXPECT_THROW(load_file_checked(path), SerializationError) << "flip at byte " << i;
  }
}

TEST(CheckedFileIo, EveryTruncationIsRejected) {
  TempDir dir;
  const std::string path = dir.file("trunc.bin");
  save_file_checked(path, [](std::ostream& os) { write_string(os, "short payload"); });
  const std::string good = slurp(path);
  for (size_t keep = 0; keep < good.size(); ++keep) {
    dump(path, good.substr(0, keep));
    EXPECT_THROW(load_file_checked(path), SerializationError) << "truncated to " << keep;
  }
}

TEST(CheckedFileIo, MissingTrailerIsTruncatedFileError) {
  TempDir dir;
  const std::string path = dir.file("legacy.bin");
  dump(path, "a legacy file without any integrity trailer at all.......");
  EXPECT_THROW(load_file_checked(path), TruncatedFileError);
}

TEST(CheckedFileIo, CrcMismatchIsCorruptFileError) {
  TempDir dir;
  const std::string path = dir.file("corrupt.bin");
  save_file_checked(path, [](std::ostream& os) { write_string(os, "payload payload"); });
  std::string bytes = slurp(path);
  bytes[2] = static_cast<char>(bytes[2] ^ 0x01);  // damage the payload, keep the trailer
  dump(path, bytes);
  EXPECT_THROW(load_file_checked(path), CorruptFileError);
}

TEST(CheckedFileIo, MissingFileThrows) {
  TempDir dir;
  EXPECT_THROW(load_file_checked(dir.file("nope.bin")), std::runtime_error);
}

TEST(CheckedFileIo, FailedSaveLeavesTargetUntouchedAndNoTemps) {
  TempDir dir;
  const std::string path = dir.file("precious.bin");
  save_file_checked(path, [](std::ostream& os) { write_string(os, "the original"); });
  const std::string original = slurp(path);
  ASSERT_EQ(file_count(dir.path()), 1);

  // A writer that dies mid-payload must not touch the target and must not
  // leave its temp file behind ("kill during save never corrupts").
  EXPECT_THROW(save_file_checked(path,
                                 [](std::ostream& os) {
                                   write_string(os, "half-written replacement");
                                   throw std::runtime_error("simulated crash");
                                 }),
               std::runtime_error);
  EXPECT_EQ(slurp(path), original);
  EXPECT_EQ(file_count(dir.path()), 1);
  // Payload = u32 length prefix (12) + the string bytes.
  EXPECT_EQ(load_file_checked(path), std::string("\x0c\x00\x00\x00the original", 16));
}

TEST(CheckedFileIo, UnwritableDirectoryFailsCleanly) {
  TempDir dir;
  const std::string path = dir.file("no/such/subdir/out.bin");
  EXPECT_THROW(save_file_checked(path, [](std::ostream& os) { write_u32(os, 1); }),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(path));
}

// ---------------------------------------------------------------------------
// The real file formats on top of the checked layer.

nn::Sequential tiny_model() {
  Rng rng(5);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(6, 3, rng));
  return model;
}

TEST(ModelFilePersistence, RoundTripsAndRejectsEveryByteFlip) {
  TempDir dir;
  const std::string path = dir.file("model.bin");
  nn::Sequential model = tiny_model();
  nn::save_model_file(path, model);

  nn::Sequential loaded = nn::load_model_file(path);
  const auto pa = model.parameters(), pb = loaded.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value == pb[i]->value);
  }

  const std::string good = slurp(path);
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x80);
    dump(path, bad);
    EXPECT_THROW(nn::load_model_file(path), SerializationError) << "flip at byte " << i;
  }
}

class PipelinePersistence : public ::testing::Test {
 protected:
  static constexpr int64_t kH = 12;
  static constexpr int64_t kW = 16;

  static void SetUpTestSuite() {
    core::NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = core::Preprocessing::kRaw;
    config.score = core::ReconstructionScore::kMse;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 3;
    detector_ = new core::NoveltyDetector(config);
    Rng rng(9);
    std::vector<Image> train;
    for (int i = 0; i < 10; ++i) {
      train.push_back(Image(kH, kW, rng.uniform_tensor({kH * kW}, 0.0, 1.0)));
    }
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
  }

  static core::NoveltyDetector* detector_;
};

core::NoveltyDetector* PipelinePersistence::detector_ = nullptr;

TEST_F(PipelinePersistence, FileRoundTripPreservesScores) {
  TempDir dir;
  const std::string path = dir.file("detector.pipeline");
  core::PipelineIo::save_file(path, *detector_, nullptr);

  core::LoadedPipeline loaded = core::PipelineIo::load_file(path);
  Rng rng(11);
  const Image probe(kH, kW, rng.uniform_tensor({kH * kW}, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(loaded.detector->score(probe), detector_->score(probe));
  EXPECT_DOUBLE_EQ(loaded.detector->threshold().threshold(), detector_->threshold().threshold());
}

TEST_F(PipelinePersistence, SampledByteFlipsAreRejected) {
  TempDir dir;
  const std::string path = dir.file("detector.pipeline");
  core::PipelineIo::save_file(path, *detector_, nullptr);
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 64u);
  // Pipeline files are a few KB; a stride keeps the sweep fast while still
  // hitting header, tensors, threshold block, and the trailer itself.
  for (size_t i = 0; i < good.size(); i += 7) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    dump(path, bad);
    EXPECT_THROW(core::PipelineIo::load_file(path), SerializationError) << "flip at byte " << i;
  }
}

TEST_F(PipelinePersistence, TruncatedPipelineIsTypedError) {
  TempDir dir;
  const std::string path = dir.file("detector.pipeline");
  core::PipelineIo::save_file(path, *detector_, nullptr);
  const std::string good = slurp(path);
  dump(path, good.substr(0, good.size() / 2));
  EXPECT_THROW(core::PipelineIo::load_file(path), TruncatedFileError);
  dump(path, good.substr(0, 8));  // shorter than the trailer itself
  EXPECT_THROW(core::PipelineIo::load_file(path), TruncatedFileError);
}

TEST_F(PipelinePersistence, VariantCalibrationsRoundTripBitExact) {
  // The serving runtime's fallback ladder is only trustworthy if every
  // rung's fitted ECDF + threshold survives persistence exactly.
  TempDir dir;
  const std::string path = dir.file("detector.pipeline");
  core::PipelineIo::save_file(path, *detector_, nullptr);
  core::LoadedPipeline loaded = core::PipelineIo::load_file(path);
  ASSERT_TRUE(loaded.detector->has_variant_calibrations());
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    const auto variant = static_cast<core::DetectorVariant>(v);
    const core::VariantCalibration& saved = detector_->variant_calibration(variant);
    const core::VariantCalibration& restored = loaded.detector->variant_calibration(variant);
    EXPECT_EQ(saved.cdf.samples(), restored.cdf.samples())
        << core::detector_variant_name(variant);
    EXPECT_EQ(saved.threshold.threshold(), restored.threshold.threshold())
        << core::detector_variant_name(variant);
  }
}

TEST(VbpPipelinePersistence, FullLadderRoundTripsWithSteeringModel) {
  // Under VBP preprocessing the raw+MSE rung is calibrated on a genuinely
  // different score stream than the primary; all three rungs (and their
  // variant scores) must survive the file round trip bit-exactly.
  const int64_t h = 12, w = 16;
  Rng rng(13);
  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::tiny(h, w), rng);
  core::NoveltyDetectorConfig config;
  config.height = h;
  config.width = w;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder = core::AutoencoderConfig::tiny(h, w);
  config.train_epochs = 3;
  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  std::vector<Image> train;
  for (int i = 0; i < 8; ++i) train.push_back(Image(h, w, rng.uniform_tensor({h * w}, 0.0, 1.0)));
  detector.fit(train, rng);

  TempDir dir;
  const std::string path = dir.file("vbp.pipeline");
  core::PipelineIo::save_file(path, detector, &steering);
  core::LoadedPipeline loaded = core::PipelineIo::load_file(path);

  const Image probe(h, w, rng.uniform_tensor({h * w}, 0.0, 1.0));
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    const auto variant = static_cast<core::DetectorVariant>(v);
    EXPECT_EQ(detector.variant_calibration(variant).cdf.samples(),
              loaded.detector->variant_calibration(variant).cdf.samples());
    EXPECT_DOUBLE_EQ(detector.variant_calibration(variant).threshold.threshold(),
                     loaded.detector->variant_calibration(variant).threshold.threshold());
    EXPECT_DOUBLE_EQ(detector.score_variant(variant, probe),
                     loaded.detector->score_variant(variant, probe));
  }
}

TEST_F(PipelinePersistence, SaveOverwritesAtomically) {
  TempDir dir;
  const std::string path = dir.file("detector.pipeline");
  core::PipelineIo::save_file(path, *detector_, nullptr);
  const std::string first = slurp(path);
  // Overwriting the same pipeline goes through the temp + rename path and
  // produces an identical, loadable file with no stray siblings.
  core::PipelineIo::save_file(path, *detector_, nullptr);
  EXPECT_EQ(slurp(path), first);
  EXPECT_EQ(file_count(dir.path()), 1);
  EXPECT_NO_THROW(core::PipelineIo::load_file(path));
}

}  // namespace
}  // namespace salnov
