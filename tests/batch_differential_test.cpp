// Batch-1 vs batch-B differential property suite.
//
// The serving cluster's whole correctness argument is that batching is
// invisible: a frame scored inside ANY batch — any size, any position, any
// companions — produces bit-identical outputs to scoring it alone. These
// properties drive randomized frame sets through both paths and demand
// exact equality at every level of the stack:
//
//   * driving::predict_steering_batch row i  ==  predict_steering solo
//   * SaliencyMethod::compute_batch mask i   ==  compute solo (pixel bits)
//   * NoveltyDetector::reconstruct_batch i   ==  reconstruct solo
//   * NoveltyDetector::score_batch i         ==  score_variant solo
//   * ServingCluster decision stream         ==  bare-Supervisor stream
//     (scores, verdicts, monitor transitions, ladder positions)
//
// Failures echo SALNOV_PROP_SEED for one-variable reproduction (see
// tests/prop.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "prop.hpp"
#include "serving/clock.hpp"
#include "serving/cluster.hpp"
#include "serving/supervisor.hpp"

namespace salnov {

/// Counterexample printer for frame batches (found by ADL from
/// prop::for_all; pixel dumps would be noise — the replay seed is the
/// reproduction path).
std::string describe(const std::vector<Image>& frames) {
  return "<" + std::to_string(frames.size()) + " frames>";
}

namespace {

using core::DetectorVariant;
using core::NoveltyDetector;
using core::NoveltyDetectorConfig;
using core::Preprocessing;
using core::ReconstructionScore;

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;

class BatchDifferentialFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(41);
    steering_ = new nn::Sequential(
        driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng));

    NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = Preprocessing::kVbp;
    config.score = ReconstructionScore::kSsim;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 10;
    detector_ = new NoveltyDetector(config);
    detector_->attach_steering_model(steering_);

    std::vector<Image> train;
    for (int i = 0; i < 24; ++i) train.push_back(random_frame(rng, /*smooth=*/true));
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    delete steering_;
    steering_ = nullptr;
  }

  /// Smooth gradient (familiar) or uniform noise (novel), random parameters.
  static Image random_frame(Rng& rng, bool smooth) {
    Image img(kH, kW);
    if (smooth) {
      const double slope = rng.uniform(0.5, 1.5);
      const double offset = rng.uniform(0.0, 0.3);
      for (int64_t y = 0; y < kH; ++y) {
        for (int64_t x = 0; x < kW; ++x) {
          img(y, x) =
              static_cast<float>(offset + slope * (y + x) / static_cast<double>(kH + kW));
        }
      }
    } else {
      for (int64_t y = 0; y < kH; ++y) {
        for (int64_t x = 0; x < kW; ++x) img(y, x) = static_cast<float>(rng.uniform(0.0, 1.0));
      }
    }
    img.clamp01();
    return img;
  }

  static std::vector<Image> random_batch(Rng& rng) {
    const int64_t n = rng.uniform_int(1, 12);
    std::vector<Image> frames;
    frames.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      frames.push_back(random_frame(rng, rng.uniform(0.0, 1.0) < 0.7));
    }
    return frames;
  }

  static std::vector<const Image*> pointers(const std::vector<Image>& frames) {
    std::vector<const Image*> out;
    out.reserve(frames.size());
    for (const Image& frame : frames) out.push_back(&frame);
    return out;
  }

  static bool images_bitexact(const Image& a, const Image& b) {
    return a.tensor() == b.tensor();
  }

  static NoveltyDetector* detector_;
  static nn::Sequential* steering_;
};

NoveltyDetector* BatchDifferentialFixture::detector_ = nullptr;
nn::Sequential* BatchDifferentialFixture::steering_ = nullptr;

TEST_F(BatchDifferentialFixture, SteeringBatchRowsMatchSolo) {
  prop::for_all<std::vector<Image>>(
      "predict_steering_batch row i == predict_steering(frame i)",
      [](Rng& rng) { return random_batch(rng); },
      [&](const std::vector<Image>& frames) {
        const std::vector<double> batched =
            driving::predict_steering_batch(*steering_, pointers(frames));
        if (batched.size() != frames.size()) return false;
        for (size_t i = 0; i < frames.size(); ++i) {
          if (batched[i] != driving::predict_steering(*steering_, frames[i])) return false;
        }
        return true;
      },
      {/*trials=*/20, /*seed=*/71});
}

TEST_F(BatchDifferentialFixture, SaliencyBatchMasksMatchSolo) {
  prop::for_all<std::vector<Image>>(
      "variant_preprocess_batch mask i == variant_preprocess(frame i)",
      [](Rng& rng) { return random_batch(rng); },
      [&](const std::vector<Image>& frames) {
        const std::vector<Image> batched =
            detector_->variant_preprocess_batch(DetectorVariant::kPrimary, pointers(frames));
        if (batched.size() != frames.size()) return false;
        for (size_t i = 0; i < frames.size(); ++i) {
          const Image solo = detector_->variant_preprocess(DetectorVariant::kPrimary, frames[i]);
          if (!images_bitexact(batched[i], solo)) return false;
        }
        return true;
      },
      {/*trials=*/10, /*seed=*/72});
}

TEST_F(BatchDifferentialFixture, ReconstructionBatchRowsMatchSolo) {
  prop::for_all<std::vector<Image>>(
      "reconstruct_batch row i == reconstruct(frame i)",
      [](Rng& rng) { return random_batch(rng); },
      [&](const std::vector<Image>& frames) {
        const std::vector<Image> batched = detector_->reconstruct_batch(pointers(frames));
        if (batched.size() != frames.size()) return false;
        for (size_t i = 0; i < frames.size(); ++i) {
          if (!images_bitexact(batched[i], detector_->reconstruct(frames[i]))) return false;
        }
        return true;
      },
      {/*trials=*/20, /*seed=*/73});
}

TEST_F(BatchDifferentialFixture, ScoreBatchMatchesSoloAcrossVariants) {
  for (const DetectorVariant variant :
       {DetectorVariant::kPrimary, DetectorVariant::kPreprocessedMse, DetectorVariant::kRawMse}) {
    prop::for_all<std::vector<Image>>(
        "score_batch element i == score_variant(frame i)",
        [](Rng& rng) { return random_batch(rng); },
        [&](const std::vector<Image>& frames) {
          const std::vector<double> batched = detector_->score_batch(variant, pointers(frames));
          if (batched.size() != frames.size()) return false;
          for (size_t i = 0; i < frames.size(); ++i) {
            if (batched[i] != detector_->score_variant(variant, frames[i])) return false;
          }
          return true;
        },
        {/*trials=*/8, /*seed=*/74});
  }
}

TEST_F(BatchDifferentialFixture, BatchPositionAndCompositionAreInvisible) {
  // The same frame scored at different positions inside different random
  // batches must produce the identical bits every time.
  prop::for_all<std::vector<Image>>(
      "score is invariant to batch position and companions",
      [](Rng& rng) { return random_batch(rng); },
      [&](const std::vector<Image>& frames) {
        const Image& probe = frames.front();
        const double solo = detector_->score_variant(DetectorVariant::kPrimary, probe);
        // Probe alone, probe leading, probe trailing.
        std::vector<const Image*> alone = {&probe};
        std::vector<const Image*> leading = pointers(frames);
        std::vector<const Image*> trailing = pointers(frames);
        std::rotate(trailing.begin(), trailing.begin() + 1, trailing.end());
        const double in_alone =
            detector_->score_batch(DetectorVariant::kPrimary, alone).front();
        const double in_lead =
            detector_->score_batch(DetectorVariant::kPrimary, leading).front();
        const double in_trail =
            detector_->score_batch(DetectorVariant::kPrimary, trailing).back();
        return in_alone == solo && in_lead == solo && in_trail == solo;
      },
      {/*trials=*/10, /*seed=*/75});
}

TEST_F(BatchDifferentialFixture, ClusterDecisionStreamMatchesBareSupervisor) {
  // End-to-end: scores, novelty verdicts, monitor transitions, and ladder
  // verdicts out of a batching cluster equal a bare supervisor's, frame by
  // frame, on a randomized familiar/novel mix.
  prop::for_all<std::vector<Image>>(
      "cluster decision stream == solo supervisor stream",
      [](Rng& rng) {
        const int64_t n = rng.uniform_int(4, 14);
        std::vector<Image> frames;
        for (int64_t i = 0; i < n; ++i) {
          frames.push_back(random_frame(rng, rng.uniform(0.0, 1.0) < 0.6));
        }
        return frames;
      },
      [&](const std::vector<Image>& frames) {
        serving::SupervisorConfig sup;
        sup.monitor.trigger_frames = 2;  // make monitor transitions reachable

        std::vector<serving::ServeResult> solo;
        {
          serving::FakeClock clock;
          serving::Supervisor supervisor(*detector_, steering_, sup, &clock);
          for (const Image& frame : frames) solo.push_back(supervisor.process(frame));
        }

        serving::FakeClock clock;
        serving::ClusterConfig config;
        config.streams = 1;
        config.gather_window_ns = 1'000'000'000;  // everything in as few batches as possible
        config.max_batch = 5;                     // ...split at an awkward boundary
        config.supervisor = sup;
        serving::ServingCluster cluster(*detector_, steering_, config, &clock);
        cluster.pause();
        for (const Image& frame : frames) cluster.submit(0, frame);
        cluster.drain();
        const std::vector<serving::ClusterResult> results = cluster.take_results();
        cluster.stop();

        if (results.size() != solo.size()) return false;
        for (size_t i = 0; i < solo.size(); ++i) {
          const serving::ServeResult& a = solo[i];
          const serving::ServeResult& b = results[i].result;
          const bool scores_equal = (std::isnan(a.score) && std::isnan(b.score)) ||
                                    a.score == b.score;
          const bool steer_equal = (std::isnan(a.steering) && std::isnan(b.steering)) ||
                                   a.steering == b.steering;
          if (!scores_equal || !steer_equal || a.novel != b.novel || a.scored != b.scored ||
              a.sensor_bad != b.sensor_bad || a.mode != b.mode ||
              a.monitor_state != b.monitor_state || a.fallback_path != b.fallback_path) {
            return false;
          }
        }
        return true;
      },
      {/*trials=*/6, /*seed=*/76});
}

}  // namespace
}  // namespace salnov
