// Unit tests for the property-test core itself: seed derivation, the
// replay contract (trial 0 under SALNOV_PROP_SEED regenerates an echoed
// counterexample), and shrinking-by-bisection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "prop.hpp"

namespace salnov {
namespace {

TEST(PropCore, TrialZeroUsesRunSeedVerbatim) {
  // The replay contract: an echoed failure seed, fed back via
  // SALNOV_PROP_SEED, must drive trial 0 with exactly that seed.
  EXPECT_EQ(prop::trial_seed(12345, 0), 12345u);
  EXPECT_NE(prop::trial_seed(12345, 1), 12345u);
}

TEST(PropCore, TrialSeedsAreDistinct) {
  std::vector<uint64_t> seeds;
  for (int trial = 0; trial < 200; ++trial) seeds.push_back(prop::trial_seed(7, trial));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(PropCore, EnvSeedOverridesDefault) {
  ASSERT_EQ(setenv("SALNOV_PROP_SEED", "987654321", 1), 0);
  EXPECT_EQ(prop::run_seed(1), 987654321u);
  ASSERT_EQ(unsetenv("SALNOV_PROP_SEED"), 0);
  EXPECT_EQ(prop::run_seed(5), 5u);
}

TEST(PropCore, MalformedEnvSeedFallsBack) {
  ASSERT_EQ(setenv("SALNOV_PROP_SEED", "not-a-seed", 1), 0);
  EXPECT_EQ(prop::run_seed(9), 9u);
  ASSERT_EQ(unsetenv("SALNOV_PROP_SEED"), 0);
}

TEST(PropCore, ShrinkReducesToMinimalFailingElement) {
  // Property: "contains no element >= 100". The shrinker must bisect a
  // large failing vector down to exactly one offending element.
  std::vector<int> failing;
  for (int i = 0; i < 97; ++i) failing.push_back(i);
  failing.push_back(500);
  for (int i = 0; i < 30; ++i) failing.push_back(i);

  const std::vector<int> minimal = prop::shrink_vector<int>(failing, [](const std::vector<int>& v) {
    return std::any_of(v.begin(), v.end(), [](int x) { return x >= 100; });
  });
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 500);
}

TEST(PropCore, ShrinkKeepsInteractingPair) {
  // Failures that need two far-apart elements must keep both.
  std::vector<int> failing = {1, -7, 2, 3, 4, 5, 6, 9, 8, 7, 42, 2};
  const auto needs_pair = [](const std::vector<int>& v) {
    const bool has_neg = std::any_of(v.begin(), v.end(), [](int x) { return x < 0; });
    const bool has_big = std::any_of(v.begin(), v.end(), [](int x) { return x > 40; });
    return has_neg && has_big;
  };
  const std::vector<int> minimal = prop::shrink_vector<int>(failing, needs_pair);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_TRUE(needs_pair(minimal));
}

TEST(PropCore, ShrinkLeavesAlreadyMinimalInputAlone) {
  const std::vector<int> minimal = prop::shrink_vector<int>(
      {5}, [](const std::vector<int>& v) { return !v.empty(); });
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 5);
}

TEST(PropCore, ForAllPassesAndEchoesNothing) {
  EXPECT_TRUE(prop::for_all<double>(
      "uniform stays in range", prop::gen_double(0.0, 1.0),
      [](double v) { return v >= 0.0 && v < 1.0; }, {50, 3}));
}

TEST(PropCore, GeneratedVectorsRespectSizeBounds) {
  EXPECT_TRUE(prop::for_all<std::vector<double>>(
      "gen_vector size bounds", prop::gen_vector(2, 9, prop::gen_double(-1.0, 1.0)),
      [](const std::vector<double>& v) { return v.size() >= 2 && v.size() <= 9; }, {50, 4}));
}

TEST(PropCore, DuplicateHeavyGeneratorIsActuallyDuplicateHeavy) {
  EXPECT_TRUE(prop::for_all<std::vector<double>>(
      "duplicate-heavy pool is small", prop::gen_duplicate_heavy(8, 40),
      [](const std::vector<double>& v) {
        std::vector<double> distinct(v);
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
        return distinct.size() <= 4;
      },
      {50, 5}));
}

}  // namespace
}  // namespace salnov
