// Unit tests for the NoveltyMonitor policy layer and the configurable
// saliency-preprocessing extension.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/monitor.hpp"
#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/outdoor_generator.hpp"

namespace salnov::core {
namespace {

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;

/// Builds a detector fitted on smooth gradient images; smooth images score
/// familiar, full-noise images score novel — a controllable fixture for
/// exercising monitor state transitions.
class MonitorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = Preprocessing::kRaw;
    config.score = ReconstructionScore::kMse;
    config.autoencoder = AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 60;
    config.learning_rate = 3e-3;
    detector_ = new NoveltyDetector(config);

    Rng rng(3);
    std::vector<Image> train;
    for (int i = 0; i < 40; ++i) train.push_back(familiar_frame(rng));
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
  }

  /// Smooth gradient image with mild per-image variation.
  static Image familiar_frame(Rng& rng) {
    Image img(kH, kW);
    const double slope = rng.uniform(0.8, 1.2);
    for (int64_t y = 0; y < kH; ++y) {
      for (int64_t x = 0; x < kW; ++x) {
        img(y, x) = static_cast<float>(slope * (y + x) / static_cast<double>(kH + kW));
      }
    }
    img.clamp01();
    return img;
  }

  /// Full-scale noise image, far outside the training manifold.
  static Image novel_frame(Rng& rng) {
    return Image(kH, kW, rng.uniform_tensor({kH * kW}, 0.0, 1.0));
  }

  static NoveltyDetector* detector_;
};

NoveltyDetector* MonitorFixture::detector_ = nullptr;

TEST_F(MonitorFixture, FixtureSeparates) {
  Rng rng(5);
  EXPECT_FALSE(detector_->classify(familiar_frame(rng)).is_novel);
  EXPECT_TRUE(detector_->classify(novel_frame(rng)).is_novel);
}

TEST_F(MonitorFixture, StartsNominal) {
  NoveltyMonitor monitor(*detector_);
  EXPECT_EQ(monitor.state(), MonitorState::kNominal);
  EXPECT_EQ(monitor.frames_seen(), 0);
}

TEST_F(MonitorFixture, StaysNominalOnFamiliarFrames) {
  NoveltyMonitor monitor(*detector_);
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const MonitorUpdate u = monitor.update(familiar_frame(rng));
    EXPECT_EQ(u.state, MonitorState::kNominal);
    EXPECT_FALSE(u.frame_novel);
  }
  EXPECT_EQ(monitor.frames_seen(), 10);
}

TEST_F(MonitorFixture, EntersFallbackAfterTriggerFrames) {
  MonitorConfig config;
  config.trigger_frames = 3;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(9);
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kAlert);
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kAlert);
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kFallback);
}

TEST_F(MonitorFixture, SingleNovelFrameOnlyAlerts) {
  NoveltyMonitor monitor(*detector_);
  Rng rng(11);
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kAlert);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kNominal);
}

TEST_F(MonitorFixture, FallbackReleasesAfterConsecutiveFamiliar) {
  MonitorConfig config;
  config.trigger_frames = 2;
  config.release_frames = 3;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(13);
  monitor.update(novel_frame(rng));
  monitor.update(novel_frame(rng));
  ASSERT_EQ(monitor.state(), MonitorState::kFallback);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kFallback);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kFallback);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kNominal);
}

TEST_F(MonitorFixture, NovelFrameDuringReleaseResetsCount) {
  MonitorConfig config;
  config.trigger_frames = 1;
  config.release_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(15);
  monitor.update(novel_frame(rng));
  ASSERT_EQ(monitor.state(), MonitorState::kFallback);
  monitor.update(familiar_frame(rng));
  monitor.update(novel_frame(rng));  // interrupts the release streak
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kFallback);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kNominal);
}

TEST_F(MonitorFixture, SmoothedScoreTracksEma) {
  MonitorConfig config;
  config.score_smoothing = 0.5;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(17);
  const MonitorUpdate first = monitor.update(familiar_frame(rng));
  EXPECT_DOUBLE_EQ(first.smoothed_score, first.raw_score);
  const MonitorUpdate second = monitor.update(familiar_frame(rng));
  EXPECT_NEAR(second.smoothed_score, 0.5 * first.raw_score + 0.5 * second.raw_score, 1e-12);
}

TEST_F(MonitorFixture, ResetClearsState) {
  MonitorConfig config;
  config.trigger_frames = 1;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(19);
  monitor.update(novel_frame(rng));
  ASSERT_EQ(monitor.state(), MonitorState::kFallback);
  monitor.reset();
  EXPECT_EQ(monitor.state(), MonitorState::kNominal);
}

TEST_F(MonitorFixture, InvalidConfigThrows) {
  MonitorConfig bad;
  bad.trigger_frames = 0;
  EXPECT_THROW(NoveltyMonitor(*detector_, bad), std::invalid_argument);
  bad = MonitorConfig{};
  bad.score_smoothing = 0.0;
  EXPECT_THROW(NoveltyMonitor(*detector_, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sensor-fault path: validator rejections and frozen frames drive their own
// hysteresis into kSensorFault, distinct from the novelty kFallback path.

TEST_F(MonitorFixture, FrozenStreamEntersSensorFaultNotFallback) {
  MonitorConfig config;
  config.sensor_trigger_frames = 3;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(23);
  const Image stuck = familiar_frame(rng);
  // First sighting is a normal frame; repeats are bit-identical -> frozen.
  EXPECT_EQ(monitor.update(stuck).state, MonitorState::kNominal);
  for (int repeat = 1; repeat <= 3; ++repeat) {
    const MonitorUpdate u = monitor.update(stuck);
    EXPECT_TRUE(u.frame_frozen);
    EXPECT_FALSE(u.frame_scored);
    EXPECT_TRUE(std::isnan(u.raw_score));
    EXPECT_NE(u.state, MonitorState::kFallback);
    if (repeat < 3) {
      EXPECT_EQ(u.state, MonitorState::kNominal) << "held until the trigger count";
    } else {
      EXPECT_EQ(u.state, MonitorState::kSensorFault);
      EXPECT_EQ(u.fallback_path, FallbackPath::kSensorFault);
    }
  }
}

TEST_F(MonitorFixture, NanStreamEntersSensorFault) {
  MonitorConfig config;
  config.sensor_trigger_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  Image bad(kH, kW);
  bad(0, 0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(monitor.update(bad).frame_fault, FrameFault::kNonFinite);
  const MonitorUpdate u = monitor.update(bad);
  EXPECT_EQ(u.state, MonitorState::kSensorFault);
  EXPECT_EQ(u.fallback_path, FallbackPath::kSensorFault);
  EXPECT_FALSE(u.frame_scored);
}

TEST_F(MonitorFixture, SensorFaultReleasesAfterGoodFrames) {
  MonitorConfig config;
  config.sensor_trigger_frames = 2;
  config.sensor_release_frames = 3;
  NoveltyMonitor monitor(*detector_, config);
  Image bad(kH, kW);  // dead-constant frame
  monitor.update(bad);
  monitor.update(bad);
  ASSERT_EQ(monitor.state(), MonitorState::kSensorFault);

  Rng rng(25);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kSensorFault);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kSensorFault);
  const MonitorUpdate recovered = monitor.update(familiar_frame(rng));
  EXPECT_EQ(recovered.state, MonitorState::kNominal);
  EXPECT_EQ(recovered.fallback_path, FallbackPath::kNone);
}

TEST_F(MonitorFixture, BadFrameInterruptsSensorRelease) {
  MonitorConfig config;
  config.sensor_trigger_frames = 1;
  config.sensor_release_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  Image bad(kH, kW);
  monitor.update(bad);
  ASSERT_EQ(monitor.state(), MonitorState::kSensorFault);
  Rng rng(27);
  monitor.update(familiar_frame(rng));
  monitor.update(bad);  // interrupts the release streak
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kSensorFault);
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kNominal);
}

TEST_F(MonitorFixture, InterleavedNoveltyAndSensorFault) {
  MonitorConfig config;
  config.trigger_frames = 2;
  config.release_frames = 2;
  config.sensor_trigger_frames = 2;
  config.sensor_release_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(29);

  // Novel world engages the novelty path...
  monitor.update(novel_frame(rng));
  const MonitorUpdate fb = monitor.update(novel_frame(rng));
  ASSERT_EQ(fb.state, MonitorState::kFallback);
  EXPECT_EQ(fb.fallback_path, FallbackPath::kNovelty);

  // ...then the camera dies: the sensor path takes over from kFallback.
  Image bad(kH, kW);
  monitor.update(bad);
  const MonitorUpdate sf = monitor.update(bad);
  EXPECT_EQ(sf.state, MonitorState::kSensorFault);
  EXPECT_EQ(sf.fallback_path, FallbackPath::kSensorFault);

  // Camera recovers onto a familiar world: full recovery to nominal.
  monitor.update(familiar_frame(rng));
  EXPECT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kNominal);

  // And the novelty machine still works afterwards.
  monitor.update(novel_frame(rng));
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kFallback);
}

TEST_F(MonitorFixture, NoveltyHysteresisIsCleanAfterSensorFaultRelease) {
  // Regression guard: a novel streak accumulated before a sensor fault must
  // not survive it. After the fault releases, the novelty machine has to
  // earn kFallback from zero — otherwise a single post-recovery novel frame
  // could trip the fallback off stale evidence.
  MonitorConfig config;
  config.trigger_frames = 2;
  config.sensor_trigger_frames = 1;
  config.sensor_release_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(35);

  // One novel frame: streak of 1 (alert, below the trigger).
  ASSERT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kAlert);
  // Camera dies, then recovers.
  Image bad(kH, kW);
  ASSERT_EQ(monitor.update(bad).state, MonitorState::kSensorFault);
  monitor.update(familiar_frame(rng));
  ASSERT_EQ(monitor.update(familiar_frame(rng)).state, MonitorState::kNominal);

  // Into a novel world: the first novel frame may only alert; the stale
  // pre-fault streak is gone.
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kAlert);
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kFallback);
}

TEST_F(MonitorFixture, SensorReleaseIntoNovelWorldRetriggersPromptly) {
  // The serving runtime's sensor hold must not mask a genuinely novel world:
  // scored novel frames during kSensorFault both release the sensor path and
  // count toward the novelty trigger.
  MonitorConfig config;
  config.trigger_frames = 2;
  config.sensor_trigger_frames = 1;
  config.sensor_release_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(37);
  Image bad(kH, kW);
  ASSERT_EQ(monitor.update(bad).state, MonitorState::kSensorFault);
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kSensorFault);
  // Second good frame releases the sensor path; the two novel frames seen
  // during the fault already satisfy the novelty trigger.
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kNominal);
  EXPECT_EQ(monitor.update(novel_frame(rng)).state, MonitorState::kFallback);
}

// ---------------------------------------------------------------------------
// External-scoring entry points (used by the serving supervisor).

TEST_F(MonitorFixture, UpdateScoredDrivesTheSameHysteresis) {
  MonitorConfig config;
  config.trigger_frames = 2;
  config.release_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  EXPECT_EQ(monitor.update_scored(0.1, false).state, MonitorState::kNominal);
  EXPECT_EQ(monitor.update_scored(0.9, true).state, MonitorState::kAlert);
  EXPECT_EQ(monitor.update_scored(0.9, true).state, MonitorState::kFallback);
  EXPECT_EQ(monitor.update_scored(0.1, false).state, MonitorState::kFallback);
  EXPECT_EQ(monitor.update_scored(0.1, false).state, MonitorState::kNominal);
  EXPECT_EQ(monitor.frames_seen(), 5);
}

TEST_F(MonitorFixture, NonFiniteScoreDoesNotPoisonTheEma) {
  NoveltyMonitor monitor(*detector_);
  const MonitorUpdate first = monitor.update_scored(0.5, false);
  EXPECT_DOUBLE_EQ(first.smoothed_score, 0.5);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const MonitorUpdate second = monitor.update_scored(nan, true);
  EXPECT_DOUBLE_EQ(second.smoothed_score, 0.5) << "EMA must skip non-finite scores";
  EXPECT_TRUE(std::isnan(second.raw_score));
  const MonitorUpdate third = monitor.update_scored(std::numeric_limits<double>::infinity(), true);
  EXPECT_DOUBLE_EQ(third.smoothed_score, 0.5);
}

TEST_F(MonitorFixture, UpdateSensorBadFeedsTheSensorPath) {
  MonitorConfig config;
  config.sensor_trigger_frames = 2;
  NoveltyMonitor monitor(*detector_, config);
  EXPECT_EQ(monitor.update_sensor_bad(FrameFault::kNone, /*frozen=*/true).state,
            MonitorState::kNominal);
  const MonitorUpdate u = monitor.update_sensor_bad(FrameFault::kOutOfRange, false);
  EXPECT_EQ(u.state, MonitorState::kSensorFault);
  EXPECT_EQ(u.frame_fault, FrameFault::kOutOfRange);
  EXPECT_FALSE(u.frame_scored);
}

TEST_F(MonitorFixture, FrozenDetectionCanBeDisabled) {
  MonitorConfig config;
  config.detect_frozen_frames = false;
  NoveltyMonitor monitor(*detector_, config);
  Rng rng(31);
  const Image stuck = familiar_frame(rng);
  for (int i = 0; i < 6; ++i) {
    const MonitorUpdate u = monitor.update(stuck);
    EXPECT_FALSE(u.frame_frozen);
    EXPECT_TRUE(u.frame_scored);
    EXPECT_EQ(u.state, MonitorState::kNominal);
  }
}

TEST_F(MonitorFixture, SmoothedScoreHoldsThroughSensorFault) {
  NoveltyMonitor monitor(*detector_);
  Rng rng(33);
  const MonitorUpdate scored = monitor.update(familiar_frame(rng));
  Image bad(kH, kW);
  const MonitorUpdate unscored = monitor.update(bad);
  EXPECT_TRUE(std::isnan(unscored.raw_score));
  EXPECT_DOUBLE_EQ(unscored.smoothed_score, scored.smoothed_score);
}

TEST_F(MonitorFixture, WrongSizeFrameIsSensorFaultNotThrow) {
  MonitorConfig config;
  config.sensor_trigger_frames = 1;
  NoveltyMonitor monitor(*detector_, config);
  MonitorUpdate u;
  EXPECT_NO_THROW(u = monitor.update(Image(kH + 2, kW)));
  EXPECT_EQ(u.frame_fault, FrameFault::kWrongSize);
  EXPECT_EQ(u.state, MonitorState::kSensorFault);
}

TEST_F(MonitorFixture, SensorConfigValidated) {
  MonitorConfig bad;
  bad.sensor_trigger_frames = 0;
  EXPECT_THROW(NoveltyMonitor(*detector_, bad), std::invalid_argument);
  bad = MonitorConfig{};
  bad.sensor_release_frames = 0;
  EXPECT_THROW(NoveltyMonitor(*detector_, bad), std::invalid_argument);
}

TEST(MonitorStandalone, UnfittedDetectorRejected) {
  NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = Preprocessing::kRaw;
  config.autoencoder = AutoencoderConfig::tiny(kH, kW);
  NoveltyDetector detector(config);
  EXPECT_THROW(NoveltyMonitor{detector}, std::logic_error);
}

// ---------------------------------------------------------------------------
// Configurable saliency preprocessing (extension): every saliency method
// must work as the preprocessing stage end-to-end.

class SaliencyPreprocessingSweep : public ::testing::TestWithParam<Preprocessing> {};

TEST_P(SaliencyPreprocessingSweep, FitsAndScores) {
  const int64_t h = 24, w = 48;
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(21);
  const auto data = roadsim::DrivingDataset::generate(gen, 24, h, w, rng);
  nn::Sequential steering =
      driving::build_pilotnet(driving::PilotNetConfig::tiny(h, w), rng);

  NoveltyDetectorConfig config;
  config.height = h;
  config.width = w;
  config.preprocessing = GetParam();
  config.score = ReconstructionScore::kSsim;
  config.autoencoder = AutoencoderConfig::tiny(h, w);
  config.train_epochs = 10;
  NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  detector.fit(data.images(), rng);

  const double score = detector.score(data.image(0));
  EXPECT_GE(score, -1.0);
  EXPECT_LE(score, 1.0);
  const Image mask = detector.preprocess(data.image(0));
  EXPECT_GE(mask.min(), 0.0f);
  EXPECT_LE(mask.max(), 1.0f);
}

INSTANTIATE_TEST_SUITE_P(AllSaliencyMethods, SaliencyPreprocessingSweep,
                         ::testing::Values(Preprocessing::kVbp, Preprocessing::kGradient,
                                           Preprocessing::kLrp),
                         [](const ::testing::TestParamInfo<Preprocessing>& info) {
                           switch (info.param) {
                             case Preprocessing::kVbp:
                               return "Vbp";
                             case Preprocessing::kGradient:
                               return "Gradient";
                             case Preprocessing::kLrp:
                               return "Lrp";
                             default:
                               return "Raw";
                           }
                         });

}  // namespace
}  // namespace salnov::core
