// Unit tests for the image substrate: Image/RgbImage, PNM IO, transforms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "image/image.hpp"
#include "image/image_io.hpp"
#include "image/transforms.hpp"
#include "metrics/mse.hpp"
#include "tensor/rng.hpp"

namespace salnov {
namespace {

Image gradient_image(int64_t h, int64_t w) {
  Image img(h, w);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      img(y, x) = static_cast<float>(x + y) / static_cast<float>(h + w - 2);
    }
  }
  return img;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Image, ConstructsBlack) {
  Image img(4, 6);
  EXPECT_EQ(img.height(), 4);
  EXPECT_EQ(img.width(), 6);
  EXPECT_EQ(img(3, 5), 0.0f);
}

TEST(Image, PixelAccess) {
  Image img(2, 2);
  img(1, 0) = 0.5f;
  EXPECT_FLOAT_EQ(img(1, 0), 0.5f);
}

TEST(Image, AtClampedHandlesOutOfRange) {
  Image img(2, 2);
  img(0, 0) = 0.25f;
  img(1, 1) = 0.75f;
  EXPECT_FLOAT_EQ(img.at_clamped(-5, -5), 0.25f);
  EXPECT_FLOAT_EQ(img.at_clamped(9, 9), 0.75f);
}

TEST(Image, FromTensorValidatesSize) {
  EXPECT_THROW(Image(2, 3, Tensor({5})), std::invalid_argument);
  const Image img(2, 3, Tensor({6}, {0, 1, 2, 3, 4, 5}));
  EXPECT_FLOAT_EQ(img(1, 2), 5.0f);
}

TEST(Image, FlattenedAndNchwShapes) {
  Image img(3, 4);
  EXPECT_EQ(img.flattened().shape(), (Shape{12}));
  EXPECT_EQ(img.as_nchw().shape(), (Shape{1, 1, 3, 4}));
}

TEST(Image, Clamp01) {
  Image img(1, 3, Tensor({3}, {-0.5f, 0.5f, 1.5f}));
  img.clamp01();
  EXPECT_FLOAT_EQ(img(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(img(0, 2), 1.0f);
}

TEST(Image, NormalizeMinmax) {
  Image img(1, 3, Tensor({3}, {2.0f, 4.0f, 6.0f}));
  img.normalize_minmax();
  EXPECT_FLOAT_EQ(img(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(img(0, 2), 1.0f);
}

TEST(Image, NormalizeMinmaxConstantBecomesZero) {
  Image img(1, 3, Tensor({3}, {0.7f, 0.7f, 0.7f}));
  img.normalize_minmax();
  EXPECT_FLOAT_EQ(img(0, 2), 0.0f);
}

TEST(RgbImage, GrayscaleUsesLuminanceWeights) {
  RgbImage rgb(1, 1);
  rgb.set(0, 0, 1.0f, 0.0f, 0.0f);
  EXPECT_NEAR(rgb.to_grayscale()(0, 0), 0.299f, 1e-5f);
  rgb.set(0, 0, 0.0f, 1.0f, 0.0f);
  EXPECT_NEAR(rgb.to_grayscale()(0, 0), 0.587f, 1e-5f);
  rgb.set(0, 0, 0.0f, 0.0f, 1.0f);
  EXPECT_NEAR(rgb.to_grayscale()(0, 0), 0.114f, 1e-5f);
}

TEST(RgbImage, GrayscaleOfWhiteIsOne) {
  RgbImage rgb(2, 2);
  rgb.set(1, 1, 1.0f, 1.0f, 1.0f);
  EXPECT_NEAR(rgb.to_grayscale()(1, 1), 1.0f, 1e-5f);
}

TEST(ImageIo, PgmRoundTripPreservesPixels) {
  const Image img = gradient_image(8, 12);
  const std::string path = temp_path("salnov_test_roundtrip.pgm");
  write_pgm(path, img);
  const Image back = read_pgm(path);
  ASSERT_EQ(back.height(), 8);
  ASSERT_EQ(back.width(), 12);
  // 8-bit quantization bounds the error at 1/255 / 2.
  for (int64_t y = 0; y < 8; ++y) {
    for (int64_t x = 0; x < 12; ++x) EXPECT_NEAR(back(y, x), img(y, x), 0.5f / 255.0f + 1e-6f);
  }
  std::remove(path.c_str());
}

TEST(ImageIo, PpmRoundTripPreservesPixels) {
  RgbImage rgb(3, 5);
  rgb.set(1, 2, 0.2f, 0.5f, 0.9f);
  const std::string path = temp_path("salnov_test_roundtrip.ppm");
  write_ppm(path, rgb);
  const RgbImage back = read_ppm(path);
  EXPECT_NEAR(back(1, 2, 0), 0.2f, 1.0f / 255.0f);
  EXPECT_NEAR(back(1, 2, 1), 0.5f, 1.0f / 255.0f);
  EXPECT_NEAR(back(1, 2, 2), 0.9f, 1.0f / 255.0f);
  std::remove(path.c_str());
}

TEST(ImageIo, MissingFileThrows) { EXPECT_THROW(read_pgm("/nonexistent/x.pgm"), std::runtime_error); }

TEST(ImageIo, WrongMagicThrows) {
  const std::string path = temp_path("salnov_test_wrong_magic.pgm");
  RgbImage rgb(2, 2);
  write_ppm(path, rgb);  // writes P6
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Transforms, ResizeIdentityWhenSameSize) {
  const Image img = gradient_image(6, 9);
  const Image out = resize_bilinear(img, 6, 9);
  for (int64_t y = 0; y < 6; ++y) {
    for (int64_t x = 0; x < 9; ++x) EXPECT_NEAR(out(y, x), img(y, x), 1e-5f);
  }
}

TEST(Transforms, ResizePreservesConstantImage) {
  Image img(4, 4);
  img.tensor().fill(0.37f);
  const Image out = resize_bilinear(img, 9, 13);
  for (int64_t y = 0; y < out.height(); ++y) {
    for (int64_t x = 0; x < out.width(); ++x) EXPECT_NEAR(out(y, x), 0.37f, 1e-5f);
  }
}

TEST(Transforms, ResizeDownscaleApproximatesMean) {
  const Image img = gradient_image(40, 40);
  const Image out = resize_bilinear(img, 10, 10);
  EXPECT_NEAR(out.mean(), img.mean(), 0.02f);
}

TEST(Transforms, ResizeRejectsBadSizes) {
  const Image img = gradient_image(4, 4);
  EXPECT_THROW(resize_bilinear(img, 0, 5), std::invalid_argument);
  EXPECT_THROW(resize_bilinear(Image(), 5, 5), std::invalid_argument);
}

TEST(Transforms, GaussianNoiseStatistics) {
  Image img(64, 64);
  img.tensor().fill(0.5f);
  Rng rng(3);
  const Image noisy = add_gaussian_noise(img, 0.1, rng);
  // Mean stays ~0.5, realized stddev ~0.1 (slightly reduced by clamping).
  EXPECT_NEAR(noisy.mean(), 0.5f, 0.01f);
  double var = 0.0;
  for (int64_t i = 0; i < noisy.numel(); ++i) {
    const double d = noisy.tensor()[i] - 0.5;
    var += d * d;
  }
  var /= static_cast<double>(noisy.numel());
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.02);
}

TEST(Transforms, NoiseWithZeroStddevIsIdentity) {
  const Image img = gradient_image(5, 5);
  Rng rng(1);
  const Image out = add_gaussian_noise(img, 0.0, rng);
  EXPECT_TRUE(out.tensor().allclose(img.tensor(), 1e-7f));
}

TEST(Transforms, BrightnessShiftsAndClamps) {
  Image img(1, 2, Tensor({2}, {0.3f, 0.9f}));
  const Image out = adjust_brightness(img, 0.2);
  EXPECT_NEAR(out(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out(0, 1), 1.0f, 1e-6f);  // clamped
}

TEST(Transforms, ContrastAboutMean) {
  Image img(1, 2, Tensor({2}, {0.4f, 0.6f}));
  const Image out = adjust_contrast(img, 2.0);
  EXPECT_NEAR(out(0, 0), 0.3f, 1e-5f);
  EXPECT_NEAR(out(0, 1), 0.7f, 1e-5f);
}

TEST(Transforms, RotateZeroDegreesIsIdentity) {
  const Image img = gradient_image(7, 7);
  const Image out = rotate(img, 0.0);
  for (int64_t i = 0; i < img.numel(); ++i) EXPECT_NEAR(out.tensor()[i], img.tensor()[i], 1e-5f);
}

TEST(Transforms, Rotate90MovesCorner) {
  Image img(5, 5);
  img(0, 4) = 1.0f;  // top-right
  const Image out = rotate(img, 90.0);
  // CCW by 90 deg maps top-right to top-left.
  EXPECT_GT(out(0, 0), 0.5f);
}

TEST(Transforms, TranslateShiftsContent) {
  Image img(4, 4);
  img(1, 1) = 1.0f;
  const Image out = translate(img, 1, 2);
  EXPECT_FLOAT_EQ(out(2, 3), 1.0f);
}

TEST(Transforms, SaltPepperFractionRoughlyP) {
  Image img(100, 100);
  img.tensor().fill(0.5f);
  Rng rng(7);
  const Image out = add_salt_pepper_noise(img, 0.1, rng);
  int64_t flipped = 0;
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out.tensor()[i] != 0.5f) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / static_cast<double>(out.numel()), 0.1, 0.02);
}

TEST(Transforms, SaltPepperRejectsBadP) {
  Image img(2, 2);
  Rng rng(1);
  EXPECT_THROW(add_salt_pepper_noise(img, 1.5, rng), std::invalid_argument);
}

TEST(Transforms, OccludePaintsRectangle) {
  Image img = gradient_image(6, 6);
  const Image out = occlude(img, 2, 2, 2, 2, 0.0f);
  EXPECT_FLOAT_EQ(out(2, 2), 0.0f);
  EXPECT_FLOAT_EQ(out(3, 3), 0.0f);
  EXPECT_EQ(out(0, 0), img(0, 0));
}

TEST(Transforms, OccludeClipsToImage) {
  Image img(3, 3);
  img.tensor().fill(0.5f);
  const Image out = occlude(img, 2, 2, 10, 10, 1.0f);
  EXPECT_FLOAT_EQ(out(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 0), 0.5f);
}

TEST(Transforms, CalibrateBrightnessHitsTargetMse) {
  const Image img = gradient_image(30, 50);
  const double target = 90.0;  // in 0-255^2 units, like the paper's Fig. 3
  const double delta = calibrate_brightness_for_mse(img, target);
  const double achieved = mse_255(img, adjust_brightness(img, delta));
  EXPECT_NEAR(achieved, target, 8.0);
}

TEST(Transforms, CalibrateNoiseHitsTargetMse) {
  const Image img = gradient_image(30, 50);
  Rng rng(11);
  const double target = 90.0;
  const double sigma = calibrate_noise_for_mse(img, target, rng);
  Rng replay(11);
  const double achieved = mse_255(img, add_gaussian_noise(img, sigma, replay));
  EXPECT_NEAR(achieved, target, 12.0);
}

}  // namespace
}  // namespace salnov
