// Tests for the per-thread workspace arena: bump/mark/release semantics,
// alignment, pointer stability across growth, and the steady-state
// zero-allocation guarantee through the full NoveltyDetector::score path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "parallel/parallel_for.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "tensor/rng.hpp"
#include "tensor/workspace.hpp"

namespace salnov {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

TEST(Workspace, BuffersAreAlignedAndDisjoint) {
  Workspace ws;
  const auto marker = ws.mark();
  float* a = ws.alloc_floats(100);
  float* b = ws.alloc_floats(1);
  float* c = ws.alloc_floats(7);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 1);
  ws.release(marker);
}

TEST(Workspace, ReleaseRewindsForReuse) {
  Workspace ws;
  const auto marker = ws.mark();
  float* first = ws.alloc_floats(512);
  ws.release(marker);
  float* second = ws.alloc_floats(512);
  EXPECT_EQ(first, second) << "released memory must be reused, not reallocated";
  ws.release(marker);
}

TEST(Workspace, ScopesNestAndRestore) {
  Workspace& ws = Workspace::tls();
  float* outer = nullptr;
  float* probe = nullptr;
  {
    WorkspaceScope outer_scope;
    outer = outer_scope.floats(64);
    outer[0] = 1.0f;
    {
      WorkspaceScope inner_scope;
      float* inner = inner_scope.floats(64);
      EXPECT_GE(inner, outer + 64) << "inner scope must allocate past the outer buffer";
      inner[0] = 2.0f;
    }
    // Inner released; the next inner-level allocation reuses its space while
    // the outer buffer stays intact.
    {
      WorkspaceScope again;
      probe = again.floats(64);
    }
    EXPECT_EQ(outer[0], 1.0f);
    EXPECT_GE(probe, outer + 64);
  }
  // Fully unwound: a fresh scope starts from the same place.
  WorkspaceScope fresh;
  EXPECT_EQ(fresh.floats(1), outer);
  (void)ws;
}

TEST(Workspace, GrowthKeepsOldBuffersValid) {
  Workspace ws;
  float* small = ws.alloc_floats(16);
  small[0] = 7.0f;
  // Force at least one new chunk: far larger than the minimum chunk size.
  float* big = ws.alloc_floats(1 << 22);
  big[0] = 8.0f;
  EXPECT_EQ(small[0], 7.0f) << "growth must append chunks, never move old ones";
}

TEST(Workspace, GrowthIsGeometricNotLinear) {
  // Batch-B panels make arenas grow far past the single-frame high-water
  // mark; growth must be amortized. N live allocations of the minimum chunk
  // size must cost O(log N) heap trips (each new chunk reserves at least the
  // total reserved so far), not one chunk per allocation.
  Workspace ws;
  constexpr int64_t kMinChunkFloats = 1 << 16;  // workspace.cpp's floor
  const int64_t before = Workspace::heap_allocation_count();
  for (int i = 0; i < 200; ++i) ws.alloc_floats(kMinChunkFloats);
  const int64_t chunks = Workspace::heap_allocation_count() - before;
  EXPECT_LE(chunks, 12) << "200 min-sized allocations must share geometric chunks";
  EXPECT_GE(chunks, 1);
}

TEST(Workspace, ZeroCountAllocationIsValid) {
  Workspace ws;
  EXPECT_NO_THROW(ws.alloc_floats(0));
  EXPECT_THROW(ws.alloc_floats(-1), std::invalid_argument);
}

TEST(Workspace, SteadyStateDetectorScoringAllocatesNothing) {
  // The zero-allocation guarantee from the issue: after warm-up, repeated
  // NoveltyDetector::score calls must not grow any thread's arena — the
  // process-wide chunk-allocation counter stays flat.
  ThreadGuard guard;
  parallel::set_num_threads(2);

  constexpr int64_t kH = 24, kW = 48;
  Rng rng(321);
  roadsim::OutdoorSceneGenerator outdoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 12, kH, kW, rng);
  const auto probe = roadsim::DrivingDataset::generate(outdoor, 4, kH, kW, rng);

  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng);

  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 2;

  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  Rng fit_rng(9);
  detector.fit(train.images(), fit_rng);

  // Warm-up: grows every participating thread's arena to its high-water
  // mark and populates the lazy weight packs.
  std::vector<double> warm;
  for (const auto& img : probe.images()) warm.push_back(detector.score(img));

  const int64_t baseline = Workspace::heap_allocation_count();
  std::vector<double> steady;
  for (int round = 0; round < 3; ++round) {
    for (const auto& img : probe.images()) steady.push_back(detector.score(img));
  }
  EXPECT_EQ(Workspace::heap_allocation_count(), baseline)
      << "steady-state scoring grew a workspace arena";

  // And warm-up did not change the scores.
  for (size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(steady[i], warm[i]) << "score " << i;
  }
}

}  // namespace
}  // namespace salnov
