// Unit tests for the fault-injection subsystem (faults/fault_injector.hpp)
// and the FrameValidator input guard it is designed to exercise.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/frame_validator.hpp"
#include "core/novelty_detector.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/mse.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "tensor/rng.hpp"

namespace salnov::faults {
namespace {

constexpr int64_t kH = 20;
constexpr int64_t kW = 30;
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

Image noise_frame(uint64_t seed) {
  Rng rng(seed);
  return Image(kH, kW, rng.uniform_tensor({kH * kW}, 0.05, 0.95));
}

TEST(FaultInjector, SeverityZeroIsIdentity) {
  for (CameraFault fault : all_camera_faults()) {
    FaultInjector injector(11);
    const Image frame = noise_frame(1);
    injector.apply(fault, 0.5, frame);  // prime any state (frozen-frame)
    const Image out = injector.apply(fault, 0.0, noise_frame(2));
    EXPECT_TRUE(out.tensor() == noise_frame(2).tensor())
        << camera_fault_name(fault) << " at severity 0 changed the frame";
  }
}

TEST(FaultInjector, SameSeedSameStream) {
  FaultInjector a(42), b(42);
  for (CameraFault fault : all_camera_faults()) {
    for (int i = 0; i < 3; ++i) {
      const Image frame = noise_frame(static_cast<uint64_t>(100 + i));
      EXPECT_TRUE(a.apply(fault, 0.6, frame).tensor() == b.apply(fault, 0.6, frame).tensor())
          << camera_fault_name(fault) << " stream diverged at frame " << i;
    }
  }
}

TEST(FaultInjector, ResetReproducesStream) {
  FaultInjector injector(7);
  const Image frame = noise_frame(3);
  const Image first = injector.apply(CameraFault::kSaltPepper, 0.5, frame);
  injector.apply(CameraFault::kSaltPepper, 0.5, noise_frame(4));
  injector.reset(7);
  EXPECT_TRUE(injector.apply(CameraFault::kSaltPepper, 0.5, frame).tensor() == first.tensor());
}

TEST(FaultInjector, SeverityMonotoneInDistortion) {
  const Image prime = noise_frame(5);
  const Image frame = noise_frame(6);
  const std::vector<double> severities = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (CameraFault fault : all_camera_faults()) {
    double previous = -1.0;
    for (double severity : severities) {
      // A fresh injector per severity, all with one seed: the random draws
      // (impulse positions, tear row, occlusion center) are identical across
      // the sweep, so distortion depends on severity alone.
      FaultInjector injector(99);
      injector.apply(fault, 1.0, prime);  // install frozen-frame state
      const double distortion = mse(injector.apply(fault, severity, frame), frame);
      EXPECT_GE(distortion, previous - 1e-9)
          << camera_fault_name(fault) << " distortion dropped at severity " << severity;
      if (severity == 0.0) {
        EXPECT_EQ(distortion, 0.0);
      }
      previous = distortion;
    }
    EXPECT_GT(previous, 0.0) << camera_fault_name(fault) << " at severity 1 did nothing";
  }
}

TEST(FaultInjector, InvalidSeverityThrows) {
  FaultInjector injector(1);
  const Image frame = noise_frame(7);
  EXPECT_THROW(injector.apply(CameraFault::kOcclusion, -0.1, frame), std::invalid_argument);
  EXPECT_THROW(injector.apply(CameraFault::kOcclusion, 1.1, frame), std::invalid_argument);
  EXPECT_THROW(injector.apply(CameraFault::kOcclusion, kNaN, frame), std::invalid_argument);
  EXPECT_THROW(injector.apply(CameraFault::kOcclusion, 0.5, Image()), std::invalid_argument);
}

TEST(FaultInjector, FrozenFrameReplaysPreviousFrame) {
  FaultInjector injector(13);
  const Image first = noise_frame(8);
  const Image second = noise_frame(9);
  // The first frame passes through untouched (nothing to freeze onto yet).
  EXPECT_TRUE(injector.apply(CameraFault::kFrozenFrame, 1.0, first).tensor() == first.tensor());
  // At full severity the second frame is replaced by the first.
  EXPECT_TRUE(injector.apply(CameraFault::kFrozenFrame, 1.0, second).tensor() == first.tensor());
}

TEST(FaultInjector, DroppedFrameAtFullSeverityIsBlack) {
  FaultInjector injector(17);
  const Image out = injector.apply(CameraFault::kDroppedFrame, 1.0, noise_frame(10));
  EXPECT_EQ(out.min(), 0.0f);
  EXPECT_EQ(out.max(), 0.0f);
}

TEST(FaultInjector, ChainComposesLeftToRight) {
  const Image frame = noise_frame(11);
  const std::vector<FaultSpec> chain = {{CameraFault::kUnderExposure, 0.4},
                                        {CameraFault::kBandTearing, 0.6}};
  FaultInjector chained(23);
  const Image composed = chained.apply_all(chain, frame);
  FaultInjector manual(23);
  const Image step = manual.apply(CameraFault::kUnderExposure, 0.4, frame);
  EXPECT_TRUE(composed.tensor() == manual.apply(CameraFault::kBandTearing, 0.6, step).tensor());
}

TEST(FlipWeightBits, DeterministicAndEffective) {
  Rng init(3);
  nn::Sequential a;
  a.add(std::make_unique<nn::Dense>(8, 4, init));
  nn::Sequential b;  // bit-identical copy via a fresh Rng with the same seed
  Rng init2(3);
  b.add(std::make_unique<nn::Dense>(8, 4, init2));

  Rng ra(5), rb(5);
  EXPECT_EQ(flip_weight_bits(a, 10, ra), 10);
  EXPECT_EQ(flip_weight_bits(b, 10, rb), 10);

  int64_t diffs = 0;
  const auto pa = a.parameters(), pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      // Same seed, same flips: corrupted copies stay bit-identical.
      EXPECT_EQ(std::bit_cast<uint32_t>(pa[i]->value[j]), std::bit_cast<uint32_t>(pb[i]->value[j]));
    }
  }
  // And the corruption really changed something vs a pristine copy.
  Rng init3(3);
  nn::Sequential pristine;
  pristine.add(std::make_unique<nn::Dense>(8, 4, init3));
  const auto pc = pristine.parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i]->value.numel(); ++j) {
      if (std::bit_cast<uint32_t>(pa[i]->value[j]) != std::bit_cast<uint32_t>(pc[i]->value[j])) {
        ++diffs;
      }
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(FlipWeightBits, ParameterlessModelIsNoop) {
  nn::Sequential empty;
  Rng rng(1);
  EXPECT_EQ(flip_weight_bits(empty, 5, rng), 0);
}

// ---------------------------------------------------------------------------
// FrameValidator: each fault class is classified, valid frames pass.

TEST(FrameValidator, ClassifiesEachFaultClass) {
  core::FrameValidator validator(kH, kW);

  EXPECT_EQ(validator.check(noise_frame(20)), core::FrameFault::kNone);
  EXPECT_EQ(validator.check(Image(kH + 1, kW)), core::FrameFault::kWrongSize);

  Image nan_frame = noise_frame(21);
  nan_frame(2, 3) = kNaN;
  EXPECT_EQ(validator.check(nan_frame), core::FrameFault::kNonFinite);

  Image inf_frame = noise_frame(22);
  inf_frame(0, 0) = std::numeric_limits<float>::infinity();
  EXPECT_EQ(validator.check(inf_frame), core::FrameFault::kNonFinite);

  Image hot_frame = noise_frame(23);
  hot_frame(5, 5) = 2.0f;
  EXPECT_EQ(validator.check(hot_frame), core::FrameFault::kOutOfRange);

  Image negative_frame = noise_frame(24);
  negative_frame(1, 1) = -0.5f;
  EXPECT_EQ(validator.check(negative_frame), core::FrameFault::kOutOfRange);

  Image dead_frame(kH, kW);  // all zeros: disconnected sensor
  EXPECT_EQ(validator.check(dead_frame), core::FrameFault::kNearConstant);
  EXPECT_FALSE(validator.valid(dead_frame));
}

TEST(FrameValidator, RangeSlackTolerated) {
  core::FrameValidator validator(kH, kW);
  Image frame = noise_frame(25);
  frame(0, 0) = 1.0f + 5e-4f;  // inside the default 1e-3 slack
  EXPECT_EQ(validator.check(frame), core::FrameFault::kNone);
}

TEST(FrameValidator, ChecksCanBeDisabled) {
  core::FrameValidatorConfig config;
  config.check_constant = false;
  core::FrameValidator validator(kH, kW, config);
  EXPECT_EQ(validator.check(Image(kH, kW)), core::FrameFault::kNone);
}

TEST(FrameValidator, RequireValidThrowsWithFault) {
  core::FrameValidator validator(kH, kW);
  Image nan_frame = noise_frame(26);
  nan_frame(0, 0) = kNaN;
  try {
    validator.require_valid(nan_frame, "test");
    FAIL() << "expected InvalidFrameError";
  } catch (const core::InvalidFrameError& e) {
    EXPECT_EQ(e.fault(), core::FrameFault::kNonFinite);
  }
}

TEST(FrameValidator, FaultNamesAreStable) {
  EXPECT_STREQ(core::frame_fault_name(core::FrameFault::kNone), "none");
  EXPECT_STREQ(core::frame_fault_name(core::FrameFault::kNonFinite), "non-finite");
}

// ---------------------------------------------------------------------------
// Guarded inference: the detector refuses malformed frames end to end.

TEST(GuardedInference, DetectorRejectsMalformedFrames) {
  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = core::Preprocessing::kRaw;
  config.score = core::ReconstructionScore::kMse;
  config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 2;
  core::NoveltyDetector detector(config);
  Rng rng(31);
  std::vector<Image> train;
  for (int i = 0; i < 8; ++i) train.push_back(noise_frame(static_cast<uint64_t>(40 + i)));
  detector.fit(train, rng);

  Image nan_frame = noise_frame(50);
  nan_frame(0, 0) = kNaN;
  EXPECT_THROW(detector.classify(nan_frame), core::InvalidFrameError);
  EXPECT_THROW(detector.score(Image(kH, kW)), core::InvalidFrameError);

  // Relaxed policy: validation off scores whatever it is given.
  core::NoveltyDetectorConfig relaxed = config;
  relaxed.validate_frames = false;
  core::NoveltyDetector lenient(relaxed);
  Rng rng2(31);
  lenient.fit(train, rng2);
  EXPECT_NO_THROW(lenient.score(Image(kH, kW)));
}

}  // namespace
}  // namespace salnov::faults
