// Quantized-vs-float differential suite: the proof obligations behind the
// int8 scoring rungs (vbp+ssim-q8 / vbp+mse-q8).
//
// Two different guarantees are enforced, and it matters which is which:
//
//   1. DETERMINISM (bit-exact): the quantize -> exact-int32 GEMM -> fmaf
//      dequant chain performs the same correctly-rounded float ops per
//      element regardless of kernel, thread count, or batch size. So the
//      quantized path must be BIT-IDENTICAL across
//        * the scalar and SIMD int8 kernels (randomized GEMM shapes and
//          whole-model forwards),
//        * batch-1 and batch-B entries (steering, saliency, reconstruct),
//        * 1-thread and 4-thread runs,
//        * record and replay of a quantized-ladder trace under different
//          int8 kernels (score_tolerance 0).
//
//   2. BOUNDED DRIFT (analytic, not an arbitrary epsilon): per layer, the
//      quantized output may differ from the float output by at most the
//      propagated quantization-error bound
//        e_out <= k * (|W|_max * e_repr + act_max * sw/2 + e_repr * sw/2)
//      where e_repr = sx/2 + 2 * e_in folds the input's representation
//      error (rounding, plus clip slack when the accumulated drift pushes a
//      value past the calibrated max) and every non-quantized layer between
//      (ReLU, Sigmoid, Flatten) is 1-Lipschitz. The same recursion composed
//      through the model bounds the end-to-end reconstruction drift.
//
//   3. VERDICT AGREEMENT: on clearly-nominal and clearly-novel frames the
//      q8 rung (scored by the int8 forward against its own fitted ECDF
//      threshold) must reach the same novelty verdict as the float rung.
//      Frames whose score sits inside a small margin of either threshold
//      are exempt — drift may legitimately flip a coin-flip frame, which is
//      exactly why the rungs carry separate calibrations.
//
// Failures echo SALNOV_PROP_SEED for one-variable reproduction (tests/prop.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/quantized.hpp"
#include "parallel/parallel_for.hpp"
#include "prop.hpp"
#include "saliency/visual_backprop.hpp"
#include "tensor/gemm_int8.hpp"
#include "trace/trace.hpp"

namespace salnov {

/// Counterexample printer for frame batches (pixel dumps would be noise —
/// the replay seed is the reproduction path).
std::string describe(const std::vector<Image>& frames) {
  return "<" + std::to_string(frames.size()) + " frames>";
}

namespace {

using core::DetectorVariant;
using core::NoveltyDetector;
using core::NoveltyDetectorConfig;
using core::Preprocessing;
using core::ReconstructionScore;

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;

/// Restores the ambient int8 kernel on scope exit (tests mutate the global).
struct Int8KernelGuard {
  GemmInt8Kernel saved = active_gemm_int8_kernel();
  ~Int8KernelGuard() { set_gemm_int8_kernel(saved); }
};

class QuantDifferentialFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(41);
    steering_ = new nn::Sequential(
        driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng));

    NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = Preprocessing::kVbp;
    config.score = ReconstructionScore::kSsim;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 10;
    detector_ = new NoveltyDetector(config);
    detector_->attach_steering_model(steering_);

    train_ = new std::vector<Image>();
    for (int i = 0; i < 24; ++i) train_->push_back(random_frame(rng, /*smooth=*/true));
    detector_->fit(*train_, rng);
    ASSERT_TRUE(detector_->has_quant_path());
    ASSERT_TRUE(detector_->has_quant_calibrations());
  }

  static void TearDownTestSuite() {
    delete train_;
    train_ = nullptr;
    delete detector_;
    detector_ = nullptr;
    delete steering_;
    steering_ = nullptr;
  }

  /// Smooth gradient (familiar) or uniform noise (novel), random parameters.
  static Image random_frame(Rng& rng, bool smooth) {
    Image img(kH, kW);
    if (smooth) {
      const double slope = rng.uniform(0.5, 1.5);
      const double offset = rng.uniform(0.0, 0.3);
      for (int64_t y = 0; y < kH; ++y) {
        for (int64_t x = 0; x < kW; ++x) {
          img(y, x) =
              static_cast<float>(offset + slope * (y + x) / static_cast<double>(kH + kW));
        }
      }
    } else {
      for (int64_t y = 0; y < kH; ++y) {
        for (int64_t x = 0; x < kW; ++x) img(y, x) = static_cast<float>(rng.uniform(0.0, 1.0));
      }
    }
    img.clamp01();
    return img;
  }

  static std::vector<const Image*> pointers(const std::vector<Image>& frames) {
    std::vector<const Image*> out;
    out.reserve(frames.size());
    for (const Image& frame : frames) out.push_back(&frame);
    return out;
  }

  static bool tensors_bitexact(const Tensor& a, const Tensor& b) { return a == b; }

  /// The analytic per-layer drift bound, propagated layer by layer through
  /// `model` on `input`. Checks every quantizable layer's quantized output
  /// against its float output and returns the end-to-end bound alongside
  /// the worst observed violation margin (<= 1 means within bound).
  struct DriftReport {
    double worst_ratio = 0.0;  ///< max over layers of observed / bound
    double final_bound = 0.0;  ///< propagated bound at the model output
    int worst_layer = -1;
  };

  static DriftReport layer_drift(const nn::Sequential& model, const nn::QuantizedForward& quant,
                                 const Tensor& input) {
    // Collect both chains. The quantized chain feeds each layer its own
    // (drifted) activations, so the bound must propagate input error.
    const std::vector<Tensor> fp = model.forward_collect(input);
    const std::vector<Tensor> q8 = quant.forward_collect(input);
    EXPECT_EQ(fp.size(), q8.size());

    DriftReport report;
    double e_in = 0.0;  // max-abs drift of the current activations
    size_t slot = 0;
    for (size_t i = 0; i < model.size(); ++i) {
      const nn::Layer& layer = model.layer(i);
      const auto* dense = dynamic_cast<const nn::Dense*>(&layer);
      const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer);
      if (dense == nullptr && conv == nullptr) {
        // ReLU / Sigmoid / Tanh / Flatten: 1-Lipschitz (or exact), so the
        // drift cannot grow through them.
        continue;
      }
      const float sx = quant.scales().act_scales[slot];
      const Tensor& w = dense != nullptr ? dense->weight().value : conv->weight().value;
      float w_max = 0.0f;
      for (int64_t j = 0; j < w.numel(); ++j) w_max = std::max(w_max, std::fabs(w.data()[j]));
      const double sw = w_max > 0.0f ? static_cast<double>(w_max) / 127.0 : 1.0;
      const int64_t k = dense != nullptr ? dense->in_features()
                                         : conv->config().in_channels * conv->config().kernel_h *
                                               conv->config().kernel_w;
      // Input representation error: rounding (sx/2) plus clip slack — the
      // float value never exceeds the calibrated max (these are calibration
      // inputs), but the drifted value may by up to e_in, and clamping back
      // costs at most e_in again.
      const double e_repr = static_cast<double>(sx) / 2.0 + 2.0 * e_in;
      const double act_max = 127.0 * static_cast<double>(sx);
      const double bound =
          static_cast<double>(k) *
              (static_cast<double>(w_max) * e_repr + act_max * sw / 2.0 + e_repr * sw / 2.0) +
          1e-5;  // fp32 dequant rounding slack

      // Observed: compare this layer's outputs across the two chains.
      const Tensor& f_out = fp[i];
      const Tensor& q_out = q8[i];
      double observed = 0.0;
      for (int64_t j = 0; j < f_out.numel(); ++j) {
        observed = std::max(observed,
                            std::fabs(static_cast<double>(f_out.data()[j]) -
                                      static_cast<double>(q_out.data()[j])));
      }
      const double ratio = observed / bound;
      if (ratio > report.worst_ratio) {
        report.worst_ratio = ratio;
        report.worst_layer = static_cast<int>(i);
      }
      e_in = bound;
      report.final_bound = bound;
      ++slot;
    }
    return report;
  }

  static NoveltyDetector* detector_;
  static nn::Sequential* steering_;
  static std::vector<Image>* train_;
};

NoveltyDetector* QuantDifferentialFixture::detector_ = nullptr;
nn::Sequential* QuantDifferentialFixture::steering_ = nullptr;
std::vector<Image>* QuantDifferentialFixture::train_ = nullptr;

// --- 1. kernel bit-identity at the GEMM level --------------------------------

TEST(QuantGemmKernels, ScalarAndSimdAgreeBitExactOnRandomShapes) {
  if (!gemm_int8_simd_available()) GTEST_SKIP() << "no int8 SIMD on this CPU";
  Int8KernelGuard guard;
  prop::Options options;
  options.trials = 60;
  options.seed = 411;
  prop::for_all<std::vector<int64_t>>(
      "int8 gemm: scalar == simd (exact int32 + fmaf dequant)",
      [](Rng& rng) {
        return std::vector<int64_t>{rng.uniform_int(1, 17), rng.uniform_int(1, 40),
                                    rng.uniform_int(1, 96), rng.uniform_int(0, 1)};
      },
      [](const std::vector<int64_t>& shape) {
        const int64_t m = shape[0], n = shape[1], k = shape[2];
        const bool relu = shape[3] != 0;
        Rng data_rng(static_cast<uint64_t>(m * 1000003 + n * 1009 + k));
        std::vector<uint8_t> a(static_cast<size_t>(m * k));
        std::vector<int8_t> b(static_cast<size_t>(k * n));
        std::vector<float> bias(static_cast<size_t>(n));
        for (auto& v : a) v = static_cast<uint8_t>(data_rng.uniform_int(0, 127));
        for (auto& v : b) v = static_cast<int8_t>(data_rng.uniform_int(-127, 127));
        for (auto& v : bias) v = static_cast<float>(data_rng.uniform(-1.0, 1.0));
        QuantEpilogue epilogue;
        epilogue.scale = static_cast<float>(data_rng.uniform(1e-4, 1e-2));
        epilogue.bias_col = bias.data();
        epilogue.relu = relu;
        const PackedQuantMatrix packed = pack_quant_b(b.data(), k, n);

        std::vector<int32_t> c_scalar(static_cast<size_t>(m * n));
        std::vector<int32_t> c_simd(static_cast<size_t>(m * n));
        std::vector<float> f_scalar(static_cast<size_t>(m * n));
        std::vector<float> f_simd(static_cast<size_t>(m * n));
        set_gemm_int8_kernel(GemmInt8Kernel::kScalar);
        gemm_u8s8(a.data(), b.data(), c_scalar.data(), m, n, k);
        gemm_u8s8_dequant(a.data(), b.data(), f_scalar.data(), m, n, k, epilogue, &packed);
        set_gemm_int8_kernel(GemmInt8Kernel::kSimd);
        gemm_u8s8(a.data(), b.data(), c_simd.data(), m, n, k, &packed);
        gemm_u8s8_dequant(a.data(), b.data(), f_simd.data(), m, n, k, epilogue, &packed);
        // memcmp-strength equality: int32 exactly, floats bit-for-bit.
        return c_scalar == c_simd &&
               std::equal(f_scalar.begin(), f_scalar.end(), f_simd.begin(),
                          [](float x, float y) {
                            return std::memcmp(&x, &y, sizeof(float)) == 0;
                          });
      },
      options);
}

TEST_F(QuantDifferentialFixture, KernelsAgreeBitExactOnModelForwards) {
  if (!gemm_int8_simd_available()) GTEST_SKIP() << "no int8 SIMD on this CPU";
  Int8KernelGuard guard;
  for (const Image& frame : *train_) {
    set_gemm_int8_kernel(GemmInt8Kernel::kScalar);
    const Image mask_scalar = detector_->variant_preprocess(DetectorVariant::kPrimaryQ8, frame);
    const Image recon_scalar =
        detector_->variant_reconstruct(DetectorVariant::kPrimaryQ8, mask_scalar);
    const double score_scalar = detector_->variant_score_pair(DetectorVariant::kPrimaryQ8,
                                                              mask_scalar, recon_scalar);
    const double steer_scalar =
        driving::predict_steering_q8(*detector_->quant_steering(), frame);
    set_gemm_int8_kernel(GemmInt8Kernel::kSimd);
    const Image mask_simd = detector_->variant_preprocess(DetectorVariant::kPrimaryQ8, frame);
    const Image recon_simd =
        detector_->variant_reconstruct(DetectorVariant::kPrimaryQ8, mask_simd);
    const double score_simd =
        detector_->variant_score_pair(DetectorVariant::kPrimaryQ8, mask_simd, recon_simd);
    const double steer_simd =
        driving::predict_steering_q8(*detector_->quant_steering(), frame);
    ASSERT_TRUE(tensors_bitexact(mask_scalar.tensor(), mask_simd.tensor()));
    ASSERT_TRUE(tensors_bitexact(recon_scalar.tensor(), recon_simd.tensor()));
    ASSERT_EQ(score_scalar, score_simd);
    ASSERT_EQ(steer_scalar, steer_simd);
  }
}

// --- 2. analytic drift bounds ------------------------------------------------

TEST_F(QuantDifferentialFixture, AutoencoderDriftStaysWithinPerLayerAnalyticBound) {
  const nn::QuantizedForward* quant = detector_->quant_autoencoder();
  ASSERT_NE(quant, nullptr);
  for (const Image& frame : *train_) {
    const Image pre = detector_->variant_preprocess(DetectorVariant::kPrimary, frame);
    const Tensor input = pre.flattened().reshape({1, kH * kW});
    const DriftReport report = layer_drift(quant->model(), *quant, input);
    EXPECT_LE(report.worst_ratio, 1.0)
        << "layer " << report.worst_layer << " drifted past its analytic bound";
  }
}

TEST_F(QuantDifferentialFixture, SteeringDriftStaysWithinPerLayerAnalyticBound) {
  const nn::QuantizedForward* quant = detector_->quant_steering();
  ASSERT_NE(quant, nullptr);
  for (const Image& frame : *train_) {
    const Tensor input = frame.tensor().reshape({1, 1, kH, kW});
    const DriftReport report = layer_drift(quant->model(), *quant, input);
    EXPECT_LE(report.worst_ratio, 1.0)
        << "layer " << report.worst_layer << " drifted past its analytic bound";
  }
}

TEST_F(QuantDifferentialFixture, EndToEndReconstructionDriftWithinPropagatedBound) {
  // Randomized frame batches (with shrinking): the quantized reconstruction
  // of the float mask must stay within the propagated layer bound of the
  // float reconstruction. Smooth frames only — they are the calibration
  // regime; the verdict test below covers out-of-distribution inputs.
  const nn::QuantizedForward* quant = detector_->quant_autoencoder();
  ASSERT_NE(quant, nullptr);
  prop::Options options;
  options.trials = 20;
  options.seed = 433;
  prop::for_all_shrink<Image>(
      "q8 reconstruction within propagated analytic bound",
      [](Rng& rng) {
        const int64_t n = rng.uniform_int(1, 6);
        std::vector<Image> frames;
        for (int64_t i = 0; i < n; ++i) frames.push_back(random_frame(rng, /*smooth=*/true));
        return frames;
      },
      [&](const std::vector<Image>& frames) {
        for (const Image& frame : frames) {
          const Image pre = detector_->variant_preprocess(DetectorVariant::kPrimary, frame);
          const Tensor input = pre.flattened().reshape({1, kH * kW});
          const DriftReport report = layer_drift(quant->model(), *quant, input);
          const Image f_recon = detector_->variant_reconstruct(DetectorVariant::kPrimary, pre);
          const Image q_recon = detector_->variant_reconstruct(DetectorVariant::kPrimaryQ8, pre);
          double observed = 0.0;
          for (int64_t j = 0; j < f_recon.tensor().numel(); ++j) {
            observed = std::max(observed,
                                std::fabs(static_cast<double>(f_recon.tensor().data()[j]) -
                                          static_cast<double>(q_recon.tensor().data()[j])));
          }
          if (observed > report.final_bound) return false;
        }
        return true;
      },
      options);
}

// --- 3. verdict agreement ----------------------------------------------------

TEST_F(QuantDifferentialFixture, VerdictsAgreeOutsideTheAmbiguityMargin) {
  // Clearly-nominal (smooth, the training regime) and clearly-novel
  // (uniform noise) frames: the q8 rung judged by its own threshold must
  // agree with the float rung judged by its own. Frames within 2% of either
  // threshold are exempt — that is the regime the rung-specific
  // calibrations exist for.
  constexpr double kAmbiguityMargin = 0.02;
  const auto& float_cal = detector_->variant_calibration(DetectorVariant::kPrimary);
  const auto& q8_cal = detector_->variant_calibration(DetectorVariant::kPrimaryQ8);
  Rng rng(prop::run_seed(457));
  int compared = 0;
  for (int i = 0; i < 80; ++i) {
    const Image frame = random_frame(rng, /*smooth=*/i % 2 == 0);
    const double f_score = detector_->score_variant(DetectorVariant::kPrimary, frame);
    const double q_score = detector_->score_variant(DetectorVariant::kPrimaryQ8, frame);
    const double f_thr = float_cal.threshold.threshold();
    const double q_thr = q8_cal.threshold.threshold();
    const double f_margin = std::fabs(f_score - f_thr) / std::max(1.0, std::fabs(f_thr));
    const double q_margin = std::fabs(q_score - q_thr) / std::max(1.0, std::fabs(q_thr));
    if (f_margin < kAmbiguityMargin || q_margin < kAmbiguityMargin) continue;
    ++compared;
    EXPECT_EQ(float_cal.threshold.is_novel(f_score), q8_cal.threshold.is_novel(q_score))
        << "frame " << i << ": float score " << f_score << " (thr " << f_thr << ") vs q8 score "
        << q_score << " (thr " << q_thr << ")";
  }
  EXPECT_GE(compared, 30) << "ambiguity margin exempted too many frames to be meaningful";
}

// --- 4. batch invariance -----------------------------------------------------

TEST_F(QuantDifferentialFixture, BatchedQuantEntriesMatchSoloBitExact) {
  prop::Options options;
  options.trials = 12;
  options.seed = 461;
  prop::for_all<std::vector<Image>>(
      "q8 batch-B == batch-1 (steer, saliency, reconstruct)",
      [](Rng& rng) {
        const int64_t n = rng.uniform_int(1, 10);
        std::vector<Image> frames;
        for (int64_t i = 0; i < n; ++i) {
          frames.push_back(random_frame(rng, rng.uniform(0.0, 1.0) < 0.7));
        }
        return frames;
      },
      [&](const std::vector<Image>& frames) {
        const std::vector<const Image*> ptrs = pointers(frames);
        const std::vector<double> steer_batch =
            driving::predict_steering_q8_batch(*detector_->quant_steering(), ptrs);
        const std::vector<Image> masks_batch =
            detector_->variant_preprocess_batch(DetectorVariant::kPrimaryQ8, ptrs);
        const std::vector<const Image*> mask_ptrs = pointers(masks_batch);
        const std::vector<Image> recon_batch =
            detector_->variant_reconstruct_batch(DetectorVariant::kPrimaryQ8, mask_ptrs);
        for (size_t i = 0; i < frames.size(); ++i) {
          const double steer_solo =
              driving::predict_steering_q8(*detector_->quant_steering(), frames[i]);
          const Image mask_solo =
              detector_->variant_preprocess(DetectorVariant::kPrimaryQ8, frames[i]);
          const Image recon_solo =
              detector_->variant_reconstruct(DetectorVariant::kPrimaryQ8, mask_solo);
          if (steer_batch[i] != steer_solo) return false;
          if (!tensors_bitexact(masks_batch[i].tensor(), mask_solo.tensor())) return false;
          if (!tensors_bitexact(recon_batch[i].tensor(), recon_solo.tensor())) return false;
        }
        return true;
      },
      options);
}

// --- 5. thread-count invariance ----------------------------------------------

TEST_F(QuantDifferentialFixture, OneAndFourThreadsAgreeBitExact) {
  for (const Image& frame : *train_) {
    parallel::set_num_threads(1);
    const Image mask1 = detector_->variant_preprocess(DetectorVariant::kPrimaryQ8, frame);
    const Image recon1 = detector_->variant_reconstruct(DetectorVariant::kPrimaryQ8, mask1);
    const double score1 =
        detector_->variant_score_pair(DetectorVariant::kPrimaryQ8, mask1, recon1);
    parallel::set_num_threads(4);
    const Image mask4 = detector_->variant_preprocess(DetectorVariant::kPrimaryQ8, frame);
    const Image recon4 = detector_->variant_reconstruct(DetectorVariant::kPrimaryQ8, mask4);
    const double score4 =
        detector_->variant_score_pair(DetectorVariant::kPrimaryQ8, mask4, recon4);
    parallel::set_num_threads(0);
    ASSERT_TRUE(tensors_bitexact(mask1.tensor(), mask4.tensor()));
    ASSERT_TRUE(tensors_bitexact(recon1.tensor(), recon4.tensor()));
    ASSERT_EQ(score1, score4);
  }
}

// --- 6. record/replay across int8 kernels ------------------------------------

TEST_F(QuantDifferentialFixture, QuantLadderTraceReplaysBitExactAcrossInt8Kernels) {
  // Record a quantized-ladder scenario (reconstruct-stage stalls walk the
  // rungs), then replay with the OTHER int8 kernel at tolerance zero. The
  // float GEMM kernel is pinned, so every float-served frame is trivially
  // identical and every q8-served frame exercises the int8 determinism
  // contract end to end — through the supervisor, monitor, and calibrated
  // thresholds.
  trace::TraceRunSpec spec;
  spec.dataset = "outdoor";
  spec.frame_seed = 2024;
  spec.fault_seed = 7;
  spec.frames = 24;
  spec.height = kH;
  spec.width = kW;
  spec.supervisor.stage_budget_ns.fill(1'000'000);
  spec.supervisor.frame_budget_ns = 1'000'000'000;
  spec.supervisor.demote_after_bad_frames = 1;
  spec.supervisor.promote_after_healthy_frames = 2;
  spec.supervisor.enable_quant_rungs = true;
  spec.stalls.push_back({/*stage=*/3, /*stall_ns=*/10'000'000, /*first_frame=*/3,
                         /*last_frame=*/5, /*period=*/1});

  Int8KernelGuard guard;
  set_gemm_int8_kernel(GemmInt8Kernel::kScalar);
  const trace::Trace trace = trace::TraceRecorder::record(spec, *detector_, steering_);
  bool saw_q8 = false;
  for (const auto& frame : trace.frames) saw_q8 = saw_q8 || serving_mode_quantized(frame.mode);
  ASSERT_TRUE(saw_q8) << "scenario never reached a q8 rung — stalls misconfigured";

  trace::ReplayOptions options;
  options.score_tolerance = 0.0;
  const trace::ReplayReport same =
      trace::TraceReplayer::replay(trace, *detector_, steering_, options);
  EXPECT_TRUE(same.ok()) << same.format();
  if (gemm_int8_simd_available()) {
    set_gemm_int8_kernel(GemmInt8Kernel::kSimd);
    const trace::ReplayReport cross =
        trace::TraceReplayer::replay(trace, *detector_, steering_, options);
    EXPECT_TRUE(cross.ok()) << cross.format();
  }
}

}  // namespace
}  // namespace salnov
