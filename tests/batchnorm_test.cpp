// Unit tests for BatchNorm: normalization semantics, running statistics,
// custom training-mode gradient check, and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/model_io.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "tensor/rng.hpp"
#include "test_util.hpp"

namespace salnov::nn {
namespace {

TEST(BatchNormTest, TrainingOutputIsStandardized) {
  BatchNorm bn(3);
  Rng rng(1);
  const Tensor input = rng.uniform_tensor({16, 3}, -2.0, 5.0);
  const Tensor out = bn.forward(input, Mode::kTrain);
  for (int64_t f = 0; f < 3; ++f) {
    double sum = 0.0, sum_sq = 0.0;
    for (int64_t n = 0; n < 16; ++n) {
      const float v = out.at({n, f});
      sum += v;
      sum_sq += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(sum / 16.0, 0.0, 1e-5);
    EXPECT_NEAR(sum_sq / 16.0, 1.0, 1e-3);  // gamma=1, beta=0 initially
  }
}

TEST(BatchNormTest, PerChannelForConvLayout) {
  BatchNorm bn(2);
  Rng rng(2);
  Tensor input = rng.uniform_tensor({4, 2, 3, 3}, 0.0, 1.0);
  // Shift channel 1 far away; after normalization both channels are ~N(0,1).
  for (int64_t n = 0; n < 4; ++n) {
    for (int64_t i = 0; i < 9; ++i) input.at({n, 1, i / 3, i % 3}) += 10.0f;
  }
  const Tensor out = bn.forward(input, Mode::kTrain);
  double mean1 = 0.0;
  for (int64_t n = 0; n < 4; ++n) {
    for (int64_t i = 0; i < 9; ++i) mean1 += out.at({n, 1, i / 3, i % 3});
  }
  EXPECT_NEAR(mean1 / 36.0, 0.0, 1e-4);
}

TEST(BatchNormTest, RunningStatsConvergeToDataStats) {
  BatchNorm bn(1, /*momentum=*/0.5);
  Rng rng(3);
  for (int step = 0; step < 40; ++step) {
    Tensor batch({32, 1});
    for (int64_t i = 0; i < 32; ++i) batch[i] = static_cast<float>(rng.normal(2.0, 0.5));
    bn.forward(batch, Mode::kTrain);
  }
  EXPECT_NEAR(bn.running_mean()[0], 2.0f, 0.2f);
  EXPECT_NEAR(bn.running_var()[0], 0.25f, 0.1f);
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm bn(1, 1.0);  // momentum 1: running = last batch stats
  Tensor batch({4, 1}, {0.0f, 2.0f, 4.0f, 6.0f});  // mean 3, var 5
  bn.forward(batch, Mode::kTrain);
  const Tensor probe({1, 1}, {3.0f});
  const Tensor out = bn.forward(probe, Mode::kInfer);
  EXPECT_NEAR(out[0], 0.0f, 1e-4f);  // (3 - 3)/sqrt(5)
}

TEST(BatchNormTest, GradientCheckTrainingMode) {
  // The generic harness probes with inference-mode forwards, which use
  // running stats; BatchNorm needs training-mode probing instead.
  BatchNorm bn(2);
  Rng rng(4);
  const Tensor input = rng.uniform_tensor({5, 2, 2, 2}, -1.0, 1.0);
  const Tensor seed = rng.uniform_tensor({5, 2, 2, 2}, -1.0, 1.0);

  for (Parameter* p : bn.parameters()) p->zero_grad();
  bn.forward(input, Mode::kTrain);
  const Tensor grad_input = bn.backward(seed);

  auto scalar = [&](const Tensor& x) {
    const Tensor out = bn.forward(x, Mode::kTrain);
    double acc = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) acc += static_cast<double>(out[i]) * seed[i];
    return acc;
  };
  Tensor x = input;
  const double h = 1e-3;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(h);
    const double up = scalar(x);
    x[i] = saved - static_cast<float>(h);
    const double down = scalar(x);
    x[i] = saved;
    EXPECT_NEAR(grad_input[i], (up - down) / (2 * h), 3e-2) << "input grad at " << i;
  }
  // Parameter gradients.
  for (Parameter* p : bn.parameters()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(h);
      const double up = scalar(input);
      p->value[i] = saved - static_cast<float>(h);
      const double down = scalar(input);
      p->value[i] = saved;
      EXPECT_NEAR(p->grad[i], (up - down) / (2 * h), 3e-2) << p->name << " grad at " << i;
    }
  }
}

TEST(BatchNormTest, InvalidConfigThrows) {
  EXPECT_THROW(BatchNorm(0), std::invalid_argument);
  EXPECT_THROW(BatchNorm(4, -0.5), std::invalid_argument);
  EXPECT_THROW(BatchNorm(4, 0.1, 0.0), std::invalid_argument);
}

TEST(BatchNormTest, WrongFeatureCountThrows) {
  BatchNorm bn(3);
  EXPECT_THROW(bn.forward(Tensor({2, 4}), Mode::kTrain), std::invalid_argument);
}

TEST(BatchNormTest, RoundTripsThroughModelFile) {
  Rng rng(5);
  Sequential model;
  model.emplace<Dense>(4, 3, rng);
  model.emplace<BatchNorm>(3);
  // Push some statistics into the running estimates.
  model.forward(rng.uniform_tensor({16, 4}, -1.0, 1.0), Mode::kTrain);
  model.forward(rng.uniform_tensor({16, 4}, -1.0, 1.0), Mode::kTrain);

  std::stringstream ss;
  save_model(ss, model);
  Sequential loaded = load_model(ss);
  const Tensor probe = rng.uniform_tensor({2, 4}, -1.0, 1.0);
  test::expect_tensors_near(loaded.forward(probe, Mode::kInfer), model.forward(probe, Mode::kInfer),
                            1e-6f);
}

TEST(BatchNormTest, HelpsTrainAPoorlyScaledProblem) {
  // Inputs with wildly different feature scales: with BN the network should
  // still fit quickly.
  Rng rng(6);
  Sequential model;
  model.emplace<Dense>(2, 8, rng);
  model.emplace<BatchNorm>(8);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 1, rng);

  const int64_t n = 64;
  Tensor x({n, 2}), y({n, 1});
  Rng data_rng(7);
  for (int64_t i = 0; i < n; ++i) {
    const double a = data_rng.uniform(-1.0, 1.0);
    const double b = data_rng.uniform(-100.0, 100.0);  // badly scaled feature
    x[2 * i] = static_cast<float>(a);
    x[2 * i + 1] = static_cast<float>(b);
    y[i] = static_cast<float>(a + 0.01 * b);
  }
  MseLoss loss;
  Adam optimizer(0.02);
  Trainer trainer(model, loss, optimizer, rng.split());
  TrainOptions options;
  options.epochs = 120;
  const TrainHistory history = trainer.fit(x, y, options);
  EXPECT_LT(history.final_loss(), history.epoch_loss.front() * 0.1);
}

}  // namespace
}  // namespace salnov::nn
