// Unit tests for the core novelty-detection framework: autoencoder builder,
// threshold calibration, NoveltyDetector pipeline, pipeline serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/autoencoder.hpp"
#include "core/novelty_detector.hpp"
#include "core/pipeline_io.hpp"
#include "core/threshold.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "image/transforms.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "tensor/serialize.hpp"

namespace salnov::core {
namespace {

constexpr int64_t kH = 24;
constexpr int64_t kW = 48;

NoveltyDetectorConfig tiny_config(Preprocessing pre, ReconstructionScore score) {
  NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = pre;
  config.score = score;
  config.autoencoder = AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 200;
  config.learning_rate = 3e-3;
  return config;
}

/// Shared fixture: generates datasets and trains a tiny steering model once
/// for the whole test suite (training in every test would dominate runtime).
class NoveltyPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Seed choice note: separation at this deliberately tiny scale varies
    // across training runs; this fixed seed gives a comfortably-margined
    // environment (the library RNG is fully deterministic).
    rng_ = new Rng(123);
    outdoor_ = new roadsim::OutdoorSceneGenerator();
    indoor_ = new roadsim::IndoorSceneGenerator();
    train_ = new roadsim::DrivingDataset(
        roadsim::DrivingDataset::generate(*outdoor_, 80, kH, kW, *rng_));
    novel_ = new roadsim::DrivingDataset(
        roadsim::DrivingDataset::generate(*indoor_, 30, kH, kW, *rng_));

    steering_ = new nn::Sequential(
        driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), *rng_));
    driving::SteeringTrainOptions options;
    options.epochs = 15;
    options.learning_rate = 2e-3;
    driving::train_steering_model(*steering_, *train_, options, *rng_);
  }

  static void TearDownTestSuite() {
    delete steering_;
    delete novel_;
    delete train_;
    delete indoor_;
    delete outdoor_;
    delete rng_;
    steering_ = nullptr;
    novel_ = train_ = nullptr;
    indoor_ = nullptr;
    outdoor_ = nullptr;
    rng_ = nullptr;
  }

  static Rng* rng_;
  static roadsim::OutdoorSceneGenerator* outdoor_;
  static roadsim::IndoorSceneGenerator* indoor_;
  static roadsim::DrivingDataset* train_;
  static roadsim::DrivingDataset* novel_;
  static nn::Sequential* steering_;
};

Rng* NoveltyPipelineTest::rng_ = nullptr;
roadsim::OutdoorSceneGenerator* NoveltyPipelineTest::outdoor_ = nullptr;
roadsim::IndoorSceneGenerator* NoveltyPipelineTest::indoor_ = nullptr;
roadsim::DrivingDataset* NoveltyPipelineTest::train_ = nullptr;
roadsim::DrivingDataset* NoveltyPipelineTest::novel_ = nullptr;
nn::Sequential* NoveltyPipelineTest::steering_ = nullptr;

TEST(AutoencoderBuilder, PaperArchitectureShapes) {
  Rng rng(1);
  nn::Sequential ae = build_autoencoder(AutoencoderConfig::paper(), rng);
  // 9600-64-16-64-9600: four dense layers, ReLU x3, sigmoid output.
  EXPECT_EQ(ae.output_shape({2, 9600}), (Shape{2, 9600}));
  EXPECT_EQ(ae.size(), 8u);  // Dense+ReLU x3, output Dense, Sigmoid
  EXPECT_EQ(ae.layer(ae.size() - 1).type_name(), "sigmoid");
}

TEST(AutoencoderBuilder, ParameterCountMatchesArchitecture) {
  Rng rng(2);
  nn::Sequential ae = build_autoencoder(AutoencoderConfig::paper(), rng);
  const int64_t expected = (9600 * 64 + 64) + (64 * 16 + 16) + (16 * 64 + 64) + (64 * 9600 + 9600);
  EXPECT_EQ(ae.parameter_count(), expected);
}

TEST(AutoencoderBuilder, OutputsInUnitInterval) {
  Rng rng(3);
  nn::Sequential ae = build_autoencoder(AutoencoderConfig::tiny(8, 12), rng);
  const Tensor out = ae.forward(rng.uniform_tensor({4, 96}, 0.0, 1.0), nn::Mode::kInfer);
  EXPECT_GE(out.min(), 0.0f);
  EXPECT_LE(out.max(), 1.0f);
}

TEST(AutoencoderBuilder, InvalidConfigThrows) {
  Rng rng(4);
  AutoencoderConfig config;
  config.hidden_units = {};
  EXPECT_THROW(build_autoencoder(config, rng), std::invalid_argument);
  config.hidden_units = {0};
  EXPECT_THROW(build_autoencoder(config, rng), std::invalid_argument);
}

TEST(Threshold, HighOrientationFlagsHighScores) {
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(static_cast<double>(i));
  const NoveltyThreshold t = NoveltyThreshold::calibrate(scores, ScoreOrientation::kHighIsNovel, 0.99);
  EXPECT_FALSE(t.is_novel(50.0));
  EXPECT_TRUE(t.is_novel(100.5));
}

TEST(Threshold, LowOrientationFlagsLowScores) {
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(static_cast<double>(i));
  const NoveltyThreshold t = NoveltyThreshold::calibrate(scores, ScoreOrientation::kLowIsNovel, 0.99);
  EXPECT_TRUE(t.is_novel(0.5));
  EXPECT_FALSE(t.is_novel(50.0));
}

TEST(Threshold, PercentileBoundsValidated) {
  EXPECT_THROW(NoveltyThreshold::calibrate({1.0}, ScoreOrientation::kHighIsNovel, 1.0),
               std::invalid_argument);
  EXPECT_THROW(NoveltyThreshold::calibrate({1.0}, ScoreOrientation::kHighIsNovel, 0.0),
               std::invalid_argument);
}

TEST(Threshold, NinetyNinthPercentileAdmitsTrainingTail) {
  // ~1% of the training set itself should fall outside the threshold.
  std::vector<double> scores;
  for (int i = 0; i < 1000; ++i) scores.push_back(static_cast<double>(i));
  const NoveltyThreshold t = NoveltyThreshold::calibrate(scores, ScoreOrientation::kHighIsNovel, 0.99);
  int flagged = 0;
  for (double s : scores) flagged += t.is_novel(s) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(flagged) / 1000.0, 0.01, 0.005);
}

TEST(Threshold, SaveLoadRoundTrip) {
  const NoveltyThreshold t(0.42, ScoreOrientation::kLowIsNovel);
  std::stringstream ss;
  t.save(ss);
  const NoveltyThreshold back = NoveltyThreshold::load(ss);
  EXPECT_FLOAT_EQ(static_cast<float>(back.threshold()), 0.42f);
  EXPECT_EQ(back.orientation(), ScoreOrientation::kLowIsNovel);
}

TEST(Threshold, NonFiniteScoresAreAlwaysNovel) {
  // Non-finite containment: a NaN/Inf score is a pipeline malfunction, and a
  // malfunction must fail toward "novel" (engage the fallback), never toward
  // "familiar" — under BOTH orientations, where naive comparisons against
  // NaN would return false.
  const std::vector<double> scores{1.0, 2.0, 3.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const NoveltyThreshold high = NoveltyThreshold::calibrate(scores, ScoreOrientation::kHighIsNovel);
  EXPECT_TRUE(high.is_novel(nan));
  EXPECT_TRUE(high.is_novel(inf));
  EXPECT_TRUE(high.is_novel(-inf));
  const NoveltyThreshold low = NoveltyThreshold::calibrate(scores, ScoreOrientation::kLowIsNovel);
  EXPECT_TRUE(low.is_novel(nan));
  EXPECT_TRUE(low.is_novel(inf));
  EXPECT_TRUE(low.is_novel(-inf));
}

TEST(Threshold, CalibrateIgnoresNonFiniteTrainingScores) {
  // One NaN score in a training batch must not shift (or poison) the
  // percentile computation.
  const std::vector<double> clean{1.0, 2.0, 3.0, 4.0};
  std::vector<double> dirty = clean;
  dirty.push_back(std::numeric_limits<double>::quiet_NaN());
  const NoveltyThreshold a = NoveltyThreshold::calibrate(clean, ScoreOrientation::kHighIsNovel);
  const NoveltyThreshold b = NoveltyThreshold::calibrate(dirty, ScoreOrientation::kHighIsNovel);
  EXPECT_DOUBLE_EQ(a.threshold(), b.threshold());
}

TEST(VariantCalibrationTest, CalibrateMatchesThresholdAndKeepsSamples) {
  const std::vector<double> scores{0.1, 0.2, 0.3, 0.4, 0.5};
  const VariantCalibration calibration =
      VariantCalibration::calibrate(scores, ScoreOrientation::kHighIsNovel, 0.99);
  EXPECT_DOUBLE_EQ(
      calibration.threshold.threshold(),
      NoveltyThreshold::calibrate(scores, ScoreOrientation::kHighIsNovel, 0.99).threshold());
  EXPECT_EQ(calibration.cdf.samples().size(), scores.size());
  std::stringstream buffer;
  calibration.save(buffer);
  const VariantCalibration loaded = VariantCalibration::load(buffer);
  EXPECT_EQ(loaded.cdf.samples(), calibration.cdf.samples());
  EXPECT_DOUBLE_EQ(loaded.threshold.threshold(), calibration.threshold.threshold());
}

TEST(DetectorConfig, FactoryPresets) {
  EXPECT_EQ(NoveltyDetectorConfig::proposed().preprocessing, Preprocessing::kVbp);
  EXPECT_EQ(NoveltyDetectorConfig::proposed().score, ReconstructionScore::kSsim);
  EXPECT_EQ(NoveltyDetectorConfig::baseline_raw_mse().preprocessing, Preprocessing::kRaw);
  EXPECT_EQ(NoveltyDetectorConfig::baseline_raw_mse().score, ReconstructionScore::kMse);
  EXPECT_EQ(NoveltyDetectorConfig::vbp_mse().preprocessing, Preprocessing::kVbp);
  EXPECT_EQ(NoveltyDetectorConfig::vbp_mse().score, ReconstructionScore::kMse);
}

TEST(Detector, UnfittedAccessThrows) {
  NoveltyDetector detector(tiny_config(Preprocessing::kRaw, ReconstructionScore::kMse));
  EXPECT_THROW(detector.threshold(), std::logic_error);
  EXPECT_THROW(detector.reconstruct(Image(kH, kW)), std::logic_error);
  EXPECT_FALSE(detector.is_fitted());
}

TEST(Detector, VbpWithoutSteeringModelThrows) {
  NoveltyDetector detector(tiny_config(Preprocessing::kVbp, ReconstructionScore::kSsim));
  EXPECT_THROW(detector.preprocess(Image(kH, kW)), std::logic_error);
}

TEST(Detector, WrongInputSizeThrows) {
  NoveltyDetector detector(tiny_config(Preprocessing::kRaw, ReconstructionScore::kMse));
  EXPECT_THROW(detector.preprocess(Image(10, 10)), std::invalid_argument);
}

TEST(Detector, FitOnEmptySetThrows) {
  NoveltyDetector detector(tiny_config(Preprocessing::kRaw, ReconstructionScore::kMse));
  Rng rng(5);
  EXPECT_THROW(detector.fit({}, rng), std::invalid_argument);
}

TEST_F(NoveltyPipelineTest, RawMseDetectorLearnsToReconstruct) {
  NoveltyDetector detector(tiny_config(Preprocessing::kRaw, ReconstructionScore::kMse));
  Rng rng(6);
  const auto history = detector.fit(train_->images(), rng);
  EXPECT_LT(history.epoch_loss.back(), history.epoch_loss.front());
  EXPECT_TRUE(detector.is_fitted());
  // The target class should mostly not be flagged.
  int flagged = 0;
  for (int64_t i = 0; i < train_->size(); ++i) {
    flagged += detector.classify(train_->image(i)).is_novel ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(train_->size()), 0.05);
}

TEST_F(NoveltyPipelineTest, ProposedPipelineSeparatesNovelDataset) {
  NoveltyDetector detector(tiny_config(Preprocessing::kVbp, ReconstructionScore::kSsim));
  detector.attach_steering_model(steering_);
  Rng rng(7);
  detector.fit(train_->images(), rng);

  // Target-class scores (SSIM) must be clearly higher than novel scores.
  const auto target_scores = detector.scores(train_->images());
  const auto novel_scores = detector.scores(novel_->images());
  double target_mean = 0.0, novel_mean = 0.0;
  for (double s : target_scores) target_mean += s;
  for (double s : novel_scores) novel_mean += s;
  target_mean /= static_cast<double>(target_scores.size());
  novel_mean /= static_cast<double>(novel_scores.size());
  EXPECT_GT(target_mean, novel_mean + 0.1);

  // Most novel images flagged.
  int flagged = 0;
  for (int64_t i = 0; i < novel_->size(); ++i) {
    flagged += detector.classify(novel_->image(i)).is_novel ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(flagged) / static_cast<double>(novel_->size()), 0.7);
}

TEST_F(NoveltyPipelineTest, ClassifyReportsScoreAndThreshold) {
  NoveltyDetector detector(tiny_config(Preprocessing::kRaw, ReconstructionScore::kSsim));
  Rng rng(8);
  detector.fit(train_->images(), rng);
  const NoveltyResult result = detector.classify(train_->image(0));
  EXPECT_DOUBLE_EQ(result.threshold, detector.threshold().threshold());
  EXPECT_EQ(result.is_novel, detector.threshold().is_novel(result.score));
}

TEST_F(NoveltyPipelineTest, VariantScoringSharesOneAutoencoder) {
  NoveltyDetector detector(tiny_config(Preprocessing::kVbp, ReconstructionScore::kSsim));
  detector.attach_steering_model(steering_);
  Rng rng = rng_->split();
  detector.fit(train_->images(), rng);
  ASSERT_TRUE(detector.has_variant_calibrations());

  const Image& probe = train_->image(0);
  // kPrimary is the configured pipeline, bit for bit.
  EXPECT_DOUBLE_EQ(detector.score_variant(DetectorVariant::kPrimary, probe),
                   detector.score(probe));
  // kPreprocessedMse scores the same VBP mask with MSE instead of SSIM.
  const Image mask = detector.preprocess(probe);
  EXPECT_DOUBLE_EQ(detector.score_variant(DetectorVariant::kPreprocessedMse, probe),
                   detector.variant_score_pair(DetectorVariant::kPreprocessedMse, mask,
                                               detector.reconstruct(mask)));
  // kRawMse never touches saliency: raw frame through the same autoencoder.
  EXPECT_DOUBLE_EQ(detector.score_variant(DetectorVariant::kRawMse, probe),
                   detector.variant_score_pair(DetectorVariant::kRawMse, probe,
                                               detector.reconstruct(probe)));
  // Each rung carries its own fitted calibration; the degraded rungs are
  // MSE-scored, so their thresholds use the high-is-novel orientation.
  for (int v = 0; v < kDetectorVariantCount; ++v) {
    const auto variant = static_cast<DetectorVariant>(v);
    EXPECT_TRUE(std::isfinite(detector.variant_calibration(variant).threshold.threshold()));
  }
  // Most training frames must be admitted by every rung's own threshold
  // (each is calibrated at the 99th percentile of its own score stream).
  for (int v = 0; v < kDetectorVariantCount; ++v) {
    const auto variant = static_cast<DetectorVariant>(v);
    int flagged = 0;
    for (int64_t i = 0; i < train_->size(); ++i) {
      const double s = detector.score_variant(variant, train_->image(i));
      flagged += detector.variant_calibration(variant).threshold.is_novel(s) ? 1 : 0;
    }
    EXPECT_LE(flagged, train_->size() / 10) << detector_variant_name(variant);
  }
}

TEST(Detector, VariantCalibrationMissingThrows) {
  NoveltyDetectorConfig config = tiny_config(Preprocessing::kRaw, ReconstructionScore::kMse);
  NoveltyDetector detector(config);
  EXPECT_FALSE(detector.has_variant_calibrations());
  EXPECT_THROW(detector.variant_calibration(DetectorVariant::kRawMse), std::logic_error);
}

TEST_F(NoveltyPipelineTest, PreprocessVbpProducesNormalizedMask) {
  NoveltyDetector detector(tiny_config(Preprocessing::kVbp, ReconstructionScore::kSsim));
  detector.attach_steering_model(steering_);
  const Image mask = detector.preprocess(train_->image(0));
  EXPECT_GE(mask.min(), 0.0f);
  EXPECT_LE(mask.max(), 1.0f);
  EXPECT_EQ(mask.height(), kH);
}

TEST_F(NoveltyPipelineTest, SsimScoreOfTargetAboveNoisyInput) {
  NoveltyDetector detector(tiny_config(Preprocessing::kRaw, ReconstructionScore::kSsim));
  Rng rng(9);
  detector.fit(train_->images(), rng);
  Rng noise_rng(10);
  const Image clean = train_->image(0);
  const Image noisy = add_gaussian_noise(clean, 0.25, noise_rng);
  EXPECT_GT(detector.score(clean), detector.score(noisy));
}

TEST_F(NoveltyPipelineTest, PipelineRoundTripsThroughFile) {
  NoveltyDetector detector(tiny_config(Preprocessing::kVbp, ReconstructionScore::kSsim));
  detector.attach_steering_model(steering_);
  Rng rng(11);
  detector.fit(train_->images(), rng);

  std::stringstream ss;
  PipelineIo::save(ss, detector, steering_);
  LoadedPipeline loaded = PipelineIo::load(ss);
  ASSERT_NE(loaded.detector, nullptr);
  ASSERT_NE(loaded.steering_model, nullptr);

  for (int64_t i = 0; i < 5; ++i) {
    const Image& image = train_->image(i);
    EXPECT_NEAR(loaded.detector->score(image), detector.score(image), 1e-5);
    EXPECT_EQ(loaded.detector->classify(image).is_novel, detector.classify(image).is_novel);
  }
  EXPECT_DOUBLE_EQ(loaded.detector->threshold().threshold(), detector.threshold().threshold());
}

TEST_F(NoveltyPipelineTest, SaveUnfittedThrows) {
  NoveltyDetector detector(tiny_config(Preprocessing::kRaw, ReconstructionScore::kMse));
  std::stringstream ss;
  EXPECT_THROW(PipelineIo::save(ss, detector, nullptr), std::logic_error);
}

TEST_F(NoveltyPipelineTest, SaveVbpWithoutSteeringThrows) {
  NoveltyDetector detector(tiny_config(Preprocessing::kVbp, ReconstructionScore::kSsim));
  detector.attach_steering_model(steering_);
  Rng rng(12);
  detector.fit(train_->images(), rng);
  std::stringstream ss;
  EXPECT_THROW(PipelineIo::save(ss, detector, nullptr), std::invalid_argument);
}

TEST(Detector, SsimWindowOptionIsHonored) {
  // A 5x5 SSIM window must work on images an 11x11 window would reject.
  NoveltyDetectorConfig config;
  config.height = 8;
  config.width = 10;
  config.preprocessing = Preprocessing::kRaw;
  config.score = ReconstructionScore::kSsim;
  config.autoencoder = AutoencoderConfig::tiny(8, 10);
  config.train_epochs = 5;
  config.ssim.window = 5;
  NoveltyDetector detector(config);
  Rng rng(44);
  std::vector<Image> images;
  for (int i = 0; i < 8; ++i) images.emplace_back(8, 10, rng.uniform_tensor({80}, 0.0, 1.0));
  detector.fit(images, rng);
  const double score = detector.score(images[0]);
  EXPECT_GE(score, -1.0);
  EXPECT_LE(score, 1.0);
}

TEST(Detector, DefaultWindowRejectsTooSmallImages) {
  NoveltyDetectorConfig config;
  config.height = 8;
  config.width = 10;
  config.score = ReconstructionScore::kSsim;
  EXPECT_THROW(NoveltyDetector{config}, std::invalid_argument);
}

TEST(Detector, SsimConfigRoundTripsThroughPipelineFile) {
  NoveltyDetectorConfig config;
  config.height = 16;
  config.width = 20;
  config.preprocessing = Preprocessing::kRaw;
  config.score = ReconstructionScore::kSsim;
  config.autoencoder = AutoencoderConfig::tiny(16, 20);
  config.train_epochs = 5;
  config.ssim.window = 7;
  config.ssim.stride = 2;
  NoveltyDetector detector(config);
  Rng rng(45);
  std::vector<Image> images;
  for (int i = 0; i < 8; ++i) images.emplace_back(16, 20, rng.uniform_tensor({320}, 0.0, 1.0));
  detector.fit(images, rng);

  std::stringstream ss;
  PipelineIo::save(ss, detector, nullptr);
  LoadedPipeline loaded = PipelineIo::load(ss);
  EXPECT_EQ(loaded.detector->config().ssim.window, 7);
  EXPECT_EQ(loaded.detector->config().ssim.stride, 2);
  EXPECT_NEAR(loaded.detector->score(images[0]), detector.score(images[0]), 1e-6);
}

TEST(PipelineIoTest, CorruptFileRejected) {
  std::stringstream ss("not a pipeline file at all________");
  EXPECT_THROW(PipelineIo::load(ss), SerializationError);
}

}  // namespace
}  // namespace salnov::core
