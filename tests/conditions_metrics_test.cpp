// Tests for environmental-condition transforms (fog/dusk/rain), the
// fast SAT-based SSIM vs its reference implementation, average precision,
// and bootstrap AUC confidence intervals.
#include <gtest/gtest.h>

#include <cmath>

#include "image/transforms.hpp"
#include "metrics/roc.hpp"
#include "metrics/ssim.hpp"
#include "roadsim/conditions.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "roadsim/rasterizer.hpp"
#include "tensor/rng.hpp"

namespace salnov {
namespace {

roadsim::Sample sample_scene(uint64_t seed) {
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(seed);
  return gen.generate(rng);
}

Image scene_gray(const roadsim::Sample& s, int64_t h = 60, int64_t w = 160) {
  return resize_bilinear(s.rgb.to_grayscale(), h, w);
}

// ---------------------------------------------------------------------------
// Fog.

TEST(Fog, ZeroDensityIsIdentity) {
  const auto s = sample_scene(1);
  const Image frame = scene_gray(s);
  const Image fogged = roadsim::apply_fog(frame, s.params, 0.0);
  EXPECT_TRUE(fogged.tensor().allclose(frame.tensor(), 1e-6f));
}

TEST(Fog, ThickensTowardHorizon) {
  const auto s = sample_scene(2);
  const Image frame = scene_gray(s);
  const float fog_color = 0.75f;
  const Image fogged = roadsim::apply_fog(frame, s.params, 2.0, fog_color);
  const roadsim::RoadGeometry geo(s.params, frame.height(), frame.width());
  // Just below the horizon the image should be closer to the fog color than
  // at the bottom row.
  const int64_t near_row = frame.height() - 2;
  const int64_t far_row = geo.horizon_row() + 2;
  double near_dist = 0.0, far_dist = 0.0;
  for (int64_t x = 0; x < frame.width(); ++x) {
    near_dist += std::abs(fogged(near_row, x) - fog_color);
    far_dist += std::abs(fogged(far_row, x) - fog_color);
  }
  EXPECT_LT(far_dist, near_dist);
}

TEST(Fog, HighDensityConvergesToFogColor) {
  const auto s = sample_scene(3);
  const Image frame = scene_gray(s);
  const Image fogged = roadsim::apply_fog(frame, s.params, 50.0, 0.6f);
  const roadsim::RoadGeometry geo(s.params, frame.height(), frame.width());
  for (int64_t x = 0; x < frame.width(); x += 13) {
    EXPECT_NEAR(fogged(geo.horizon_row(), x), 0.6f, 0.02f);
  }
}

TEST(Fog, SimilarityFallsMonotonicallyWithDensity) {
  const auto s = sample_scene(4);
  const Image frame = scene_gray(s);
  double previous = 1.1;
  for (double density : {0.2, 0.6, 1.2, 2.5}) {
    const double sim = ssim(frame, roadsim::apply_fog(frame, s.params, density));
    EXPECT_LT(sim, previous);
    previous = sim;
  }
}

TEST(Fog, NegativeDensityThrows) {
  const auto s = sample_scene(5);
  EXPECT_THROW(roadsim::apply_fog(scene_gray(s), s.params, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dusk.

TEST(Dusk, ZeroSeverityIsIdentity) {
  const auto s = sample_scene(6);
  const Image frame = scene_gray(s);
  EXPECT_TRUE(roadsim::apply_dusk(frame, 0.0).tensor().allclose(frame.tensor(), 1e-6f));
}

TEST(Dusk, DarkensGlobally) {
  const auto s = sample_scene(7);
  const Image frame = scene_gray(s);
  const Image dark = roadsim::apply_dusk(frame, 0.7);
  EXPECT_LT(dark.mean(), frame.mean() * 0.75f);
}

TEST(Dusk, SeverityOutOfRangeThrows) {
  const auto s = sample_scene(8);
  EXPECT_THROW(roadsim::apply_dusk(scene_gray(s), 1.5), std::invalid_argument);
  EXPECT_THROW(roadsim::apply_dusk(scene_gray(s), -0.1), std::invalid_argument);
}

TEST(Dusk, PreservesRelativeBrightOrdering) {
  // Gamma lift keeps bright features bright relative to dark ones.
  Image frame(20, 20);
  frame(5, 5) = 0.9f;
  frame(10, 10) = 0.2f;
  const Image dark = roadsim::apply_dusk(frame, 0.5);
  EXPECT_GT(dark(5, 5), dark(10, 10));
}

// ---------------------------------------------------------------------------
// Rain.

TEST(Rain, ZeroStreaksOnlyReducesContrast) {
  const auto s = sample_scene(9);
  const Image frame = scene_gray(s);
  Rng rng(10);
  const Image rainy = roadsim::apply_rain(frame, 0, rng);
  EXPECT_NEAR(rainy.mean(), frame.mean(), 0.02f);
  // Contrast (stddev) strictly reduced.
  auto stddev_of = [](const Image& img) {
    const float mean = img.mean();
    double acc = 0.0;
    for (int64_t i = 0; i < img.numel(); ++i) {
      const double d = img.tensor()[i] - mean;
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(img.numel()));
  };
  EXPECT_LT(stddev_of(rainy), stddev_of(frame));
}

TEST(Rain, StreaksChangePixels) {
  const auto s = sample_scene(11);
  const Image frame = scene_gray(s);
  Rng rng(12);
  const Image rainy = roadsim::apply_rain(frame, 40, rng);
  EXPECT_GT(Tensor::max_abs_diff(rainy.tensor(), frame.tensor()), 0.1f);
  EXPECT_GE(rainy.min(), 0.0f);
  EXPECT_LE(rainy.max(), 1.0f);
}

TEST(Rain, DeterministicGivenRng) {
  const auto s = sample_scene(13);
  const Image frame = scene_gray(s);
  Rng a(14), b(14);
  EXPECT_EQ(roadsim::apply_rain(frame, 20, a).tensor(), roadsim::apply_rain(frame, 20, b).tensor());
}

TEST(Rain, NegativeCountThrows) {
  const auto s = sample_scene(15);
  Rng rng(16);
  EXPECT_THROW(roadsim::apply_rain(scene_gray(s), -1, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fast SSIM vs reference.

TEST(FastSsim, MatchesReferenceOnRandomImages) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const Image a(40, 50, rng.uniform_tensor({2000}, 0.0, 1.0));
    const Image b(40, 50, rng.uniform_tensor({2000}, 0.0, 1.0));
    EXPECT_NEAR(ssim(a, b), ssim_reference(a, b), 1e-9);
  }
}

TEST(FastSsim, MatchesReferenceWithStrideAndWindow) {
  Rng rng(18);
  const Image a(30, 44, rng.uniform_tensor({30 * 44}, 0.0, 1.0));
  const Image b(30, 44, rng.uniform_tensor({30 * 44}, 0.0, 1.0));
  for (int64_t window : {5, 7, 11}) {
    for (int64_t stride : {1, 2, 3}) {
      SsimOptions options;
      options.window = window;
      options.stride = stride;
      EXPECT_NEAR(ssim(a, b, options), ssim_reference(a, b, options), 1e-9)
          << "window " << window << " stride " << stride;
    }
  }
}

TEST(FastSsim, MapMatchesReferencePerWindow) {
  Rng rng(19);
  const Image a(24, 24, rng.uniform_tensor({576}, 0.0, 1.0));
  const Image b(24, 24, rng.uniform_tensor({576}, 0.0, 1.0));
  const Image map = ssim_map(a, b);
  for (int64_t i = 0; i < map.height(); i += 3) {
    for (int64_t j = 0; j < map.width(); j += 3) {
      const double reference = ssim_from_stats(window_stats(a, b, i, j, 11), SsimOptions{});
      EXPECT_NEAR(map(i, j), reference, 1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// Average precision.

TEST(AveragePrecision, PerfectRankingScoresOne) {
  EXPECT_DOUBLE_EQ(average_precision_high({5, 6}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(average_precision_low({1, 2}, {5, 6, 7}), 1.0);
}

TEST(AveragePrecision, WorstRankingScoresLow) {
  const double ap = average_precision_high({1, 2}, {5, 6, 7});
  // Positives ranked last among 5: AP = (1/4 + 2/5) / 2.
  EXPECT_NEAR(ap, (1.0 / 4.0 + 2.0 / 5.0) / 2.0, 1e-12);
}

TEST(AveragePrecision, EmptyClassThrows) {
  EXPECT_THROW(average_precision_high({}, {1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Bootstrap AUC confidence interval.

TEST(BootstrapCi, ContainsPointEstimate) {
  Rng rng(20);
  std::vector<double> pos, neg;
  for (int i = 0; i < 60; ++i) {
    pos.push_back(rng.normal(1.0, 1.0));
    neg.push_back(rng.normal(0.0, 1.0));
  }
  Rng boot(21);
  const ConfidenceInterval ci = bootstrap_auc_ci(pos, neg, boot, 500, 0.95);
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GT(ci.upper - ci.lower, 0.0);
}

TEST(BootstrapCi, TightForPerfectSeparation) {
  std::vector<double> pos{10, 11, 12, 13, 14, 15};
  std::vector<double> neg{0, 1, 2, 3, 4, 5};
  Rng boot(22);
  const ConfidenceInterval ci = bootstrap_auc_ci(pos, neg, boot, 300, 0.95);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lower, 1.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(BootstrapCi, WiderAtHigherConfidence) {
  Rng rng(23);
  std::vector<double> pos, neg;
  for (int i = 0; i < 40; ++i) {
    pos.push_back(rng.normal(0.5, 1.0));
    neg.push_back(rng.normal(0.0, 1.0));
  }
  Rng boot_a(24), boot_b(24);
  const ConfidenceInterval narrow = bootstrap_auc_ci(pos, neg, boot_a, 800, 0.80);
  const ConfidenceInterval wide = bootstrap_auc_ci(pos, neg, boot_b, 800, 0.99);
  EXPECT_GE(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(BootstrapCi, ValidatesArguments) {
  Rng rng(25);
  std::vector<double> a{1.0, 2.0};
  EXPECT_THROW(bootstrap_auc_ci(a, a, rng, 5), std::invalid_argument);
  EXPECT_THROW(bootstrap_auc_ci(a, a, rng, 100, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace salnov
