// Property-based sweeps over the SSIM metric itself: invariants from Wang &
// Bovik's definition checked across window sizes, strides, and image
// content, plus consistency between the standalone metric and the
// differentiable loss.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "image/transforms.hpp"
#include "metrics/ssim.hpp"
#include "nn/ssim_loss.hpp"
#include "prop.hpp"
#include "tensor/rng.hpp"

namespace salnov {
namespace {

Image random_image(int64_t h, int64_t w, Rng& rng, double lo = 0.0, double hi = 1.0) {
  return Image(h, w, rng.uniform_tensor({h * w}, lo, hi));
}

Image random_image(int64_t h, int64_t w, uint64_t seed, double lo = 0.0, double hi = 1.0) {
  Rng rng(seed);
  return random_image(h, w, rng, lo, hi);
}

using SsimCase = std::tuple<int, int>;  // window, stride

class SsimMetricSweep : public ::testing::TestWithParam<SsimCase> {
 protected:
  SsimOptions options() const {
    SsimOptions o;
    o.window = std::get<0>(GetParam());
    o.stride = std::get<1>(GetParam());
    return o;
  }
};

TEST_P(SsimMetricSweep, IdentityScoresOne) {
  const SsimOptions o = options();
  prop::for_all<double>(
      "ssim(x, x) == 1",
      [&o](Rng& rng) {
        const Image img = random_image(24, 30, rng);
        return ssim(img, img, o);
      },
      [](double s) { return std::abs(s - 1.0) <= 1e-9; }, {20, 1});
}

TEST_P(SsimMetricSweep, SymmetricInArguments) {
  const SsimOptions o = options();
  prop::for_all<double>(
      "ssim(a, b) == ssim(b, a)",
      [&o](Rng& rng) {
        const Image a = random_image(24, 30, rng);
        const Image b = random_image(24, 30, rng);
        return ssim(a, b, o) - ssim(b, a, o);
      },
      [](double gap) { return std::abs(gap) <= 1e-12; }, {20, 2});
}

TEST_P(SsimMetricSweep, BoundedByOne) {
  const SsimOptions o = options();
  prop::for_all<double>(
      "ssim in [-1, 1]",
      [&o](Rng& rng) {
        const Image a = random_image(24, 30, rng);
        const Image b = random_image(24, 30, rng);
        return ssim(a, b, o);
      },
      [](double s) { return s >= -1.0 && s <= 1.0 + 1e-12; }, {40, 10});
}

TEST_P(SsimMetricSweep, DecreasesWithNoiseLevel) {
  const Image base = random_image(24, 30, 4, 0.3, 0.7);
  double previous = 1.1;
  for (double sigma : {0.01, 0.05, 0.15, 0.4}) {
    Rng rng(5);
    const double s = ssim(base, add_gaussian_noise(base, sigma, rng), options());
    EXPECT_LT(s, previous);
    previous = s;
  }
}

TEST_P(SsimMetricSweep, InvariantToGlobalIntensityFlip) {
  // SSIM(x, y) = SSIM(1-x, 1-y): complementing both images preserves all
  // central moments and flips means symmetrically about 1/2... (the
  // luminance term is not exactly invariant, so allow a loose tolerance).
  const Image a = random_image(24, 30, 6, 0.2, 0.8);
  Image b = a;
  Rng rng(7);
  b = add_gaussian_noise(b, 0.1, rng);
  Image a_flip = a;
  a_flip.tensor().apply([](float v) { return 1.0f - v; });
  Image b_flip = b;
  b_flip.tensor().apply([](float v) { return 1.0f - v; });
  EXPECT_NEAR(ssim(a, b, options()), ssim(a_flip, b_flip, options()), 0.05);
}

TEST_P(SsimMetricSweep, MetricMatchesLossComplement) {
  const int64_t h = 24, w = 30;
  const Image a = random_image(h, w, 8);
  const Image b = random_image(h, w, 9);
  SsimOptions o = options();
  nn::SsimLoss loss(h, w, o);
  const double via_loss = 1.0 - loss.value(b.flattened().reshape({1, h * w}),
                                           a.flattened().reshape({1, h * w}));
  EXPECT_NEAR(via_loss, ssim(b, a, o), 1e-6);
}

TEST_P(SsimMetricSweep, MapAveragesToMeanSsim) {
  const Image a = random_image(24, 30, 10);
  const Image b = random_image(24, 30, 11);
  const SsimOptions o = options();
  const Image map = ssim_map(a, b, o);
  EXPECT_NEAR(map.tensor().mean(), ssim(a, b, o), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Grid, SsimMetricSweep,
                         ::testing::Values(SsimCase{3, 1}, SsimCase{5, 2}, SsimCase{7, 1},
                                           SsimCase{11, 1}, SsimCase{11, 4}),
                         [](const ::testing::TestParamInfo<SsimCase>& info) {
                           return "w" + std::to_string(std::get<0>(info.param)) + "s" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Perceptual-ordering properties that motivate the paper's metric choice.

TEST(SsimPerception, BrightnessBeatsNoiseAtEveryMatchedMse) {
  // The Fig. 3 property as a sweep: at any matched MSE target, SSIM ranks
  // the brightness shift above the noise.
  Image base(30, 60);
  for (int64_t y = 0; y < 30; ++y) {
    for (int64_t x = 0; x < 60; ++x) {
      base(y, x) = 0.25f + 0.5f * static_cast<float>(x + y) / 88.0f;
    }
  }
  for (double target : {30.0, 90.0, 200.0}) {
    Rng rng(12);
    const double sigma = calibrate_noise_for_mse(base, target, rng);
    const double delta = calibrate_brightness_for_mse(base, target);
    Rng replay(12);
    const double s_noise = ssim(base, add_gaussian_noise(base, sigma, replay));
    const double s_bright = ssim(base, adjust_brightness(base, delta));
    EXPECT_GT(s_bright, s_noise) << "at target MSE " << target;
  }
}

TEST(SsimPerception, StructuralShuffleDestroysSimilarity) {
  // Shuffling pixels preserves the global histogram (so global MSE-style
  // stats change little) but destroys structure; SSIM must fall sharply.
  const Image base = random_image(24, 30, 13, 0.3, 0.7);
  Image shuffled = base;
  Rng rng(14);
  std::vector<int64_t> order(static_cast<size_t>(base.numel()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  rng.shuffle(order);
  for (int64_t i = 0; i < base.numel(); ++i) {
    shuffled.tensor()[i] = base.tensor()[order[static_cast<size_t>(i)]];
  }
  EXPECT_LT(ssim(base, shuffled), 0.3);
}

TEST(SsimPerception, SmallTranslationDegradesGracefully) {
  Image base(30, 60);
  for (int64_t y = 0; y < 30; ++y) {
    for (int64_t x = 0; x < 60; ++x) {
      base(y, x) = 0.5f + 0.4f * std::sin(static_cast<float>(x) / 5.0f);
    }
  }
  const double s1 = ssim(base, translate(base, 0, 1));
  const double s4 = ssim(base, translate(base, 0, 4));
  EXPECT_GT(s1, s4);  // larger shifts are less similar
  EXPECT_GT(s1, 0.5);
}

}  // namespace
}  // namespace salnov
