// Unit tests for the saliency methods: VisualBackProp, gradient saliency,
// and layer-wise relevance propagation.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "roadsim/rasterizer.hpp"
#include "saliency/gradient_saliency.hpp"
#include "saliency/lrp.hpp"
#include "saliency/visual_backprop.hpp"
#include "test_util.hpp"

namespace salnov::saliency {
namespace {

nn::Sequential tiny_model(Rng& rng, int64_t h = 24, int64_t w = 48) {
  return driving::build_pilotnet(driving::PilotNetConfig::tiny(h, w), rng);
}

TEST(DeconvOnes, Stride1ScattersWindowSums) {
  // A single unit at (0,0) expands to a k x k block of ones.
  Tensor map({1, 1}, {1.0f});
  const Tensor out = deconv_ones(map, 3, 3, 1, 0, 3, 3);
  for (int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(out[i], 1.0f);
}

TEST(DeconvOnes, StrideSpacesContributions) {
  Tensor map({2, 1}, {1.0f, 1.0f});
  const Tensor out = deconv_ones(map, 1, 1, 2, 0, 3, 1);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
}

TEST(DeconvOnes, OverlapAccumulates) {
  Tensor map({1, 2}, {1.0f, 1.0f});
  // kernel 3 stride 1: columns 0..2 and 1..3 overlap at 1..2.
  const Tensor out = deconv_ones(map, 1, 3, 1, 0, 1, 4);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 1.0f);
}

TEST(DeconvOnes, ClipsToTargetSize) {
  Tensor map({2, 2}, {1, 1, 1, 1});
  // Transposed-size would be 5x5; we ask for 4x4 and drop the overflow.
  const Tensor out = deconv_ones(map, 3, 3, 2, 0, 4, 4);
  EXPECT_EQ(out.shape(), (Shape{4, 4}));
}

TEST(DeconvOnes, PaddingShiftsBack) {
  Tensor map({1, 1}, {1.0f});
  const Tensor out = deconv_ones(map, 3, 3, 1, 1, 1, 1);
  EXPECT_FLOAT_EQ(out[0], 1.0f);  // center tap lands at (0,0) with pad 1
}

TEST(DeconvOnes, RejectsNonMatrix) {
  EXPECT_THROW(deconv_ones(Tensor({2, 2, 2}), 3, 3, 1, 0, 4, 4), std::invalid_argument);
}

TEST(DeconvOnes, ConservesMassTimesKernelAreaWhenUnclipped) {
  // Each input value is scattered into kh*kw output cells; with a target
  // large enough that nothing clips, sum(out) = sum(in) * kh * kw.
  Rng rng(100);
  const Tensor map = rng.uniform_tensor({3, 4}, 0.0, 1.0);
  const Tensor out = deconv_ones(map, 3, 5, 2, 0, 3 * 2 + 3, 4 * 2 + 5);
  EXPECT_NEAR(out.sum(), map.sum() * 3.0f * 5.0f, 1e-3f);
}

TEST(DeconvOnes, ZeroMapStaysZero) {
  const Tensor out = deconv_ones(Tensor::zeros({4, 4}), 3, 3, 1, 0, 6, 6);
  EXPECT_FLOAT_EQ(out.squared_norm(), 0.0f);
}

TEST(Vbp, MaskHasInputResolutionAndUnitRange) {
  Rng rng(1);
  nn::Sequential model = tiny_model(rng);
  VisualBackProp vbp;
  Rng img_rng(2);
  const Image input(24, 48, img_rng.uniform_tensor({24 * 48}, 0.0, 1.0));
  const Image mask = vbp.compute(model, input);
  EXPECT_EQ(mask.height(), 24);
  EXPECT_EQ(mask.width(), 48);
  EXPECT_GE(mask.min(), 0.0f);
  EXPECT_LE(mask.max(), 1.0f);
}

TEST(Vbp, AveragedMapsMatchStageCount) {
  Rng rng(3);
  nn::Sequential model = tiny_model(rng);
  VisualBackProp vbp;
  std::vector<Tensor> maps;
  vbp.compute_with_maps(model, Image(24, 48), maps);
  EXPECT_EQ(maps.size(), driving::conv_stage_outputs(model).size());
}

TEST(Vbp, RequiresConvStages) {
  Rng rng(4);
  nn::Sequential dense_only;
  dense_only.emplace<nn::Dense>(4, 2, rng);
  VisualBackProp vbp;
  EXPECT_THROW(vbp.compute(dense_only, Image(2, 2)), std::invalid_argument);
}

TEST(Vbp, DeterministicForSameInput) {
  Rng rng(5);
  nn::Sequential model = tiny_model(rng);
  VisualBackProp vbp;
  Rng img_rng(6);
  const Image input(24, 48, img_rng.uniform_tensor({24 * 48}, 0.0, 1.0));
  const Image a = vbp.compute(model, input);
  const Image b = vbp.compute(model, input);
  EXPECT_EQ(a.tensor(), b.tensor());
}

TEST(Vbp, MaskDependsOnWhatTheModelLearned) {
  // The mechanical core of the paper's Fig. 2 claim: VBP masks are a
  // function of the *learned weights*, not just the input — the same
  // architecture trained on real vs random labels produces substantially
  // different masks for the same image. (The paper's visual claim — that
  // the real-label mask traces the road — is inherently qualitative; the
  // quantitative road-alignment proxies are reported, not asserted, by
  // bench_fig2_vbp_meaning, because they are noisy across training runs on
  // synthetic scenes.)
  constexpr int64_t kH = 24, kW = 48;
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(10);
  const auto dataset = roadsim::DrivingDataset::generate(gen, 100, kH, kW, rng);

  nn::Sequential trained = tiny_model(rng, kH, kW);
  nn::Sequential random = tiny_model(rng, kH, kW);
  driving::SteeringTrainOptions options;
  options.epochs = 20;
  options.learning_rate = 2e-3;
  driving::train_steering_model(trained, dataset, options, rng);
  options.randomize_labels = true;
  driving::train_steering_model(random, dataset, options, rng);

  VisualBackProp vbp;
  double mean_diff = 0.0;
  const int images = 8;
  for (int i = 0; i < images; ++i) {
    const Image a = vbp.compute(trained, dataset.image(i));
    const Image b = vbp.compute(random, dataset.image(i));
    mean_diff += Tensor::max_abs_diff(a.tensor(), b.tensor());
  }
  // Both masks are min-max normalized to [0, 1]; materially different
  // saliency shows up as a large per-image peak difference.
  EXPECT_GT(mean_diff / images, 0.3);
}

TEST(GradientSaliencyTest, MaskShapeAndRange) {
  Rng rng(8);
  nn::Sequential model = tiny_model(rng);
  GradientSaliency gradient;
  Rng img_rng(9);
  const Image input(24, 48, img_rng.uniform_tensor({24 * 48}, 0.0, 1.0));
  const Image mask = gradient.compute(model, input);
  EXPECT_EQ(mask.height(), 24);
  EXPECT_GE(mask.min(), 0.0f);
  EXPECT_LE(mask.max(), 1.0f);
}

TEST(GradientSaliencyTest, LeavesParameterGradientsClean) {
  Rng rng(10);
  nn::Sequential model = tiny_model(rng);
  GradientSaliency gradient;
  gradient.compute(model, Image(24, 48));
  for (nn::Parameter* p : model.parameters()) {
    EXPECT_FLOAT_EQ(p->grad.squared_norm(), 0.0f) << p->name;
  }
}

TEST(GradientSaliencyTest, RequiresScalarOutput) {
  Rng rng(11);
  nn::Sequential model;
  nn::Conv2dConfig cfg{1, 2, 3, 3, 1, 0};
  model.emplace<nn::Conv2d>(cfg, rng);
  GradientSaliency gradient;
  EXPECT_THROW(gradient.compute(model, Image(6, 6)), std::invalid_argument);
}

TEST(Lrp, MaskShapeAndRange) {
  Rng rng(12);
  nn::Sequential model = tiny_model(rng);
  LayerwiseRelevancePropagation lrp;
  Rng img_rng(13);
  const Image input(24, 48, img_rng.uniform_tensor({24 * 48}, 0.0, 1.0));
  const Image mask = lrp.compute(model, input);
  EXPECT_EQ(mask.height(), 24);
  EXPECT_GE(mask.min(), 0.0f);
  EXPECT_LE(mask.max(), 1.0f);
}

TEST(Lrp, ConservationOnBiasFreeConvNet) {
  Rng rng(15);
  nn::Sequential model;
  nn::Conv2dConfig cfg{1, 3, 3, 3, 1, 0};
  model.emplace<nn::Conv2d>(cfg, rng.uniform_tensor({3, 1, 3, 3}, -0.5, 0.5), Tensor::zeros({3}));
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(rng.uniform_tensor({3 * 4 * 4, 1}, -0.5, 0.5), Tensor::zeros({1}));

  LayerwiseRelevancePropagation lrp(1e-9);
  const Image input(6, 6, rng.uniform_tensor({36}, 0.1, 1.0));
  const Tensor r = lrp.relevance(model, input);
  const double output = model.forward(input.as_nchw(), nn::Mode::kInfer)[0];
  EXPECT_NEAR(r.sum(), output, std::abs(output) * 0.05 + 1e-4);
}

TEST(Lrp, HandlesMaxPool) {
  Rng rng(16);
  nn::Sequential model;
  nn::Conv2dConfig cfg{1, 2, 3, 3, 1, 0};
  model.emplace<nn::Conv2d>(cfg, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2, 2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dense>(2 * 3 * 3, 1, rng);
  LayerwiseRelevancePropagation lrp;
  const Image input(8, 8, rng.uniform_tensor({64}, 0.0, 1.0));
  const Image mask = lrp.compute(model, input);
  EXPECT_EQ(mask.height(), 8);
}

TEST(SaliencySpeed, VbpFasterThanLrp) {
  // The paper's §III-B claim, at test scale: VBP should beat LRP clearly
  // (the full benches measure the paper-scale gap).
  Rng rng(17);
  nn::Sequential model =
      driving::build_pilotnet(driving::PilotNetConfig::compact(), rng);
  Rng img_rng(18);
  const Image input(60, 160, img_rng.uniform_tensor({60 * 160}, 0.0, 1.0));

  VisualBackProp vbp;
  LayerwiseRelevancePropagation lrp;
  vbp.compute(model, input);  // warm up
  lrp.compute(model, input);
  // Best-of-3 timing damps scheduler noise on a busy single core.
  auto best_of_3 = [&](auto&& fn) {
    int64_t best = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
    }
    return best;
  };
  const int64_t vbp_us = best_of_3([&] { vbp.compute(model, input); });
  const int64_t lrp_us = best_of_3([&] { lrp.compute(model, input); });
  EXPECT_LT(vbp_us * 2, lrp_us);
}

TEST(MaskEnergyFraction, UniformMaskScoresAreaFraction) {
  Image mask(10, 10);
  mask.tensor().fill(1.0f);
  Image relevance(10, 10);
  for (int64_t x = 0; x < 10; ++x) relevance(0, x) = 1.0f;  // 10% of pixels
  EXPECT_NEAR(mask_energy_fraction(mask, relevance), 0.1, 1e-9);
}

TEST(MaskEnergyFraction, ConcentratedMaskScoresHigh) {
  Image mask(10, 10);
  Image relevance(10, 10);
  for (int64_t x = 0; x < 10; ++x) {
    relevance(0, x) = 1.0f;
    mask(0, x) = 1.0f;
  }
  EXPECT_NEAR(mask_energy_fraction(mask, relevance), 1.0, 1e-9);
}

TEST(MaskEnergyFraction, EmptyMaskScoresZero) {
  Image mask(4, 4);
  Image relevance(4, 4);
  relevance(0, 0) = 1.0f;
  EXPECT_DOUBLE_EQ(mask_energy_fraction(mask, relevance), 0.0);
}

TEST(MaskEnergyFraction, SizeMismatchThrows) {
  EXPECT_THROW(mask_energy_fraction(Image(2, 2), Image(3, 3)), std::invalid_argument);
}

TEST(TopkPrecision, PerfectWhenBrightestPixelsAreRelevant) {
  Image mask(10, 10);
  Image relevance(10, 10);
  for (int64_t x = 0; x < 5; ++x) {
    mask(0, x) = 1.0f;
    relevance(0, x) = 1.0f;
  }
  EXPECT_DOUBLE_EQ(topk_precision(mask, relevance, 0.05), 1.0);
}

TEST(TopkPrecision, ZeroWhenBrightestPixelsMissRelevance) {
  Image mask(10, 10);
  Image relevance(10, 10);
  for (int64_t x = 0; x < 5; ++x) mask(0, x) = 1.0f;
  for (int64_t x = 0; x < 5; ++x) relevance(9, x) = 1.0f;
  EXPECT_DOUBLE_EQ(topk_precision(mask, relevance, 0.05), 0.0);
}

TEST(TopkPrecision, UniformMaskScoresNearAreaFraction) {
  // With a constant mask the "top" pixels are arbitrary; precision is the
  // relevance area fraction in expectation. Use a graded mask to fix order.
  Image mask(10, 10);
  for (int64_t i = 0; i < mask.numel(); ++i) mask.tensor()[i] = static_cast<float>(i);
  Image relevance(10, 10);
  for (int64_t i = 80; i < 100; ++i) relevance.tensor()[i] = 1.0f;  // top-20 pixels by value
  EXPECT_DOUBLE_EQ(topk_precision(mask, relevance, 0.20), 1.0);
  EXPECT_DOUBLE_EQ(topk_precision(mask, relevance, 0.40), 0.5);
}

TEST(TopkPrecision, ValidatesArguments) {
  EXPECT_THROW(topk_precision(Image(2, 2), Image(3, 3), 0.1), std::invalid_argument);
  EXPECT_THROW(topk_precision(Image(2, 2), Image(2, 2), 0.0), std::invalid_argument);
  EXPECT_THROW(topk_precision(Image(2, 2), Image(2, 2), 1.5), std::invalid_argument);
}

TEST(Dilate, RadiusZeroIsIdentity) {
  Image mask(4, 4);
  mask(1, 2) = 1.0f;
  const Image out = dilate(mask, 0);
  EXPECT_EQ(out.tensor(), mask.tensor());
}

TEST(Dilate, GrowsSinglePixelToSquare) {
  Image mask(5, 5);
  mask(2, 2) = 1.0f;
  const Image out = dilate(mask, 1);
  double on = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) on += out.tensor()[i];
  EXPECT_DOUBLE_EQ(on, 9.0);
  EXPECT_FLOAT_EQ(out(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(out(3, 3), 1.0f);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
}

TEST(Dilate, ClampsAtBorders) {
  Image mask(3, 3);
  mask(0, 0) = 1.0f;
  const Image out = dilate(mask, 1);
  EXPECT_FLOAT_EQ(out(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(out(2, 2), 0.0f);
}

TEST(Dilate, NegativeRadiusThrows) { EXPECT_THROW(dilate(Image(2, 2), -1), std::invalid_argument); }

}  // namespace
}  // namespace salnov::saliency
