// Unit tests for nn layers: forward correctness on hand-computed examples
// and numerical gradient checks (central differences) for every layer.
#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "test_util.hpp"

namespace salnov::nn {
namespace {

TEST(Dense, ForwardMatchesHandComputation) {
  // y = x W + b with known numbers.
  Dense dense(Tensor({2, 2}, {1, 2, 3, 4}), Tensor({2}, {10, 20}));
  const Tensor out = dense.forward(Tensor({1, 2}, {1, 1}), Mode::kInfer);
  test::expect_tensors_near(out, Tensor({1, 2}, {1 + 3 + 10, 2 + 4 + 20}));
}

TEST(Dense, ForwardBatch) {
  Dense dense(Tensor({1, 1}, {2}), Tensor({1}, {1}));
  const Tensor out = dense.forward(Tensor({3, 1}, {1, 2, 3}), Mode::kInfer);
  test::expect_tensors_near(out, Tensor({3, 1}, {3, 5, 7}));
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(1);
  Dense dense(3, 2, rng);
  EXPECT_THROW(dense.forward(Tensor({1, 4}), Mode::kInfer), std::invalid_argument);
}

TEST(Dense, BackwardWithoutForwardThrows) {
  Rng rng(1);
  Dense dense(2, 2, rng);
  EXPECT_THROW(dense.backward(Tensor({1, 2})), std::logic_error);
}

TEST(Dense, GradientCheck) {
  Rng rng(42);
  Dense dense(4, 3, rng);
  const Tensor input = rng.uniform_tensor({2, 4}, -1.0, 1.0);
  test::check_layer_gradients(dense, input, rng);
}

TEST(Dense, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(7);
  Dense dense(2, 2, rng);
  const Tensor input = rng.uniform_tensor({1, 2}, -1.0, 1.0);
  const Tensor seed = Tensor::ones({1, 2});
  dense.forward(input, Mode::kTrain);
  dense.backward(seed);
  const Tensor first = dense.weight().grad;
  dense.forward(input, Mode::kTrain);
  dense.backward(seed);
  test::expect_tensors_near(dense.weight().grad, first * 2.0f, 1e-5f);
}

TEST(Dense, InvalidConstructionThrows) {
  Rng rng(1);
  EXPECT_THROW(Dense(0, 2, rng), std::invalid_argument);
  EXPECT_THROW(Dense(Tensor({2, 2}), Tensor({3})), std::invalid_argument);
}

TEST(Conv2d, ForwardIdentityKernel) {
  // 1x1 kernel with weight 1: output equals input.
  Conv2dConfig cfg{1, 1, 1, 1, 1, 0};
  Conv2d conv(cfg, Tensor({1, 1, 1, 1}, {1.0f}), Tensor({1}, {0.0f}));
  const Tensor input = Tensor({1, 1, 2, 3}, {1, 2, 3, 4, 5, 6});
  test::expect_tensors_near(conv.forward(input, Mode::kInfer), input);
}

TEST(Conv2d, ForwardSumKernel) {
  // 2x2 all-ones kernel computes window sums.
  Conv2dConfig cfg{1, 1, 2, 2, 1, 0};
  Conv2d conv(cfg, Tensor::ones({1, 1, 2, 2}), Tensor({1}, {0.0f}));
  const Tensor input = Tensor({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor out = conv.forward(input, Mode::kInfer);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 10.0f);
}

TEST(Conv2d, BiasAddedPerChannel) {
  Conv2dConfig cfg{1, 2, 1, 1, 1, 0};
  Conv2d conv(cfg, Tensor::zeros({2, 1, 1, 1}), Tensor({2}, {1.5f, -2.0f}));
  const Tensor out = conv.forward(Tensor({1, 1, 2, 2}), Mode::kInfer);
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 1}), 1.5f);
  EXPECT_FLOAT_EQ(out.at({0, 1, 0, 0}), -2.0f);
}

TEST(Conv2d, StrideGeometry) {
  Conv2dConfig cfg{1, 1, 5, 5, 2, 0};
  Rng rng(1);
  Conv2d conv(cfg, rng);
  EXPECT_EQ(conv.output_shape({1, 1, 60, 160}), (Shape{1, 1, 28, 78}));
}

TEST(Conv2d, PaddingGeometry) {
  Conv2dConfig cfg{1, 1, 3, 3, 1, 1};
  Rng rng(1);
  Conv2d conv(cfg, rng);
  EXPECT_EQ(conv.output_shape({2, 1, 7, 9}), (Shape{2, 1, 7, 9}));
}

TEST(Conv2d, PaddingTreatedAsZeros) {
  Conv2dConfig cfg{1, 1, 3, 3, 1, 1};
  Conv2d conv(cfg, Tensor::ones({1, 1, 3, 3}), Tensor({1}, {0.0f}));
  Tensor input = Tensor::ones({1, 1, 3, 3});
  const Tensor out = conv.forward(input, Mode::kInfer);
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 1}), 9.0f);  // center sees full window
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 0}), 4.0f);  // corner sees 2x2 of ones
}

TEST(Conv2d, TooSmallInputThrows) {
  Conv2dConfig cfg{1, 1, 5, 5, 1, 0};
  Rng rng(1);
  Conv2d conv(cfg, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 1, 4, 4}), Mode::kInfer), std::invalid_argument);
}

TEST(Conv2d, WrongChannelCountThrows) {
  Conv2dConfig cfg{2, 1, 3, 3, 1, 0};
  Rng rng(1);
  Conv2d conv(cfg, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 1, 5, 5}), Mode::kInfer), std::invalid_argument);
}

TEST(Conv2d, GradientCheckValidConv) {
  Rng rng(3);
  Conv2dConfig cfg{2, 3, 3, 3, 1, 0};
  Conv2d conv(cfg, rng);
  const Tensor input = rng.uniform_tensor({2, 2, 5, 5}, -1.0, 1.0);
  test::check_layer_gradients(conv, input, rng);
}

TEST(Conv2d, GradientCheckStridedPaddedConv) {
  Rng rng(5);
  Conv2dConfig cfg{1, 2, 3, 3, 2, 1};
  Conv2d conv(cfg, rng);
  const Tensor input = rng.uniform_tensor({1, 1, 6, 6}, -1.0, 1.0);
  test::check_layer_gradients(conv, input, rng);
}

TEST(Conv2d, GradientCheckRectangularKernel) {
  Rng rng(9);
  Conv2dConfig cfg{1, 2, 2, 4, 1, 0};
  Conv2d conv(cfg, rng);
  const Tensor input = rng.uniform_tensor({1, 1, 4, 6}, -1.0, 1.0);
  test::check_layer_gradients(conv, input, rng);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor out = relu.forward(Tensor({4}, {-1, 0, 2, -3}), Mode::kInfer);
  test::expect_tensors_near(out, Tensor({4}, {0, 0, 2, 0}));
}

TEST(ReLU, GradientCheck) {
  Rng rng(11);
  ReLU relu;
  // Keep inputs away from the kink at 0 for a clean finite-difference check.
  Tensor input = rng.uniform_tensor({2, 6}, 0.2, 1.0);
  for (int64_t i = 0; i < input.numel(); i += 2) input[i] = -input[i];
  test::check_layer_gradients(relu, input, rng);
}

TEST(Sigmoid, ForwardKnownValues) {
  Sigmoid sigmoid;
  const Tensor out = sigmoid.forward(Tensor({2}, {0.0f, 100.0f}), Mode::kInfer);
  EXPECT_NEAR(out[0], 0.5f, 1e-6f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6f);
}

TEST(Sigmoid, GradientCheck) {
  Rng rng(13);
  Sigmoid sigmoid;
  const Tensor input = rng.uniform_tensor({3, 4}, -2.0, 2.0);
  test::check_layer_gradients(sigmoid, input, rng);
}

TEST(Tanh, ForwardKnownValues) {
  Tanh tanh_layer;
  const Tensor out = tanh_layer.forward(Tensor({2}, {0.0f, 20.0f}), Mode::kInfer);
  EXPECT_NEAR(out[0], 0.0f, 1e-6f);
  EXPECT_NEAR(out[1], 1.0f, 1e-5f);
}

TEST(Tanh, GradientCheck) {
  Rng rng(17);
  Tanh tanh_layer;
  const Tensor input = rng.uniform_tensor({2, 5}, -1.5, 1.5);
  test::check_layer_gradients(tanh_layer, input, rng);
}

TEST(MaxPool2d, ForwardPicksWindowMaxima) {
  MaxPool2d pool(2);
  const Tensor input = Tensor({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 1});
  const Tensor out = pool.forward(input, Mode::kInfer);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
}

TEST(MaxPool2d, BackwardRoutesToWinner) {
  MaxPool2d pool(2);
  const Tensor input = Tensor({1, 1, 2, 2}, {1, 9, 2, 3});
  pool.forward(input, Mode::kTrain);
  const Tensor grad = pool.backward(Tensor({1, 1, 1, 1}, {5.0f}));
  test::expect_tensors_near(grad, Tensor({1, 1, 2, 2}, {0, 5, 0, 0}));
}

TEST(MaxPool2d, GradientCheck) {
  Rng rng(19);
  MaxPool2d pool(2);
  // Distinct values avoid argmax ties, which break finite differences.
  Tensor input({1, 2, 4, 4});
  for (int64_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>((i * 7919) % 97) / 97.0f;
  }
  test::check_layer_gradients(pool, input, rng);
}

TEST(MaxPool2d, InvalidConfigThrows) { EXPECT_THROW(MaxPool2d(0), std::invalid_argument); }

TEST(Flatten, CollapsesTrailingDims) {
  Flatten flatten;
  const Tensor out = flatten.forward(Tensor({2, 3, 4, 5}), Mode::kInfer);
  EXPECT_EQ(out.shape(), (Shape{2, 60}));
}

TEST(Flatten, BackwardRestoresShape) {
  Flatten flatten;
  flatten.forward(Tensor({2, 3, 2, 2}), Mode::kTrain);
  const Tensor grad = flatten.backward(Tensor({2, 12}));
  EXPECT_EQ(grad.shape(), (Shape{2, 3, 2, 2}));
}

TEST(Sequential, ChainsLayers) {
  Rng rng(23);
  Sequential model;
  model.emplace<Dense>(Tensor({2, 2}, {1, 0, 0, 1}), Tensor({2}, {1, 1}));
  model.emplace<ReLU>();
  const Tensor out = model.forward(Tensor({1, 2}, {-5, 3}), Mode::kInfer);
  test::expect_tensors_near(out, Tensor({1, 2}, {0, 4}));
}

TEST(Sequential, ForwardCollectReturnsAllActivations) {
  Sequential model;
  model.emplace<Dense>(Tensor({1, 1}, {2}), Tensor({1}, {0}));
  model.emplace<ReLU>();
  const auto acts = model.forward_collect(Tensor({1, 1}, {3}));
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_FLOAT_EQ(acts[0][0], 6.0f);
  EXPECT_FLOAT_EQ(acts[1][0], 6.0f);
}

TEST(Sequential, EndToEndGradientCheck) {
  Rng rng(29);
  Sequential model;
  model.emplace<Dense>(3, 4, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(4, 2, rng);
  model.emplace<Tanh>();

  const Tensor input = rng.uniform_tensor({2, 3}, -1.0, 1.0);
  const Tensor seed = rng.uniform_tensor({2, 2}, -1.0, 1.0);

  model.zero_grad();
  model.forward(input, Mode::kTrain);
  const Tensor grad_input = model.backward(seed);

  auto scalar = [&](const Tensor& x) {
    const Tensor out = model.forward(x, Mode::kInfer);
    double acc = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) acc += static_cast<double>(out[i]) * seed[i];
    return acc;
  };
  Tensor x = input;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x[i];
    const double h = 1e-3;
    x[i] = saved + static_cast<float>(h);
    const double up = scalar(x);
    x[i] = saved - static_cast<float>(h);
    const double down = scalar(x);
    x[i] = saved;
    EXPECT_NEAR(grad_input[i], (up - down) / (2 * h), 2e-2) << "at " << i;
  }
}

TEST(Sequential, ParameterCountSumsLayers) {
  Rng rng(31);
  Sequential model;
  model.emplace<Dense>(10, 5, rng);  // 10*5 + 5
  model.emplace<Dense>(5, 2, rng);   // 5*2 + 2
  EXPECT_EQ(model.parameter_count(), 55 + 12);
}

TEST(Sequential, OutputShapePropagates) {
  Rng rng(37);
  Sequential model;
  Conv2dConfig cfg{1, 4, 3, 3, 1, 0};
  model.emplace<Conv2d>(cfg, rng);
  model.emplace<ReLU>();
  model.emplace<Flatten>();
  model.emplace<Dense>(4 * 4 * 4, 2, rng);
  EXPECT_EQ(model.output_shape({5, 1, 6, 6}), (Shape{5, 2}));
}

TEST(Sequential, AddNullThrows) {
  Sequential model;
  EXPECT_THROW(model.add(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace salnov::nn
